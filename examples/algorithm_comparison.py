"""Compare the three flowcube construction algorithms on one database.

A miniature of the Section 6 evaluation: generate a synthetic path
database, run Shared / Cubing / Basic, and report runtime, candidates
counted per pattern length (Figure 11's view), and pruning statistics —
then verify the three produced identical frequent cells and segments.

Run:  python examples/algorithm_comparison.py
"""

import time

from repro.mining import basic_mine, cubing_mine, shared_mine
from repro.synth import GeneratorConfig, generate_path_database


def main() -> None:
    config = GeneratorConfig(
        n_paths=500,
        n_dims=4,
        dim_fanouts=(3, 3, 4),
        n_sequences=20,
        seed=31,
    )
    db = generate_path_database(config)
    print(f"Database: {db.describe()}")
    min_support = 0.08
    print(f"Minimum support δ = {min_support:.0%}\n")

    runs = {}
    for name, miner in (
        ("shared", shared_mine),
        ("cubing", cubing_mine),
        ("basic", basic_mine),
    ):
        started = time.perf_counter()
        runs[name] = miner(db, min_support=min_support)
        elapsed = time.perf_counter() - started
        stats = runs[name].stats
        print(
            f"{name:>7}: {elapsed:6.2f}s  patterns={len(runs[name]):>7}  "
            f"candidates={stats.total_candidates:>8}  "
            f"max_length={stats.max_length}"
        )

    print("\nCandidates counted per pattern length (Figure 11's view):")
    lengths = sorted(
        set(runs["shared"].stats.candidates_per_length)
        | set(runs["basic"].stats.candidates_per_length)
    )
    print(f"{'length':>8} {'shared':>10} {'basic':>10}")
    for length in lengths:
        print(
            f"{length:>8} "
            f"{runs['shared'].stats.candidates_per_length.get(length, 0):>10} "
            f"{runs['basic'].stats.candidates_per_length.get(length, 0):>10}"
        )

    print("\nShared's pruning rules (candidates removed before counting):")
    for rule, count in sorted(runs["shared"].stats.pruned.items()):
        print(f"  {rule:<12} {count}")

    agree = (
        runs["shared"].frequent_cells() == runs["cubing"].frequent_cells()
        and runs["shared"].frequent_segments() == runs["cubing"].frequent_segments()
        and runs["shared"].frequent_cells() == runs["basic"].frequent_cells()
        and runs["shared"].frequent_segments() == runs["basic"].frequent_segments()
    )
    print(f"\nAll three algorithms agree on cells and segments: {agree}")


if __name__ == "__main__":
    main()
