"""Retail commodity-flow analysis on a synthetic nationwide deployment.

The scenario from the paper's introduction: a retailer tracking items from
factories through distribution to stores wants multi-dimensional answers —
typical paths per product segment, lead-time outliers, and how much the
flow of one segment deviates from its parent category (redundancy analysis).

Run:  python examples/retail_flow_analysis.py
"""

from repro.core import FlowCube, ItemLevel, prune_redundant, tv_similarity
from repro.query import FlowCubeQuery, lead_time_deviations, typical_paths
from repro.synth import GeneratorConfig, generate_path_database


def main() -> None:
    # A synthetic retail operation: 2,000 tracked items, 3 item dimensions
    # (think product / brand / supplier), 4 location areas.
    config = GeneratorConfig(
        n_paths=2000,
        n_dims=3,
        dim_fanouts=(3, 3, 4),
        dim_skew=0.9,
        n_location_groups=4,
        locations_per_group=4,
        n_sequences=25,
        max_duration=12,
        seed=2026,
    )
    db = generate_path_database(config)
    print(f"Generated {len(db)} paths; {db.describe()}")

    # Materialise only the levels a retail analyst uses: category overview
    # down to (product-line, brand) detail — a partial materialisation plan.
    from repro.core import plan_between_layers

    plan = plan_between_layers(
        minimum_layer=ItemLevel((1, 0, 0)),
        observation_layer=ItemLevel((2, 1, 0)),
    )
    cube = plan.build(db, min_support=0.01, min_deviation=0.15)
    print(f"Cube: {cube.describe()}")

    query = FlowCubeQuery(cube)
    category = db.schema.dimensions[0].concepts_at_level(1)[0]

    print(f"\n--- Typical paths for category {category!r} ---")
    graph = query.flowgraph(d0=category)
    for route in typical_paths(graph, top_k=3):
        print(
            f"  p={route.probability:.2f}  lead≈{route.expected_lead_time:.1f}  "
            + " → ".join(route.locations)
        )

    print(f"\n--- Lead-time outliers within {category!r} ---")
    cell = query.cell(d0=category)
    outliers = lead_time_deviations(cell.flowgraph, list(cell.paths), z_threshold=2.5)
    print(f"  {len(outliers)} outlier paths (|z| >= 2.5); worst 3:")
    for path, z in outliers[:3]:
        total = sum(float(d) for _, d in path)
        print(f"    z={z:+.1f} total={total:.0f}  " + " → ".join(l for l, _ in path))

    print("\n--- Exceptions recorded in this cell ---")
    for exception in cell.flowgraph.exceptions[:5]:
        print(f"  {exception}")
    if not cell.flowgraph.exceptions:
        print("  (none above ε at this δ)")

    print("\n--- Redundancy compression ---")
    total = cube.n_cells()
    marked = prune_redundant(cube, threshold=0.9, metric=tv_similarity)
    print(
        f"  {marked} of {total} cells are redundant given their parents "
        f"({100 * marked / total:.0f}% saved by the non-redundant flowcube)"
    )
    survivors = [
        cell for cell in cube.cells()
        if not cell.redundant and sum(cell.item_level.levels) > 1
    ]
    survivors.sort(key=lambda c: -c.n_paths)
    print("  Most significant non-redundant segments (drill-down targets):")
    for cell in survivors[:5]:
        print(f"    {cell.key}  n={cell.n_paths}")


if __name__ == "__main__":
    main()
