"""Year-over-year flow comparison (intro question 3) + PDFA similarity.

Builds flowcubes for two simulated "years" of the same operation — the
second year with a deliberately degraded transportation leg — contrasts
the flowgraphs (largest distribution shifts), renders a full analyst
report, and shows the PDFA-based φ agreeing with the built-in metrics
about which cells changed.

Run:  python examples/historic_comparison.py
"""

from repro.core import (
    FlowCube,
    Path,
    PathDatabase,
    PathRecord,
    kl_similarity,
    tv_similarity,
)
from repro.pdfa import flowgraph_pdfa_similarity
from repro.query import FlowCubeQuery, flow_report
from repro.synth import GeneratorConfig, generate_path_database


def degrade_transport(db: PathDatabase, extra_hours: float) -> PathDatabase:
    """Next year's data: every area_1 (transport) stay takes longer, and
    ~the same routes otherwise."""
    records = []
    for record in db:
        stages = [
            (s.location, s.duration + extra_hours)
            if s.location.startswith("loc_1_")
            else (s.location, s.duration)
            for s in record.path
        ]
        records.append(PathRecord(record.record_id, record.dims, Path(stages)))
    return PathDatabase(db.schema, records, validate=False)


def main() -> None:
    config = GeneratorConfig(
        n_paths=800,
        n_dims=2,
        dim_fanouts=(3, 3, 3),
        n_sequences=12,
        max_duration=8,
        seed=2025,
    )
    year_2025 = generate_path_database(config)
    year_2026 = degrade_transport(year_2025, extra_hours=4)

    cube_2025 = FlowCube.build(year_2025, min_support=0.02, min_deviation=0.15)
    cube_2026 = FlowCube.build(year_2026, min_support=0.02, min_deviation=0.15)

    q_2025 = FlowCubeQuery(cube_2025)
    q_2026 = FlowCubeQuery(cube_2026)

    print("=== Analyst report: 2026 apex cell vs 2025 baseline ===")
    print(
        flow_report(
            q_2026.cell(),
            baseline=q_2025.flowgraph(),
            top_k=3,
        )
    )

    print("=== Similarity of 2026 vs 2025 apex flowgraphs, by metric ===")
    g_2025 = q_2025.flowgraph()
    g_2026 = q_2026.flowgraph()
    for name, metric in (
        ("KL-based", kl_similarity),
        ("total-variation", tv_similarity),
        ("PDFA (ALERGIA)", flowgraph_pdfa_similarity),
    ):
        print(f"  {name:<16} {metric(g_2026, g_2025):.3f}")
    identity = kl_similarity(g_2026, g_2026)
    print(f"  (self-similarity sanity check: {identity:.3f})")

    print("\nNote: locations are unchanged year over year, so the PDFA view")
    print("(routes only) stays near 1.0 while the duration-sensitive metrics")
    print("drop — exactly the distinction §4.3 leaves to the analyst's φ.")


if __name__ == "__main__":
    main()
