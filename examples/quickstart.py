"""Quickstart: the paper's running example, end to end.

Builds the Table 1 path database, materialises an iceberg flowcube over it,
and walks through the views the paper illustrates: the Figure 3 flowgraph,
the Figure 4 cell, path views at two abstraction levels, and the recorded
exceptions.

Run:  python examples/quickstart.py
"""

from repro import FlowCube, example_path_database
from repro.query import FlowCubeQuery, render_text, typical_paths


def main() -> None:
    db = example_path_database()
    print(f"Path database: {len(db)} paths, dims {db.schema.dimension_names}")
    for record in db:
        print(f"  {record}")

    # Materialise the full iceberg flowcube: every item level, the paper's
    # four path levels, δ = 2 paths, ε = 0.1.
    cube = FlowCube.build(db, min_support=2, min_deviation=0.1)
    stats = cube.describe()
    print(
        f"\nFlowcube: {stats['cuboids']} cuboids, {stats['cells']} cells, "
        f"{stats['exceptions']} exceptions recorded"
    )

    query = FlowCubeQuery(cube)

    print("\n--- Figure 3: flowgraph over all paths (leaf locations) ---")
    print(render_text(query.flowgraph()))

    print("--- Figure 4: flowgraph of the (outerwear, nike) cell ---")
    print(render_text(query.flowgraph(product="outerwear", brand="nike")))

    print("--- Transportation manager's view (store rolled up) ---")
    coarse = cube.path_lattice[2]  # coarse location view, durations kept
    print(render_text(query.flowgraph(path_level=coarse)))

    print("--- Most typical complete paths ---")
    for route in typical_paths(query.flowgraph(), top_k=3):
        locations = " → ".join(route.locations)
        print(
            f"  p={route.probability:.2f}  lead≈{route.expected_lead_time:.1f}h  "
            f"{locations}"
        )


if __name__ == "__main__":
    main()
