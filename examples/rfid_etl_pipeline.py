"""The Section 2 pipeline: raw RFID readings → cleaned paths → flowcube.

Real deployments don't start from a path database — they start from a
stream of noisy (EPC, location, time) reads.  This example simulates such a
stream for a known ground truth, cleans it (dedup + sessionise into stays),
joins item master data, and verifies the flowcube built on the recovered
paths matches the one built on the truth.

Run:  python examples/rfid_etl_pipeline.py
"""

import tempfile
from pathlib import Path

from repro.core import FlowCube, kl_similarity
from repro.query import FlowCubeQuery, render_text
from repro.store import PartitionedPathStore, build_cube
from repro.synth import GeneratorConfig, generate_path_database
from repro.warehouse import (
    ReaderModel,
    build_path_database,
    round_durations,
    simulate_readings,
)


def main() -> None:
    # Ground truth: a small synthetic operation.
    truth = generate_path_database(
        GeneratorConfig(
            n_paths=400,
            n_dims=2,
            dim_fanouts=(3, 3, 3),
            n_sequences=10,
            max_duration=8,
            seed=99,
        )
    )
    print(f"Ground truth: {truth.describe()}")

    # Simulate the reader infrastructure: half-hour read period, clock
    # jitter, 3% missed reads, 5% duplicate reports.
    model = ReaderModel(
        read_period=0.5, jitter=0.05, miss_rate=0.03, duplicate_rate=0.05, seed=4
    )
    readings = list(simulate_readings(truth, model))
    print(f"Simulated {len(readings)} raw (EPC, location, time) readings")

    # Clean + ETL: sessionise stays, round durations to whole hours, join
    # the item master.
    master = {f"epc-{record.record_id}": record.dims for record in truth}
    ids = {f"epc-{record.record_id}": record.record_id for record in truth}
    recovered = build_path_database(
        readings,
        master,
        truth.schema,
        duration_reducer=round_durations(1.0),
        record_ids=ids,
    )
    print(f"Recovered:    {recovered.describe()}")

    matched = sum(
        1
        for original in truth
        if original.path.locations == recovered[original.record_id].path.locations
    )
    print(f"Location sequences recovered exactly: {matched}/{len(truth)}")

    # Flowcubes over truth and recovered data should be nearly identical.
    truth_cube = FlowCube.build(truth, min_support=0.02, compute_exceptions=False)
    recovered_cube = FlowCube.build(
        recovered, min_support=0.02, compute_exceptions=False
    )
    truth_graph = FlowCubeQuery(truth_cube).flowgraph()
    recovered_graph = FlowCubeQuery(recovered_cube).flowgraph()
    similarity = kl_similarity(truth_graph, recovered_graph)
    print(f"Apex flowgraph similarity (truth vs recovered): {similarity:.3f}")

    print("\n--- Recovered apex flowgraph (first branch) ---")
    text = render_text(recovered_graph, show_exceptions=False)
    print("\n".join(text.splitlines()[:12]))

    # In production the cleaned paths land in a partitioned on-disk store
    # and the cube is maintained incrementally as new batches arrive.
    print("\n--- Warehouse: partitioned store + incremental append ---")
    rows = sorted(recovered, key=lambda record: record.record_id)
    with tempfile.TemporaryDirectory() as tmp:
        store = PartitionedPathStore.init(
            Path(tmp) / "warehouse", truth.schema, partition_size=100
        )
        store.ingest(rows[:300])
        cube = build_cube(store, min_support=0.02, compute_exceptions=False)
        print(
            f"Initial load: {len(store)} records in "
            f"{len(store.catalog.partitions)} partitions, "
            f"{cube.n_cells()} iceberg cells"
        )
        # The next ETL batch: persisted as a new partition AND folded into
        # the live cube (Lemma 4.2 — only touched cells are re-counted).
        delta = store.append(rows[300:], cube=cube, recompute_exceptions=False)
        print(
            f"Appended {delta['ingested']} records "
            f"({delta['partitions']} new partition(s)); cube cells "
            f"updated={delta['updated']} created={delta['created']}"
        )
        # Persist the cube cell-by-cell and serve queries through the
        # bounded LRU cache: the repeat read never touches disk.
        build_cube(
            store, min_support=0.02, compute_exceptions=False,
            into=store.cube_store(),
        )
        served = store.cube_store(cache_size=32)
        query = FlowCubeQuery(served)
        query.flowgraph()
        query.flowgraph()
        stats = served.cache_stats()
        print(
            f"Cube store cache after repeated query: "
            f"hits={stats['hits']} misses={stats['misses']}"
        )


if __name__ == "__main__":
    main()
