"""The zero-copy read path: generations, lazy masks, lifecycle, admin.

The load-bearing assertions:

* a cold binary open reads **zero** cell-heap bytes and decodes **zero**
  catalog masks (``CubeStore.io_counters``); the first slice decodes
  only the masks it ANDs, and heap bytes are paid only per materialised
  cell;
* the three cell-payload generations — JSON files, ``FCHEAP01`` (JSON
  in the heap), ``FCHEAP02`` (binary records) — convert into each other
  in place with ``cube_to_json`` byte-identical throughout, and
  ``flowcube-store migrate --to binary`` upgrades a legacy
  generation-1 store (``FCPART01`` partitions, no ``strings.bin``,
  ``FCHEAP01`` heap) even though the format already reads "binary";
* a reload (``maybe_reload``) materialises still-referenced lazy mask
  views out of the superseded index map before closing it, so catalogs
  built against the old build keep answering;
* open/close cycles leak no file descriptors (``/proc/self/fd``), and a
  closed store fails loudly instead of returning garbage;
* ``strings.bin`` written on a foreign-endian host is rejected, and a
  truncated ``cells.idx`` refuses to load.
"""

from __future__ import annotations

import gc
import json
import os

import pytest

from repro.core.path import PathRecord
from repro.core.serialization import cube_to_json
from repro.errors import StoreError
from repro.perf.query_kernel import CuboidKeyCatalog
from repro.query.api import FlowCubeQuery
from repro.store import PartitionedPathStore, build_cube
from repro.store.binfmt import (
    HEAP_MAGIC,
    HEAP_MAGIC_V2,
    STRINGS_FILENAME,
    StringTable,
    pack_partition,
    unpack_partition,
)
from repro.store.cli import main
from repro.store.partition import partition_generation, write_partition
from repro.synth import GeneratorConfig, generate_path_database

CONFIG = GeneratorConfig(
    n_paths=120,
    n_dims=2,
    dim_fanouts=(2, 3),
    n_location_groups=3,
    locations_per_group=2,
    n_sequences=8,
    max_path_length=4,
    max_duration=3,
    seed=3,
)
MIN_SUPPORT = 0.1


@pytest.fixture(scope="module")
def database():
    return generate_path_database(CONFIG)


@pytest.fixture()
def built_dir(tmp_path, database):
    """A built binary store (the default, generation-2 layout)."""
    directory = tmp_path / "wh"
    store = PartitionedPathStore.init(
        directory, database.schema, partition_size=30, store_format="binary"
    )
    store.ingest(database)
    build_cube(store, min_support=MIN_SUPPORT, into=store.cube_store())
    store.close()
    return directory


def _heap_magic(directory) -> bytes:
    with open(directory / "cube" / "cells.bin", "rb") as handle:
        return handle.read(8)


def _downgrade_to_generation_one(directory, schema) -> None:
    """Rewrite a built binary store as a PR-8-era generation-1 store."""
    store = PartitionedPathStore.open(directory)
    for meta in store.catalog.partitions:
        path = directory / "partitions" / meta.filename
        database = store.load_partition(meta.partition_id)
        write_partition(path, database)  # no table -> FCPART01
    store.cube_store().convert("binary", generation=1)
    store.close()
    (directory / "partitions" / STRINGS_FILENAME).unlink()


# ----------------------------------------------------------------------
# IO counters: the zero-copy contract
# ----------------------------------------------------------------------

def test_cold_open_reads_zero_heap_bytes_and_masks(built_dir):
    store = PartitionedPathStore.open(built_dir)
    cube = store.cube_store()
    assert cube.io_counters() == {"heap_bytes_read": 0, "mask_bits_decoded": 0}

    # Enumerating cuboids and building a key catalog from the lazy mask
    # views still reads nothing: the masks stay byte spans over the map.
    cuboids = cube.cuboids
    biggest = max(cuboids, key=len)
    catalog = CuboidKeyCatalog(
        biggest.keys, store.schema.dimensions, biggest.value_masks
    )
    assert cube.io_counters() == {"heap_bytes_read": 0, "mask_bits_decoded": 0}

    # ANDing a constraint decodes masks; the heap is still untouched.
    value = biggest.keys[0][0]
    assert catalog.match_mask([(0, value)]) != 0
    counters = cube.io_counters()
    assert counters["mask_bits_decoded"] > 0
    assert counters["heap_bytes_read"] == 0

    # Materialising cells finally pays heap IO — per cell, not per open.
    query = FlowCubeQuery(cube)
    cells = query.slice_cells(None, **{store.schema.dimension_names[0]: value})
    assert cells
    assert cube.io_counters()["heap_bytes_read"] > 0
    cube.close()
    store.close()


def test_cold_open_with_pending_deltas_reads_zero_heap_bytes(
    built_dir, database
):
    """The overlay extends the zero-copy contract to delta-bearing cubes.

    A store with pending ``cells.delta.NNN.bin`` segments routes its
    index through the ``cells.delta.idx`` overlay — which must be just
    as lazy as ``cells.idx``: the cold open mmaps it, decodes no masks,
    and reads zero heap bytes from the base heap *or* any segment.
    """
    from repro.store import append_records

    store = PartitionedPathStore.open(built_dir)
    rows = list(database)
    batch = [
        PathRecord(1000 + i, record.dims, record.path)
        for i, record in enumerate(rows[:12])
    ]
    append_records(store, batch, cube=store.cube_store(), compact_after=0)

    cold = store.cube_store()
    assert cold.delta_segments == [1]
    assert cold.io_counters() == {"heap_bytes_read": 0, "mask_bits_decoded": 0}

    cuboids = cold.cuboids
    biggest = max(cuboids, key=len)
    catalog = CuboidKeyCatalog(
        biggest.keys, store.schema.dimensions, biggest.value_masks
    )
    assert cold.io_counters() == {"heap_bytes_read": 0, "mask_bits_decoded": 0}
    assert catalog.match_mask([(0, biggest.keys[0][0])]) != 0
    counters = cold.io_counters()
    assert counters["mask_bits_decoded"] > 0
    assert counters["heap_bytes_read"] == 0

    # Materialising a delta-resident cell pays segment IO, per cell.
    query = FlowCubeQuery(cold)
    cells = query.slice_cells(None)
    assert cells
    assert cold.io_counters()["heap_bytes_read"] > 0
    assert cold.describe()["delta_segments"] == 1
    cold.close()
    store.close()


def test_describe_reports_generation_and_io(built_dir):
    store = PartitionedPathStore.open(built_dir)
    report = store.describe()
    assert report["partition_generations"] == {"1": 0, "2": 4}
    assert report["shared_strings"] > 0
    cube_report = store.cube_store().describe()
    assert cube_report["heap_generation"] == 2
    assert cube_report["io"]["heap_bytes_read"] == 0
    store.close()


# ----------------------------------------------------------------------
# heap generations: FCHEAP01 <-> FCHEAP02 <-> JSON files
# ----------------------------------------------------------------------

def test_generation_round_trip_is_byte_identical(built_dir):
    store = PartitionedPathStore.open(built_dir)
    cube = store.cube_store()
    baseline = cube_to_json(cube)
    n_cells = cube.n_cells()
    assert _heap_magic(built_dir) == HEAP_MAGIC_V2

    # Down to generation 1 (JSON payloads in the heap)...
    assert cube.convert("binary", generation=1) == n_cells
    assert _heap_magic(built_dir) == HEAP_MAGIC
    assert cube.needs_upgrade()
    assert cube_to_json(cube) == baseline

    # ...through the portable JSON layout...
    assert cube.convert("json") == n_cells
    assert cube_to_json(cube) == baseline

    # ...and back up to generation 2.
    assert cube.convert("binary") == n_cells
    assert _heap_magic(built_dir) == HEAP_MAGIC_V2
    assert not cube.needs_upgrade()
    assert cube.convert("binary") == 0  # already latest: a no-op
    assert cube_to_json(cube) == baseline

    # A cold reader of the final store agrees byte for byte.
    cold = PartitionedPathStore.open(built_dir).cube_store()
    assert cold.describe()["heap_generation"] == 2
    assert cube_to_json(cold) == baseline


def test_migrate_cli_upgrades_legacy_binary_store(
    built_dir, database, capsys
):
    baseline = cube_to_json(
        PartitionedPathStore.open(built_dir).cube_store()
    )
    _downgrade_to_generation_one(built_dir, database.schema)
    legacy = PartitionedPathStore.open(built_dir)
    assert legacy.partitions_need_upgrade()
    assert legacy.cube_store().needs_upgrade()
    assert cube_to_json(legacy.cube_store()) == baseline  # still readable
    legacy.close()
    capsys.readouterr()

    # Same-format migrate is NOT a no-op here: it upgrades in place.
    assert main(["migrate", str(built_dir), "--to", "binary"]) == 0
    assert "migrating" in capsys.readouterr().out
    upgraded = PartitionedPathStore.open(built_dir)
    assert not upgraded.partitions_need_upgrade()
    assert (built_dir / "partitions" / STRINGS_FILENAME).exists()
    for meta in upgraded.catalog.partitions:
        assert partition_generation(
            built_dir / "partitions" / meta.filename
        ) == 2
    assert _heap_magic(built_dir) == HEAP_MAGIC_V2
    assert cube_to_json(upgraded.cube_store()) == baseline
    upgraded.close()

    # Now it really is a no-op.
    assert main(["migrate", str(built_dir), "--to", "binary"]) == 0
    assert "already in binary format" in capsys.readouterr().out


# ----------------------------------------------------------------------
# reload safety: live mask views survive the map swap
# ----------------------------------------------------------------------

def test_reload_materialises_live_mask_views(built_dir):
    store = PartitionedPathStore.open(built_dir)
    cube = store.cube_store()
    cuboid = max(cube.cuboids, key=len)
    masks = cuboid.value_masks
    assert masks is not None
    # Decode one mask eagerly; leave the rest as spans over the mmap.
    expected = {
        dim: dict(per_dim.items()) for dim, per_dim in enumerate(masks)
    }
    _ = masks[0].get(next(iter(masks[0])), 0)

    # Another handle republished the cube: the first handle reloads,
    # closing its superseded index map.
    writer = PartitionedPathStore.open(built_dir).cube_store()
    cell = next(iter(writer.cuboids[0]))
    writer.put_cell(cell)
    writer.flush()
    writer.close()
    assert cube.maybe_reload()

    # The pre-reload views still answer every value, and agree with the
    # fresh index.
    for dim, per_dim in enumerate(masks):
        assert dict(per_dim.items()) == expected[dim]
    fresh = max(cube.cuboids, key=len).value_masks
    for dim, per_dim in enumerate(fresh):
        assert dict(per_dim.items()) == expected[dim]
    cube.close()
    store.close()


# ----------------------------------------------------------------------
# lifecycle: fd hygiene and loud failures after close
# ----------------------------------------------------------------------

def _open_fds() -> int:
    # Collect first: handles leaked by *other* tests in the process are
    # reclaimed lazily, and a collection mid-loop would skew the count.
    gc.collect()
    return len(os.listdir("/proc/self/fd"))


def test_open_query_close_leaks_no_fds(built_dir, database):
    dim = database.schema.dimension_names[0]
    # Warm import/intern caches so the counted loop is steady-state.
    with PartitionedPathStore.open(built_dir) as store:
        with store.cube_store() as cube:
            FlowCubeQuery(cube).slice_cells(None)
    before = _open_fds()
    for _ in range(5):
        store = PartitionedPathStore.open(built_dir)
        store.load_partition(store.partition_ids()[0])
        cube = store.cube_store()
        query = FlowCubeQuery(cube)
        assert query.slice_cells(None)
        cube.close()
        store.close()
    assert _open_fds() == before


def test_closed_store_raises_clearly(built_dir):
    store = PartitionedPathStore.open(built_dir)
    cube = store.cube_store()
    cuboid = max(cube.cuboids, key=len)
    cube.close()
    store.close()
    # A final close drops the index map without materialising, so
    # undecoded lazy masks refuse loudly instead of returning garbage.
    with pytest.raises(StoreError):
        for per_dim in cuboid.value_masks:
            dict(per_dim.items())
    # Cell reads, by contrast, reopen the heap lazily: the handle stays
    # usable after close (close releases resources, it does not poison).
    cell = cube.cell(cuboid.item_level, cuboid.keys[0], cuboid.path_level)
    assert cell.key == cuboid.keys[0]
    cube.close()


# ----------------------------------------------------------------------
# corruption and portability guards
# ----------------------------------------------------------------------

def test_truncated_cell_index_refuses_to_load(built_dir):
    index_path = built_dir / "cube" / "cells.idx"
    blob = index_path.read_bytes()
    index_path.write_bytes(blob[: len(blob) // 2])
    store = PartitionedPathStore.open(built_dir)
    with pytest.raises(StoreError):
        store.cube_store()


def test_foreign_endian_string_table_rejected(built_dir):
    strings_path = built_dir / "partitions" / STRINGS_FILENAME
    blob = bytearray(strings_path.read_bytes())
    # Byte-swap the ORDER_TAG sentinel (first header word after the
    # magic) — exactly what the file would look like to a foreign-endian
    # reader.
    blob[8:16] = blob[8:16][::-1]
    strings_path.write_bytes(bytes(blob))
    store = PartitionedPathStore.open(built_dir)
    with pytest.raises(StoreError, match="endian"):
        store.load_partition(store.partition_ids()[0])


def test_shared_table_interning_is_stable_across_partitions(database):
    table = StringTable()
    parts = [
        pack_partition(database, table),
        pack_partition(database, table),
    ]
    first = unpack_partition(parts[0], database.schema, table)
    second = unpack_partition(parts[1], database.schema, table)
    assert first.to_csv() == second.to_csv() == database.to_csv()
    # Both partitions resolve through the same interned str objects.
    a = next(iter(first)).path[0].location
    b = next(iter(second)).path[0].location
    assert a is b
