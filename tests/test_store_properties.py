"""Property tests for the persistence layer (hypothesis).

Two serialisation contracts the store depends on:

* the CSV interchange format survives *adversarial* values — dimension
  values and locations containing commas, quotes, newlines, and the path
  column's own separators (``|``, ``:``, ``\\``) — byte-faithfully;
* ``cube_to_json`` / ``cube_from_json`` is a fixed point: serialising a
  deserialised cube reproduces the exact same JSON text (exceptions,
  redundancy marks, and duration levels included), which is what lets the
  cube store deduplicate and diff persisted cells.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.flowcube import FlowCube
from repro.core.hierarchy import ConceptHierarchy
from repro.core.path import Path, PathRecord
from repro.core.path_database import PathDatabase, PathSchema
from repro.core.redundancy import prune_redundant
from repro.core.serialization import cube_from_json, cube_to_json
from repro.core.stage import Stage
from tests.test_properties import path_databases

# ----------------------------------------------------------------------
# adversarial CSV round-trip
# ----------------------------------------------------------------------

# Arbitrary text (no surrogates; "\r" excluded because the csv dialect owns
# it) mixed with values built from the format's own separator characters.
_TEXT = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",), blacklist_characters="\r"),
    min_size=1,
    max_size=8,
).filter(lambda s: s != "*")
_SEPARATORS = st.sampled_from(
    ["a|b", "c:d", "e\\f", "g,h", 'i"j', "k\nl", "\\", "|", ":", "::", "|:\\", "\\|"]
)
_VALUE = st.one_of(_TEXT, _SEPARATORS)

_DURATION = st.floats(
    min_value=0, allow_nan=False, allow_infinity=False, width=64
)


@st.composite
def adversarial_databases(draw):
    """A small database whose values stress every CSV escaping rule."""
    dim_values = draw(st.lists(_VALUE, min_size=1, max_size=4, unique=True))
    locations = draw(st.lists(_VALUE, min_size=1, max_size=4, unique=True))
    schema = PathSchema(
        dimensions=(ConceptHierarchy.flat("d0", dim_values),),
        location=ConceptHierarchy.flat("location", locations),
        duration=ConceptHierarchy.flat("duration", ["0", "1"]),
    )
    records = []
    for record_id in range(1, draw(st.integers(min_value=1, max_value=5)) + 1):
        dims = (draw(st.sampled_from(dim_values)),)
        stages = [
            Stage(draw(st.sampled_from(locations)), draw(_DURATION))
            for _ in range(draw(st.integers(min_value=1, max_value=3)))
        ]
        records.append(PathRecord(record_id, dims, Path(stages)))
    return PathDatabase(schema, records)


@given(adversarial_databases())
@settings(max_examples=60, deadline=None)
def test_csv_roundtrip_survives_adversarial_values(database):
    text = database.to_csv()
    restored = PathDatabase.from_csv(database.schema, text)
    assert list(restored) == list(database)
    # The serialisation itself is a fixed point too.
    assert restored.to_csv() == text


# ----------------------------------------------------------------------
# cube JSON fixed point
# ----------------------------------------------------------------------

@given(path_databases())
@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_cube_json_cycle_is_byte_identical(database):
    cube = FlowCube.build(database, min_support=5, min_deviation=0.05)
    prune_redundant(cube, threshold=0.5)
    first = cube_to_json(cube)
    restored = cube_from_json(first, database)
    second = cube_to_json(restored)
    assert second == first

    # The payload carried everything: exceptions, redundancy, path levels.
    original_cells = {
        (cell.item_level, cell.path_level, cell.key): cell
        for cell in cube.cells()
    }
    restored_cells = {
        (cell.item_level, cell.path_level, cell.key): cell
        for cell in restored.cells()
    }
    assert restored_cells.keys() == original_cells.keys()
    for coords, expected in original_cells.items():
        actual = restored_cells[coords]
        assert actual.redundant == expected.redundant
        assert actual.record_ids == expected.record_ids
        assert [str(e) for e in actual.flowgraph.exceptions] == [
            str(e) for e in expected.flowgraph.exceptions
        ]
    assert [level.duration_level for level in restored.path_lattice] == [
        level.duration_level for level in cube.path_lattice
    ]
