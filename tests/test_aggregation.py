"""Unit tests for path aggregation (repro.core.aggregation)."""

import pytest

from repro.core import (
    DURATION_ANY,
    DURATION_VALUE,
    LocationView,
    Path,
    PathLevel,
    aggregate_locations,
    aggregate_path,
)
from repro.core.aggregation import (
    DURATION_ANY_LABEL,
    default_discretiser,
    max_merge,
    sum_merge,
)


@pytest.fixture
def store_path() -> Path:
    # Figure 1's example path: dist center, truck, backroom, shelf, checkout.
    return Path(
        [
            ("dist center", 2),
            ("truck", 1),
            ("backroom", 4),
            ("shelf", 5),
            ("checkout", 0),
        ]
    )


def transportation_view(hierarchy) -> PathLevel:
    view = LocationView(
        hierarchy, ["dist center", "truck", "warehouse", "factory", "store"]
    )
    return PathLevel(view, DURATION_VALUE)


def store_view(hierarchy) -> PathLevel:
    view = LocationView(
        hierarchy,
        ["transportation", "factory", "backroom", "shelf", "checkout"],
    )
    return PathLevel(view, DURATION_VALUE)


class TestFigure1Views:
    def test_transportation_view_merges_store(self, location_hierarchy, store_path):
        level = transportation_view(location_hierarchy)
        aggregated = aggregate_path(store_path, level)
        assert [loc for loc, _ in aggregated] == ["dist center", "truck", "store"]
        # The merged store stage sums backroom+shelf+checkout durations.
        assert aggregated[-1][1] == "9"

    def test_store_view_merges_transportation(self, location_hierarchy, store_path):
        level = store_view(location_hierarchy)
        aggregated = aggregate_path(store_path, level)
        assert [loc for loc, _ in aggregated] == [
            "transportation",
            "backroom",
            "shelf",
            "checkout",
        ]
        assert aggregated[0][1] == "3"  # dist center 2 + truck 1


class TestDurationLevels:
    def test_any_level_uses_star_label(self, location_hierarchy, store_path):
        level = PathLevel(
            LocationView.leaf_view(location_hierarchy), DURATION_ANY
        )
        aggregated = aggregate_path(store_path, level)
        assert all(d == DURATION_ANY_LABEL for _, d in aggregated)

    def test_value_level_keeps_labels(self, location_hierarchy, store_path):
        level = PathLevel(
            LocationView.leaf_view(location_hierarchy), DURATION_VALUE
        )
        aggregated = aggregate_path(store_path, level)
        assert [d for _, d in aggregated] == ["2", "1", "4", "5", "0"]


class TestMergers:
    def test_max_merge(self, location_hierarchy, store_path):
        level = store_view(location_hierarchy)
        aggregated = aggregate_path(store_path, level, merge=max_merge)
        assert aggregated[0][1] == "2"  # max(2, 1)

    def test_sum_merge_is_default(self):
        assert sum_merge([1.0, 2.0, 3.0]) == 6.0
        assert max_merge([1.0, 2.0, 3.0]) == 3.0

    def test_custom_discretiser(self, location_hierarchy, store_path):
        level = PathLevel(
            LocationView.leaf_view(location_hierarchy), DURATION_VALUE
        )
        bucketed = aggregate_path(
            store_path,
            level,
            discretiser=lambda d: "long" if d >= 3 else "short",
        )
        assert [d for _, d in bucketed] == [
            "short",
            "short",
            "long",
            "long",
            "short",
        ]


class TestHelpers:
    def test_default_discretiser_integers(self):
        assert default_discretiser(5.0) == "5"
        assert default_discretiser(1.5) == "1.5"

    def test_aggregate_locations(self, location_hierarchy, store_path):
        level = transportation_view(location_hierarchy)
        assert aggregate_locations(store_path, level) == (
            "dist center",
            "truck",
            "store",
        )

    def test_no_merge_when_locations_alternate(self, location_hierarchy):
        # shelf -> truck -> shelf must NOT merge the two shelf stages.
        path = Path([("shelf", 1), ("truck", 2), ("shelf", 3)])
        level = PathLevel(
            LocationView.leaf_view(location_hierarchy), DURATION_VALUE
        )
        aggregated = aggregate_path(path, level)
        assert [loc for loc, _ in aggregated] == ["shelf", "truck", "shelf"]
