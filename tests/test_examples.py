"""Smoke tests: every example script runs to completion.

Examples are documentation that executes; these tests keep them honest.
The slower scenario scripts are trimmed via environment-free subprocess
runs — they are deterministic, so asserting on key output lines is safe.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: float = 600.0) -> str:
    process = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert process.returncode == 0, process.stderr
    return process.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "Figure 3" in out
    assert "Figure 4" in out
    assert "Most typical complete paths" in out
    assert "factory" in out


@pytest.mark.slow
def test_retail_flow_analysis():
    out = run_example("retail_flow_analysis.py")
    assert "Typical paths" in out
    assert "Redundancy compression" in out
    assert "non-redundant" in out


def test_rfid_etl_pipeline():
    out = run_example("rfid_etl_pipeline.py")
    assert "Location sequences recovered exactly: 400/400" in out
    assert "similarity" in out


@pytest.mark.slow
def test_algorithm_comparison():
    out = run_example("algorithm_comparison.py")
    assert "All three algorithms agree on cells and segments: True" in out
    assert "shared" in out and "basic" in out


@pytest.mark.slow
def test_historic_comparison():
    out = run_example("historic_comparison.py")
    assert "Analyst report" in out
    assert "PDFA" in out
