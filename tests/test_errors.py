"""Tests for the exception hierarchy (repro.errors)."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.HierarchyError,
            errors.UnknownConceptError,
            errors.LevelError,
            errors.PathDatabaseError,
            errors.EncodingError,
            errors.MiningError,
            errors.CubeError,
            errors.QueryError,
            errors.GenerationError,
            errors.CleaningError,
        ],
    )
    def test_all_derive_from_flowcube_error(self, exc):
        assert issubclass(exc, errors.FlowCubeError)

    def test_unknown_concept_message(self):
        exc = errors.UnknownConceptError("socks", "product")
        assert "socks" in str(exc)
        assert "product" in str(exc)
        assert exc.concept == "socks"

    def test_unknown_concept_without_hierarchy_name(self):
        exc = errors.UnknownConceptError("socks")
        assert "socks" in str(exc)

    def test_level_error_is_hierarchy_error(self):
        assert issubclass(errors.LevelError, errors.HierarchyError)

    def test_catching_the_family(self):
        from repro.core import example_path_database

        db = example_path_database()
        with pytest.raises(errors.FlowCubeError):
            db[999]  # PathDatabaseError is a FlowCubeError
