"""Tests for PDFA induction and PDFA-based flowgraph similarity."""

import math

import pytest

from repro.core import FlowGraph
from repro.errors import FlowCubeError
from repro.pdfa import (
    PDFA,
    alergia,
    flowgraph_pdfa_similarity,
    flowgraph_to_pdfa,
    hoeffding_compatible,
    pdfa_similarity,
    prefix_tree_acceptor,
    string_distribution_distance,
)

AB_STRINGS = [("a", "b")] * 6 + [("a", "c")] * 4
LOOP_STRINGS = (
    [("x",)] * 8 + [("x", "x")] * 4 + [("x", "x", "x")] * 2 + [("x", "x", "x", "x")]
)


class TestAutomaton:
    def test_pta_counts(self):
        pta = prefix_tree_acceptor(AB_STRINGS)
        assert pta.state_counts[pta.start] == 10
        dist = pta.out_distribution(pta.start)
        assert dist["a"] == pytest.approx(1.0)

    def test_string_probability_matches_empirical(self):
        pta = prefix_tree_acceptor(AB_STRINGS)
        assert pta.string_probability(("a", "b")) == pytest.approx(0.6)
        assert pta.string_probability(("a", "c")) == pytest.approx(0.4)
        assert pta.string_probability(("a",)) == 0.0
        assert pta.string_probability(("z",)) == 0.0

    def test_enumerate_strings_is_the_distribution(self):
        pta = prefix_tree_acceptor(AB_STRINGS)
        dist = dict(pta.enumerate_strings(1e-9))
        assert dist == {
            ("a", "b"): pytest.approx(0.6),
            ("a", "c"): pytest.approx(0.4),
        }

    def test_enumerate_requires_positive_floor(self):
        pta = prefix_tree_acceptor(AB_STRINGS)
        with pytest.raises(FlowCubeError):
            list(pta.enumerate_strings(0))

    def test_weighted_add(self):
        pdfa = PDFA()
        pdfa.add_string(("a",), count=5)
        assert pdfa.termination_counts[pdfa.delta[0]["a"]] == 5

    def test_states_reachability(self):
        pta = prefix_tree_acceptor(AB_STRINGS)
        assert pta.n_states() == 4  # start, a, ab, ac


class TestHoeffding:
    def test_identical_frequencies_compatible(self):
        assert hoeffding_compatible(5, 10, 50, 100, alpha=0.05)

    def test_clear_difference_incompatible(self):
        assert not hoeffding_compatible(0, 1000, 1000, 1000, alpha=0.05)

    def test_small_samples_forgiving(self):
        # With 2 observations each, even opposite frequencies pass.
        assert hoeffding_compatible(0, 2, 2, 2, alpha=0.05)

    def test_zero_samples_compatible(self):
        assert hoeffding_compatible(0, 0, 7, 10, alpha=0.05)


class TestAlergia:
    def test_validates_arguments(self):
        with pytest.raises(FlowCubeError):
            alergia()
        with pytest.raises(FlowCubeError):
            alergia(strings=[("a",)], pta=PDFA())
        with pytest.raises(FlowCubeError):
            alergia(strings=[("a",)], alpha=2.0)

    def test_merging_reduces_states(self):
        pta_size = prefix_tree_acceptor(LOOP_STRINGS).n_states()
        merged = alergia(strings=LOOP_STRINGS, alpha=0.05)
        assert merged.n_states() < pta_size

    def test_loop_structure_recovered(self):
        """A geometric self-loop process should collapse to few states."""
        merged = alergia(strings=LOOP_STRINGS, alpha=0.05)
        assert merged.n_states() <= 3

    def test_merged_model_still_generates_training_strings(self):
        """Aggressive merging fits a loop model: it may redistribute mass
        (the geometric fit differs from the empirical frequencies) but
        every training string keeps positive probability, and longer
        strings never become more likely than shorter ones here."""
        merged = alergia(strings=LOOP_STRINGS, alpha=0.05)
        p1 = merged.string_probability(("x",))
        p2 = merged.string_probability(("x", "x"))
        p3 = merged.string_probability(("x", "x", "x"))
        assert p1 > 0 and p2 > 0 and p3 > 0
        assert p1 >= p2 >= p3

    def test_strict_alpha_preserves_distribution(self):
        """With a strict bound (alpha → 1) small-sample states don't
        merge and the empirical distribution survives exactly."""
        merged = alergia(strings=AB_STRINGS, alpha=0.99)
        assert merged.string_probability(("a", "b")) == pytest.approx(0.6)
        assert merged.string_probability(("a", "c")) == pytest.approx(0.4)

    def test_distinct_behaviours_not_merged(self):
        # 'a' always continues with 'b'; 'z' always terminates: the states
        # after the first symbol must stay distinct.
        strings = [("a", "b")] * 30 + [("z",)] * 30
        merged = alergia(strings=strings, alpha=0.05)
        assert merged.string_probability(("a", "b")) == pytest.approx(0.5)
        assert merged.string_probability(("z",)) == pytest.approx(0.5)
        assert merged.string_probability(("a",)) == pytest.approx(0.0)

    def test_total_mass_preserved(self):
        merged = alergia(strings=LOOP_STRINGS, alpha=0.05)
        total = sum(p for _, p in merged.enumerate_strings(1e-7))
        assert total == pytest.approx(1.0, abs=0.01)


class TestDistance:
    def test_identical_distance_zero(self):
        a = prefix_tree_acceptor(AB_STRINGS)
        b = prefix_tree_acceptor(AB_STRINGS)
        assert string_distribution_distance(a, b) == pytest.approx(0.0)
        assert pdfa_similarity(a, b) == pytest.approx(1.0)

    def test_disjoint_distance_one(self):
        a = prefix_tree_acceptor([("a",)] * 5)
        b = prefix_tree_acceptor([("b",)] * 5)
        assert string_distribution_distance(a, b) == pytest.approx(1.0)
        assert pdfa_similarity(a, b) == pytest.approx(0.0)

    def test_partial_overlap(self):
        a = prefix_tree_acceptor([("a",)] * 5 + [("b",)] * 5)
        b = prefix_tree_acceptor([("a",)] * 10)
        assert string_distribution_distance(a, b) == pytest.approx(0.5)


class TestFlowgraphBridge:
    PATHS_A = [(("f", "1"), ("w", "2"))] * 6 + [(("f", "1"), ("s", "2"))] * 4
    PATHS_B = [(("f", "1"), ("w", "2"))] * 4 + [(("f", "1"), ("s", "2"))] * 6

    def test_flowgraph_to_pdfa_matches_route_distribution(self):
        pdfa = flowgraph_to_pdfa(self.PATHS_A)
        assert pdfa.string_probability(("f", "w")) == pytest.approx(0.6)

    def test_identical_graphs_similar(self):
        g1 = FlowGraph(self.PATHS_A)
        g2 = FlowGraph(list(self.PATHS_A))
        assert flowgraph_pdfa_similarity(g1, g2) == pytest.approx(1.0)

    def test_shifted_graphs_less_similar(self):
        g1 = FlowGraph(self.PATHS_A)
        g2 = FlowGraph(self.PATHS_B)
        similarity = flowgraph_pdfa_similarity(g1, g2)
        assert 0.5 < similarity < 1.0

    def test_usable_as_redundancy_metric(self, paper_db):
        from repro.core import FlowCube, prune_redundant

        cube = FlowCube.build(paper_db, min_support=2, compute_exceptions=False)
        marked = prune_redundant(
            cube, threshold=0.95, metric=flowgraph_pdfa_similarity
        )
        assert marked >= 0  # runs end to end as a drop-in φ
