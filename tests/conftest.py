"""Shared fixtures: the paper's running example and small synthetic data."""

from __future__ import annotations

import pytest

from repro.core import (
    ConceptHierarchy,
    PathDatabase,
    PathLattice,
    example_path_database,
)
from repro.synth import GeneratorConfig, generate_path_database


@pytest.fixture(scope="session")
def paper_db() -> PathDatabase:
    """The eight-path database of Table 1."""
    return example_path_database()


@pytest.fixture(scope="session")
def paper_lattice(paper_db) -> PathLattice:
    """The four path abstraction levels of Section 6."""
    return PathLattice.paper_default(paper_db.schema.location)


@pytest.fixture(scope="session")
def product_hierarchy(paper_db) -> ConceptHierarchy:
    """The Figure 2 product hierarchy."""
    return paper_db.schema.dimensions[0]


@pytest.fixture(scope="session")
def location_hierarchy(paper_db) -> ConceptHierarchy:
    """The Figure 5 location hierarchy."""
    return paper_db.schema.location


@pytest.fixture(scope="session")
def small_synth_db() -> PathDatabase:
    """A small deterministic synthetic database (300 paths, 3 dims)."""
    config = GeneratorConfig(
        n_paths=300,
        n_dims=3,
        dim_fanouts=(3, 3, 4),
        n_sequences=12,
        max_path_length=6,
        seed=11,
    )
    return generate_path_database(config)


@pytest.fixture(scope="session")
def tiny_synth_db() -> PathDatabase:
    """A tiny synthetic database for the slower cross-checks (80 paths)."""
    config = GeneratorConfig(
        n_paths=80,
        n_dims=2,
        dim_fanouts=(2, 2, 3),
        n_sequences=6,
        max_path_length=5,
        seed=3,
    )
    return generate_path_database(config)
