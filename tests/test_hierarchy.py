"""Unit tests for concept hierarchies (repro.core.hierarchy)."""

import pytest

from repro.core.hierarchy import ANY, ConceptHierarchy
from repro.errors import HierarchyError, LevelError, UnknownConceptError


@pytest.fixture
def tree() -> ConceptHierarchy:
    return ConceptHierarchy.from_nested(
        "product",
        {
            "clothing": {
                "outerwear": {"shirt": {}, "jacket": {}},
                "shoes": {"tennis": {}, "sandals": {}},
            }
        },
    )


class TestConstruction:
    def test_from_edges_adds_apex(self):
        h = ConceptHierarchy.from_edges("x", [("a", "b"), ("a", "c")])
        assert h.parent("a") == ANY
        assert h.level_of("a") == 1

    def test_flat_hierarchy(self):
        h = ConceptHierarchy.flat("brand", ["nike", "adidas"])
        assert h.depth == 1
        assert set(h.leaves) == {"nike", "adidas"}

    def test_rejects_two_parents(self):
        with pytest.raises(HierarchyError, match="two parents"):
            ConceptHierarchy.from_edges("x", [("a", "c"), ("b", "c")])

    def test_rejects_cycle(self):
        with pytest.raises(HierarchyError):
            ConceptHierarchy.from_edges("x", [("a", "b"), ("b", "a")])

    def test_rejects_empty(self):
        with pytest.raises(HierarchyError, match="no edges"):
            ConceptHierarchy.from_edges("x", [])

    def test_rejects_apex_as_child(self):
        with pytest.raises(HierarchyError):
            ConceptHierarchy.from_edges("x", [("a", ANY)])

    def test_many_siblings_encoded(self):
        values = [f"v{i}" for i in range(40)]
        h = ConceptHierarchy.flat("wide", values)
        codes = {h.code_of(v) for v in values}
        assert len(codes) == 40  # all distinct single characters


class TestNavigation:
    def test_levels(self, tree):
        assert tree.level_of(ANY) == 0
        assert tree.level_of("clothing") == 1
        assert tree.level_of("outerwear") == 2
        assert tree.level_of("jacket") == 3
        assert tree.depth == 3

    def test_parent_chain(self, tree):
        assert tree.parent("jacket") == "outerwear"
        assert tree.parent(ANY) is None
        assert tree.ancestors("jacket") == ("outerwear", "clothing", ANY)
        assert tree.ancestors("jacket", include_self=True)[0] == "jacket"

    def test_children(self, tree):
        assert set(tree.children("outerwear")) == {"shirt", "jacket"}
        assert tree.children("jacket") == ()

    def test_descendants(self, tree):
        descendants = tree.descendants("outerwear")
        assert set(descendants) == {"shirt", "jacket"}
        assert "outerwear" in tree.descendants("outerwear", include_self=True)

    def test_leaves(self, tree):
        assert set(tree.leaves) == {"shirt", "jacket", "tennis", "sandals"}

    def test_concepts_at_level(self, tree):
        assert set(tree.concepts_at_level(2)) == {"outerwear", "shoes"}
        with pytest.raises(LevelError):
            tree.concepts_at_level(9)

    def test_unknown_concept(self, tree):
        with pytest.raises(UnknownConceptError):
            tree.level_of("socks")


class TestRollup:
    def test_ancestor_at_level(self, tree):
        assert tree.ancestor_at_level("jacket", 2) == "outerwear"
        assert tree.ancestor_at_level("jacket", 1) == "clothing"
        assert tree.ancestor_at_level("jacket", 0) == ANY

    def test_ancestor_at_own_or_deeper_level_is_identity(self, tree):
        assert tree.ancestor_at_level("jacket", 3) == "jacket"
        assert tree.ancestor_at_level("outerwear", 3) == "outerwear"

    def test_negative_level_rejected(self, tree):
        with pytest.raises(LevelError):
            tree.ancestor_at_level("jacket", -1)

    def test_is_ancestor(self, tree):
        assert tree.is_ancestor("clothing", "jacket")
        assert tree.is_ancestor(ANY, "jacket")
        assert not tree.is_ancestor("jacket", "clothing")
        assert not tree.is_ancestor("shoes", "jacket")
        assert not tree.is_ancestor("jacket", "jacket")
        assert tree.is_ancestor("jacket", "jacket", strict=False)


class TestEncoding:
    def test_codes_are_prefix_consistent(self, tree):
        for leaf in tree.leaves:
            code = tree.code_of(leaf)
            parent_code = tree.code_of(tree.parent(leaf))
            assert code.startswith(parent_code)
            assert len(code) == len(parent_code) + 1

    def test_round_trip(self, tree):
        for concept in tree:
            assert tree.concept_for_code(tree.code_of(concept)) == concept

    def test_padded_code(self, tree):
        assert len(tree.padded_code("clothing")) == tree.depth
        assert tree.padded_code("clothing").endswith("**")

    def test_unknown_code(self, tree):
        with pytest.raises(UnknownConceptError):
            tree.concept_for_code("999")
