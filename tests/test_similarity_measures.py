"""Unit tests for similarity metrics and measure algebra (Lemmas 4.2/4.3)."""

import pytest

from repro.core import (
    FlowGraph,
    kl_divergence,
    kl_similarity,
    merge_flowgraphs,
    path_distribution_similarity,
    total_variation,
    tv_similarity,
)
from repro.core.measures import exceptions_are_mergeable


def graph_of(*paths, repeat=1):
    expanded = []
    for path in paths:
        expanded.extend([path] * repeat)
    return FlowGraph(expanded)


A = (("f", "1"), ("w", "2"))
B = (("f", "1"), ("s", "2"))
C = (("x", "3"),)


class TestDistributionDistances:
    def test_kl_zero_for_identical(self):
        p = {"a": 0.5, "b": 0.5}
        assert kl_divergence(p, dict(p)) == pytest.approx(0.0, abs=1e-9)

    def test_kl_positive_for_different(self):
        assert kl_divergence({"a": 1.0}, {"b": 1.0}) > 1.0

    def test_kl_finite_on_disjoint_support(self):
        assert kl_divergence({"a": 1.0}, {"b": 1.0}) < float("inf")

    def test_kl_empty(self):
        assert kl_divergence({}, {}) == 0.0

    def test_total_variation_bounds(self):
        assert total_variation({"a": 1.0}, {"b": 1.0}) == pytest.approx(1.0)
        assert total_variation({"a": 1.0}, {"a": 1.0}) == 0.0
        assert total_variation({"a": 0.5, "b": 0.5}, {"a": 1.0}) == pytest.approx(0.5)


class TestFlowgraphSimilarity:
    @pytest.mark.parametrize(
        "metric", [kl_similarity, tv_similarity, path_distribution_similarity]
    )
    def test_identical_graphs_score_near_one(self, metric):
        g1 = graph_of(A, B, repeat=10)
        g2 = graph_of(A, B, repeat=10)
        assert metric(g1, g2) == pytest.approx(1.0, abs=0.02)

    @pytest.mark.parametrize(
        "metric", [kl_similarity, tv_similarity, path_distribution_similarity]
    )
    def test_disjoint_graphs_score_near_zero(self, metric):
        g1 = graph_of(A, repeat=10)
        g2 = graph_of(C, repeat=10)
        assert metric(g1, g2) < 0.2

    @pytest.mark.parametrize("metric", [kl_similarity, tv_similarity])
    def test_similarity_decreases_with_divergence(self, metric):
        base = graph_of(A, A, A, B)          # 75/25 split
        close = graph_of(A, A, A, B)
        far = graph_of(A, B, B, B)           # 25/75 split
        assert metric(base, close) > metric(base, far)

    @pytest.mark.parametrize("metric", [kl_similarity, tv_similarity])
    def test_symmetric_enough(self, metric):
        g1 = graph_of(A, A, B)
        g2 = graph_of(A, B, B)
        assert metric(g1, g2) == pytest.approx(metric(g2, g1), abs=1e-9)


class TestAlgebraicMerge:
    def test_merge_equals_direct_build(self):
        part1 = [A, A, B]
        part2 = [A, C, C]
        merged = merge_flowgraphs([FlowGraph(part1), FlowGraph(part2)])
        direct = FlowGraph(part1 + part2)
        assert merged.n_paths == direct.n_paths
        assert {n.prefix for n in merged.nodes()} == {
            n.prefix for n in direct.nodes()
        }
        for node in direct.nodes():
            other = merged.node(node.prefix)
            assert other.count == node.count
            assert other.duration_counts == node.duration_counts
            assert other.transition_counts == node.transition_counts

    def test_merge_is_nondestructive(self):
        g1 = FlowGraph([A])
        g2 = FlowGraph([B])
        merge_flowgraphs([g1, g2])
        assert g1.n_paths == 1 and g2.n_paths == 1

    def test_merge_of_nothing(self):
        merged = merge_flowgraphs([])
        assert merged.n_paths == 0
        assert len(merged) == 0

    def test_merged_children_linked(self):
        merged = merge_flowgraphs([FlowGraph([A]), FlowGraph([B])])
        factory = merged.node(("f",))
        assert set(factory.children) == {"w", "s"}


class TestHolisticLemma:
    def test_exceptions_not_mergeable_counterexample(self):
        """Lemma 4.3: union-frequent segments can be part-infrequent.

        The segment (f,1) appears twice in each part (infrequent at δ=3)
        but four times in the union (frequent).
        """
        part1 = [A, A, C, C, C]
        part2 = [A, A, C, C, C]
        assert not exceptions_are_mergeable([part1, part2], min_support=3)

    def test_mergeable_when_parts_agree(self):
        part1 = [A, A, A]
        part2 = [A, A, A]
        assert exceptions_are_mergeable([part1, part2], min_support=3)
