"""Tests for the analyst report generator (repro.query.report)."""

import pytest

from repro.core import FlowCube, example_path_database
from repro.query import FlowCubeQuery, flow_report


@pytest.fixture(scope="module")
def cube():
    return FlowCube.build(
        example_path_database(), min_support=2, min_deviation=0.1
    )


@pytest.fixture(scope="module")
def query(cube):
    return FlowCubeQuery(cube)


class TestFlowReport:
    def test_sections_present(self, query):
        cell = query.cell()
        text = flow_report(cell)
        assert "[1] Typical paths" in text
        assert "[1b] Lead-time outliers" in text
        assert "[2] Exceptions" in text
        assert "[3]" not in text  # no baseline supplied

    def test_typical_paths_listed(self, query):
        text = flow_report(query.cell())
        assert "factory → dist center → truck → shelf → checkout" in text

    def test_exceptions_listed(self, query):
        cell = query.cell()
        text = flow_report(cell)
        if cell.flowgraph.exceptions:
            assert "exception at" in text
        else:
            assert "none above" in text

    def test_exception_overflow_summarised(self, query):
        cell = query.cell()
        text = flow_report(cell, top_k=1)
        if len(cell.flowgraph.exceptions) > 2:
            assert "more" in text

    def test_baseline_section(self, query):
        cell = query.cell(product="shoes")
        baseline = query.flowgraph(product="clothing")
        text = flow_report(cell, baseline=baseline)
        assert "[3] Largest shifts vs baseline" in text
        assert "Δ" in text

    def test_star_duration_level_skips_outliers(self, query, cube):
        star_level = cube.path_lattice[1]  # durations at '*'
        cell = query.cell(path_level=star_level)
        text = flow_report(cell)
        assert "[1b]" not in text or "unavailable" not in text
        # With '*' durations there is no numeric section at all.
        assert "z=" not in text

    def test_compacted_cube_degrades_gracefully(self):
        cube = FlowCube.build(example_path_database(), min_support=2)
        cube.compact()
        cell = FlowCubeQuery(cube).cell()
        text = flow_report(cell)
        assert "unavailable (cube was compacted)" in text
