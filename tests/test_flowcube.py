"""Unit + integration tests for flowcube construction (repro.core.flowcube)."""

import pytest

from repro.core import (
    FlowCube,
    ItemLevel,
    PathLattice,
    example_path_database,
)
from repro.errors import CubeError


@pytest.fixture(scope="module")
def cube(paper_db_module, paper_lattice_module):
    return FlowCube.build(
        paper_db_module,
        path_lattice=paper_lattice_module,
        min_support=2,
    )


@pytest.fixture(scope="module")
def paper_db_module():
    return example_path_database()


@pytest.fixture(scope="module")
def paper_lattice_module(paper_db_module):
    return PathLattice.paper_default(paper_db_module.schema.location)


class TestBuild:
    def test_cuboid_count(self, cube, paper_db_module, paper_lattice_module):
        # Item lattice: product depth 3, brand depth 1 -> 4*2=8 item levels;
        # times 4 path levels = 32 cuboids.
        assert len(cube.cuboids) == 8 * len(paper_lattice_module)

    def test_iceberg_prunes_rare_cells(self, cube, paper_lattice_module):
        # (shirt, *) holds a single path: below δ=2, not materialised.
        level = ItemLevel((3, 0))
        cuboid = cube.cuboid(level, paper_lattice_module[0])
        assert ("shirt", "*") not in cuboid
        assert ("tennis", "*") in cuboid  # 4 paths

    def test_table2_cells(self, cube, paper_lattice_module):
        # Table 2's aggregation: product at type level, brand at leaf.
        level = ItemLevel((2, 1))
        cuboid = cube.cuboid(level, paper_lattice_module[0])
        assert cuboid.cell(("shoes", "nike")).record_ids == (1, 2, 3)
        assert cuboid.cell(("shoes", "adidas")).record_ids == (7, 8)
        assert cuboid.cell(("outerwear", "nike")).record_ids == (4, 5, 6)

    def test_figure4_flowgraph(self, cube, paper_lattice_module):
        cell = cube.cell(
            ItemLevel((2, 1)), ("outerwear", "nike"), paper_lattice_module[0]
        )
        truck = cell.flowgraph.node(("factory", "truck"))
        dist = truck.transition_distribution()
        assert dist["shelf"] == pytest.approx(2 / 3)
        assert dist["warehouse"] == pytest.approx(1 / 3)

    def test_apex_cell_holds_everything(self, cube, paper_lattice_module):
        apex = cube.cell(ItemLevel((0, 0)), ("*", "*"), paper_lattice_module[0])
        assert apex.n_paths == 8

    def test_missing_cell_raises(self, cube, paper_lattice_module):
        with pytest.raises(CubeError, match="not materialised"):
            cube.cell(ItemLevel((3, 0)), ("shirt", "*"), paper_lattice_module[0])

    def test_missing_cuboid_raises(self, cube, paper_lattice_module):
        with pytest.raises(CubeError):
            cube.cuboid(ItemLevel((9, 9)), paper_lattice_module[0])

    def test_invalid_item_level_rejected(self, paper_db_module):
        with pytest.raises(CubeError, match="outside the lattice"):
            FlowCube.build(
                paper_db_module, item_levels=[ItemLevel((9, 9))], min_support=2
            )

    def test_partial_materialisation(self, paper_db_module, paper_lattice_module):
        partial = FlowCube.build(
            paper_db_module,
            path_lattice=paper_lattice_module,
            item_levels=[ItemLevel((0, 0)), ItemLevel((1, 1))],
            min_support=2,
        )
        assert len(partial.cuboids) == 2 * len(paper_lattice_module)
        assert not partial.has_cuboid(ItemLevel((2, 1)), paper_lattice_module[0])

    def test_exceptions_optional(self, paper_db_module):
        bare = FlowCube.build(paper_db_module, min_support=2,
                              compute_exceptions=False)
        assert all(not c.flowgraph.exceptions for c in bare.cells())


class TestParents:
    def test_parent_cells(self, cube, paper_lattice_module):
        cell = cube.cell(
            ItemLevel((2, 1)), ("outerwear", "nike"), paper_lattice_module[0]
        )
        parents = cube.parent_cells(cell)
        keys = {(p.item_level.levels, p.key) for p in parents}
        assert ((1, 1), ("clothing", "nike")) in keys
        assert ((2, 0), ("outerwear", "*")) in keys

    def test_apex_has_no_parents(self, cube, paper_lattice_module):
        apex = cube.cell(ItemLevel((0, 0)), ("*", "*"), paper_lattice_module[0])
        assert cube.parent_cells(apex) == []


class TestMaintenance:
    def test_compact_drops_paths(self, paper_db_module):
        cube = FlowCube.build(paper_db_module, min_support=2)
        assert any(cell.paths for cell in cube.cells())
        cube.compact()
        assert all(not cell.paths for cell in cube.cells())

    def test_describe(self, cube):
        stats = cube.describe()
        assert stats["paths"] == 8
        assert stats["cells"] == cube.n_cells()
        assert stats["cuboids"] == len(cube.cuboids)


class TestSharedSegmentsIntegration:
    def test_build_with_shared_segments_matches_local_mining(
        self, paper_db_module, paper_lattice_module
    ):
        """Exceptions computed from Shared's output match local mining."""
        from repro.mining import shared_mine

        result = shared_mine(
            paper_db_module, path_lattice=paper_lattice_module, min_support=2
        )
        via_shared = FlowCube.build(
            paper_db_module,
            path_lattice=paper_lattice_module,
            min_support=2,
            segments_by_cell=result.segments_by_cell(),
        )
        local = FlowCube.build(
            paper_db_module, path_lattice=paper_lattice_module, min_support=2
        )
        for cell in local.cells():
            other = via_shared.cell(cell.item_level, cell.key, cell.path_level)
            assert set(map(str, other.flowgraph.exceptions)) == set(
                map(str, cell.flowgraph.exceptions)
            ), f"exception mismatch in cell {cell.key}"
