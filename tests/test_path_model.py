"""Unit tests for stages, paths, records, and the path database."""

import pytest

from repro.core import Path, PathDatabase, PathRecord, Stage
from repro.core.stage import RawReading, StageRecord
from repro.errors import PathDatabaseError


class TestStage:
    def test_basic(self):
        stage = Stage("factory", 10)
        assert stage.location == "factory"
        assert str(stage) == "(factory, 10)"

    def test_fractional_duration_str(self):
        assert str(Stage("truck", 1.5)) == "(truck, 1.5)"

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError, match="negative duration"):
            Stage("factory", -1)

    def test_stage_record_duration(self):
        record = StageRecord("shelf", 3.0, 8.0)
        assert record.duration == 5.0
        assert record.to_stage() == Stage("shelf", 5.0)

    def test_stage_record_bad_interval(self):
        with pytest.raises(ValueError, match="ends before"):
            StageRecord("shelf", 8.0, 3.0)

    def test_raw_reading_ordering(self):
        reads = [
            RawReading("b", 1.0, "x"),
            RawReading("a", 2.0, "x"),
            RawReading("a", 1.0, "y"),
        ]
        ordered = sorted(reads)
        assert [r.epc for r in ordered] == ["a", "a", "b"]
        assert ordered[0].time == 1.0


class TestPath:
    def test_from_tuples(self):
        path = Path([("f", 1), ("t", 2)])
        assert len(path) == 2
        assert path.locations == ("f", "t")
        assert path.durations == (1, 2)
        assert path.total_duration == 3

    def test_prefix(self):
        path = Path([("f", 1), ("t", 2), ("s", 3)])
        assert path.prefix(2).locations == ("f", "t")
        assert path.location_prefix(1) == ("f",)

    def test_indexing_and_iteration(self):
        path = Path([Stage("f", 1), Stage("t", 2)])
        assert path[1] == Stage("t", 2)
        assert [s.location for s in path] == ["f", "t"]

    def test_str(self):
        assert str(Path([("f", 1), ("t", 2)])) == "(f, 1)(t, 2)"


class TestPathRecord:
    def test_dims_access(self):
        record = PathRecord(1, ("tennis", "nike"), [("f", 1)])
        assert record.dim(0) == "tennis"
        assert record.dim(1) == "nike"
        with pytest.raises(PathDatabaseError):
            record.dim(2)

    def test_empty_path_rejected(self):
        with pytest.raises(PathDatabaseError, match="empty path"):
            PathRecord(1, ("tennis",), [])


class TestPathDatabase:
    def test_paper_example_shape(self, paper_db):
        assert len(paper_db) == 8
        assert paper_db.schema.dimension_names == ("product", "brand")
        assert paper_db.max_path_length() == 5
        assert len(paper_db.distinct_location_sequences()) == 5

    def test_lookup_by_id(self, paper_db):
        record = paper_db[4]
        assert record.dims == ("shirt", "nike")
        with pytest.raises(PathDatabaseError):
            paper_db[99]

    def test_validation_rejects_bad_dim_count(self, paper_db):
        bad = PathRecord(9, ("tennis",), [("factory", 1)])
        with pytest.raises(PathDatabaseError, match="dimension values"):
            PathDatabase(paper_db.schema, [bad])

    def test_validation_rejects_unknown_value(self, paper_db):
        bad = PathRecord(9, ("socks", "nike"), [("factory", 1)])
        with pytest.raises(PathDatabaseError, match="socks"):
            PathDatabase(paper_db.schema, [bad])

    def test_validation_rejects_unknown_location(self, paper_db):
        bad = PathRecord(9, ("tennis", "nike"), [("moon", 1)])
        with pytest.raises(PathDatabaseError, match="moon"):
            PathDatabase(paper_db.schema, [bad])

    def test_validation_can_be_skipped(self, paper_db):
        bad = PathRecord(9, ("socks", "nike"), [("factory", 1)])
        db = PathDatabase(paper_db.schema, [bad], validate=False)
        assert len(db) == 1

    def test_csv_round_trip(self, paper_db):
        text = paper_db.to_csv()
        restored = PathDatabase.from_csv(paper_db.schema, text)
        assert len(restored) == len(paper_db)
        for original, loaded in zip(paper_db, restored):
            assert original.dims == loaded.dims
            assert original.path.locations == loaded.path.locations
            assert original.path.durations == loaded.path.durations

    def test_csv_rejects_bad_header(self, paper_db):
        with pytest.raises(PathDatabaseError, match="bad CSV header"):
            PathDatabase.from_csv(paper_db.schema, "nope\n1,2,3\n")

    def test_describe(self, paper_db):
        stats = paper_db.describe()
        assert stats["records"] == 8
        assert stats["dimensions"] == 2
        assert stats["avg_path_length"] == pytest.approx(4.375)
