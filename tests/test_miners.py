"""Tests for the three flowcube miners: Shared, Basic, Cubing (and BUC).

The central correctness property: all three find exactly the same frequent
cells and frequent path segments; they differ only in *how* (and how fast).
"""

import pytest

from repro.core import ItemLevel, PathLattice
from repro.encoding import DimItem, StageItem, TransactionDatabase
from repro.mining import (
    basic_mine,
    buc_iceberg_cells,
    cubing_mine,
    shared_mine,
    shared_pair_filter,
    top_path_level_id,
)
from repro.errors import MiningError


@pytest.fixture(scope="module")
def shared_result(request):
    from repro.core import example_path_database

    return shared_mine(example_path_database(), min_support=3)


class TestSharedOnPaperExample:
    def test_table4_length1_supports(self, shared_result, product_hierarchy):
        """Table 4's length-1 rows, with supports recomputed from Table 1.

        Table 4 as printed is partially inconsistent with Table 1 (it lists
        {121} tennis at support 5, but tennis appears in records 1, 2, 7, 8
        only); we assert the values derivable from Table 1: tennis 4,
        shoes 5 (matching the printed {12*}: 5), (f,10) 5, (f,*) 8.
        See EXPERIMENTS.md for the full reconciliation.
        """
        supports = shared_result.supports
        tennis = DimItem(0, product_hierarchy.code_of("tennis"))
        shoes = DimItem(0, product_hierarchy.code_of("shoes"))
        assert supports[frozenset([tennis])] == 4
        assert supports[frozenset([shoes])] == 5
        assert supports[frozenset([StageItem(0, ("factory",), "10")])] == 5
        assert supports[frozenset([StageItem(1, ("factory",), "*")])] == 8

    def test_table4_length2_supports(self, shared_result, product_hierarchy):
        """Table 4's length-2 rows, recomputed from Table 1.

        {(f,5)(fd,2)}: 3 matches the printed table (records 2, 7, 8);
        {12*,211} shoes∧nike: 3 matches; nike∧(f,10) is 5 from Table 1
        (records 1, 3, 4, 5, 6) where the printed table says 4.
        """
        supports = shared_result.supports
        nike = DimItem(1, "1")
        f10 = StageItem(0, ("factory",), "10")
        assert supports[frozenset([nike, f10])] == 5
        shoes = DimItem(0, product_hierarchy.code_of("shoes"))
        assert supports[frozenset([shoes, nike])] == 3
        f5 = StageItem(0, ("factory",), "5")
        fd2 = StageItem(0, ("factory", "dist center"), "2")
        assert supports[frozenset([f5, fd2])] == 3
        f_star = StageItem(1, ("factory",), "*")
        fd_star = StageItem(1, ("factory", "dist center"), "*")
        assert supports[frozenset([f_star, fd_star])] == 5

    def test_frequent_cells_decoded(self, shared_result):
        cells = shared_result.frequent_cells()
        assert cells[(ItemLevel((3, 0)), ("tennis", "*"))] == 4
        assert cells[(ItemLevel((2, 1)), ("shoes", "nike"))] == 3
        assert cells[(ItemLevel((0, 0)), ("*", "*"))] == 8

    def test_no_apex_items_counted(self, shared_result):
        for itemset in shared_result.supports:
            for item in itemset:
                if isinstance(item, DimItem):
                    assert item.code != "*"

    def test_no_ancestor_pairs_in_itemsets(self, shared_result):
        """Pruning rule 4: an itemset never holds an item and its ancestor."""
        for itemset in shared_result.supports:
            dims = [i for i in itemset if isinstance(i, DimItem)]
            for a in dims:
                for b in dims:
                    if a is not b:
                        assert not a.is_ancestor_of(b)
            stages = [i for i in itemset if isinstance(i, StageItem)]
            assert len({s.level_id for s in stages}) <= 1

    def test_stage_itemsets_are_nested_chains(self, shared_result):
        for itemset in shared_result.supports:
            stages = sorted(
                (i for i in itemset if isinstance(i, StageItem)),
                key=lambda s: len(s.prefix),
            )
            for a, b in zip(stages, stages[1:]):
                assert b.prefix[: len(a.prefix)] == a.prefix


class TestPairFilter:
    def test_same_dimension_rejected(self):
        assert not shared_pair_filter(DimItem(0, "1"), DimItem(0, "12"))
        assert shared_pair_filter(DimItem(0, "1"), DimItem(1, "1"))

    def test_stage_rules_delegated(self):
        a = StageItem(0, ("f",), "1")
        b = StageItem(0, ("f", "d"), "2")
        unrelated = StageItem(0, ("x",), "1")
        assert shared_pair_filter(a, b)
        assert not shared_pair_filter(b, unrelated)

    def test_mixed_kinds_allowed(self):
        assert shared_pair_filter(DimItem(0, "1"), StageItem(0, ("f",), "1"))


class TestTopPathLevel:
    def test_paper_lattice_has_top(self, paper_lattice):
        top = top_path_level_id(paper_lattice)
        assert top is not None
        level = paper_lattice[top]
        assert all(level.is_higher_or_equal(other) for other in paper_lattice)

    def test_lattice_without_top(self, location_hierarchy):
        from repro.core import (
            DURATION_ANY,
            DURATION_VALUE,
            LocationView,
            PathLevel,
        )

        fine = LocationView.leaf_view(location_hierarchy)
        coarse = LocationView.level_view(location_hierarchy, 1)
        incomparable = PathLattice(
            [PathLevel(fine, DURATION_ANY), PathLevel(coarse, DURATION_VALUE)]
        )
        assert top_path_level_id(incomparable) is None


class TestAgreement:
    """Shared ≡ Cubing ≡ Basic (restricted to well-formed itemsets)."""

    @pytest.mark.parametrize("min_support", [2, 3, 5])
    def test_shared_equals_cubing_on_paper_example(self, paper_db, min_support):
        shared = shared_mine(paper_db, min_support=min_support)
        cubing = cubing_mine(paper_db, min_support=min_support)
        assert shared.frequent_cells() == cubing.frequent_cells()
        assert shared.frequent_segments() == cubing.frequent_segments()

    def test_shared_equals_cubing_on_synthetic(self, tiny_synth_db):
        shared = shared_mine(tiny_synth_db, min_support=0.05)
        cubing = cubing_mine(tiny_synth_db, min_support=0.05)
        assert shared.frequent_cells() == cubing.frequent_cells()
        assert shared.frequent_segments() == cubing.frequent_segments()

    def test_cubing_fpgrowth_matches_apriori(self, tiny_synth_db):
        apriori_result = cubing_mine(tiny_synth_db, min_support=0.05)
        fp_result = cubing_mine(tiny_synth_db, min_support=0.05, miner="fpgrowth")
        assert apriori_result.supports == fp_result.supports

    def test_basic_is_superset_of_shared(self, paper_db):
        shared = shared_mine(paper_db, min_support=3)
        basic = basic_mine(paper_db, min_support=3)
        missing = [
            s for s in shared.supports
            if basic.supports.get(s) != shared.supports[s]
        ]
        assert missing == []
        assert len(basic.supports) > len(shared.supports)

    def test_basic_decodes_to_same_cells_and_segments(self, paper_db):
        shared = shared_mine(paper_db, min_support=3)
        basic = basic_mine(paper_db, min_support=3)
        assert shared.frequent_cells() == basic.frequent_cells()
        assert shared.frequent_segments() == basic.frequent_segments()

    def test_precounting_changes_nothing(self, tiny_synth_db):
        with_precount = shared_mine(
            tiny_synth_db, min_support=0.05, precount_lengths=(2,)
        )
        without = shared_mine(tiny_synth_db, min_support=0.05, precount_lengths=())
        assert with_precount.supports == without.supports


class TestStats:
    def test_shared_prunes_more_than_basic_counts(self, paper_db):
        shared = shared_mine(paper_db, min_support=3)
        basic = basic_mine(paper_db, min_support=3)
        assert shared.stats.total_candidates < basic.stats.total_candidates
        assert shared.stats.max_length <= basic.stats.max_length

    def test_pruning_counters_populated(self, paper_db):
        shared = shared_mine(paper_db, min_support=3)
        assert shared.stats.pruned["unlinkable"] > 0

    def test_basic_truncation_flagged(self, small_synth_db):
        result = basic_mine(small_synth_db, min_support=0.01, candidate_limit=10)
        assert result.stats.pruned["truncated"] > 0

    def test_stats_rows(self, paper_db):
        shared = shared_mine(paper_db, min_support=3)
        rows = shared.stats.as_rows()
        assert rows[0][0] == 1
        assert all(candidates >= frequent for _, candidates, frequent in rows)


class TestBUC:
    def test_cells_match_direct_grouping(self, paper_db):
        cells = {
            (level, key): set(ids)
            for level, key, ids in buc_iceberg_cells(paper_db, min_support=2)
        }
        assert cells[(ItemLevel((0, 0)), ("*", "*"))] == set(range(1, 9))
        assert cells[(ItemLevel((2, 1)), ("shoes", "nike"))] == {1, 2, 3}
        assert (ItemLevel((3, 0)), ("shirt", "*")) not in cells

    def test_no_duplicate_cells(self, small_synth_db):
        seen = set()
        for level, key, _ in buc_iceberg_cells(small_synth_db, min_support=0.02):
            assert (level, key) not in seen
            seen.add((level, key))

    def test_threshold_above_database_yields_nothing(self, paper_db):
        assert list(buc_iceberg_cells(paper_db, min_support=9)) == []

    def test_iceberg_counts_respect_threshold(self, small_synth_db):
        for _, _, ids in buc_iceberg_cells(small_synth_db, min_support=0.03):
            assert len(ids) >= 9  # ceil(0.03 * 300)


class TestCubingOptions:
    def test_unknown_miner_rejected(self, paper_db):
        with pytest.raises(MiningError, match="unknown per-cell miner"):
            cubing_mine(paper_db, miner="magic")

    def test_max_length_bounds_total_pattern(self, paper_db):
        bounded = cubing_mine(paper_db, min_support=3, max_length=2)
        assert all(len(s) <= 2 for s in bounded.supports)

    def test_transaction_db_reuse(self, paper_db, paper_lattice):
        tdb = TransactionDatabase(paper_db, paper_lattice)
        fresh = shared_mine(paper_db, path_lattice=paper_lattice, min_support=3)
        reused = shared_mine(
            paper_db,
            path_lattice=paper_lattice,
            min_support=3,
            transaction_db=tdb,
        )
        assert fresh.supports == reused.supports
