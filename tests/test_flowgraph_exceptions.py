"""Unit tests for flowgraph exception mining (ε/δ deviations)."""

import pytest

from repro.core import FlowGraph, mine_exceptions, mine_frequent_segments
from repro.core.flowgraph_exceptions import (
    _satisfies,
    resolve_min_support,
)


def make_paths(spec: list[tuple[tuple[tuple[str, str], ...], int]]):
    """Expand (path, multiplicity) specs into a flat path list."""
    out = []
    for path, count in spec:
        out.extend([path] * count)
    return out


@pytest.fixture
def conditional_paths():
    """Paths engineered so a long factory stay changes downstream behaviour.

    Short factory stay (duration 1): next location splits 50/50 between
    warehouse and store.  Long stay (duration 9): always warehouse.
    """
    return make_paths(
        [
            (((("f"), "1"), (("w"), "2")), 10),
            ((("f", "1"), ("s", "2")), 10),
            ((("f", "9"), ("w", "2")), 10),
        ]
    )


class TestResolveMinSupport:
    def test_fraction(self):
        assert resolve_min_support(0.01, 250) == 3  # ceil(2.5)
        assert resolve_min_support(0.5, 10) == 5

    def test_absolute(self):
        assert resolve_min_support(5, 1000) == 5
        assert resolve_min_support(1, 10) == 1

    def test_floor_at_one(self):
        assert resolve_min_support(0, 100) == 1
        assert resolve_min_support(0.0001, 10) == 1

    def test_one_boundary_pins_fraction_vs_absolute(self):
        """δ = 1.0 is an *absolute* count of 1; δ = 0.999 is a fraction.

        The boundary is easy to get backwards in a kernel rewrite: 0.999
        of 250 paths rounds up to all 250 of them, while 1.0 falls through
        to the absolute branch and keeps everything with a single
        occurrence.
        """
        assert resolve_min_support(1.0, 250) == 1
        assert resolve_min_support(0.999, 250) == 250
        assert resolve_min_support(1.0, 1) == 1
        assert resolve_min_support(0.999, 1) == 1

    def test_one_boundary_changes_mined_segments(self):
        """The δ = 1.0 / 0.999 split is visible in mining output."""
        paths = make_paths(
            [
                ((("f", "1"), ("w", "2")), 9),
                ((("f", "2"), ("s", "1")), 1),
            ]
        )
        everything = mine_frequent_segments(paths, min_support=1.0)
        unanimous = mine_frequent_segments(paths, min_support=0.999)
        assert ((("f",), "2"),) in everything  # absolute threshold 1
        assert unanimous == {}  # no stage constraint holds on all 10


class TestSatisfies:
    def test_exact_constraint(self):
        path = (("f", "1"), ("w", "2"))
        assert _satisfies(path, ((("f",), "1"),))
        assert not _satisfies(path, ((("f",), "9"),))

    def test_star_duration_always_matches(self):
        path = (("f", "1"), ("w", "2"))
        assert _satisfies(path, ((("f",), "*"),))

    def test_prefix_mismatch(self):
        path = (("f", "1"), ("w", "2"))
        assert not _satisfies(path, ((("s",), "1"),))
        assert not _satisfies(path, ((("f", "s"), "2"),))

    def test_constraint_beyond_path(self):
        path = (("f", "1"),)
        assert not _satisfies(path, ((("f", "w"), "2"),))


class TestSegmentMining:
    def test_singletons_counted(self, paper_db, paper_lattice):
        from repro.core import aggregate_path

        paths = [aggregate_path(r.path, paper_lattice[0]) for r in paper_db]
        segments = mine_frequent_segments(paths, min_support=5)
        assert ((("factory",), "10"),) in segments
        assert segments[((("factory",), "10"),)] == 5

    def test_pairs_require_nesting(self):
        paths = make_paths([((("a", "1"), ("b", "2"), ("c", "3")), 5)])
        segments = mine_frequent_segments(paths, min_support=3)
        # Pair of first and second stage is frequent and nested.
        assert ((("a",), "1"), (("a", "b"), "2")) in segments
        # Full triple too.
        assert (
            (("a",), "1"),
            (("a", "b"), "2"),
            (("a", "b", "c"), "3"),
        ) in segments

    def test_max_length_bounds_mining(self):
        paths = make_paths([((("a", "1"), ("b", "2"), ("c", "3")), 5)])
        segments = mine_frequent_segments(paths, min_support=3, max_length=1)
        assert all(len(s) == 1 for s in segments)

    def test_same_stage_two_durations_never_joins(self):
        paths = make_paths(
            [((("a", "1"),), 5), ((("a", "2"),), 5)]
        )
        segments = mine_frequent_segments(paths, min_support=3)
        assert all(len(s) == 1 for s in segments)


class TestExceptionMining:
    def test_duration_condition_shifts_transition(self, conditional_paths):
        graph = FlowGraph(conditional_paths)
        exceptions = mine_exceptions(
            graph, conditional_paths, min_support=5, min_deviation=0.15
        )
        transition_exceptions = [
            e
            for e in exceptions
            if e.kind == "transition" and e.condition == ((("f",), "9"),)
        ]
        assert transition_exceptions, "long factory stay should shift transitions"
        exc = transition_exceptions[0]
        assert exc.conditional["w"] == pytest.approx(1.0)
        # Baseline: 20/30 go to warehouse.
        assert exc.baseline["w"] == pytest.approx(2 / 3)
        assert exc.deviation == pytest.approx(1 / 3)

    def test_duration_exception_at_child(self):
        # Long stay at f forces duration 5 at w; short stay gives 1.
        paths = make_paths(
            [
                ((("f", "9"), ("w", "5")), 10),
                ((("f", "1"), ("w", "1")), 10),
            ]
        )
        graph = FlowGraph(paths)
        exceptions = mine_exceptions(graph, paths, min_support=5, min_deviation=0.2)
        duration_exceptions = [
            e
            for e in exceptions
            if e.kind == "duration" and e.condition == ((("f",), "9"),)
        ]
        assert duration_exceptions
        exc = duration_exceptions[0]
        assert exc.node_prefix == ("f", "w")
        assert exc.conditional["5"] == pytest.approx(1.0)
        assert exc.baseline["5"] == pytest.approx(0.5)

    def test_epsilon_filters_small_deviations(self, conditional_paths):
        graph = FlowGraph(conditional_paths)
        strict = mine_exceptions(
            graph, conditional_paths, min_support=5, min_deviation=0.99
        )
        assert strict == []

    def test_delta_filters_rare_conditions(self, conditional_paths):
        graph = FlowGraph(conditional_paths)
        # Threshold above any condition's support: nothing qualifies.
        exceptions = mine_exceptions(
            graph, conditional_paths, min_support=31, min_deviation=0.1
        )
        assert exceptions == []

    def test_exceptions_attached_to_graph(self, conditional_paths):
        graph = FlowGraph(conditional_paths)
        found = mine_exceptions(
            graph, conditional_paths, min_support=5, min_deviation=0.15
        )
        assert graph.exceptions == found

    def test_supplied_segments_are_used(self, conditional_paths):
        graph = FlowGraph(conditional_paths)
        only = [((("f",), "9"),)]
        exceptions = mine_exceptions(
            graph,
            conditional_paths,
            min_support=5,
            min_deviation=0.15,
            segments=only,
        )
        assert all(e.condition == only[0] for e in exceptions)

    def test_str_rendering(self, conditional_paths):
        graph = FlowGraph(conditional_paths)
        exceptions = mine_exceptions(
            graph, conditional_paths, min_support=5, min_deviation=0.15
        )
        text = str(exceptions[0])
        assert "exception at" in text and "Δ=" in text
