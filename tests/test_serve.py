"""The HTTP slicer: routing, parity, tenancy, and concurrency.

The load-bearing assertions:

* every endpoint answers over the app surface AND a real socket, and a
  server slice response is byte-equivalent to the payload rebuilt from
  the seed ``"scan"`` kernel's cells (the serving parity contract);
* ``"derive": true`` answers non-materialised coordinates through the
  roll-up planner and reports the plan;
* the response/query/catalog cache layers invalidate on store mutation —
  hammered by concurrent reader threads interleaved with
  ``put_cell``/``flush`` writes, no stale or torn answer is ever served;
* ``merge_query_stats`` is atomic under concurrent writers: no lost
  increments, never partial JSON;
* the ``/cubes/{name}`` payload carries the persisted build version, and
  an external rebuild is noticed via ``maybe_reload``.
"""

from __future__ import annotations

import json
import threading
from itertools import product as iproduct

import pytest

from repro.core.flowcube import Cell
from repro.core.lattice import ItemLevel
from repro.errors import ServeError, StoreError
from repro.perf.query_kernel import load_query_stats, merge_query_stats
from repro.query.api import FlowCubeQuery
from repro.serve import (
    CubeTenant,
    Request,
    ServerThread,
    SlicerApp,
    create_app,
    format_cut,
    parse_cut,
    slice_payload,
)
from repro.serve.http import encode_json
from repro.store import PartitionedPathStore, build_cube
from repro.store.cli import _parse_cube_mounts
from repro.synth import GeneratorConfig, generate_path_database

CONFIG = GeneratorConfig(
    n_paths=120,
    n_dims=2,
    dim_fanouts=(2, 3),
    n_location_groups=3,
    locations_per_group=2,
    n_sequences=8,
    max_path_length=4,
    max_duration=3,
    seed=3,
)
MIN_SUPPORT = 0.1


@pytest.fixture(scope="module")
def database():
    return generate_path_database(CONFIG)


@pytest.fixture(scope="module")
def store_dir(tmp_path_factory, database):
    directory = tmp_path_factory.mktemp("serve") / "wh"
    store = PartitionedPathStore.init(directory, database.schema)
    store.ingest(database)
    build_cube(store, min_support=MIN_SUPPORT, into=store.cube_store())
    return directory


@pytest.fixture()
def tenant(store_dir):
    return CubeTenant.mount("wh", store_dir)


@pytest.fixture()
def app(tenant):
    return SlicerApp([tenant])


def get(app, path, query=None):
    return app.handle(
        Request(method="GET", path=path, query=query or {}, headers={})
    )


def post(app, path, body):
    return app.handle(
        Request(
            method="POST",
            path=path,
            query={},
            headers={},
            body=json.dumps(body).encode(),
        )
    )


def body_of(response):
    assert response.status == 200, response.body
    return json.loads(response.body)


def scan_slice_bytes(tenant, dims, path_level=None, measure=False):
    """The parity oracle: the slice payload a fresh scan kernel renders."""
    scan = FlowCubeQuery(tenant.cube_store, kernel="scan")
    cells = scan.slice_cells(path_level, **dims)
    lattice = tenant.cube_store.path_lattice
    level_id = None if path_level is None else lattice.index_of(path_level)
    return encode_json(slice_payload(tenant, dims, level_id, cells, measure))


# ----------------------------------------------------------------------
# cut syntax
# ----------------------------------------------------------------------

def test_parse_cut():
    assert parse_cut("") == {}
    assert parse_cut("d0:d0_0") == {"d0": "d0_0"}
    assert parse_cut("d0:d0_0|d1:d1_2_1") == {"d0": "d0_0", "d1": "d1_2_1"}
    assert parse_cut(" d0 : d0_0 ") == {"d0": "d0_0"}


@pytest.mark.parametrize("bad", ["d0", "d0:", ":v", "d0:a|d0:b", "|"])
def test_parse_cut_rejects_malformed(bad):
    with pytest.raises(ServeError):
        parse_cut(bad)


def test_format_cut_roundtrip():
    dims = {"d1": "d1_2", "d0": "d0_0"}
    assert parse_cut(format_cut(dims)) == dims
    assert format_cut(dims) == "d0:d0_0|d1:d1_2"


def test_parse_cube_mounts():
    assert _parse_cube_mounts(["wh=/tmp/a", "/data/retail"]) == {
        "wh": "/tmp/a",
        "retail": "/data/retail",
    }
    with pytest.raises(StoreError):
        _parse_cube_mounts(["a=x", "a=y"])
    with pytest.raises(StoreError):
        _parse_cube_mounts(["=x"])


# ----------------------------------------------------------------------
# routing and tenancy
# ----------------------------------------------------------------------

def test_info_and_cube_listing(app, tenant):
    info = body_of(get(app, "/"))
    assert info["server"] == "flowcube-slicer"
    assert info["cubes"] == ["wh"]
    cubes = body_of(get(app, "/cubes"))
    assert [c["name"] for c in cubes] == ["wh"]
    detail = body_of(get(app, "/cubes/wh"))
    assert detail["cells"] == tenant.cube_store.n_cells()
    assert detail["min_support"] == MIN_SUPPORT
    # Satellite: the build version comes from the persisted BuildStats.
    assert detail["version"] == tenant.cube_store.build_stats["version"]
    assert detail["build_stats"]["built_at"]


def test_cuboids_listing_matches_index(app, tenant):
    payload = body_of(get(app, "/cubes/wh/cuboids"))
    listed = {
        (tuple(c["item_level"]), c["path_level"]): c["n_cells"]
        for c in payload["cuboids"]
    }
    lattice = tenant.cube_store.path_lattice
    expected = {
        (
            tuple(cuboid.item_level.levels),
            lattice.index_of(cuboid.path_level),
        ): len(cuboid)
        for cuboid in tenant.cube_store.cuboids
    }
    assert listed == expected


def test_unknown_routes_and_methods(app):
    assert get(app, "/nope").status == 404
    assert get(app, "/cubes/ghost").status == 404
    assert get(app, "/cubes/wh/frobnicate").status == 404
    assert get(app, "/cubes/wh/rollup").status == 405
    assert post(app, "/cubes/wh/slice", {"cut": "d0"}).status == 400
    assert get(app, "/cubes/wh/slice", {"cut": "d9:x"}).status == 400


def test_auth_hook(tenant):
    app = SlicerApp([tenant], token="sesame")
    assert get(app, "/cubes").status == 401
    request = Request(
        method="GET",
        path="/cubes",
        query={},
        headers={"authorization": "Bearer sesame"},
    )
    assert app.handle(request).status == 200


def test_duplicate_tenant_rejected(store_dir):
    with pytest.raises(ServeError):
        SlicerApp(
            [
                CubeTenant.mount("wh", store_dir),
                CubeTenant.mount("wh", store_dir),
            ]
        )


# ----------------------------------------------------------------------
# slice parity: server bytes == scan-kernel payload
# ----------------------------------------------------------------------

@pytest.mark.parametrize("measure", [False, True])
def test_slice_byte_parity_with_scan_kernel(app, tenant, database, measure):
    h0 = database.schema.dimensions[0]
    wanted = sorted(h0.concepts_at_level(1))[0]
    response = post(
        app, "/cubes/wh/slice", {"cut": f"d0:{wanted}", "measure": measure}
    )
    assert response.status == 200
    assert response.body == scan_slice_bytes(
        tenant, {"d0": wanted}, measure=measure
    )


def test_slice_get_equals_post(app):
    via_get = get(app, "/cubes/wh/slice", {"cut": "d0:d0_0"})
    via_post = post(app, "/cubes/wh/slice", {"cut": "d0:d0_0"})
    assert via_get.status == via_post.status == 200
    assert via_get.body == via_post.body


def test_slice_response_cache_hits(app, tenant):
    post(app, "/cubes/wh/slice", {"cut": "d0:d0_0"})
    before = tenant.stats()["response_cache"]["hits"]
    post(app, "/cubes/wh/slice", {"cut": "d0:d0_0"})
    assert tenant.stats()["response_cache"]["hits"] == before + 1


def test_catalog_pool_shared_between_facades(app, tenant):
    post(app, "/cubes/wh/slice", {"cut": "d0:d0_0"})
    stats = tenant.catalogs.stats()
    assert stats["builds"] >= 1
    # The derive façade reuses the same pool: no new catalog builds for
    # the same cuboids at the same version.
    tenant.derive_query.slice_cells(None, d0="d0_0")
    assert tenant.catalogs.stats()["builds"] == stats["builds"]
    assert tenant.catalogs.stats()["hits"] > stats["hits"]


# ----------------------------------------------------------------------
# conditional requests: ETag / If-None-Match
# ----------------------------------------------------------------------

def test_etag_round_trip(app):
    first = get(app, "/cubes/wh/slice", {"cut": "d0:d0_0"})
    assert first.status == 200
    etag = first.headers["ETag"]
    assert etag.startswith('"') and etag.endswith('"')
    revalidated = app.handle(
        Request(
            method="GET",
            path="/cubes/wh/slice",
            query={"cut": "d0:d0_0"},
            headers={"if-none-match": etag},
        )
    )
    assert revalidated.status == 304
    assert revalidated.body == b""
    assert revalidated.headers["ETag"] == etag


def test_etag_mismatch_serves_body(app):
    first = get(app, "/cubes/wh/slice", {"cut": "d0:d0_0"})
    stale = app.handle(
        Request(
            method="GET",
            path="/cubes/wh/slice",
            query={"cut": "d0:d0_0"},
            headers={"if-none-match": '"deadbeef"'},
        )
    )
    assert stale.status == 200
    assert stale.body == first.body


def test_etag_star_and_list_match(app):
    etag = get(app, "/cubes/wh/slice", {"cut": "d0:d0_0"}).headers["ETag"]
    for header in ("*", f'"other", {etag}', f"W/{etag}"):
        response = app.handle(
            Request(
                method="GET",
                path="/cubes/wh/slice",
                query={"cut": "d0:d0_0"},
                headers={"if-none-match": header},
            )
        )
        assert response.status == 304, header


def test_etag_varies_by_request_and_mutation(app, tenant):
    a = get(app, "/cubes/wh/slice", {"cut": "d0:d0_0"}).headers["ETag"]
    b = get(app, "/cubes/wh/slice", {"cut": "d0:d0_1"}).headers["ETag"]
    assert a != b  # different canonical keys
    tenant.cube_store._bump_version()
    after = get(app, "/cubes/wh/slice", {"cut": "d0:d0_0"}).headers["ETag"]
    assert after != a  # store mutation invalidates the validator


def test_etag_on_post_query(app):
    response = post(app, "/cubes/wh/query", {"cut": "d0:d0_0"})
    assert response.status == 200
    assert "ETag" in response.headers


def test_cache_control_rides_along_with_etag(app):
    first = get(app, "/cubes/wh/slice", {"cut": "d0:d0_0"})
    assert first.status == 200
    assert first.headers["Cache-Control"] == "max-age=60"
    revalidated = app.handle(
        Request(
            method="GET",
            path="/cubes/wh/slice",
            query={"cut": "d0:d0_0"},
            headers={"if-none-match": first.headers["ETag"]},
        )
    )
    # The 304 refreshes the client's freshness lifetime too.
    assert revalidated.status == 304
    assert revalidated.headers["Cache-Control"] == "max-age=60"


def test_cache_control_max_age_configurable_and_omittable(tenant):
    custom = SlicerApp([tenant], max_age=5)
    response = custom.handle(
        Request(
            method="GET",
            path="/cubes/wh/slice",
            query={"cut": "d0:d0_0"},
            headers={},
        )
    )
    assert response.headers["Cache-Control"] == "max-age=5"
    bare = SlicerApp([tenant], max_age=None)
    response = bare.handle(
        Request(
            method="GET",
            path="/cubes/wh/slice",
            query={"cut": "d0:d0_0"},
            headers={},
        )
    )
    assert response.status == 200
    assert "Cache-Control" not in response.headers
    with pytest.raises(ServeError):
        SlicerApp([tenant], max_age=-1)


# ----------------------------------------------------------------------
# navigation and derivation endpoints
# ----------------------------------------------------------------------

def test_rollup_and_drilldown(app, tenant, database):
    h0 = database.schema.dimensions[0]
    # Anchor on a materialised leaf-level cell, so neither direction can
    # run into iceberg pruning surprises.
    level = FlowCubeQuery(tenant.cube_store).default_path_level()
    leaves = tenant.cube_store.cuboid(ItemLevel((h0.depth, 0)), level)
    child = sorted(key[0] for key in leaves.keys)[0]
    parent = h0.ancestor_at_level(child, 1)
    rolled = body_of(
        post(
            app, "/cubes/wh/rollup", {"cut": f"d0:{child}", "dimension": "d0"}
        )
    )
    assert rolled["cell"]["key"][0] == parent
    drilled = body_of(
        post(
            app,
            "/cubes/wh/drilldown",
            {"cut": f"d0:{parent}", "dimension": "d0"},
        )
    )
    drilled_keys = [cell["key"][0] for cell in drilled["cells"]]
    assert child in drilled_keys
    assert set(drilled_keys) <= set(h0.children(parent))


def test_query_endpoint_measure(app):
    payload = body_of(post(app, "/cubes/wh/query", {"cut": "d0:d0_0"}))
    assert payload["derived"] is False
    assert payload["cell"]["key"] == ["d0_0", "*"]
    assert (
        payload["cell"]["flowgraph"]["n_paths"] == payload["cell"]["n_paths"]
    )


def test_query_derives_non_materialised(tmp_path, database):
    directory = tmp_path / "partial"
    store = PartitionedPathStore.init(directory, database.schema)
    store.ingest(database)
    # Materialise only the base item level: every coarser coordinate must
    # go through the roll-up planner on the read path.
    base = ItemLevel([h.depth for h in database.schema.dimensions])
    build_cube(
        store,
        min_support=MIN_SUPPORT,
        into=store.cube_store(),
        item_levels=[base],
        compute_exceptions=False,
    )
    app = create_app({"partial": directory})
    missing = post(app, "/cubes/partial/query", {"cut": "d0:d0_0"})
    assert missing.status == 404
    derived = body_of(
        post(app, "/cubes/partial/query", {"cut": "d0:d0_0", "derive": True})
    )
    assert derived["derived"] is True
    assert derived["cell"]["key"] == ["d0_0", "*"]
    assert derived["derivation"]["source"] == list(base.levels)
    assert derived["derivation"]["distance"] >= 1
    stats = body_of(get(app, "/stats"))
    assert stats["cubes"]["partial"]["derive_cache"]["derivations"] >= 1


def test_flowgraph_and_exceptions_reports(app, tenant):
    payload = body_of(get(app, "/cubes/wh/flowgraph", {"cut": "d0:d0_0"}))
    graph = tenant.query.flowgraph(None, d0="d0_0")
    assert payload["n_paths"] == graph.n_paths
    assert payload["flowgraph"]["nodes"]
    assert "text" in payload
    reports = body_of(get(app, "/cubes/wh/exceptions", {}))
    assert reports["n_cells"] == len(reports["cells"])
    for cell in reports["cells"]:
        assert cell["exceptions"]


def test_stats_endpoint_layers(app):
    post(app, "/cubes/wh/slice", {"cut": "d0:d0_0"})
    stats = body_of(get(app, "/stats"))
    tenant_stats = stats["cubes"]["wh"]
    for layer in (
        "query_cache",
        "derive_cache",
        "cell_cache",
        "catalog_pool",
        "response_cache",
    ):
        assert layer in tenant_stats
    assert stats["server"]["requests"] >= 2
    assert tenant_stats["version"]


# ----------------------------------------------------------------------
# real socket round-trips
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def server(store_dir):
    app = create_app({"wh": store_dir})
    with ServerThread(app) as running:
        yield running


def http_roundtrip(server, method, path, body=None):
    import http.client

    host, port = server.address
    conn = http.client.HTTPConnection(host, port, timeout=10)
    try:
        payload = json.dumps(body) if body is not None else None
        conn.request(
            method,
            path,
            payload,
            {"Content-Type": "application/json"} if payload else {},
        )
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


def test_socket_slice_parity(server):
    status, body = http_roundtrip(
        server, "POST", "/cubes/wh/slice", {"cut": "d0:d0_0"}
    )
    assert status == 200
    tenant = server.app.tenants["wh"]
    assert body == scan_slice_bytes(tenant, {"d0": "d0_0"})


def test_socket_keep_alive_multiple_requests(server):
    import http.client

    host, port = server.address
    conn = http.client.HTTPConnection(host, port, timeout=10)
    try:
        for _ in range(3):
            conn.request("GET", "/cubes/wh")
            response = conn.getresponse()
            assert response.status == 200
            response.read()
    finally:
        conn.close()


def test_socket_stats_and_errors(server):
    status, body = http_roundtrip(server, "GET", "/stats")
    assert status == 200
    assert "wh" in json.loads(body)["cubes"]
    status, _ = http_roundtrip(server, "GET", "/cubes/ghost")
    assert status == 404
    # An empty POST body means an empty constraint set: the apex cell.
    status, _ = http_roundtrip(server, "POST", "/cubes/wh/query", None)
    assert status == 200


# ----------------------------------------------------------------------
# invalidation under concurrent access (satellite)
# ----------------------------------------------------------------------

def _recoordinated(template: Cell, key) -> Cell:
    """*template*'s measure re-keyed at an unoccupied coordinate."""
    return Cell(
        key=key,
        item_level=template.item_level,
        path_level=template.path_level,
        record_ids=template.record_ids,
        flowgraph=template.flowgraph,
        paths=(),
        redundant=template.redundant,
    )


def test_no_stale_results_under_concurrent_mutation(tmp_path, database):
    directory = tmp_path / "hammer"
    store = PartitionedPathStore.init(directory, database.schema)
    store.ingest(database)
    build_cube(
        store,
        min_support=MIN_SUPPORT,
        into=store.cube_store(),
        compute_exceptions=False,
    )
    tenant = CubeTenant.mount("wh", directory)
    app = SlicerApp([tenant])
    cube_store = tenant.cube_store

    # A template cell plus unused coordinates in its cuboid: every
    # mutation adds one more cell to the unconstrained slice.  Pick the
    # first cuboid the iceberg pruned some coordinates out of.
    hierarchies = database.schema.dimensions
    template, candidates = None, []
    for cuboid in cube_store.cuboids:
        candidates = [
            key
            for key in iproduct(
                *(
                    sorted(h.concepts_at_level(level)) if level else ["*"]
                    for h, level in zip(hierarchies, cuboid.item_level.levels)
                )
            )
            if key not in cuboid
        ][:6]
        if candidates:
            template = next(iter(cuboid))
            break
    assert template is not None, "need free coordinates to add cells at"

    level_id = cube_store.path_lattice.index_of(template.path_level)

    def canonical() -> bytes:
        return scan_slice_bytes(tenant, {}, template.path_level)

    valid: set[bytes] = {canonical()}
    observed: list[bytes] = []
    errors: list[BaseException] = []
    stop = threading.Event()

    def reader() -> None:
        try:
            while not stop.is_set():
                response = post(
                    app, "/cubes/wh/slice", {"path_level": level_id}
                )
                assert response.status == 200
                observed.append(response.body)
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=reader) for _ in range(4)]
    for thread in threads:
        thread.start()
    try:
        for key in candidates:
            cube_store.put_cell(_recoordinated(template, key))
            cube_store.flush()
            # put_cell and flush leave identical observable content, so
            # one snapshot per mutation covers every in-between state.
            valid.add(canonical())
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=30)

    assert not errors
    assert observed
    unknown = [body for body in observed if body not in valid]
    assert not unknown, f"{len(unknown)} stale/torn responses served"
    # After the dust settles the server must answer with the final state.
    final = post(app, "/cubes/wh/slice", {"path_level": level_id})
    assert final.body == canonical()
    # put_cell and flush each push an invalidation to the tenant.
    assert tenant.invalidations >= 2 * len(candidates)


# ----------------------------------------------------------------------
# external rebuild detection
# ----------------------------------------------------------------------

def test_maybe_reload_notices_external_flush(tmp_path, database):
    directory = tmp_path / "reload"
    store = PartitionedPathStore.init(directory, database.schema)
    store.ingest(database)
    build_cube(
        store,
        min_support=MIN_SUPPORT,
        into=store.cube_store(),
        compute_exceptions=False,
    )
    tenant = CubeTenant.mount("wh", directory)
    before = tenant.version
    assert tenant.refresh() is False

    # A second handle — standing in for another process — rewrites meta.
    writer = PartitionedPathStore.open(directory).cube_store()
    template = next(iter(writer.cuboids[0]))
    writer.put_cell(_recoordinated(template, template.key))
    writer.flush()

    assert tenant.refresh() is True
    assert tenant.version > before
    assert tenant.invalidations >= 1
    assert tenant.refresh() is False


def test_cross_process_append_refreshes_etag_and_serves_new_cell(
    tmp_path, database
):
    """An out-of-process ``flowcube-store append`` reaches live tenants.

    The append bumps the persisted build version, so after
    ``maybe_reload`` the tenant must serve the newly promoted cell, mint
    a fresh ETag, and answer a request carrying the *old* validator with
    a full 200 — never a stale 304.
    """
    import os
    import subprocess
    import sys
    from collections import Counter

    from repro.core.flowgraph_exceptions import resolve_min_support
    from repro.core.path import PathRecord
    from repro.core.path_database import PathDatabase

    directory = tmp_path / "wh"
    store = PartitionedPathStore.init(directory, database.schema)
    store.ingest(database)
    build_cube(store, min_support=MIN_SUPPORT, into=store.cube_store())
    tenant = CubeTenant.mount("wh", directory)
    app = SlicerApp([tenant])

    # A leaf key below the frontier: its most-detailed cell is absent.
    counts = Counter(record.dims for record in database)
    base_threshold = resolve_min_support(MIN_SUPPORT, len(database))
    donor_dims = next(
        dims for dims, count in counts.items() if count < base_threshold
    )
    donor = next(r for r in database if r.dims == donor_dims)
    cut = f"d0:{donor_dims[0]}|d1:{donor_dims[1]}"

    before = get(app, "/cubes/wh/slice", {"cut": cut})
    assert before.status == 200
    assert body_of(before)["cells"] == []
    old_etag = before.headers["ETag"]

    # Another process appends enough same-key records to promote it.
    batch = [
        PathRecord(10_000 + i, donor.dims, donor.path) for i in range(15)
    ]
    csv_path = tmp_path / "batch.csv"
    csv_path.write_text(
        PathDatabase(database.schema, batch, validate=False).to_csv(),
        encoding="utf-8",
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(sys.path)
    result = subprocess.run(
        [
            sys.executable, "-m", "repro.store.cli",
            "append", str(directory), "--csv", str(csv_path),
        ],
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    assert "created" in result.stdout

    # The live handle notices the external meta rewrite...
    assert tenant.refresh() is True

    # ...serves the promoted cell with a fresh validator...
    after = get(app, "/cubes/wh/slice", {"cut": cut})
    assert after.status == 200
    payload = body_of(after)
    assert len(payload["cells"]) == 1
    grown_threshold = resolve_min_support(MIN_SUPPORT, len(database) + 15)
    assert payload["cells"][0]["n_paths"] >= grown_threshold
    assert after.headers["ETag"] != old_etag

    # ...and the old validator revalidates to a full 200, never 304.
    stale = app.handle(
        Request(
            method="GET",
            path="/cubes/wh/slice",
            query={"cut": cut},
            headers={"if-none-match": old_etag},
        )
    )
    assert stale.status == 200
    assert json.loads(stale.body)["cells"]


# ----------------------------------------------------------------------
# atomic query-stats persistence (satellite)
# ----------------------------------------------------------------------

def test_merge_query_stats_concurrent_no_lost_increments(tmp_path):
    directory = tmp_path / "cube"
    directory.mkdir()
    workers, merges = 8, 25
    errors: list[BaseException] = []

    def writer() -> None:
        try:
            for _ in range(merges):
                merge_query_stats(
                    directory,
                    {
                        "hits": 1,
                        "misses": 2,
                        "evictions": 0,
                        "derivations": 1,
                        "capacity": 128,
                        "size": 3,
                    },
                )
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    def reader() -> None:
        try:
            for _ in range(workers * merges):
                stats = load_query_stats(directory)
                assert stats is None or isinstance(stats["hits"], int)
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=writer) for _ in range(workers)]
    threads.append(threading.Thread(target=reader))
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)

    assert not errors
    merged = load_query_stats(directory)
    assert merged["hits"] == workers * merges
    assert merged["misses"] == 2 * workers * merges
    assert merged["derivations"] == workers * merges
    assert merged["hit_rate"] == pytest.approx(1 / 3)
    # No temp droppings survive a clean run.
    leftovers = [p.name for p in directory.glob("query_stats.json.*.tmp")]
    assert not leftovers


# ----------------------------------------------------------------------
# admin routes: runtime mount / unmount
# ----------------------------------------------------------------------

def admin_post(app, path, body=None, token=None):
    headers = {} if token is None else {"x-admin-token": token}
    return app.handle(
        Request(
            method="POST",
            path=path,
            query={},
            headers=headers,
            body=json.dumps(body or {}).encode(),
        )
    )


def test_admin_routes_disabled_without_token(app):
    response = admin_post(app, "/cubes/other/mount", {"path": "/nowhere"})
    assert response.status == 403
    assert b"disabled" in response.body


def test_admin_mount_unmount_cycle(store_dir, tenant):
    app = SlicerApp([tenant], admin_token="s3cret")

    # Wrong or missing token -> 401; GET -> 405.
    assert admin_post(app, "/cubes/x/mount", token="nope").status == 401
    assert admin_post(app, "/cubes/x/mount").status == 401
    response = app.handle(
        Request(
            method="GET",
            path="/cubes/x/mount",
            query={},
            headers={"x-admin-token": "s3cret"},
        )
    )
    assert response.status == 405

    # Mount the same store under a second name and serve it.
    response = admin_post(
        app, "/cubes/wh2/mount", {"path": str(store_dir)}, token="s3cret"
    )
    assert response.status == 201
    payload = json.loads(response.body)
    assert payload["mounted"] == "wh2"
    assert payload["cube"]["cells"] > 0
    assert sorted(app.tenants) == ["wh", "wh2"]
    assert body_of(get(app, "/cubes/wh2/slice"))["n_cells"] > 0

    # Duplicate mounts, bad paths, and unknown unmounts fail loudly.
    response = admin_post(
        app, "/cubes/wh2/mount", {"path": str(store_dir)}, token="s3cret"
    )
    assert response.status == 409
    response = admin_post(
        app, "/cubes/bad/mount", {"path": str(store_dir) + "-none"},
        token="s3cret",
    )
    assert response.status == 400
    assert admin_post(
        app, "/cubes/ghost/unmount", token="s3cret"
    ).status == 404
    assert admin_post(app, "/cubes/wh2/mount", token="s3cret").status == 400

    # Unmount releases the tenant; its routes disappear.
    response = admin_post(app, "/cubes/wh2/unmount", token="s3cret")
    assert response.status == 200
    assert json.loads(response.body) == {"unmounted": "wh2"}
    assert sorted(app.tenants) == ["wh"]
    assert get(app, "/cubes/wh2/slice").status == 404

    # The last cube cannot be unmounted out from under the server.
    assert admin_post(app, "/cubes/wh/unmount", token="s3cret").status == 409
    assert body_of(get(app, "/cubes/wh/slice"))["n_cells"] > 0
