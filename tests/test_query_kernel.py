"""The bitmap query kernel, roll-up planner, and serving cache.

The load-bearing assertions:

* the ``"index"`` slice kernel yields exactly the seed ``"scan"`` kernel's
  cells (same cells, same order) over both the in-memory cube and the
  store, across a hypothesis grid of δ and materialised-level subsets;
* slicing a :class:`CubeStore` materialises *only* the matching cells —
  pinned by a counting hook on ``CubeStore._materialise``;
* a derived cuboid is byte-identical (``cube_to_json``) to a directly
  built one whenever the source cuboid is unpruned, and — under a real
  iceberg threshold — to a direct build over the records covered by the
  source's materialised cells (the planner's exactness contract);
* the query cache memoises answers and counts derivations, and its
  counters persist across processes for ``flowcube-store stats``.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.flowcube import FlowCube
from repro.core.lattice import ItemLattice, ItemLevel
from repro.core.materialization import MaterializationPlan, plan_between_layers
from repro.core.path_database import PathDatabase
from repro.core.serialization import cube_to_json
from repro.errors import QueryError
from repro.perf.query_kernel import (
    CuboidKeyCatalog,
    QueryCache,
    iter_set_bits,
    load_query_stats,
    merge_query_stats,
)
from repro.query.api import FlowCubeQuery
from repro.query.planner import derive_cell, derive_cuboid, plan_derivation
from repro.store import PartitionedPathStore, build_cube
from repro.store.cli import main
from repro.store.cube_store import CubeStore
from repro.synth import GeneratorConfig, generate_path_database
from tests.test_properties import path_databases

CONFIG = GeneratorConfig(
    n_paths=120,
    n_dims=2,
    dim_fanouts=(2, 3),
    n_location_groups=3,
    locations_per_group=2,
    n_sequences=8,
    max_path_length=4,
    max_duration=3,
    seed=3,
)
MIN_SUPPORT = 0.1


@pytest.fixture(scope="module")
def database():
    return generate_path_database(CONFIG)


@pytest.fixture(scope="module")
def cube(database):
    return FlowCube.build(database, min_support=MIN_SUPPORT)


@pytest.fixture()
def store(tmp_path, database):
    s = PartitionedPathStore.init(tmp_path / "wh", database.schema)
    s.ingest(database)
    return s


def _cell_ids(cells):
    return [(cell.item_level, cell.key) for cell in cells]


# ----------------------------------------------------------------------
# the bitmap key catalog
# ----------------------------------------------------------------------

def test_iter_set_bits():
    assert list(iter_set_bits(0)) == []
    assert list(iter_set_bits(0b1011)) == [0, 1, 3]
    assert list(iter_set_bits(1 << 200)) == [200]


def test_catalog_masks_and_closures(database):
    hierarchies = database.schema.dimensions
    h0 = hierarchies[0]
    child = sorted(h0.concepts_at_level(1))[0]
    grandchild = sorted(h0.children(child))[0]
    keys = (
        ("*", "*"),
        (child, "*"),
        (grandchild, "*"),
    )
    catalog = CuboidKeyCatalog(keys, hierarchies)
    assert len(catalog) == 3
    assert catalog.all_mask == 0b111
    assert catalog.value_mask(0, child) == 0b010
    # The closure of a concept covers itself and its descendants' cells —
    # but a stored "*" matches only a wanted "*" (the seed semantics).
    assert catalog.closure_mask(0, child) == 0b110
    assert catalog.closure_mask(0, grandchild) == 0b100
    assert catalog.closure_mask(0, "*") == 0b111
    assert catalog.match_mask([]) == 0b111
    assert catalog.match_mask([(0, child)]) == 0b110
    assert list(catalog.matching_keys([(0, child)])) == [
        (child, "*"), (grandchild, "*")
    ]


def test_catalog_conjunction_short_circuits(database):
    hierarchies = database.schema.dimensions
    a = sorted(hierarchies[0].concepts_at_level(1))
    b = sorted(hierarchies[1].concepts_at_level(1))
    keys = ((a[0], b[0]), (a[0], b[1]), (a[1], b[0]))
    catalog = CuboidKeyCatalog(keys, hierarchies)
    assert catalog.match_mask([(0, a[0]), (1, b[0])]) == 0b001
    assert catalog.match_mask([(0, a[1]), (1, b[1])]) == 0


# ----------------------------------------------------------------------
# slice: index kernel ≡ scan kernel, and no IO for filtered-out cells
# ----------------------------------------------------------------------

def test_slice_kernels_agree_in_memory(cube, database):
    h0 = database.schema.dimensions[0]
    value = sorted(h0.concepts_at_level(1))[0]
    index_q = FlowCubeQuery(cube, kernel="index")
    scan_q = FlowCubeQuery(cube, kernel="scan")
    for dims in ({}, {"d0": value}, {"d0": "*"}):
        assert _cell_ids(index_q.slice(**dims)) == _cell_ids(
            scan_q.slice(**dims)
        )


def test_unknown_kernel_rejected(cube):
    with pytest.raises(QueryError, match="unknown query kernel"):
        FlowCubeQuery(cube, kernel="warp")


def test_slice_over_store_materialises_only_matching_cells(
    store, database, monkeypatch
):
    build_cube(store, min_support=MIN_SUPPORT, into=store.cube_store())
    h0 = database.schema.dimensions[0]
    value = sorted(h0.concepts_at_level(1))[0]
    reads: list[tuple] = []
    original = CubeStore._materialise

    def counting(self, item_level, path_level, key, entry):
        reads.append((item_level, key))
        return original(self, item_level, path_level, key, entry)

    monkeypatch.setattr(CubeStore, "_materialise", counting)

    cold = store.cube_store()
    index_cells = list(FlowCubeQuery(cold).slice(d0=value))
    index_reads = list(reads)
    # Index-first: the predicate ran on the key catalog, so exactly the
    # yielded cells were parsed from disk — nothing else.
    assert len(index_reads) == len(index_cells)
    assert set(index_reads) == set(_cell_ids(index_cells))

    reads.clear()
    cold_scan = store.cube_store()
    scan_cells = list(FlowCubeQuery(cold_scan, kernel="scan").slice(d0=value))
    # The scan kernel parses every cell of the sliced path level.
    assert len(reads) > len(scan_cells)
    assert _cell_ids(index_cells) == _cell_ids(scan_cells)


# ----------------------------------------------------------------------
# satellite fixes: memoised cuboids, cached per-query lookups
# ----------------------------------------------------------------------

def test_store_cuboids_memoised_and_invalidated(store, database, cube):
    build_cube(store, min_support=MIN_SUPPORT, into=store.cube_store())
    cube_store = store.cube_store()
    first = cube_store.cuboids
    assert cube_store.cuboids is first  # memoised, not rebuilt per access
    some_cell = next(iter(cube.cuboids[0]))
    cube_store.put_cell(some_cell)
    assert cube_store.cuboids is not first  # put_cell invalidates
    second = cube_store.cuboids
    cube_store.flush()
    assert cube_store.cuboids is not second  # flush invalidates too


def test_default_path_level_cached_per_query(cube):
    query = FlowCubeQuery(cube)
    level = query.default_path_level()
    # The memo makes later calls independent of the cube's lattice.
    query.cube = None
    assert query.default_path_level() == level


def test_dimension_index_memoised(cube, database):
    query = FlowCubeQuery(cube)
    assert query._dim_index("d1") == 1
    calls = []
    original = database.schema.dimension_index
    query._schema = type(
        "S", (), {"dimension_index": lambda self, name: calls.append(name)}
    )()
    assert query._dim_index("d1") == 1  # served from the memo
    assert calls == []
    assert original("d1") == 1


# ----------------------------------------------------------------------
# the query cache
# ----------------------------------------------------------------------

def test_query_cache_counters():
    cache = QueryCache(capacity=2)
    assert cache.get("a") is None
    cache.put("a", 1)
    assert cache.get("a") == 1
    cache.put("b", 2)
    cache.put("c", 3)  # evicts "a"
    stats = cache.stats()
    assert stats["hits"] == 1
    assert stats["misses"] >= 1
    assert stats["evictions"] == 1
    assert stats["derivations"] == 0
    cache.derivations += 1
    assert cache.stats()["derivations"] == 1


def test_repeated_slice_served_from_query_cache(cube, database):
    h0 = database.schema.dimensions[0]
    value = sorted(h0.concepts_at_level(1))[0]
    query = FlowCubeQuery(cube)
    first = list(query.slice(d0=value))
    hits_before = query.cache_stats()["hits"]
    second = list(query.slice(d0=value))
    assert query.cache_stats()["hits"] > hits_before
    assert _cell_ids(first) == _cell_ids(second)


def test_query_stats_persist_and_accumulate(tmp_path):
    directory = tmp_path / "cube"
    assert load_query_stats(directory) is None
    merged = merge_query_stats(
        directory,
        {"hits": 2, "misses": 2, "evictions": 0, "derivations": 1,
         "capacity": 8, "size": 3},
    )
    assert merged["hits"] == 2
    merged = merge_query_stats(
        directory,
        {"hits": 4, "misses": 0, "evictions": 1, "derivations": 0,
         "capacity": 8, "size": 1},
    )
    assert merged["hits"] == 6
    assert merged["misses"] == 2
    assert merged["evictions"] == 1
    assert merged["derivations"] == 1
    assert merged["hit_rate"] == pytest.approx(6 / 8)
    assert load_query_stats(directory) == merged


# ----------------------------------------------------------------------
# the roll-up planner
# ----------------------------------------------------------------------

def _levels(database):
    return list(
        ItemLattice([h.depth for h in database.schema.dimensions])
    )


def _shell(database, template, cuboids):
    """A cube carrying exactly *cuboids*, for ``cube_to_json`` comparison."""
    shell = FlowCube(
        database,
        template.item_lattice,
        template.path_lattice,
        template.min_support,
        template.min_deviation,
    )
    for cuboid in cuboids:
        shell._cuboids[(cuboid.item_level, cuboid.path_level)] = cuboid
    return shell


def test_planner_picks_cheapest_materialised_descendant(database):
    levels = _levels(database)
    base = levels[-1]
    # Materialise the base and one intermediate level; the intermediate
    # one is the shallower (cheaper) source for the apex.
    apex = ItemLevel([0] * len(base))
    intermediate = next(
        lv for lv in levels if lv != apex and lv != base
        and apex.is_higher_or_equal(lv)
    )
    partial = FlowCube.build(
        database, item_levels=[intermediate, base], min_support=1,
        compute_exceptions=False,
    )
    path_level = FlowCubeQuery(partial).default_path_level()
    plan = plan_derivation(partial, apex, path_level)
    assert plan is not None
    assert plan.source == intermediate
    assert plan.distance == sum(intermediate.levels)
    assert plan.cost == plan.distance * plan.source_cells
    assert plan.exact is True  # δ=1: the source cuboid is unpruned


def test_planner_returns_none_without_descendants(database):
    levels = _levels(database)
    apex = ItemLevel([0] * len(levels[-1]))
    apex_only = FlowCube.build(
        database, item_levels=[apex], min_support=1, compute_exceptions=False
    )
    path_level = FlowCubeQuery(apex_only).default_path_level()
    # The base level has no materialised strict descendant to merge from.
    assert plan_derivation(apex_only, levels[-1], path_level) is None


def test_derived_cuboid_byte_identical_when_unpruned(database):
    levels = _levels(database)
    base = levels[-1]
    target = next(lv for lv in levels if lv != base and lv.parents())
    partial = FlowCube.build(
        database, item_levels=[base], min_support=1
    )
    direct = FlowCube.build(
        database, item_levels=[target], min_support=1
    )
    derived = []
    for path_level in partial.path_lattice:
        plan = plan_derivation(partial, target, path_level)
        assert plan.exact is True
        derived.append(derive_cuboid(partial, plan, mine_exceptions=True))
    assert cube_to_json(_shell(database, partial, derived)) == cube_to_json(
        direct
    )


def test_derived_cuboid_matches_direct_build_over_covered_records(database):
    """The exactness contract under a real iceberg threshold."""
    levels = _levels(database)
    base = levels[-1]
    target = next(lv for lv in levels if lv != base and lv.parents())
    partial = FlowCube.build(
        database, item_levels=[base], min_support=MIN_SUPPORT,
        compute_exceptions=False,
    )
    path_level = FlowCubeQuery(partial).default_path_level()
    plan = plan_derivation(partial, target, path_level)
    assert plan.exact is False  # δ pruned some base cells
    derived = derive_cuboid(partial, plan)
    covered = set()
    for cell in partial.cuboid(base, path_level):
        covered.update(cell.record_ids)
    restricted = PathDatabase(
        database.schema,
        [record for record in database if record.record_id in covered],
    )
    reference = FlowCube.build(
        restricted, item_levels=[target], min_support=plan.threshold,
        compute_exceptions=False,
    )
    reference_cuboid = reference.cuboid(target, path_level)
    assert list(derived.cells) == list(reference_cuboid.cells)
    for key, cell in derived.cells.items():
        expected = reference_cuboid.cell(key)
        assert cell.record_ids == expected.record_ids
        assert {n.prefix: n.count for n in cell.flowgraph.nodes()} == {
            n.prefix: n.count for n in expected.flowgraph.nodes()
        }


def test_derive_cell_matches_derived_cuboid_with_index_only_selection(
    store, database
):
    levels = _levels(database)
    base = levels[-1]
    target = next(lv for lv in levels if lv != base and lv.parents())
    build_cube(
        store, item_levels=[base], min_support=1,
        compute_exceptions=False, into=store.cube_store(),
    )
    cube_store = store.cube_store()
    path_level = FlowCubeQuery(cube_store).default_path_level()
    plan = plan_derivation(cube_store, target, path_level)
    # The apex cuboid is not materialised, so the store cannot know the
    # total record count: exactness is unknown, threshold falls back to
    # the covered-record resolution (δ=1 → still 1).
    assert plan is not None and plan.exact is None
    assert plan.threshold == 1
    whole = derive_cuboid(cube_store, plan)
    for key, expected in whole.cells.items():
        single = derive_cell(cube_store, plan, key)
        assert single.record_ids == expected.record_ids
        assert {n.prefix: n.count for n in single.flowgraph.nodes()} == {
            n.prefix: n.count for n in expected.flowgraph.nodes()
        }
    missing = ("definitely", "missing")
    with pytest.raises(QueryError, match="iceberg"):
        derive_cell(cube_store, plan, missing)


def test_store_derived_cuboid_byte_identical_to_direct_build(store, database):
    levels = _levels(database)
    base = levels[-1]
    target = next(lv for lv in levels if lv != base and lv.parents())
    build_cube(
        store, item_levels=[base], min_support=1,
        compute_exceptions=False, into=store.cube_store(),
    )
    cube_store = store.cube_store()
    direct = FlowCube.build(
        database, item_levels=[target], min_support=1,
        compute_exceptions=False,
    )
    derived = []
    for path_level in cube_store.path_lattice:
        plan = plan_derivation(cube_store, target, path_level)
        derived.append(derive_cuboid(cube_store, plan))
    assert cube_to_json(_shell(database, direct, derived)) == cube_to_json(
        direct
    )


def test_derived_exceptions_require_paths(store, database):
    levels = _levels(database)
    base = levels[-1]
    target = next(lv for lv in levels if lv != base and lv.parents())
    build_cube(
        store, item_levels=[base], min_support=1,
        compute_exceptions=False, into=store.cube_store(),
    )
    cube_store = store.cube_store()
    path_level = FlowCubeQuery(cube_store).default_path_level()
    plan = plan_derivation(cube_store, target, path_level)
    # Stored cells persist only the measure (Lemma 4.3: exceptions are
    # holistic), so re-mining on derivation must refuse loudly.
    with pytest.raises(QueryError, match="Lemma 4.3"):
        derive_cuboid(cube_store, plan, mine_exceptions=True)


# ----------------------------------------------------------------------
# FlowCubeQuery + derivation
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def partial_cube(database):
    levels = _levels(database)
    apex = ItemLevel([0, 0])
    base = levels[-1]
    return FlowCube.build(
        database, item_levels=[apex, base], min_support=1,
        compute_exceptions=False,
    )


def test_query_derive_answers_non_materialised_coordinates(
    partial_cube, database
):
    h0 = database.schema.dimensions[0]
    value = sorted(h0.concepts_at_level(1))[0]
    strict = FlowCubeQuery(partial_cube)
    with pytest.raises(QueryError, match="not materialised"):
        strict.cell(d0=value)
    derive_q = FlowCubeQuery(partial_cube, derive=True)
    cell = derive_q.cell(d0=value)
    assert cell.key == (value, "*")
    assert derive_q.cache_stats()["derivations"] == 1
    # Parity with a direct build of the same cuboid.
    target = ItemLevel([1, 0])
    direct = FlowCube.build(
        database, item_levels=[target], min_support=1,
        compute_exceptions=False,
    )
    expected = FlowCubeQuery(direct).cell(d0=value)
    assert cell.record_ids == expected.record_ids
    # A repeat is a cache hit, not a second derivation.
    derive_q.cell(d0=value)
    assert derive_q.cache_stats()["derivations"] == 1
    graph = derive_q.flowgraph(d0=value)
    assert {n.prefix: n.count for n in graph.nodes()} == {
        n.prefix: n.count for n in expected.flowgraph.nodes()
    }


def test_query_derive_navigation(partial_cube, database):
    query = FlowCubeQuery(partial_cube, derive=True)
    apex_cell = query.cell()
    # roll_up climbs through non-materialised levels via the planner.
    base = _levels(database)[-1]
    leaf_cells = [
        cell for cell in query.slice() if cell.item_level == base
    ]
    assert leaf_cells
    rolled = query.roll_up(leaf_cells[0], "d0")
    assert rolled.item_level[0] == leaf_cells[0].item_level[0] - 1
    # drill_down derives the non-materialised child cuboid.
    children = query.drill_down(apex_cell, "d0")
    assert children
    for child in children:
        assert child.item_level == ItemLevel([1, 0])
    strict = FlowCubeQuery(partial_cube)
    with pytest.raises(QueryError, match="not materialised"):
        strict.drill_down(apex_cell, "d0")


# ----------------------------------------------------------------------
# parity grid: FlowCubeQuery over FlowCube vs over CubeStore
# ----------------------------------------------------------------------

@given(
    path_databases(),
    st.sampled_from([0.05, 0.1, 2]),
    st.integers(min_value=0, max_value=3),
)
@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.function_scoped_fixture,
    ],
)
def test_query_parity_memory_vs_store(tmp_path_factory, db, min_support, pick):
    levels = _levels(db)
    # Drop one non-base level: a realistic partial materialisation.
    dropped = pick % (len(levels) - 1)
    subset = [lv for i, lv in enumerate(levels) if i != dropped]
    memory = FlowCube.build(
        db, item_levels=subset, min_support=min_support,
        compute_exceptions=False,
    )
    s = PartitionedPathStore.init(
        tmp_path_factory.mktemp("wh") / "wh", db.schema
    )
    s.ingest(db)
    build_cube(
        s, item_levels=subset, min_support=min_support,
        compute_exceptions=False, into=s.cube_store(),
    )
    cube_store = s.cube_store()
    materialised = set(subset)
    h0 = db.schema.dimensions[0]
    value = sorted(h0.concepts_at_level(1))[0]
    for kernel in ("index", "scan"):
        mem_q = FlowCubeQuery(memory, kernel=kernel)
        store_q = FlowCubeQuery(cube_store, kernel=kernel)
        for dims in ({}, {"d0": value}):
            mem_cells = list(mem_q.slice(**dims))
            store_cells = list(store_q.slice(**dims))
            assert _cell_ids(mem_cells) == _cell_ids(store_cells)
            for ours, theirs in zip(mem_cells, store_cells):
                assert ours.record_ids == theirs.record_ids
        # Navigation parity over the materialised subset.
        mem_cell = next(
            (c for c in mem_q.slice() if c.key == (value, "*")), None
        )
        if mem_cell is not None:
            store_cell = store_q.cell(d0=value)
            assert mem_cell.record_ids == store_cell.record_ids
            rolled = list(mem_cell.item_level.levels)
            rolled[0] -= 1
            if ItemLevel(rolled) in materialised:
                mem_rolled = mem_q.roll_up(mem_cell, "d0")
                store_rolled = store_q.roll_up(store_cell, "d0")
                assert mem_rolled.record_ids == store_rolled.record_ids
            deeper = list(mem_cell.item_level.levels)
            deeper[0] += 1
            if ItemLevel(deeper) in materialised:
                mem_children = mem_q.drill_down(mem_cell, "d0")
                store_children = store_q.drill_down(store_cell, "d0")
                assert _cell_ids(mem_children) == _cell_ids(store_children)


@given(path_databases(), st.integers(min_value=0, max_value=3))
@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_derived_rollup_byte_identity_grid(db, pick):
    """Derived vs directly-built cuboids, byte-identical when unpruned."""
    levels = _levels(db)
    base = levels[-1]
    ancestors = [lv for lv in levels if lv != base]
    target = ancestors[pick % len(ancestors)]
    partial = FlowCube.build(
        db, item_levels=[base], min_support=1, compute_exceptions=False
    )
    direct = FlowCube.build(
        db, item_levels=[target], min_support=1, compute_exceptions=False
    )
    derived = []
    for path_level in partial.path_lattice:
        plan = plan_derivation(partial, target, path_level)
        assert plan.exact is True
        derived.append(derive_cuboid(partial, plan))
    assert cube_to_json(_shell(db, partial, derived)) == cube_to_json(direct)


# ----------------------------------------------------------------------
# plan-aware derivability (core.materialization)
# ----------------------------------------------------------------------

def test_materialization_plan_derivability():
    minimum = ItemLevel([0, 1])
    observation = ItemLevel([2, 2])
    plan = plan_between_layers(minimum, observation)
    assert plan.derivability(minimum) == "materialised"
    # A level between the layers but off the drill path derives from the
    # observation layer (its shallowest planned strict descendant).
    off_path = ItemLevel([0, 2])
    assert off_path not in plan.item_levels
    assert plan.derivability(off_path) == "derivable"
    assert plan.derivation_source(off_path) == observation
    # Nothing below the observation layer is planned: underivable.
    deeper = ItemLevel([3, 2])
    assert plan.derivability(deeper) == "unreachable"
    assert plan.derivation_source(deeper) is None
    single = MaterializationPlan((observation,))
    assert single.derivability(observation) == "materialised"
    assert single.derivation_source(minimum) == observation


# ----------------------------------------------------------------------
# CLI: query --derive and persisted cache stats
# ----------------------------------------------------------------------

def test_cli_query_derive_and_stats(store, database, capsys):
    levels = _levels(database)
    base = levels[-1]
    apex = ItemLevel([0, 0])
    build_cube(
        store, item_levels=[apex, base], min_support=1,
        compute_exceptions=False, into=store.cube_store(),
    )
    target_dir = str(store.directory)
    h0 = database.schema.dimensions[0]
    value = sorted(h0.concepts_at_level(1))[0]
    # Without --derive the non-materialised coordinate fails...
    assert main(["query", target_dir, "-d", f"d0={value}"]) == 2
    capsys.readouterr()
    # ...with it, the planner answers and reports its source.
    assert main(["query", target_dir, "-d", f"d0={value}", "--derive"]) == 0
    out = capsys.readouterr().out
    assert "derived from cuboid" in out
    assert "flowgraph measure of d0=" in out
    # The derivation counter survived into the persisted stats...
    assert main(["stats", target_dir]) == 0
    report = json.loads(capsys.readouterr().out)
    query_cache = report["cube"]["query_cache"]
    assert query_cache["derivations"] == 1
    assert query_cache["misses"] >= 1
    # ...and accumulates across invocations.
    assert main(["query", target_dir, "-d", f"d0={value}", "--derive"]) == 0
    capsys.readouterr()
    assert main(["stats", target_dir]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["cube"]["query_cache"]["derivations"] == 2
