"""The aggregate-once measure roll-up engine (repro.perf.measure_rollup).

The load-bearing assertions:

* **Byte parity** — serialised cubes from the roll-up engine are
  byte-identical to the direct (semantics-defining) builder's, on random
  synth databases, across δ values, partial item-level subsets, and for
  the out-of-core builder serial and parallel;
* **FlowGraph.merge** is a proper algebraic measure: it conserves weight,
  is associative, and renormalises distributions exactly as building one
  graph over the union would;
* **Aggregate-once** — a counting hook proves each record's path is
  aggregated exactly once per path level per build, however many item
  levels are materialised.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.perf.measure_rollup as measure_rollup
from repro.core import FlowGraph, ItemLevel
from repro.core.aggregation import expand_weighted, total_weight
from repro.core.flowcube import FlowCube
from repro.core.lattice import ItemLattice
from repro.core.serialization import cube_to_json, flowgraph_to_dict
from repro.errors import CubeError
from repro.perf.measure_rollup import derivation_plan
from repro.synth import GeneratorConfig, generate_path_database
from tests.test_properties import agg_paths, path_databases

# ----------------------------------------------------------------------
# FlowGraph.merge unit suite
# ----------------------------------------------------------------------


def _graph(paths):
    graph = FlowGraph()
    for path in paths:
        graph.add_path(path)
    return graph


@given(agg_paths, agg_paths)
def test_merge_equals_union_build(a, b):
    merged = FlowGraph().merge([_graph(a), _graph(b)])
    union = _graph(a + b)
    assert flowgraph_to_dict(merged) == flowgraph_to_dict(union)


@given(agg_paths, agg_paths, agg_paths)
def test_merge_is_associative(a, b, c):
    left = FlowGraph().merge(
        [FlowGraph().merge([_graph(a), _graph(b)]), _graph(c)]
    )
    right = FlowGraph().merge(
        [_graph(a), FlowGraph().merge([_graph(b), _graph(c)])]
    )
    assert flowgraph_to_dict(left) == flowgraph_to_dict(right)


@given(agg_paths, agg_paths)
def test_merge_conserves_weight(a, b):
    merged = FlowGraph().merge([_graph(a), _graph(b)])
    assert merged.n_paths == len(a) + len(b)
    for node in merged.nodes():
        assert node.count == sum(node.duration_counts.values())
        assert sum(node.transition_counts.values()) == node.count


@given(agg_paths, agg_paths)
def test_merge_renormalises_distributions(a, b):
    merged = FlowGraph().merge([_graph(a), _graph(b)])
    union = _graph(a + b)
    for node in merged.nodes():
        twin = union.node(node.prefix)
        assert node.duration_distribution() == twin.duration_distribution()
        assert node.transition_distribution() == twin.transition_distribution()


def test_merge_leaves_inputs_untouched():
    a = _graph([(("f", "1"), ("s", "2"))])
    before = flowgraph_to_dict(a)
    FlowGraph().merge([a, _graph([(("f", "3"),)])])
    assert flowgraph_to_dict(a) == before


# ----------------------------------------------------------------------
# derivation plan
# ----------------------------------------------------------------------


def test_full_lattice_has_single_root():
    lattice = ItemLattice([2, 3])
    plan = derivation_plan(list(lattice))
    roots = [level for level, source in plan if source is None]
    assert roots == [lattice.base]
    for level, source in plan:
        if source is not None:
            assert level.is_higher_or_equal(source) and level != source


def test_sparse_subset_gets_multiple_roots():
    # Two incomparable levels and their common ancestor: the ancestor can
    # derive from either, the two deep levels must both scan records.
    levels = [ItemLevel((0, 0)), ItemLevel((2, 0)), ItemLevel((0, 3))]
    plan = dict(derivation_plan(levels))
    assert plan[ItemLevel((2, 0))] is None
    assert plan[ItemLevel((0, 3))] is None
    assert plan[ItemLevel((0, 0))] in (ItemLevel((2, 0)), ItemLevel((0, 3)))


# ----------------------------------------------------------------------
# engine parity (in-memory)
# ----------------------------------------------------------------------


@settings(
    deadline=None,
    max_examples=20,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(path_databases(), st.sampled_from([0.05, 0.1, 2]))
def test_engines_byte_identical(database, min_support):
    direct = FlowCube.build(
        database, min_support=min_support, min_deviation=0.05, engine="direct"
    )
    rollup = FlowCube.build(
        database, min_support=min_support, min_deviation=0.05, engine="rollup"
    )
    assert cube_to_json(direct) == cube_to_json(rollup)


@settings(
    deadline=None,
    max_examples=10,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(path_databases(), st.integers(min_value=0, max_value=3))
def test_engines_byte_identical_on_level_subsets(database, pick):
    # Partial materialisation plans hand FlowCube.build arbitrary level
    # subsets; the roll-up engine must degrade to multiple roots and agree.
    lattice = ItemLattice([h.depth for h in database.schema.dimensions])
    levels = list(lattice)
    subset = levels[pick::2] or [lattice.apex]
    direct = FlowCube.build(
        database, item_levels=subset, min_support=0.1, engine="direct"
    )
    rollup = FlowCube.build(
        database, item_levels=subset, min_support=0.1, engine="rollup"
    )
    assert cube_to_json(direct) == cube_to_json(rollup)


def test_deeper_hierarchies_byte_identical():
    config = GeneratorConfig(
        n_paths=150,
        n_dims=3,
        dim_fanouts=(2, 2, 2, 2),
        n_location_groups=3,
        locations_per_group=3,
        n_sequences=10,
        max_path_length=5,
        max_duration=4,
        seed=17,
    )
    database = generate_path_database(config)
    direct = FlowCube.build(database, min_support=0.05, engine="direct")
    rollup = FlowCube.build(database, min_support=0.05, engine="rollup")
    assert cube_to_json(direct) == cube_to_json(rollup)


def test_unknown_engine_rejected():
    database = generate_path_database(GeneratorConfig(n_paths=20, seed=1))
    try:
        FlowCube.build(database, engine="psychic")
    except CubeError as exc:
        assert "psychic" in str(exc)
    else:  # pragma: no cover - defensive
        raise AssertionError("bad engine accepted")


# ----------------------------------------------------------------------
# engine parity (out-of-core) + weighted cells
# ----------------------------------------------------------------------

STORE_CONFIG = GeneratorConfig(
    n_paths=120,
    n_dims=2,
    dim_fanouts=(2, 3),
    n_location_groups=3,
    locations_per_group=2,
    n_sequences=8,
    max_path_length=4,
    max_duration=3,
    seed=29,
)


def _store(tmp_path):
    from repro.store import PartitionedPathStore

    database = generate_path_database(STORE_CONFIG)
    store = PartitionedPathStore.init(
        tmp_path / "wh", database.schema, partition_size=30
    )
    store.ingest(database)
    return database, store


def test_out_of_core_rollup_byte_identical(tmp_path):
    from repro.store import build_cube

    database, store = _store(tmp_path)
    direct = FlowCube.build(database, min_support=0.1, engine="direct")
    serial = build_cube(store, min_support=0.1, engine="rollup", jobs=1)
    parallel = build_cube(store, min_support=0.1, engine="rollup", jobs=2)
    expected = cube_to_json(direct)
    assert cube_to_json(serial) == expected
    assert cube_to_json(parallel) == expected


def test_cell_paths_are_weighted(tmp_path):
    database = generate_path_database(STORE_CONFIG)
    rollup = FlowCube.build(database, min_support=0.1, engine="rollup")
    direct = FlowCube.build(database, min_support=0.1, engine="direct")
    for cell in rollup.cells():
        # Weights conserve the record count and the flowgraph's path count.
        assert total_weight(cell.paths) == cell.n_paths == cell.flowgraph.n_paths
        assert len({path for path, _ in cell.paths}) == len(cell.paths)
    for cuboid in direct.cuboids:
        twin = rollup.cuboid(cuboid.item_level, cuboid.path_level)
        for cell in cuboid:
            other = twin.cell(cell.key)
            # Same multiset of aggregated paths, engine-independent.
            assert sorted(expand_weighted(cell.paths)) == sorted(
                expand_weighted(other.paths)
            )


# ----------------------------------------------------------------------
# the aggregate-once guarantee
# ----------------------------------------------------------------------


def _counting_hook(monkeypatch):
    calls = {"n": 0}
    real = measure_rollup.aggregate_path

    def counted(path, level, *args, **kwargs):
        calls["n"] += 1
        return real(path, level, *args, **kwargs)

    monkeypatch.setattr(measure_rollup, "aggregate_path", counted)
    return calls


def test_rollup_aggregates_once_per_path_level(monkeypatch):
    database = generate_path_database(STORE_CONFIG)
    calls = _counting_hook(monkeypatch)
    cube = FlowCube.build(database, min_support=0.1, engine="rollup")
    n_item_levels = len(list(cube.item_lattice))
    assert n_item_levels >= 3
    # Exactly once per record per path level — independent of item levels.
    assert calls["n"] == len(database) * len(cube.path_lattice)


def test_out_of_core_rollup_aggregates_once(tmp_path, monkeypatch):
    from repro.store import build_cube

    database, store = _store(tmp_path)
    calls = _counting_hook(monkeypatch)
    cube = build_cube(store, min_support=0.1, engine="rollup", jobs=1)
    assert calls["n"] == len(database) * len(cube.path_lattice)
