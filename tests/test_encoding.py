"""Tests for Section 5 encodings (repro.encoding)."""

import pytest

from repro.core import PathLattice
from repro.encoding import (
    DimItem,
    StageItem,
    TransactionDatabase,
    aggregate_prefix,
    decode_dim_item,
    encode_dimension_value,
    is_stage_ancestor,
    render_dim_item,
    render_stage_item,
    stages_linkable,
)
from repro.errors import EncodingError

SHORT = {
    "factory": "f",
    "dist center": "d",
    "truck": "t",
    "warehouse": "w",
    "shelf": "s",
    "checkout": "c",
    "backroom": "b",
    "transportation": "T",
    "store": "S",
}


class TestDimItem:
    def test_encode_jacket(self, product_hierarchy):
        item = encode_dimension_value(0, "jacket", product_hierarchy)
        assert item.level == 3
        assert decode_dim_item(item, product_hierarchy) == "jacket"

    def test_render_matches_paper_style(self, product_hierarchy):
        item = encode_dimension_value(0, "outerwear", product_hierarchy)
        text = render_dim_item(item, product_hierarchy)
        assert text.startswith("1")  # dimension digit
        assert text.endswith("*")  # padded below its level

    def test_ancestors(self, product_hierarchy):
        item = encode_dimension_value(0, "jacket", product_hierarchy)
        ancestors = item.ancestors()
        assert [a.level for a in ancestors] == [2, 1]
        assert decode_dim_item(ancestors[0], product_hierarchy) == "outerwear"

    def test_is_ancestor_of(self, product_hierarchy):
        jacket = encode_dimension_value(0, "jacket", product_hierarchy)
        outerwear = encode_dimension_value(0, "outerwear", product_hierarchy)
        assert outerwear.is_ancestor_of(jacket)
        assert not jacket.is_ancestor_of(outerwear)
        other_dim = DimItem(1, outerwear.code)
        assert not other_dim.is_ancestor_of(jacket)

    def test_apex_not_encodable(self, product_hierarchy):
        with pytest.raises(EncodingError):
            encode_dimension_value(0, "*", product_hierarchy)
        with pytest.raises(EncodingError):
            DimItem(0, "")

    def test_apex_pseudo_item_level(self):
        assert DimItem(0, "*").level == 0


class TestStageItem:
    def test_render(self):
        item = StageItem(0, ("factory", "dist center", "truck"), "1")
        assert render_stage_item(item, SHORT) == "(fdt,1)"

    def test_render_default_letters(self):
        item = StageItem(0, ("alpha", "beta"), "2")
        assert render_stage_item(item) == "(ab,2)"

    def test_empty_prefix_rejected(self):
        with pytest.raises(EncodingError):
            StageItem(0, (), "1")

    def test_position_and_location(self):
        item = StageItem(0, ("f", "d"), "2")
        assert item.position == 2
        assert item.location == "d"


class TestLinkability:
    def test_nested_prefixes_link(self):
        a = StageItem(0, ("f",), "1")
        b = StageItem(0, ("f", "d"), "2")
        assert stages_linkable(a, b)
        assert stages_linkable(b, a)

    def test_unrelated_prefixes_do_not_link(self):
        # The paper's example: (fd,2) and (fts,5) can never co-occur.
        a = StageItem(0, ("f", "d"), "2")
        b = StageItem(0, ("f", "t", "s"), "5")
        assert not stages_linkable(a, b)

    def test_same_stage_different_durations_do_not_link(self):
        a = StageItem(0, ("f",), "1")
        b = StageItem(0, ("f",), "2")
        assert not stages_linkable(a, b)

    def test_different_levels_do_not_link(self):
        a = StageItem(0, ("f",), "1")
        b = StageItem(1, ("f", "d"), "2")
        assert not stages_linkable(a, b)


class TestStageAncestor:
    def test_duration_star_is_ancestor(self, paper_db, paper_lattice):
        # Level 0: leaf view + durations; level 1: leaf view + '*'.
        concrete = StageItem(0, ("factory",), "10")
        star = StageItem(1, ("factory",), "*")
        assert is_stage_ancestor(star, concrete, paper_lattice)
        assert not is_stage_ancestor(concrete, star, paper_lattice)

    def test_coarse_view_is_ancestor(self, paper_lattice):
        # Level 3: coarse view + '*'; (f,d,t) aggregates to (f,T).
        fine = StageItem(0, ("factory", "dist center", "truck"), "1")
        coarse = StageItem(3, ("factory", "transportation"), "*")
        assert is_stage_ancestor(coarse, fine, paper_lattice)

    def test_concrete_duration_across_views_not_implied(self, paper_lattice):
        # Merging changes durations, so a concrete-duration coarse stage is
        # NOT a guaranteed ancestor.
        fine = StageItem(0, ("factory", "dist center", "truck"), "1")
        coarse = StageItem(2, ("factory", "transportation"), "1")
        assert not is_stage_ancestor(coarse, fine, paper_lattice)

    def test_aggregate_prefix_merges(self, paper_lattice):
        coarse_level = paper_lattice[3]
        assert aggregate_prefix(
            ("factory", "dist center", "truck"), coarse_level
        ) == ("factory", "transportation")


class TestTransactionDatabase:
    def test_table3_rendering(self, paper_db, paper_lattice):
        tdb = TransactionDatabase(paper_db, paper_lattice)
        rendered = tdb.render_transaction(tdb.transactions[0], SHORT)
        assert rendered == [
            "1121",
            "21",
            "(f,10)",
            "(fd,2)",
            "(fdt,1)",
            "(fdts,5)",
            "(fdtsc,0)",
        ]

    def test_closure_contains_all_levels(self, paper_db, paper_lattice):
        tdb = TransactionDatabase(paper_db, paper_lattice)
        items = tdb.transactions[0].items
        dims = {i for i in items if isinstance(i, DimItem)}
        # product contributes 3 levels, brand 1.
        assert {i.level for i in dims if i.dim == 0} == {1, 2, 3}
        stage_levels = {i.level_id for i in items if isinstance(i, StageItem)}
        assert stage_levels == {0, 1, 2, 3}

    def test_top_level_items_excluded_by_default(self, paper_db, paper_lattice):
        tdb = TransactionDatabase(paper_db, paper_lattice)
        assert not any(
            isinstance(i, DimItem) and i.code == "*"
            for t in tdb for i in t.items
        )

    def test_top_level_items_for_basic(self, paper_db, paper_lattice):
        tdb = TransactionDatabase(paper_db, paper_lattice, include_top_level=True)
        apex_items = {
            i for t in tdb for i in t.items
            if isinstance(i, DimItem) and i.code == "*"
        }
        assert apex_items == {DimItem(0, "*"), DimItem(1, "*")}

    def test_describe(self, paper_db, paper_lattice):
        tdb = TransactionDatabase(paper_db, paper_lattice)
        stats = tdb.describe()
        assert stats["transactions"] == 8
        assert stats["path_levels"] == 4
        assert stats["distinct_items"] > 0

    def test_transaction_membership(self, paper_db, paper_lattice):
        tdb = TransactionDatabase(paper_db, paper_lattice)
        transaction = tdb.transactions[0]
        some_item = next(iter(transaction.items))
        assert some_item in transaction
        assert len(transaction) == len(transaction.items)
