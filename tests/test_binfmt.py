"""The binary storage backend: codecs, cell heap, migration, parity.

Four contracts:

* **codec round-trips** (hypothesis): the columnar partition codec
  agrees with the CSV interchange round-trip on adversarial values —
  unicode, the path column's own separators (``|``, ``:``, ``\\``),
  and string blobs whose byte length is not a multiple of eight (the
  full-buffer-``cast('q')`` bug class) — and the cell-index codec is
  an exact fixed point for arbitrary cuboid layouts including empty
  cuboids and empty indexes;
* **byte-identical cubes**: ``cube_to_json`` of a cube built from a
  binary store equals the one built from a JSON/CSV store, across
  engine × kernel × jobs;
* **in-place migration**: ``flowcube-store migrate`` converts
  partitions and cells both ways, parity-checked, leaving no orphan
  files;
* **read behaviour over the heap**: the LRU fronts binary cells the
  same way it fronts JSON cell files, and ``maybe_reload`` notices a
  cross-handle rebuild through the single-read meta signature.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hierarchy import ConceptHierarchy
from repro.core.path import Path, PathRecord
from repro.core.path_database import PathDatabase, PathSchema
from repro.core.serialization import cube_to_json
from repro.core.stage import Stage
from repro.errors import StoreError
from repro.store import CubeStore, PartitionedPathStore, build_cube
from repro.store.binfmt import (
    INDEX_MAGIC,
    ORDER_TAG,
    pack_cell_index,
    pack_partition,
    unpack_cell_index,
    unpack_partition,
)
from repro.store.cli import main

# ----------------------------------------------------------------------
# partition codec (hypothesis)
# ----------------------------------------------------------------------

# Unicode of every width (so the UTF-8 blob length is rarely a multiple
# of eight) plus the path column's own separator characters.
_TEXT = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",), blacklist_characters="\r"),
    min_size=1,
    max_size=8,
).filter(lambda s: s != "*")
_SEPARATORS = st.sampled_from(
    ["a|b", "c:d", "e\\f", "naïve", "ブランド", "🛒", "\\", "|", ":", "::"]
)
_VALUE = st.one_of(_TEXT, _SEPARATORS)
_DURATION = st.floats(
    min_value=0, allow_nan=False, allow_infinity=False, width=64
)


@st.composite
def binary_databases(draw):
    """A small database stressing interning, unicode, and alignment."""
    n_dims = draw(st.integers(min_value=1, max_value=3))
    dim_values = draw(st.lists(_VALUE, min_size=1, max_size=4, unique=True))
    locations = draw(st.lists(_VALUE, min_size=1, max_size=4, unique=True))
    schema = PathSchema(
        dimensions=tuple(
            ConceptHierarchy.flat(f"d{i}", dim_values) for i in range(n_dims)
        ),
        location=ConceptHierarchy.flat("location", locations),
        duration=ConceptHierarchy.flat("duration", ["0", "1"]),
    )
    records = []
    for record_id in range(1, draw(st.integers(min_value=0, max_value=5)) + 1):
        dims = tuple(
            draw(st.sampled_from(dim_values)) for _ in range(n_dims)
        )
        stages = [
            Stage(draw(st.sampled_from(locations)), draw(_DURATION))
            for _ in range(draw(st.integers(min_value=1, max_value=3)))
        ]
        records.append(PathRecord(record_id, dims, Path(stages)))
    return PathDatabase(schema, records)


@given(binary_databases())
@settings(max_examples=60, deadline=None)
def test_partition_codec_agrees_with_csv_roundtrip(database):
    # The contract: decoding pack_partition's blob yields exactly what
    # writing and re-reading the CSV interchange format yields (which
    # floats every duration), so the two partition layouts are
    # interchangeable underneath the store.
    via_csv = PathDatabase.from_csv(database.schema, database.to_csv())
    via_binary = unpack_partition(pack_partition(database), database.schema)
    assert list(via_binary) == list(via_csv)
    assert via_binary.to_csv() == via_csv.to_csv()
    # Packing is deterministic and a fixed point over its own decode.
    assert pack_partition(via_binary) == pack_partition(via_csv)


def test_partition_codec_rejects_garbage_and_foreign_endianness():
    database = PathDatabase(
        PathSchema(
            dimensions=(ConceptHierarchy.flat("d0", ["x"]),),
            location=ConceptHierarchy.flat("location", ["a"]),
            duration=ConceptHierarchy.flat("duration", ["0"]),
        ),
        [PathRecord(1, ("x",), Path([Stage("a", 1.0)]))],
    )
    blob = pack_partition(database)
    with pytest.raises(StoreError):
        unpack_partition(b"not a partition", database.schema)
    with pytest.raises(StoreError):
        unpack_partition(blob[:40], database.schema)  # truncated header
    # Byte-swap the ORDER_TAG word: a foreign-endian file must be
    # rejected, not silently mis-decoded.
    swapped = bytearray(blob)
    swapped[8:16] = blob[8:16][::-1]
    with pytest.raises(StoreError):
        unpack_partition(bytes(swapped), database.schema)


# ----------------------------------------------------------------------
# cell-index codec (hypothesis)
# ----------------------------------------------------------------------

_KEY_PART = st.one_of(st.just("*"), _VALUE)


@st.composite
def cell_indexes(draw):
    """(cuboids, n_dims) for the index codec, empty cuboids included."""
    n_dims = draw(st.integers(min_value=0, max_value=3))
    cuboids = []
    offset = 8
    for level_id in range(draw(st.integers(min_value=0, max_value=3))):
        item_level = tuple(
            draw(st.integers(min_value=0, max_value=4)) for _ in range(n_dims)
        )
        cells = []
        for _ in range(draw(st.integers(min_value=0, max_value=4))):
            key = tuple(draw(_KEY_PART) for _ in range(n_dims))
            length = draw(st.integers(min_value=0, max_value=1 << 20))
            cells.append(
                (
                    key,
                    offset,
                    length,
                    draw(st.integers(min_value=0, max_value=1 << 40)),
                    draw(st.booleans()),
                )
            )
            offset += 8 + length
        cuboids.append((item_level, level_id, cells))
    return cuboids, n_dims


@given(cell_indexes())
@settings(max_examples=60, deadline=None)
def test_cell_index_codec_is_a_fixed_point(case):
    cuboids, n_dims = case
    blob = pack_cell_index(cuboids, n_dims)
    decoded = unpack_cell_index(blob)
    assert len(decoded) == len(cuboids)
    for (item_level, level_id, cells), got in zip(cuboids, decoded):
        got_levels, got_level_id, got_keys, got_entries, got_masks = got
        assert got_levels == item_level
        assert got_level_id == level_id
        assert got_keys == [cell[0] for cell in cells]
        assert got_entries == [
            (cell[1], cell[2], cell[3], cell[4]) for cell in cells
        ]
        # The precomputed catalog masks are exactly what a per-cell
        # index pass over the keys would produce.
        expected: list[dict[str, int]] = [{} for _ in range(n_dims)]
        for ordinal, key in enumerate(got_keys):
            for dim, value in enumerate(key):
                expected[dim][value] = expected[dim].get(value, 0) | (
                    1 << ordinal
                )
        assert got_masks == expected
    # Deterministic encode.
    assert pack_cell_index(cuboids, n_dims) == blob


def test_cell_index_rejects_corruption():
    blob = pack_cell_index(
        [((0,), 0, [(("a",), 8, 4, 2, False)])], 1
    )
    assert blob[:8] == INDEX_MAGIC
    with pytest.raises(StoreError):
        unpack_cell_index(blob[: len(blob) - 8])
    with pytest.raises(StoreError):
        unpack_cell_index(b"FCWRONG!" + blob[8:])
    swapped = bytearray(blob)
    swapped[8:16] = blob[8:16][::-1]
    assert int.from_bytes(blob[8:16], "little") == ORDER_TAG
    with pytest.raises(StoreError):
        unpack_cell_index(bytes(swapped))


# ----------------------------------------------------------------------
# byte-identical cubes across formats × engine × kernel × jobs
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def example_database():
    from repro.core.path_database import example_path_database

    return example_path_database()


@pytest.mark.parametrize("engine", ["rollup", "direct"])
@pytest.mark.parametrize("kernel", ["bitmap", "scan"])
@pytest.mark.parametrize("jobs", [1, 2])
def test_cube_json_identical_across_formats(
    tmp_path, example_database, engine, kernel, jobs
):
    rendered = {}
    for store_format in ("binary", "json"):
        directory = tmp_path / store_format
        store = PartitionedPathStore.init(
            directory,
            example_database.schema,
            partition_size=3,
            store_format=store_format,
        )
        store.ingest(example_database)
        build_cube(
            store,
            min_support=0.25,
            min_deviation=2.0,
            into=store.cube_store(),
            engine=engine,
            kernel=kernel,
            jobs=jobs,
        )
        cold = PartitionedPathStore.open(directory).cube_store()
        assert cold.cell_format == store_format
        rendered[store_format] = cube_to_json(cold)
    assert rendered["binary"] == rendered["json"]


# ----------------------------------------------------------------------
# in-place migration
# ----------------------------------------------------------------------

def _file_names(directory):
    # The shared string table (strings.bin) is store-level metadata, not
    # a partition file — the per-partition assertions ignore it.
    if not directory.exists():
        return []
    return sorted(
        p.name for p in directory.iterdir() if p.name != "strings.bin"
    )


def test_migrate_cli_round_trip(tmp_path, capsys, example_database):
    target = str(tmp_path / "wh")
    assert main(["init", target, "--example", "--partition-size", "3",
                 "--format", "json"]) == 0
    assert main(["ingest", target, "--example"]) == 0
    assert main(["build", target, "--min-support", "0.25",
                 "--min-deviation", "2.0"]) == 0
    store = PartitionedPathStore.open(target)
    baseline = cube_to_json(store.cube_store())
    capsys.readouterr()

    assert main(["migrate", target, "--to", "binary"]) == 0
    output = capsys.readouterr().out
    assert "partition" in output and "cube" in output and "binary" in output
    migrated = PartitionedPathStore.open(target)
    assert migrated.store_format == "binary"
    assert all(
        name.endswith(".bin")
        for name in _file_names(tmp_path / "wh" / "partitions")
    )
    cube_dir = tmp_path / "wh" / "cube"
    names = _file_names(cube_dir)
    assert "cells.bin" in names and "cells.idx" in names
    assert not list((cube_dir / "cells").glob("*.json")) if (
        cube_dir / "cells"
    ).exists() else True
    assert cube_to_json(migrated.cube_store()) == baseline

    # Migrating an already-binary store is a cheap no-op.
    assert main(["migrate", target, "--to", "binary"]) == 0
    assert "already" in capsys.readouterr().out

    # And back: the portable layout returns, still byte-identical.
    assert main(["migrate", target, "--to", "json"]) == 0
    back = PartitionedPathStore.open(target)
    assert back.store_format == "json"
    assert all(
        name.endswith(".csv")
        for name in _file_names(tmp_path / "wh" / "partitions")
    )
    names = _file_names(cube_dir)
    assert "cells.bin" not in names and "cells.idx" not in names
    assert cube_to_json(back.cube_store()) == baseline


def test_migration_survives_mixed_suffix_stores(tmp_path, example_database):
    # A store interrupted mid-migration has partitions in both formats;
    # reads dispatch per file, and a rerun finishes the job.
    store = PartitionedPathStore.init(
        tmp_path / "s",
        example_database.schema,
        partition_size=2,
        store_format="json",
    )
    store.ingest(example_database)
    before = store.load_all().to_csv()

    calls = []

    def interrupt(done, total, filename):
        calls.append(filename)
        if done == 2:
            raise KeyboardInterrupt

    with pytest.raises(KeyboardInterrupt):
        store.migrate_partitions("binary", progress=interrupt)
    reopened = PartitionedPathStore.open(tmp_path / "s")
    suffixes = {
        name[-4:] for name in _file_names(tmp_path / "s" / "partitions")
    }
    assert suffixes == {".bin", ".csv"}
    assert reopened.load_all().to_csv() == before  # mixed reads work
    total = len(_file_names(tmp_path / "s" / "partitions"))
    result = reopened.migrate_partitions("binary")
    assert result["skipped"] == 2 and result["partitions"] == total - 2
    assert reopened.store_format == "binary"
    assert PartitionedPathStore.open(tmp_path / "s").load_all().to_csv() == before


# ----------------------------------------------------------------------
# CubeStore behaviour over the heap backend
# ----------------------------------------------------------------------

def _built_binary_store(tmp_path, database, cache_size=128):
    store = PartitionedPathStore.init(
        tmp_path / "s", database.schema, partition_size=3
    )
    store.ingest(database)
    build_cube(
        store,
        min_support=0.25,
        min_deviation=2.0,
        into=store.cube_store(cache_size=cache_size),
    )
    return store


def test_lru_over_binary_cells(tmp_path, example_database):
    store = _built_binary_store(tmp_path, example_database)
    cube_store = CubeStore(
        tmp_path / "s" / "cube", example_database.schema, cache_size=2
    )
    assert cube_store.cell_format == "binary"
    cuboid = max(cube_store.cuboids, key=len)
    keys = cuboid.keys[:3]
    assert len(keys) == 3
    level = cuboid.item_level
    path_level = cuboid.path_level

    first = cube_store.cell(level, keys[0], path_level)
    assert cube_store.cell(level, keys[0], path_level) is first  # warm hit
    stats = cube_store.cache_stats()
    assert stats["hits"] == 1 and stats["misses"] == 1

    cube_store.cell(level, keys[1], path_level)
    cube_store.cell(level, keys[2], path_level)  # evicts keys[0]
    assert cube_store.cache_stats()["evictions"] == 1
    again = cube_store.cell(level, keys[0], path_level)
    assert again is not first  # rematerialised from the heap
    assert again.record_ids == first.record_ids
    assert cube_store.cache_stats()["misses"] == 4


def test_cell_sizes_and_describe_need_no_heap(tmp_path, example_database):
    store = _built_binary_store(tmp_path, example_database)
    cube_dir = tmp_path / "s" / "cube"
    heap = (cube_dir / "cells.bin").read_bytes()
    (cube_dir / "cells.bin").unlink()
    # Index-only reads (open, sizes, describe) never touch cell bytes.
    cube_store = CubeStore(cube_dir, example_database.schema)
    cuboid = cube_store.cuboids[0]
    sizes = cube_store.cell_sizes(cuboid.item_level, cuboid.path_level)
    assert sizes and all(n > 0 for n in sizes.values())
    assert cube_store.describe()["format"] == "binary"
    # ... but materialising a cell does, and reports the loss clearly.
    with pytest.raises(StoreError, match="cell heap"):
        cube_store.cell(cuboid.item_level, cuboid.keys[0], cuboid.path_level)
    (cube_dir / "cells.bin").write_bytes(heap)
    assert cube_store.cell(
        cuboid.item_level, cuboid.keys[0], cuboid.path_level
    )


def test_cold_open_serves_precomputed_catalog_masks(
    tmp_path, example_database
):
    from repro.perf.query_kernel import CuboidKeyCatalog

    _built_binary_store(tmp_path, example_database)
    cold = PartitionedPathStore.open(tmp_path / "s").cube_store()
    hierarchies = example_database.schema.dimensions
    for cuboid in cold.cuboids:
        assert cuboid.value_masks is not None
        fast = CuboidKeyCatalog(
            cuboid.keys, hierarchies, cuboid.value_masks
        )
        derived = CuboidKeyCatalog(cuboid.keys, hierarchies)
        for dim in range(len(hierarchies)):
            for key in cuboid.keys:
                value = key[dim]
                assert fast.value_mask(dim, value) == derived.value_mask(
                    dim, value
                )


def test_maybe_reload_sees_cross_handle_rebuild(tmp_path, example_database):
    store = _built_binary_store(tmp_path, example_database)
    reader = PartitionedPathStore.open(tmp_path / "s").cube_store()
    version = reader.version
    assert reader.maybe_reload() is False  # signature unchanged

    # Another handle rebuilds with a different threshold: the meta file
    # is replaced, and the reader notices through the atomic signature.
    build_cube(
        store,
        min_support=0.5,
        min_deviation=2.0,
        into=store.cube_store(),
    )
    assert reader.maybe_reload() is True
    assert reader.version > version
    assert reader.min_support == 0.5
    assert reader.maybe_reload() is False


def test_meta_format_field_defaults_to_json_for_legacy_cubes(
    tmp_path, example_database
):
    # A cube written by the JSON backend minus the "format" field (the
    # pre-binary layout) still opens as JSON cells.
    store = PartitionedPathStore.init(
        tmp_path / "s",
        example_database.schema,
        partition_size=3,
        store_format="json",
    )
    store.ingest(example_database)
    build_cube(
        store, min_support=0.25, min_deviation=2.0, into=store.cube_store()
    )
    meta_path = tmp_path / "s" / "cube" / "cube.json"
    payload = json.loads(meta_path.read_text(encoding="utf-8"))
    assert payload["format"] == "json"
    del payload["format"]
    meta_path.write_text(json.dumps(payload, indent=1), encoding="utf-8")
    legacy = PartitionedPathStore.open(tmp_path / "s").cube_store()
    assert legacy.cell_format == "json"
    assert legacy.n_cells() > 0
    next(iter(legacy.cuboids[0]))  # cells still materialise
