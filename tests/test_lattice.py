"""Unit tests for item and path abstraction lattices (repro.core.lattice)."""

import pytest

from repro.core import (
    DURATION_ANY,
    DURATION_VALUE,
    ItemLattice,
    ItemLevel,
    LocationView,
    PathLattice,
    PathLevel,
)
from repro.errors import LevelError


class TestItemLevel:
    def test_ordering_relation(self):
        high = ItemLevel((1, 0))
        low = ItemLevel((2, 1))
        assert high.is_higher_or_equal(low)
        assert not low.is_higher_or_equal(high)
        assert high.is_higher_or_equal(high)

    def test_incomparable(self):
        a = ItemLevel((2, 0))
        b = ItemLevel((0, 2))
        assert not a.is_higher_or_equal(b)
        assert not b.is_higher_or_equal(a)

    def test_arity_mismatch(self):
        with pytest.raises(LevelError):
            ItemLevel((1,)).is_higher_or_equal(ItemLevel((1, 2)))

    def test_parents(self):
        assert set(ItemLevel((1, 2)).parents()) == {
            ItemLevel((0, 2)),
            ItemLevel((1, 1)),
        }
        assert ItemLevel((0, 0)).parents() == ()

    def test_children_within(self):
        children = ItemLevel((1, 2)).children_within((2, 2))
        assert children == (ItemLevel((2, 2)),)

    def test_negative_rejected(self):
        with pytest.raises(LevelError):
            ItemLevel((-1, 0))


class TestItemLattice:
    def test_size(self):
        lattice = ItemLattice((3, 1))
        assert len(lattice) == 4 * 2
        assert len(list(lattice)) == 8

    def test_iteration_most_general_first(self):
        lattice = ItemLattice((2, 2))
        levels = list(lattice)
        assert levels[0] == lattice.apex
        totals = [sum(lv.levels) for lv in levels]
        assert totals == sorted(totals)

    def test_membership(self):
        lattice = ItemLattice((2, 1))
        assert ItemLevel((2, 1)) in lattice
        assert ItemLevel((3, 0)) not in lattice
        assert ItemLevel((1,)) not in lattice

    def test_apex_and_base(self):
        lattice = ItemLattice((2, 3))
        assert lattice.apex == ItemLevel((0, 0))
        assert lattice.base == ItemLevel((2, 3))

    def test_rejects_depth_zero(self):
        with pytest.raises(LevelError):
            ItemLattice((0,))


class TestLocationView:
    def test_leaf_view_identity(self, location_hierarchy):
        view = LocationView.leaf_view(location_hierarchy)
        assert view.aggregate("truck") == "truck"
        assert view.aggregate("shelf") == "shelf"

    def test_level_view_rolls_up(self, location_hierarchy):
        view = LocationView.level_view(location_hierarchy, 1)
        assert view.aggregate("truck") == "transportation"
        assert view.aggregate("shelf") == "store"
        assert view.aggregate("factory") == "factory"

    def test_mixed_view(self, location_hierarchy):
        # Transportation manager's Figure 5 view: transport leaves kept,
        # store rolled up.
        view = LocationView(
            location_hierarchy,
            ["dist center", "truck", "warehouse", "factory", "store"],
        )
        assert view.aggregate("truck") == "truck"
        assert view.aggregate("checkout") == "store"

    def test_rejects_non_antichain(self, location_hierarchy):
        with pytest.raises(LevelError, match="antichain"):
            LocationView(location_hierarchy, ["transportation", "truck", "store", "factory"])

    def test_rejects_uncovered_leaves(self, location_hierarchy):
        with pytest.raises(LevelError, match="does not cover"):
            LocationView(location_hierarchy, ["transportation", "store"])

    def test_ordering(self, location_hierarchy):
        coarse = LocationView.level_view(location_hierarchy, 1)
        fine = LocationView.leaf_view(location_hierarchy)
        assert coarse.is_higher_or_equal(fine)
        assert not fine.is_higher_or_equal(coarse)
        assert coarse.is_higher_or_equal(coarse)

    def test_aggregate_non_leaf_input(self, location_hierarchy):
        coarse = LocationView.level_view(location_hierarchy, 1)
        assert coarse.aggregate("transportation") == "transportation"


class TestPathLattice:
    def test_paper_default_has_four_levels(self, paper_lattice):
        assert len(paper_lattice) == 4
        duration_levels = {lv.duration_level for lv in paper_lattice}
        assert duration_levels == {DURATION_ANY, DURATION_VALUE}

    def test_path_level_ordering(self, location_hierarchy):
        fine = PathLevel(LocationView.leaf_view(location_hierarchy), DURATION_VALUE)
        coarse = PathLevel(
            LocationView.level_view(location_hierarchy, 1), DURATION_ANY
        )
        assert coarse.is_higher_or_equal(fine)
        assert not fine.is_higher_or_equal(coarse)

    def test_index_of(self, paper_lattice):
        for i, level in enumerate(paper_lattice):
            assert paper_lattice.index_of(level) == i
        foreign = PathLevel(paper_lattice[0].view, 5)
        with pytest.raises(LevelError):
            paper_lattice.index_of(foreign)

    def test_empty_rejected(self):
        with pytest.raises(LevelError):
            PathLattice([])

    def test_paper_default_on_flat_hierarchy(self):
        """Depth-1 location hierarchy: coarse view equals leaf view, so
        only the two duration levels remain."""
        from repro.core import ConceptHierarchy

        flat = ConceptHierarchy.flat("location", ["a", "b"])
        lattice = PathLattice.paper_default(flat)
        assert len(lattice) == 2
        assert {lv.duration_level for lv in lattice} == {
            DURATION_ANY,
            DURATION_VALUE,
        }

    def test_negative_duration_level_rejected(self, location_hierarchy):
        with pytest.raises(LevelError):
            PathLevel(LocationView.leaf_view(location_hierarchy), -1)
