"""Tests for incremental flowcube maintenance (repro.core.incremental)."""

import pytest

from repro.core import (
    FlowCube,
    ItemLevel,
    Path,
    PathRecord,
    append_batch,
    example_path_database,
)
from repro.errors import CubeError


@pytest.fixture
def cube():
    return FlowCube.build(example_path_database(), min_support=2)


def new_record(record_id: int, dims=("tennis", "nike"), path=None) -> PathRecord:
    return PathRecord(
        record_id, dims, Path(path or [("factory", 5), ("truck", 1)])
    )


class TestAppendBatch:
    def test_empty_batch_is_noop(self, cube):
        before = cube.describe()
        stats = append_batch(cube, [])
        assert stats == {
            "updated": 0,
            "created": 0,
            "still_below_delta": 0,
            "demoted": 0,
        }
        assert cube.describe() == before

    def test_updated_cell_matches_rebuild(self, cube):
        batch = [new_record(100), new_record(101)]
        append_batch(cube, batch)

        # Rebuild from scratch over the extended database and compare the
        # algebraic measure of a touched cell.
        rebuilt = FlowCube.build(cube.database, min_support=2)
        level = cube.path_lattice[0]
        incremental_cell = cube.cell(ItemLevel((3, 1)), ("tennis", "nike"), level)
        rebuilt_cell = rebuilt.cell(ItemLevel((3, 1)), ("tennis", "nike"), level)
        assert incremental_cell.n_paths == rebuilt_cell.n_paths
        for node in rebuilt_cell.flowgraph.nodes():
            counterpart = incremental_cell.flowgraph.node(node.prefix)
            assert counterpart.duration_counts == node.duration_counts
            assert counterpart.transition_counts == node.transition_counts

    def test_exceptions_recomputed(self, cube):
        batch = [new_record(100 + i) for i in range(4)]
        append_batch(cube, batch)
        rebuilt = FlowCube.build(cube.database, min_support=2)
        level = cube.path_lattice[0]
        a = cube.cell(ItemLevel((3, 1)), ("tennis", "nike"), level)
        b = rebuilt.cell(ItemLevel((3, 1)), ("tennis", "nike"), level)
        assert set(map(str, a.flowgraph.exceptions)) == set(
            map(str, b.flowgraph.exceptions)
        )

    def test_cell_crosses_iceberg_frontier(self, cube):
        # (shirt, *) held 1 path (below δ=2); one more shirt materialises it.
        level = cube.path_lattice[0]
        assert ("shirt", "*") not in cube.cuboid(ItemLevel((3, 0)), level)
        stats = append_batch(
            cube,
            [new_record(200, dims=("shirt", "adidas"))],
        )
        assert stats["created"] > 0
        cell = cube.cell(ItemLevel((3, 0)), ("shirt", "*"), level)
        assert cell.n_paths == 2
        assert set(cell.record_ids) == {4, 200}

    def test_promoted_cell_slots_in_rebuild_order(self, cube):
        # A promoted cell must land where a rebuild would place it
        # (first-seen record order), not be appended at the end.
        append_batch(cube, [new_record(200, dims=("shirt", "adidas"))])
        rebuilt = FlowCube.build(cube.database, min_support=2)
        for cuboid in cube.cuboids:
            counterpart = rebuilt.cuboid(cuboid.item_level, cuboid.path_level)
            assert list(cuboid.cells) == list(counterpart.cells)

    def test_fractional_delta_demotes_untouched_cells(self):
        # With a fractional δ the resolved threshold grows with the
        # database, so a big batch can push untouched cells below it.
        database = example_path_database()
        cube = FlowCube.build(database, min_support=0.25)
        batch = [new_record(600 + i) for i in range(8)]
        stats = append_batch(cube, batch)
        assert stats["demoted"] > 0
        rebuilt = FlowCube.build(cube.database, min_support=0.25)
        for cuboid in cube.cuboids:
            counterpart = rebuilt.cuboid(cuboid.item_level, cuboid.path_level)
            assert list(cuboid.cells) == list(counterpart.cells)

    def test_brand_new_value_below_delta_not_created(self, cube):
        stats = append_batch(cube, [new_record(300, dims=("sandals", "adidas"))])
        assert stats["still_below_delta"] > 0
        level = cube.path_lattice[0]
        assert ("sandals", "adidas") not in cube.cuboid(ItemLevel((3, 1)), level)

    def test_duplicate_id_rejected(self, cube):
        with pytest.raises(CubeError, match="already in the cube"):
            append_batch(cube, [new_record(1)])

    def test_dimension_mismatch_rejected(self, cube):
        bad = PathRecord(400, ("tennis",), Path([("factory", 1)]))
        with pytest.raises(CubeError, match="dimensions"):
            append_batch(cube, [bad])

    def test_redundancy_marks_cleared_on_touched_cells(self, cube):
        from repro.core import prune_redundant, tv_similarity

        prune_redundant(cube, threshold=0.5, metric=tv_similarity)
        level = cube.path_lattice[0]
        target = cube.cell(ItemLevel((3, 1)), ("tennis", "nike"), level)
        if not target.redundant:
            pytest.skip("cell not marked at this threshold")
        append_batch(cube, [new_record(500)])
        assert not target.redundant
