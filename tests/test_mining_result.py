"""Tests for FlowMiningResult decoding and MiningStats bookkeeping."""

import pytest

from repro.core import ItemLevel, PathLattice
from repro.encoding import DimItem, StageItem
from repro.mining import FlowMiningResult, MiningStats, item_sort_key, shared_mine


class TestItemSortKey:
    def test_dims_before_stages(self):
        dim = DimItem(0, "1")
        stage = StageItem(0, ("f",), "1")
        assert item_sort_key(dim) < item_sort_key(stage)

    def test_total_order_on_mixed_alphabet(self):
        items = [
            StageItem(1, ("f",), "*"),
            DimItem(1, "2"),
            StageItem(0, ("f", "d"), "2"),
            DimItem(0, "12"),
            StageItem(0, ("f",), "1"),
            DimItem(0, "1"),
        ]
        ordered = sorted(items, key=item_sort_key)
        assert ordered[0] == DimItem(0, "1")
        assert isinstance(ordered[-1], StageItem)
        # Sorting twice is stable and identical.
        assert sorted(items, key=item_sort_key) == ordered


class TestDecoding:
    @pytest.fixture(scope="class")
    def result(self, paper_db):
        return shared_mine(paper_db, min_support=2)

    def test_segments_by_cell_keys(self, result, paper_lattice):
        packaged = result.segments_by_cell()
        for (item_level, path_level, key), segments in packaged.items():
            assert isinstance(item_level, ItemLevel)
            assert path_level in list(paper_lattice)
            assert len(key) == 2
            assert segments

    def test_apex_cell_support_is_database_size(self, result, paper_db):
        cells = result.frequent_cells()
        apex = (ItemLevel((0, 0)), ("*", "*"))
        assert cells[apex] == len(paper_db)

    def test_malformed_cell_itemsets_skipped(self, paper_db, paper_lattice):
        """Itemsets with two items on one dimension decode to no cell."""
        stats = MiningStats()
        supports = {
            frozenset([DimItem(0, "1"), DimItem(0, "12")]): 5,
        }
        result = FlowMiningResult(
            supports, 2, 8, paper_db.schema, paper_lattice, stats
        )
        cells = result.frequent_cells()
        assert len(cells) == 1  # only the implicit apex

    def test_cross_level_stage_itemsets_skipped(self, paper_db, paper_lattice):
        supports = {
            frozenset(
                [StageItem(0, ("factory",), "10"), StageItem(1, ("factory",), "*")]
            ): 5,
        }
        result = FlowMiningResult(
            supports, 2, 8, paper_db.schema, paper_lattice, MiningStats()
        )
        assert result.frequent_segments() == {}

    def test_non_nested_stage_itemsets_skipped(self, paper_db, paper_lattice):
        supports = {
            frozenset(
                [
                    StageItem(0, ("factory", "truck"), "1"),
                    StageItem(0, ("factory", "dist center"), "2"),
                ]
            ): 5,
        }
        result = FlowMiningResult(
            supports, 2, 8, paper_db.schema, paper_lattice, MiningStats()
        )
        assert result.frequent_segments() == {}


class TestMiningStats:
    def test_merge_accumulates(self):
        a = MiningStats()
        a.candidates_per_length[2] = 10
        a.scans = 2
        b = MiningStats()
        b.candidates_per_length[2] = 5
        b.candidates_per_length[3] = 7
        b.scans = 1
        b.pruned["subset"] = 4
        a.merge(b)
        assert a.candidates_per_length == {2: 15, 3: 7}
        assert a.scans == 3
        assert a.pruned["subset"] == 4

    def test_max_length_empty(self):
        assert MiningStats().max_length == 0

    def test_totals(self):
        stats = MiningStats()
        stats.candidates_per_length.update({1: 3, 2: 4})
        stats.frequent_per_length.update({1: 2})
        assert stats.total_candidates == 7
        assert stats.total_frequent == 2
