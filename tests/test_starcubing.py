"""Tests for the star-tree iceberg cuber (repro.mining.starcubing)."""

import pytest

from repro.core import ItemLevel
from repro.core.flowgraph_exceptions import resolve_min_support
from repro.mining import (
    buc_iceberg_cells,
    cubing_mine,
    shared_mine,
    star_iceberg_cells,
    star_table,
)


def as_map(cells):
    return {(level, key): frozenset(ids) for level, key, ids in cells}


class TestStarTable:
    def test_infrequent_leaves_rolled_up(self, paper_db):
        rows = star_table(paper_db, threshold=2)
        by_id = {rid: dims for dims, rid in rows}
        # 'shirt' appears once: rolled to its nearest frequent ancestor
        # 'outerwear' (3 occurrences).
        assert by_id[4][0] == "outerwear"
        # 'tennis' appears 4 times: kept.
        assert by_id[1][0] == "tennis"

    def test_everything_starred_at_huge_threshold(self, paper_db):
        rows = star_table(paper_db, threshold=99)
        assert all(dims == ("*", "*") for dims, _ in rows)

    def test_nothing_starred_at_threshold_one(self, paper_db):
        rows = star_table(paper_db, threshold=1)
        originals = {r.record_id: r.dims for r in paper_db}
        assert all(dims == originals[rid] for dims, rid in rows)


class TestStarIcebergCells:
    @pytest.mark.parametrize("min_support", [1, 2, 3, 5])
    def test_matches_buc_on_paper_example(self, paper_db, min_support):
        star = as_map(star_iceberg_cells(paper_db, min_support))
        buc = as_map(buc_iceberg_cells(paper_db, min_support))
        assert star == buc

    def test_matches_buc_on_synthetic(self, small_synth_db):
        star = as_map(star_iceberg_cells(small_synth_db, 0.02))
        buc = as_map(buc_iceberg_cells(small_synth_db, 0.02))
        assert star == buc

    def test_matches_buc_on_skewed_data(self):
        from repro.synth import GeneratorConfig, generate_path_database

        db = generate_path_database(
            GeneratorConfig(
                n_paths=200, n_dims=3, dim_fanouts=(3, 3, 5),
                dim_skew=1.6, seed=21,
            )
        )
        threshold = resolve_min_support(0.03, len(db))
        star = as_map(star_iceberg_cells(db, threshold))
        buc = as_map(buc_iceberg_cells(db, threshold))
        assert star == buc

    def test_empty_when_threshold_exceeds_database(self, paper_db):
        assert list(star_iceberg_cells(paper_db, 9)) == []

    def test_apex_first_in_each_branch(self, paper_db):
        cells = list(star_iceberg_cells(paper_db, 2))
        assert cells[0][0] == ItemLevel((0, 0))


class TestCubingWithStar:
    def test_cubing_star_equals_shared(self, paper_db):
        star = cubing_mine(paper_db, min_support=3, cuber="star")
        shared = shared_mine(paper_db, min_support=3)
        assert star.frequent_cells() == shared.frequent_cells()
        assert star.frequent_segments() == shared.frequent_segments()

    def test_unknown_cuber_rejected(self, paper_db):
        from repro.errors import MiningError

        with pytest.raises(MiningError, match="unknown iceberg cuber"):
            cubing_mine(paper_db, cuber="magic")
