"""Tests for flowgraph / flowcube JSON serialisation."""

import pytest

from repro.core import (
    FlowCube,
    FlowGraph,
    cube_from_json,
    cube_to_json,
    example_path_database,
    flowgraph_from_dict,
    flowgraph_to_dict,
    merge_flowgraphs,
    mine_exceptions,
)
from repro.errors import CubeError


PATHS = [
    (("f", "1"), ("w", "2")),
    (("f", "1"), ("s", "2")),
    (("f", "9"), ("w", "2")),
] * 5


class TestFlowgraphRoundTrip:
    def test_counts_preserved(self):
        graph = FlowGraph(PATHS)
        restored = flowgraph_from_dict(flowgraph_to_dict(graph))
        assert restored.n_paths == graph.n_paths
        assert {n.prefix for n in restored.nodes()} == {
            n.prefix for n in graph.nodes()
        }
        for node in graph.nodes():
            counterpart = restored.node(node.prefix)
            assert counterpart.count == node.count
            assert counterpart.duration_counts == node.duration_counts
            assert counterpart.transition_counts == node.transition_counts

    def test_exceptions_preserved(self):
        graph = FlowGraph(PATHS)
        mine_exceptions(graph, PATHS, min_support=4, min_deviation=0.15)
        assert graph.exceptions
        restored = flowgraph_from_dict(flowgraph_to_dict(graph))
        assert list(map(str, restored.exceptions)) == list(
            map(str, graph.exceptions)
        )

    def test_restored_graph_still_merges(self):
        """Round-tripped graphs keep the algebraic property."""
        graph = FlowGraph(PATHS)
        restored = flowgraph_from_dict(flowgraph_to_dict(graph))
        merged = merge_flowgraphs([restored, FlowGraph(PATHS)])
        assert merged.n_paths == 2 * graph.n_paths

    def test_children_relinked(self):
        graph = FlowGraph(PATHS)
        restored = flowgraph_from_dict(flowgraph_to_dict(graph))
        root = restored.node(("f",))
        assert set(root.children) == {"w", "s"}


class TestCubeRoundTrip:
    def test_full_round_trip(self):
        db = example_path_database()
        cube = FlowCube.build(db, min_support=2, min_deviation=0.1)
        restored = cube_from_json(cube_to_json(cube), db)

        assert restored.min_support == cube.min_support
        assert len(restored.cuboids) == len(cube.cuboids)
        for cell in cube.cells():
            counterpart = restored.cell(cell.item_level, cell.key, cell.path_level)
            assert counterpart.record_ids == cell.record_ids
            assert counterpart.flowgraph.n_paths == cell.flowgraph.n_paths
            assert set(map(str, counterpart.flowgraph.exceptions)) == set(
                map(str, cell.flowgraph.exceptions)
            )

    def test_redundancy_marks_survive(self):
        from repro.core import prune_redundant, tv_similarity

        db = example_path_database()
        cube = FlowCube.build(db, min_support=2, compute_exceptions=False)
        prune_redundant(cube, threshold=0.5, metric=tv_similarity)
        restored = cube_from_json(cube_to_json(cube), db)
        for cell in cube.cells():
            counterpart = restored.cell(cell.item_level, cell.key, cell.path_level)
            assert counterpart.redundant == cell.redundant

    def test_queries_work_on_restored_cube(self):
        from repro.query import FlowCubeQuery

        db = example_path_database()
        cube = FlowCube.build(db, min_support=2, compute_exceptions=False)
        restored = cube_from_json(cube_to_json(cube), db)
        query = FlowCubeQuery(restored)
        graph = query.flowgraph(product="shoes")
        assert graph.n_paths == 5

    def test_wrong_database_rejected(self):
        from repro.core import PathDatabase

        db = example_path_database()
        cube = FlowCube.build(db, min_support=2, compute_exceptions=False)
        text = cube_to_json(cube)
        truncated = PathDatabase(db.schema, list(db.records)[:3])
        with pytest.raises(CubeError, match="absent from"):
            cube_from_json(text, truncated)
