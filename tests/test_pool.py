"""The persistent worker pool: parity hammer and shm lifecycle.

The pool's contract mirrors the kernel contract one layer up: forked
workers, shared-memory row segments, and batched per-partition tasks are
*implementation details* — every ``jobs`` count, every ``pool_mode``,
and every kernel×engine combination must produce byte-identical cubes
with identical per-cell exception lists.  And because the segments live
in ``/dev/shm`` outside the process, their lifecycle is absolute: they
unlink on pool close even when a worker raised mid-build.
"""

from __future__ import annotations

import math
from array import array
from pathlib import Path

import pytest

from repro.core.serialization import cube_to_json
from repro.perf.pool import PoolStats, SharedRows, WorkerPool
from repro.store import BuildStats, PartitionedPathStore, build_cube
from repro.synth import GeneratorConfig, generate_path_database, scaled_config

CONFIG = GeneratorConfig(
    n_paths=80,
    n_dims=2,
    dim_fanouts=(2, 3),
    n_location_groups=3,
    locations_per_group=2,
    n_sequences=6,
    max_path_length=4,
    max_duration=3,
    seed=5,
)
MIN_SUPPORT = 0.1


def _shm_names() -> set[str]:
    root = Path("/dev/shm")
    if not root.is_dir():  # pragma: no cover - non-POSIX-shm platform
        return set()
    return {entry.name for entry in root.iterdir()}


@pytest.fixture(scope="module")
def database():
    return generate_path_database(CONFIG)


@pytest.fixture(scope="module")
def store(tmp_path_factory, database):
    s = PartitionedPathStore.init(
        tmp_path_factory.mktemp("pool") / "wh",
        database.schema,
        partition_size=math.ceil(len(database) / 4),
    )
    s.ingest(database)
    return s


def _exception_lists(cube):
    return [
        (cell.key, cell.flowgraph.exceptions) for cell in cube.cells()
    ]


@pytest.fixture(scope="module")
def reference(store):
    """The serial rollup/bitmap build everything else must match."""
    cube = build_cube(store, min_support=MIN_SUPPORT)
    return cube_to_json(cube), _exception_lists(cube)


# ----------------------------------------------------------------------
# the parity hammer
# ----------------------------------------------------------------------

@pytest.mark.parametrize("jobs", [1, 2, 4])
@pytest.mark.parametrize("engine", ["direct", "rollup"])
@pytest.mark.parametrize("kernel", ["bitmap", "scan"])
def test_pooled_builds_are_byte_identical(store, reference, jobs, engine, kernel):
    stats = BuildStats()
    cube = build_cube(
        store,
        min_support=MIN_SUPPORT,
        stats=stats,
        kernel=kernel,
        engine=engine,
        jobs=jobs,
    )
    assert cube_to_json(cube) == reference[0]
    assert _exception_lists(cube) == reference[1]
    assert stats.max_live_transaction_dbs <= 1
    if jobs > 1:
        assert stats.pool["jobs"] == jobs
        assert stats.pool["task_batches"] > 0


@pytest.mark.parametrize("pool_mode", ["shared", "plain"])
def test_pool_modes_agree(store, reference, pool_mode):
    cube = build_cube(
        store, min_support=MIN_SUPPORT, jobs=2, pool_mode=pool_mode
    )
    assert cube_to_json(cube) == reference[0]


def test_external_pool_reused_across_builds(store, reference):
    """One caller-owned pool serves consecutive builds of both engines."""
    before = _shm_names()
    pool = WorkerPool(2).start()
    try:
        spawned = pool.stats.spawn_count
        for engine in ("rollup", "direct"):
            cube = build_cube(
                store, min_support=MIN_SUPPORT, engine=engine, pool=pool
            )
            assert cube_to_json(cube) == reference[0]
        assert pool.stats.spawn_count == spawned  # no respawn per build
    finally:
        pool.close()
    assert _shm_names() - before == set()


def test_bad_pool_mode_rejected(store):
    with pytest.raises(Exception, match="pool mode"):
        build_cube(store, min_support=MIN_SUPPORT, pool_mode="mmap")


# ----------------------------------------------------------------------
# shared-memory lifecycle
# ----------------------------------------------------------------------

def test_shared_rows_roundtrip():
    partitions = [
        [array("i", [0, 2, 5]), array("i", [1])],
        [],
        [array("i", [3, 4])],
    ]
    before = _shm_names()
    rows = SharedRows.pack(partitions)
    try:
        assert [list(r) for r in rows.rows(0)] == [[0, 2, 5], [1]]
        assert list(rows.rows(1)) == []
        assert [list(r) for r in rows.rows(2)] == [[3, 4]]
        attached = SharedRows.attach(rows.name)
        assert [list(r) for r in attached.rows(0)] == [[0, 2, 5], [1]]
        attached.close()
        masks = rows.item_masks(0, 6)
        assert [m.bit_count() for m in masks] == [1, 1, 1, 0, 0, 1]
    finally:
        rows.close()
    assert _shm_names() - before == set()


def _boom(partition_id: int) -> None:
    raise RuntimeError(f"worker exploded on partition {partition_id}")


def test_shm_unlinks_when_worker_raises():
    """A worker exception must not leak the pool's shared segments."""
    before = _shm_names()
    pool = WorkerPool(2).start()
    try:
        pool.share_rows("rows", [[array("i", [1, 2])], [array("i", [3])]])
        assert len(_shm_names() - before) == 1
        with pytest.raises(RuntimeError, match="worker exploded"):
            pool.submit(0, _boom, 0).result()
        # The pool survives the raise: the other slot still answers.
        assert list(pool.map_partitions([1], _echo)) == [1]
    finally:
        pool.close()
    assert _shm_names() - before == set()


def _echo(partition_id: int) -> int:
    return partition_id


def test_pool_stats_snapshot():
    stats = PoolStats(jobs=2)
    stats.spawn_count = 2
    stats.spawn_seconds = 0.12345
    snapshot = stats.as_dict()
    assert snapshot["jobs"] == 2
    assert snapshot["spawn_seconds"] == round(0.12345, 4)
    assert set(snapshot) == {
        "jobs",
        "spawn_count",
        "spawn_seconds",
        "shm_segments",
        "shm_bytes",
        "task_batches",
        "worker_busy_seconds",
    }


def test_scaled_config_is_deterministic():
    a = generate_path_database(scaled_config(200))
    b = generate_path_database(scaled_config(200))
    assert len(a) == 200
    assert [r.path for r in a] == [r.path for r in b]
