"""Parity tests for the bitmap exception kernel (PR 4).

The contract is exact: for any cell, any δ/ε, any engine, and any build
path (in-memory or out-of-core, serial or pooled), the bitmap kernel must
produce the very same exception lists — and therefore byte-identical
serialised cubes — as the path-scanning pass it replaces.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import FlowCube, FlowGraph
from repro.core.flowgraph_exceptions import (
    mine_exceptions_weighted,
    mine_frequent_segments_weighted,
)
from repro.core.serialization import cube_to_json
from repro.perf.exception_kernel import (
    CellExceptionIndex,
    cell_index,
    mine_segments_bitmap,
)
from repro.store import PartitionedPathStore, build_cube
from repro.synth import GeneratorConfig, generate_path_database
from tests.test_properties import path_databases

# ----------------------------------------------------------------------
# kernel x engine parity on random databases
# ----------------------------------------------------------------------

@given(
    path_databases(),
    st.sampled_from([0.05, 0.2, 1.0, 0.999]),
    st.sampled_from([0.05, 0.3]),
)
@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_kernel_engine_grid_byte_identical(db, min_support, min_deviation):
    """Every (kernel, engine) build of the same database is one cube."""
    reference = None
    for engine in ("rollup", "direct"):
        for kernel in ("scan", "bitmap"):
            cube = FlowCube.build(
                db,
                min_support=min_support,
                min_deviation=min_deviation,
                engine=engine,
                kernel=kernel,
            )
            text = cube_to_json(cube)
            if reference is None:
                reference = text
            assert text == reference, (engine, kernel)


@given(path_databases())
@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_kernels_emit_identical_exception_lists(db):
    """Cell by cell, the two kernels mine the very same exceptions."""
    scan = FlowCube.build(db, min_support=0.1, kernel="scan")
    bitmap = FlowCube.build(db, min_support=0.1, kernel="bitmap")
    scan_cells = list(scan.cells())
    bitmap_cells = list(bitmap.cells())
    assert len(scan_cells) == len(bitmap_cells)
    for a, b in zip(scan_cells, bitmap_cells):
        assert a.flowgraph.exceptions == b.flowgraph.exceptions


# ----------------------------------------------------------------------
# segment miner parity
# ----------------------------------------------------------------------

@given(path_databases(), st.sampled_from([0.05, 0.3, 2, 1.0, 0.999]))
@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_segment_miner_matches_scan_miner(db, min_support):
    """Chain-extension mining over tid-sets equals the Apriori scan."""
    cube = FlowCube.build(db, min_support=0.2, compute_exceptions=False)
    for cell in cube.cells():
        weighted = cell.paths
        expected = mine_frequent_segments_weighted(weighted, min_support)
        supports, masks = mine_segments_bitmap(
            CellExceptionIndex(weighted), min_support
        )
        assert supports == expected
        assert set(masks) == set(supports)


# ----------------------------------------------------------------------
# out-of-core parity
# ----------------------------------------------------------------------

OOC_CONFIG = GeneratorConfig(
    n_paths=120,
    n_dims=2,
    dim_fanouts=(2, 3),
    n_location_groups=3,
    locations_per_group=2,
    n_sequences=8,
    max_path_length=4,
    max_duration=3,
    seed=29,
)


@pytest.mark.parametrize("kernel", ["bitmap", "scan"])
def test_out_of_core_exceptions_byte_identical(tmp_path, kernel):
    """Serial and pooled out-of-core builds equal the in-memory cube."""
    database = generate_path_database(OOC_CONFIG)
    reference = cube_to_json(
        FlowCube.build(database, min_support=0.05, kernel=kernel)
    )
    store = PartitionedPathStore.init(
        tmp_path / "wh",
        database.schema,
        partition_size=math.ceil(len(database) / 4),
    )
    store.ingest(database)
    for jobs in (1, 2):
        cube = build_cube(store, min_support=0.05, kernel=kernel, jobs=jobs)
        assert cube_to_json(cube) == reference, jobs


# ----------------------------------------------------------------------
# direct kernel edges
# ----------------------------------------------------------------------

def _build_graph(weighted):
    graph = FlowGraph()
    for path, weight in weighted:
        graph.add_path(path, weight)
    return graph


#: A multiset that mixes "*" with concrete durations at the same stage:
#: the segment miners count "*" as an exact item while the exception pass
#: treats the constraint as a wildcard, which is exactly the case the
#: kernel must recount instead of reusing mined masks.
MIXED_STAR = [
    ((("f", "1"), ("w", "2")), 6),
    ((("f", "*"), ("s", "2")), 5),
    ((("f", "2"), ("w", "1")), 4),
    ((("f", "*"), ("w", "1")), 3),
]


@pytest.mark.parametrize("min_support", [0.05, 0.2, 2, 4, 1.0, 0.999])
@pytest.mark.parametrize("min_deviation", [0.0, 0.05, 0.3])
def test_mixed_star_durations_parity(min_support, min_deviation):
    scan = mine_exceptions_weighted(
        _build_graph(MIXED_STAR), MIXED_STAR,
        min_support, min_deviation, kernel="scan",
    )
    bitmap = mine_exceptions_weighted(
        _build_graph(MIXED_STAR), MIXED_STAR,
        min_support, min_deviation, kernel="bitmap",
    )
    assert scan == bitmap


def test_external_segments_parity():
    """Pre-mined segments — including unsatisfiable and absent-node ones —
    probe identically under both kernels."""
    weighted = [
        ((("f", "1"), ("w", "2"), ("s", "1")), 7),
        ((("f", "1"), ("w", "1")), 5),
        ((("f", "2"), ("s", "2")), 4),
    ]
    segments = [
        ((("f",), "1"),),
        ((("f",), "*"),),
        ((("f",), "1"), (("f", "w"), "2")),
        ((("f", "w"), "9"),),          # unsatisfiable duration
        ((("x",), "1"),),              # absent node
        (),                            # degenerate: skipped by both
    ]
    scan = mine_exceptions_weighted(
        _build_graph(weighted), weighted, 1, 0.0,
        segments=segments, kernel="scan",
    )
    bitmap = mine_exceptions_weighted(
        _build_graph(weighted), weighted, 1, 0.0,
        segments=segments, kernel="bitmap",
    )
    assert scan == bitmap
    assert scan  # the setup deviates: the probe must find something


def test_empty_cell():
    graph = FlowGraph()
    assert mine_exceptions_weighted(graph, [], 0.05, 0.1, kernel="bitmap") == []


def test_unknown_kernel_rejected():
    with pytest.raises(ValueError, match="unknown exception kernel"):
        mine_exceptions_weighted(FlowGraph(), [], 0.05, 0.1, kernel="turbo")


# ----------------------------------------------------------------------
# index fingerprint sharing
# ----------------------------------------------------------------------

def test_index_cache_shares_by_multiset():
    weighted = [((("f", "1"),), 2), ((("s", "2"),), 1)]
    cache: dict = {}
    first = cell_index(weighted, cache)
    second = cell_index(list(reversed(weighted)), cache)
    assert first is second  # pair order doesn't matter
    assert cell_index(weighted, None) is not first


def test_index_cache_skips_duplicate_pairs():
    """Inputs that repeat a (path, weight) pair collapse under the
    frozenset fingerprint, so they must bypass the cache."""
    weighted = [((("f", "1"),), 1), ((("f", "1"),), 1)]
    cache: dict = {}
    index = cell_index(weighted, cache)
    assert not cache
    assert index.total == 2
