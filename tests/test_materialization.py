"""Tests for partial materialisation planning (repro.core.materialization)."""

import pytest

from repro.core import (
    FlowCube,
    ItemLevel,
    MaterializationPlan,
    plan_between_layers,
    plan_by_budget,
)
from repro.core.materialization import estimate_cells
from repro.errors import CubeError


class TestPlanBetweenLayers:
    def test_chain_connects_layers(self):
        plan = plan_between_layers(ItemLevel((1, 0)), ItemLevel((3, 1)))
        assert plan.item_levels[0] == ItemLevel((1, 0))
        assert plan.item_levels[-1] == ItemLevel((3, 1))
        # Steps are single-level specialisations.
        for a, b in zip(plan.item_levels, plan.item_levels[1:]):
            assert sum(b.levels) - sum(a.levels) == 1
            assert a.is_higher_or_equal(b)

    def test_drill_order_respected(self):
        plan = plan_between_layers(
            ItemLevel((0, 0)), ItemLevel((1, 1)), drill_order=[1, 0]
        )
        assert plan.item_levels == (
            ItemLevel((0, 0)),
            ItemLevel((0, 1)),
            ItemLevel((1, 1)),
        )

    def test_equal_layers_single_level(self):
        plan = plan_between_layers(ItemLevel((1, 1)), ItemLevel((1, 1)))
        assert plan.item_levels == (ItemLevel((1, 1)),)

    def test_rejects_inverted_layers(self):
        with pytest.raises(CubeError, match="generalise"):
            plan_between_layers(ItemLevel((2, 0)), ItemLevel((1, 0)))

    def test_rejects_bad_drill_order(self):
        with pytest.raises(CubeError, match="permute"):
            plan_between_layers(
                ItemLevel((0, 0)), ItemLevel((1, 1)), drill_order=[0, 0]
            )

    def test_empty_plan_rejected(self):
        with pytest.raises(CubeError):
            MaterializationPlan(())


class TestEstimation:
    def test_estimate_exact_on_full_sample(self, paper_db):
        estimate = estimate_cells(
            paper_db, ItemLevel((2, 1)), min_support=2, sample_size=100
        )
        # Table 2: shoes/nike (3), shoes/adidas (2), outerwear/nike (3)
        # clear δ=2; (outerwear-like singletons don't).
        assert estimate == 3

    def test_estimate_empty_database(self, paper_db):
        from repro.core import PathDatabase

        empty = PathDatabase(paper_db.schema, [])
        assert estimate_cells(empty, ItemLevel((1, 1)), 0.01) == 0


class TestBudgetPlan:
    def test_budget_limits_levels(self, small_synth_db):
        tight = plan_by_budget(small_synth_db, max_cells=5, min_support=0.02)
        loose = plan_by_budget(small_synth_db, max_cells=10_000, min_support=0.02)
        assert len(tight) <= len(loose)
        # Apex always present.
        n_dims = small_synth_db.schema.n_dimensions
        assert ItemLevel([0] * n_dims) in tight.item_levels

    def test_plan_builds_cube(self, paper_db):
        plan = plan_between_layers(ItemLevel((1, 0)), ItemLevel((2, 1)))
        cube = plan.build(paper_db, min_support=2, compute_exceptions=False)
        materialised_levels = {c.item_level for c in cube.cuboids}
        assert materialised_levels == set(plan.item_levels)

    def test_plan_iterates(self):
        plan = plan_between_layers(ItemLevel((0, 0)), ItemLevel((1, 0)))
        assert list(plan) == [ItemLevel((0, 0)), ItemLevel((1, 0))]
        assert len(plan) == 2
