"""Unit tests for flowgraphs (repro.core.flowgraph) — incl. Figure 3 data."""

import pytest

from repro.core import (
    DURATION_VALUE,
    FlowGraph,
    LocationView,
    PathLevel,
    TERMINATE,
    aggregate_path,
)
from repro.errors import CubeError


@pytest.fixture
def paper_graph(paper_db, location_hierarchy) -> FlowGraph:
    """Flowgraph over all eight Table 1 paths at the leaf view (Figure 3)."""
    level = PathLevel(LocationView.leaf_view(location_hierarchy), DURATION_VALUE)
    return FlowGraph(aggregate_path(r.path, level) for r in paper_db)


class TestFigure3:
    def test_factory_duration_distribution(self, paper_graph):
        # Figure 3 annotates factory: 5 with 0.38, 10 with 0.62.
        dist = paper_graph.node(("factory",)).duration_distribution()
        assert dist["5"] == pytest.approx(3 / 8)
        assert dist["10"] == pytest.approx(5 / 8)

    def test_factory_transition_distribution(self, paper_graph):
        # Figure 3: factory -> dist center 0.65 (5/8), -> truck 0.35 (3/8).
        dist = paper_graph.node(("factory",)).transition_distribution()
        assert dist["dist center"] == pytest.approx(5 / 8)
        assert dist["truck"] == pytest.approx(3 / 8)
        assert TERMINATE not in dist

    def test_truck_branch_probabilities(self, paper_graph):
        # Figure 3: factory->truck->shelf 0.67, ->warehouse 0.33.
        dist = paper_graph.node(("factory", "truck")).transition_distribution()
        assert dist["shelf"] == pytest.approx(2 / 3)
        assert dist["warehouse"] == pytest.approx(1 / 3)

    def test_checkout_terminates(self, paper_graph):
        node = paper_graph.node(
            ("factory", "dist center", "truck", "shelf", "checkout")
        )
        assert node.transition_distribution() == {TERMINATE: 1.0}

    def test_node_counts(self, paper_graph):
        assert paper_graph.n_paths == 8
        assert paper_graph.node(("factory",)).count == 8
        assert paper_graph.node(("factory", "dist center")).count == 5


class TestConstruction:
    def test_empty_path_rejected(self):
        with pytest.raises(CubeError, match="empty path"):
            FlowGraph().add_path(())

    def test_weighted_add(self):
        graph = FlowGraph()
        graph.add_path((("a", "1"), ("b", "2")), weight=3)
        assert graph.n_paths == 3
        assert graph.node(("a",)).count == 3
        assert graph.node(("a",)).transition_counts["b"] == 3

    def test_multiple_roots(self):
        graph = FlowGraph([(("a", "1"),), (("b", "1"),)])
        assert {root.location for root in graph.roots} == {"a", "b"}

    def test_common_prefixes_share_branch(self):
        graph = FlowGraph(
            [
                (("f", "1"), ("t", "1")),
                (("f", "2"), ("t", "2"), ("s", "1")),
            ]
        )
        assert len(graph) == 3  # f, f/t, f/t/s — prefixes shared
        assert graph.node(("f",)).count == 2

    def test_missing_node_raises(self, paper_graph):
        with pytest.raises(CubeError, match="no flowgraph node"):
            paper_graph.node(("moon",))
        assert not paper_graph.has_node(("moon",))

    def test_nodes_sorted_shortest_first(self, paper_graph):
        prefixes = [n.prefix for n in paper_graph.nodes()]
        assert prefixes == sorted(prefixes)


class TestDerived:
    def test_path_probability_of_seen_path(self):
        graph = FlowGraph(
            [
                (("a", "1"), ("b", "1")),
                (("a", "1"), ("c", "1")),
            ]
        )
        p = graph.path_probability((("a", "1"), ("b", "1")))
        # start 1.0 * dur(a=1)=1.0 * trans(a->b)=0.5 * dur(b=1)=1.0 * term=1.0
        assert p == pytest.approx(0.5)

    def test_path_probability_of_unseen_path_is_zero(self, paper_graph):
        assert paper_graph.path_probability((("shelf", "1"),)) == 0.0
        assert paper_graph.path_probability(()) == 0.0

    def test_enumerate_paths_sums_to_one(self, paper_graph):
        total = sum(p for _, p in paper_graph.enumerate_paths())
        assert total == pytest.approx(1.0)

    def test_enumerate_paths_matches_data(self, paper_graph):
        routes = dict(paper_graph.enumerate_paths())
        key = ("factory", "dist center", "truck", "shelf", "checkout")
        assert routes[key] == pytest.approx(3 / 8)

    def test_expected_remaining_duration(self):
        graph = FlowGraph(
            [
                (("a", "2"), ("b", "4")),
                (("a", "2"), ("b", "6")),
            ]
        )
        # a contributes 2; b's expectation is 5.
        assert graph.expected_remaining_duration(("a",)) == pytest.approx(7.0)

    def test_expected_duration_ignores_star(self):
        graph = FlowGraph([(("a", "*"),)])
        assert graph.expected_remaining_duration(("a",)) == 0.0
