"""Property-based tests (hypothesis) on the core invariants.

Covered invariants:

* hierarchy codes are a faithful, prefix-consistent encoding;
* path aggregation is idempotent-ish (aggregating twice at the same level
  equals once) and never lengthens a path;
* flowgraph distributions are proper probability distributions and node
  counts are flow-consistent (parent transition counts = child counts);
* building a flowgraph from parts and merging equals building once
  (Lemma 4.2);
* Apriori (both counting modes) and FP-growth agree on random databases;
* support is anti-monotone in the mined results;
* shared and cubing find the same cells/segments on random path databases.
"""

from __future__ import annotations

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    FlowGraph,
    LocationView,
    Path,
    PathLevel,
    TERMINATE,
    aggregate_path,
    merge_flowgraphs,
)
from repro.core.hierarchy import ConceptHierarchy
from repro.mining import apriori, fp_growth

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------

LOCATIONS = ["f", "d", "t", "w", "s", "c"]

stage = st.tuples(
    st.sampled_from(LOCATIONS), st.integers(min_value=0, max_value=5)
)
raw_path = st.lists(stage, min_size=1, max_size=6)

agg_stage = st.tuples(
    st.sampled_from(LOCATIONS),
    st.sampled_from(["1", "2", "3", "*"]),
)
agg_path = st.lists(agg_stage, min_size=1, max_size=5).map(tuple)
agg_paths = st.lists(agg_path, min_size=1, max_size=30)

transactions = st.lists(
    st.frozensets(st.integers(min_value=0, max_value=12), min_size=0, max_size=8),
    min_size=0,
    max_size=25,
)


def flat_hierarchy() -> ConceptHierarchy:
    return ConceptHierarchy.from_edges(
        "location",
        [("transport", "d"), ("transport", "t"), ("transport", "w"),
         ("site", "f"), ("site", "s"), ("site", "c")],
    )


HIER = flat_hierarchy()
LEAF_LEVEL = PathLevel(LocationView.leaf_view(HIER), 1)
COARSE_LEVEL = PathLevel(LocationView.level_view(HIER, 1), 0)


# ----------------------------------------------------------------------
# hierarchy properties
# ----------------------------------------------------------------------

@given(st.sampled_from(list(HIER)))
def test_code_roundtrip(concept):
    assert HIER.concept_for_code(HIER.code_of(concept)) == concept


@given(st.sampled_from(HIER.leaves), st.integers(min_value=0, max_value=2))
def test_ancestor_level_is_exact_or_self(leaf, level):
    ancestor = HIER.ancestor_at_level(leaf, level)
    assert HIER.level_of(ancestor) == min(level, HIER.level_of(leaf))
    assert HIER.is_ancestor(ancestor, leaf, strict=False)


# ----------------------------------------------------------------------
# aggregation properties
# ----------------------------------------------------------------------

@given(raw_path)
def test_aggregation_never_lengthens(stages):
    path = Path(stages)
    for level in (LEAF_LEVEL, COARSE_LEVEL):
        aggregated = aggregate_path(path, level)
        assert 1 <= len(aggregated) <= len(path)


@given(raw_path)
def test_aggregation_merges_all_repeats(stages):
    path = Path(stages)
    aggregated = aggregate_path(path, COARSE_LEVEL)
    locations = [loc for loc, _ in aggregated]
    assert all(a != b for a, b in zip(locations, locations[1:]))


@given(raw_path)
def test_coarse_is_aggregation_of_fine(stages):
    """Rolling the fine aggregation up equals aggregating directly."""
    path = Path(stages)
    fine = aggregate_path(path, LEAF_LEVEL)
    direct = aggregate_path(path, COARSE_LEVEL)
    # Re-aggregate the fine view's locations through the coarse view.
    relifted: list[str] = []
    for location, _ in fine:
        mapped = COARSE_LEVEL.view.aggregate(location)
        if not relifted or relifted[-1] != mapped:
            relifted.append(mapped)
    assert relifted == [loc for loc, _ in direct]


# ----------------------------------------------------------------------
# flowgraph properties
# ----------------------------------------------------------------------

@given(agg_paths)
def test_flowgraph_distributions_are_probabilities(paths):
    graph = FlowGraph(paths)
    for node in graph.nodes():
        durations = node.duration_distribution()
        transitions = node.transition_distribution()
        assert math.isclose(sum(durations.values()), 1.0)
        assert math.isclose(sum(transitions.values()), 1.0)
        assert all(p >= 0 for p in durations.values())
        assert all(p >= 0 for p in transitions.values())


@given(agg_paths)
def test_flowgraph_flow_conservation(paths):
    """A node's transition counts equal its children's path counts."""
    graph = FlowGraph(paths)
    for node in graph.nodes():
        assert sum(node.transition_counts.values()) == node.count
        for target, count in node.transition_counts.items():
            if target != TERMINATE:
                assert graph.node(node.prefix + (target,)).count == count
    assert sum(root.count for root in graph.roots) == graph.n_paths


@given(agg_paths)
def test_flowgraph_path_enumeration_sums_to_one(paths):
    graph = FlowGraph(paths)
    total = sum(p for _, p in graph.enumerate_paths())
    assert math.isclose(total, 1.0, rel_tol=1e-9)


@given(agg_paths, st.integers(min_value=1, max_value=5))
@settings(suppress_health_check=[HealthCheck.too_slow])
def test_merge_equals_direct_build(paths, split_at):
    split = min(split_at, len(paths))
    merged = merge_flowgraphs(
        [FlowGraph(paths[:split]), FlowGraph(paths[split:])]
    )
    direct = FlowGraph(paths)
    assert merged.n_paths == direct.n_paths
    assert {n.prefix for n in merged.nodes()} == {n.prefix for n in direct.nodes()}
    for node in direct.nodes():
        counterpart = merged.node(node.prefix)
        assert counterpart.duration_counts == node.duration_counts
        assert counterpart.transition_counts == node.transition_counts


# ----------------------------------------------------------------------
# mining properties
# ----------------------------------------------------------------------

@given(transactions, st.integers(min_value=1, max_value=5))
def test_apriori_counting_modes_agree(db, threshold):
    scan = apriori(db, threshold, counting="scan")
    tidset = apriori(db, threshold, counting="tidset")
    assert scan == tidset


@given(transactions, st.integers(min_value=1, max_value=5))
def test_fp_growth_agrees_with_apriori(db, threshold):
    assert fp_growth(db, threshold) == apriori(db, threshold)


@given(transactions, st.integers(min_value=1, max_value=5))
def test_support_is_antimonotone(db, threshold):
    result = apriori(db, threshold)
    for itemset, support in result.items():
        for item in itemset:
            subset = itemset - {item}
            if subset:
                assert result[subset] >= support


@given(transactions, st.integers(min_value=1, max_value=5))
def test_supports_are_exact(db, threshold):
    result = apriori(db, threshold)
    for itemset, support in result.items():
        actual = sum(1 for t in db if itemset <= t)
        assert actual == support


# ----------------------------------------------------------------------
# miner agreement on random path databases
# ----------------------------------------------------------------------

@st.composite
def path_databases(draw):
    from repro.synth import GeneratorConfig, generate_path_database

    seed = draw(st.integers(min_value=0, max_value=10_000))
    n_sequences = draw(st.integers(min_value=4, max_value=8))
    n_paths = draw(st.integers(min_value=20, max_value=50))
    config = GeneratorConfig(
        n_paths=n_paths,
        n_dims=2,
        dim_fanouts=(2, 2, 2),
        n_location_groups=3,
        locations_per_group=2,
        n_sequences=n_sequences,
        max_path_length=4,
        max_duration=3,
        seed=seed,
    )
    return generate_path_database(config)


@given(path_databases(), st.integers(min_value=5, max_value=10))
@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_shared_and_cubing_agree_on_random_databases(db, threshold):
    from repro.mining import cubing_mine, shared_mine

    shared = shared_mine(db, min_support=threshold)
    cubing = cubing_mine(db, min_support=threshold)
    assert shared.frequent_cells() == cubing.frequent_cells()
    assert shared.frequent_segments() == cubing.frequent_segments()
