"""The persistent partitioned store: catalog, builder, cube store, CLI.

The load-bearing assertions here are the out-of-core contracts:

* ``build_cube`` over a ≥4-partition store produces a cube identical to
  :meth:`FlowCube.build` over the concatenated data (same cuboids, cell
  keys, record ids, aggregated paths, flowgraphs, and exceptions);
* ``shared_mine_store`` mines exactly :func:`shared_mine`'s supports while
  never holding more than one partition's encoded
  :class:`TransactionDatabase` (``BuildStats.max_live_transaction_dbs``);
* the :class:`CubeStore` read cache reports hits/misses/evictions and a
  repeated :class:`FlowCubeQuery` measure access is served from it.
"""

from __future__ import annotations

import json

import pytest

from repro.core.flowcube import FlowCube
from repro.core.path import PathRecord
from repro.errors import CubeError, StoreError
from repro.mining.shared import shared_mine
from repro.query.api import FlowCubeQuery
from repro.store import (
    BloomSummary,
    BuildStats,
    LRUCache,
    PartitionedPathStore,
    build_cube,
    schema_fingerprint,
    schema_from_dict,
    schema_to_dict,
    shared_mine_store,
)
from repro.store.cli import main
from repro.synth import GeneratorConfig, generate_path_database

CONFIG = GeneratorConfig(
    n_paths=120,
    n_dims=2,
    dim_fanouts=(2, 3),
    n_location_groups=3,
    locations_per_group=2,
    n_sequences=8,
    max_path_length=4,
    max_duration=3,
    seed=3,
)
MIN_SUPPORT = 0.1
PARTITION_SIZE = 30  # 120 records -> 4 partitions


@pytest.fixture(scope="module")
def database():
    return generate_path_database(CONFIG)


@pytest.fixture(scope="module")
def reference_cube(database):
    return FlowCube.build(database, min_support=MIN_SUPPORT)


@pytest.fixture()
def store(tmp_path, database):
    s = PartitionedPathStore.init(
        tmp_path / "wh", database.schema, partition_size=PARTITION_SIZE
    )
    s.ingest(database)
    return s


# ----------------------------------------------------------------------
# LRU cache
# ----------------------------------------------------------------------

def test_lru_cache_counts_hits_misses_and_evictions():
    cache = LRUCache(2)
    assert cache.get("a") is None  # miss
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1  # hit; "a" becomes most recent
    cache.put("c", 3)  # evicts "b" (least recently used)
    assert "b" not in cache and "a" in cache and "c" in cache
    assert cache.get("b") is None  # miss
    stats = cache.stats()
    assert stats["hits"] == 1
    assert stats["misses"] == 2
    assert stats["evictions"] == 1
    assert stats["size"] == 2 and stats["capacity"] == 2
    assert stats["hit_rate"] == pytest.approx(1 / 3)


def test_lru_cache_clear_keeps_counters():
    cache = LRUCache(4)
    cache.put("x", 1)
    cache.get("x")
    cache.clear()
    assert len(cache) == 0
    assert cache.hits == 1


def test_lru_cache_rejects_nonpositive_capacity():
    with pytest.raises(ValueError):
        LRUCache(0)


# ----------------------------------------------------------------------
# Bloom summaries
# ----------------------------------------------------------------------

def test_bloom_summary_membership_and_roundtrip():
    summary = BloomSummary()
    for value in ("outerwear", "jacket", "nike"):
        summary.add(value)
    assert summary.might_contain("jacket")
    assert not summary.might_contain("definitely-absent-value-xyz")
    restored = BloomSummary.from_dict(summary.to_dict())
    assert restored.bits == summary.bits
    assert restored.might_contain("outerwear")


def test_bloom_summary_rejects_bad_geometry():
    with pytest.raises(StoreError):
        BloomSummary(n_bits=4)


# ----------------------------------------------------------------------
# schema serialisation + catalog
# ----------------------------------------------------------------------

def test_schema_roundtrip_preserves_codes_and_fingerprint(database):
    schema = database.schema
    restored = schema_from_dict(schema_to_dict(schema))
    assert schema_fingerprint(restored) == schema_fingerprint(schema)
    # Sibling order (and hence the Section 5 digit codes) must survive.
    for original, rebuilt in zip(
        list(schema.dimensions) + [schema.location, schema.duration],
        list(restored.dimensions) + [restored.location, restored.duration],
    ):
        for concept in original:
            assert rebuilt.code_of(concept) == original.code_of(concept)


def test_open_missing_and_corrupt_catalog(tmp_path):
    with pytest.raises(StoreError):
        PartitionedPathStore.open(tmp_path / "nowhere")
    broken = tmp_path / "broken"
    broken.mkdir()
    (broken / "catalog.json").write_text("{not json", encoding="utf-8")
    with pytest.raises(StoreError):
        PartitionedPathStore.open(broken)


def test_init_refuses_existing_store(store, database):
    with pytest.raises(StoreError):
        PartitionedPathStore.init(store.directory, database.schema)


# ----------------------------------------------------------------------
# partitioned path store
# ----------------------------------------------------------------------

def test_ingest_partitions_and_roundtrip(store, database):
    assert store.partition_ids() == [0, 1, 2, 3]
    assert len(store) == len(database)
    for meta in store.catalog.partitions:
        assert meta.n_records <= PARTITION_SIZE
    reopened = PartitionedPathStore.open(store.directory)
    assert list(reopened.load_all()) == list(database)


def test_iter_partitions_preserves_record_order(store, database):
    ids = [
        record.record_id
        for _, part in store.iter_partitions()
        for record in part
    ]
    assert ids == [record.record_id for record in database]


def test_ingest_rejects_id_collisions(store, database):
    with pytest.raises(StoreError):
        store.ingest(database)  # same ids again
    floor = store.catalog.max_record_id
    record = database[database.records[0].record_id]
    descending = [
        PathRecord(floor + 2, record.dims, record.path),
        PathRecord(floor + 1, record.dims, record.path),
    ]
    with pytest.raises(StoreError):
        store.ingest(descending)


def test_ingest_rejects_foreign_schema(store):
    other = generate_path_database(
        CONFIG.with_(n_paths=5, dim_fanouts=(3, 3), seed=1)
    )
    with pytest.raises(StoreError):
        store.ingest(other)


def test_select_partitions_prunes_with_blooms(store, database):
    name = database.schema.dimensions[0].name
    assert store.select_partitions(**{name: "no-such-value"}) == []
    # A value actually present must keep every partition that holds it.
    value = database.records[0].dims[0]
    holding = {
        meta.partition_id
        for meta, part in store.iter_partitions()
        if any(record.dims[0] == value for record in part)
    }
    assert holding <= set(store.select_partitions(**{name: value}))
    # Level-1 ancestors prune too (ancestor closure is indexed).
    parent = database.schema.dimensions[0].ancestor_at_level(value, 1)
    assert holding <= set(store.select_partitions(**{name: parent}))
    with pytest.raises(Exception):
        store.select_partitions(not_a_dimension="x")


def test_append_maintains_live_cube(store, database):
    cube = build_cube(store, min_support=MIN_SUPPORT)
    floor = store.catalog.max_record_id
    extra = [
        PathRecord(floor + i + 1, record.dims, record.path)
        for i, record in enumerate(database.records[:10])
    ]
    stats = store.append(extra, cube=cube)
    assert stats["ingested"] == 10
    assert stats["partitions"] >= 1
    assert len(store) == len(database) + 10
    assert len(cube.database) == len(database) + 10


# ----------------------------------------------------------------------
# out-of-core construction
# ----------------------------------------------------------------------

def test_shared_mine_store_equals_in_memory(store, database):
    build_stats = BuildStats()
    out_of_core = shared_mine_store(
        store, min_support=MIN_SUPPORT, build_stats=build_stats
    )
    in_memory = shared_mine(database, min_support=MIN_SUPPORT)
    assert out_of_core.supports == in_memory.supports
    assert out_of_core.threshold == in_memory.threshold
    # The out-of-core invariant, proven by the live tracker.
    assert build_stats.partitions >= 4
    assert build_stats.max_live_transaction_dbs == 1


def test_build_cube_matches_flowcube_build(store, reference_cube):
    stats = BuildStats()
    cube = build_cube(store, min_support=MIN_SUPPORT, stats=stats)
    assert stats.partitions >= 4
    reference_cuboids = reference_cube.cuboids
    assert len(cube.cuboids) == len(reference_cuboids)
    for reference in reference_cuboids:
        cuboid = cube.cuboid(reference.item_level, reference.path_level)
        assert list(cuboid.cells) == list(reference.cells)
        for key, expected in reference.cells.items():
            actual = cuboid.cells[key]
            assert actual.record_ids == expected.record_ids
            assert actual.paths == expected.paths
            assert sorted(map(str, actual.flowgraph.exceptions)) == sorted(
                map(str, expected.flowgraph.exceptions)
            )


def test_build_cube_with_shared_segments(store):
    stats = BuildStats()
    cube = build_cube(
        store, min_support=MIN_SUPPORT, use_shared=True, stats=stats
    )
    assert stats.max_live_transaction_dbs == 1
    assert cube.n_cells() > 0


# ----------------------------------------------------------------------
# the cube store
# ----------------------------------------------------------------------

def test_cube_store_roundtrips_the_cube(store, reference_cube):
    build_cube(store, min_support=MIN_SUPPORT, into=store.cube_store())
    reopened = store.cube_store()
    assert reopened.is_built
    assert reopened.min_support == MIN_SUPPORT
    assert reopened.n_cells() == reference_cube.n_cells()
    for reference in reference_cube.cuboids:
        cuboid = reopened.cuboid(reference.item_level, reference.path_level)
        assert set(cuboid.keys) == set(reference.cells)
        for key, expected in reference.cells.items():
            actual = cuboid.cell(key)
            assert actual.record_ids == expected.record_ids
            expected_nodes = {
                n.prefix: n.count for n in expected.flowgraph.nodes()
            }
            actual_nodes = {
                n.prefix: n.count for n in actual.flowgraph.nodes()
            }
            assert actual_nodes == expected_nodes
            assert sorted(map(str, actual.flowgraph.exceptions)) == sorted(
                map(str, expected.flowgraph.exceptions)
            )


def test_cube_store_cache_reports_hits_misses_evictions(store):
    build_cube(store, min_support=MIN_SUPPORT, into=store.cube_store())
    small = store.cube_store(cache_size=2)
    cells = list(small.cells())  # every read misses a cold 2-entry cache
    stats = small.cache_stats()
    assert stats["misses"] == len(cells)
    assert stats["evictions"] == len(cells) - 2
    assert stats["size"] == 2
    # Re-reading the most recent cell is a hit.
    last = cells[-1]
    small.cell(last.item_level, last.key, last.path_level)
    assert small.cache_stats()["hits"] == 1


def test_cube_store_raises_before_build_and_on_missing_cells(store):
    empty = store.cube_store()
    with pytest.raises(StoreError):
        empty.cuboid(None, None)
    build_cube(store, min_support=MIN_SUPPORT, into=store.cube_store())
    built = store.cube_store()
    cuboid = built.cuboids[0]
    with pytest.raises(CubeError):
        cuboid.cell(("no", "such"))


def test_query_over_cube_store_hits_cache_on_repeat(store, reference_cube):
    build_cube(store, min_support=MIN_SUPPORT, into=store.cube_store())
    cube_store = store.cube_store(cache_size=16)
    query = FlowCubeQuery(cube_store)
    first = query.flowgraph()  # apex cell, first touch materialises
    hits_before = query.cache_stats()["hits"]
    second = query.flowgraph()  # repeat must be served from the query cache
    assert query.cache_stats()["hits"] > hits_before
    # A fresh query object (empty query cache) over the same store is
    # served by the store's LRU instead: the cell file is not re-read.
    store_hits_before = cube_store.cache_stats()["hits"]
    FlowCubeQuery(cube_store).flowgraph()
    assert cube_store.cache_stats()["hits"] > store_hits_before
    assert {n.prefix for n in first.nodes()} == {n.prefix for n in second.nodes()}
    # The measure matches the in-memory cube's apex measure.
    reference_query = FlowCubeQuery(reference_cube)
    expected = reference_query.flowgraph()
    assert {n.prefix: n.count for n in second.nodes()} == {
        n.prefix: n.count for n in expected.nodes()
    }


# ----------------------------------------------------------------------
# the CLI
# ----------------------------------------------------------------------

def test_cli_full_lifecycle(tmp_path, capsys):
    target = str(tmp_path / "wh")
    assert main([
        "init", target, "--synthetic", "--n-dims", "2", "--fanouts", "2,3",
        "--n-location-groups", "3", "--locations-per-group", "2",
        "--max-duration", "3", "--partition-size", "25",
    ]) == 0
    assert main([
        "ingest", target, "--synthetic", "--n-paths", "100", "--seed", "3",
    ]) == 0
    out = capsys.readouterr().out
    assert "4 new partition(s)" in out
    assert main([
        "build", target, "--min-support", "0.2", "--no-exceptions",
    ]) == 0
    assert "built" in capsys.readouterr().out
    assert main(["query", target]) == 0
    assert "flowgraph measure" in capsys.readouterr().out
    assert main(["stats", target]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["store"]["partitions"] == 4
    assert report["cube"]["built"] is True


def test_cli_csv_roundtrip_and_errors(tmp_path, capsys, database):
    target = str(tmp_path / "wh")
    assert main([
        "init", target, "--synthetic", "--n-dims", "2", "--fanouts", "2,3",
        "--n-location-groups", "3", "--locations-per-group", "2",
        "--max-duration", "3",
    ]) == 0
    csv_file = tmp_path / "batch.csv"
    csv_file.write_text(database.to_csv(), encoding="utf-8")
    assert main(["ingest", target, "--csv", str(csv_file)]) == 0
    # Same ids again: the append invariant rejects the batch.
    assert main(["ingest", target, "--csv", str(csv_file)]) == 2
    assert "error:" in capsys.readouterr().err
    # Querying before any build fails cleanly too.
    assert main(["query", target]) == 2
    assert main(["stats", str(tmp_path / "missing")]) == 2
