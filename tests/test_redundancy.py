"""Tests for redundancy pruning (Definition 4.4) and inference."""

import pytest

from repro.core import (
    ConceptHierarchy,
    FlowCube,
    ItemLevel,
    Path,
    PathDatabase,
    PathLattice,
    PathRecord,
    PathSchema,
    drop_redundant,
    is_redundant,
    prune_redundant,
    tv_similarity,
)


def milk_database() -> PathDatabase:
    """Milk behaves identically across fat levels except farm-A's skim.

    Farm-A skim milk takes a different route, so its cell must survive
    redundancy pruning while the others collapse into their parents.
    """
    product = ConceptHierarchy.from_nested(
        "product", {"milk": {"skim": {}, "whole": {}}}
    )
    farm = ConceptHierarchy.flat("farm", ["farmA", "farmB"])
    location = ConceptHierarchy.from_nested(
        "location", {"plant": {}, "store": {}, "lab": {}}
    )
    duration = ConceptHierarchy.flat("duration", [str(i) for i in range(10)])
    schema = PathSchema((product, farm), location, duration)

    normal = [("plant", 1), ("store", 2)]
    weird = [("plant", 1), ("lab", 5), ("store", 2)]
    records = []
    rid = 1
    for product_value in ("skim", "whole"):
        for farm_value in ("farmA", "farmB"):
            route = weird if (product_value, farm_value) == ("skim", "farmA") else normal
            for _ in range(6):
                records.append(
                    PathRecord(rid, (product_value, farm_value), Path(route))
                )
                rid += 1
    return PathDatabase(schema, records)


@pytest.fixture
def milk_cube() -> FlowCube:
    db = milk_database()
    lattice = PathLattice.paper_default(db.schema.location)
    return FlowCube.build(db, path_lattice=lattice, min_support=2,
                          compute_exceptions=False)


class TestIsRedundant:
    def test_conforming_cell_is_redundant(self, milk_cube):
        level = milk_cube.path_lattice[0]
        cell = milk_cube.cell(ItemLevel((2, 1)), ("whole", "farmB"), level)
        assert is_redundant(milk_cube, cell, threshold=0.9, metric=tv_similarity)

    def test_deviant_cell_is_not_redundant(self, milk_cube):
        level = milk_cube.path_lattice[0]
        cell = milk_cube.cell(ItemLevel((2, 1)), ("skim", "farmA"), level)
        assert not is_redundant(milk_cube, cell, threshold=0.9, metric=tv_similarity)

    def test_apex_never_redundant(self, milk_cube):
        level = milk_cube.path_lattice[0]
        apex = milk_cube.cell(ItemLevel((0, 0)), ("*", "*"), level)
        assert not is_redundant(milk_cube, apex, threshold=0.0, metric=tv_similarity)


class TestPrune:
    def test_prune_marks_conforming_cells(self, milk_cube):
        marked = prune_redundant(milk_cube, threshold=0.9, metric=tv_similarity)
        assert marked > 0
        level = milk_cube.path_lattice[0]
        survivor = milk_cube.cell(ItemLevel((2, 1)), ("skim", "farmA"), level)
        assert not survivor.redundant
        pruned = milk_cube.cell(ItemLevel((2, 1)), ("whole", "farmB"), level)
        assert pruned.redundant

    def test_inference_falls_back_to_ancestor(self, milk_cube):
        prune_redundant(milk_cube, threshold=0.9, metric=tv_similarity)
        level = milk_cube.path_lattice[0]
        graph = milk_cube.flowgraph_for(
            ItemLevel((2, 1)), ("whole", "farmB"), level
        )
        # The inferred graph comes from an ancestor, so it aggregates more
        # paths than the pruned cell itself held (6).
        assert graph.n_paths > 6

    def test_drop_redundant_removes_cells(self, milk_cube):
        before = milk_cube.n_cells()
        marked = prune_redundant(milk_cube, threshold=0.9, metric=tv_similarity)
        removed = drop_redundant(milk_cube)
        assert removed == marked
        assert milk_cube.n_cells() == before - removed

    def test_nonredundant_count_matches_describe(self, milk_cube):
        prune_redundant(milk_cube, threshold=0.9, metric=tv_similarity)
        stats = milk_cube.describe()
        assert stats["redundant_cells"] == milk_cube.n_cells() - milk_cube.n_cells(
            include_redundant=False
        )

    def test_threshold_one_marks_nothing(self, milk_cube):
        # φ ∈ [0,1]: with τ = 1 no similarity can strictly exceed it.
        assert prune_redundant(milk_cube, threshold=1.0, metric=tv_similarity) == 0

    def test_prune_is_idempotent(self, milk_cube):
        first = prune_redundant(milk_cube, threshold=0.9, metric=tv_similarity)
        second = prune_redundant(milk_cube, threshold=0.9, metric=tv_similarity)
        assert first > 0 and second == 0
