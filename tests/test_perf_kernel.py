"""The interned bitmap counting kernel and parallel partition scans.

The whole perf layer rests on one contract: a kernel or a worker pool is
an *implementation detail* — every counting strategy and every ``jobs``
setting must produce byte-identical mining results, down to the
per-length candidate/frequent counters.  These tests pin that contract:

* property tests drive ``shared_mine`` with both kernels and ``apriori``
  with both counting modes over random databases;
* ``shared_mine_store`` is checked parallel-vs-serial (and vs in-memory),
  including the ≤ 1 live-partition gauge;
* the interning and bitmap primitives are unit-tested directly;
* ``jobs`` validation and the CLI ``--jobs`` flag fail loudly on bad
  values.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.lattice import PathLattice
from repro.encoding.transactions import TransactionDatabase
from repro.errors import StoreError
from repro.mining import MiningStats, apriori, count_candidates, shared_mine
from repro.perf.bitmap import count_candidates_masks, item_masks
from repro.perf.interning import InternedTransactions, ItemInterner
from repro.store import (
    BuildStats,
    PartitionedPathStore,
    build_cube,
    shared_mine_store,
)
from repro.store.cli import main
from repro.synth import GeneratorConfig, generate_path_database
from tests.test_properties import path_databases

CONFIG = GeneratorConfig(
    n_paths=60,
    n_dims=2,
    dim_fanouts=(2, 3),
    n_sequences=6,
    max_path_length=4,
    max_duration=3,
    seed=7,
)
MIN_SUPPORT = 0.1


@pytest.fixture(scope="module")
def database():
    return generate_path_database(CONFIG)


@pytest.fixture(scope="module")
def store(tmp_path_factory, database):
    s = PartitionedPathStore.init(
        tmp_path_factory.mktemp("wh") / "wh",
        database.schema,
        partition_size=math.ceil(len(database) / 3),
    )
    s.ingest(database)
    return s


# ----------------------------------------------------------------------
# kernel parity: shared_mine and apriori
# ----------------------------------------------------------------------

@given(path_databases(), st.integers(min_value=3, max_value=8))
@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_bitmap_and_tidset_shared_mine_agree(db, threshold):
    bitmap = shared_mine(db, min_support=threshold, kernel="bitmap")
    tidset = shared_mine(db, min_support=threshold, kernel="tidset")
    assert bitmap.supports == tidset.supports
    assert bitmap.stats.counters_equal(tidset.stats)


@given(path_databases(), st.integers(min_value=3, max_value=8))
@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_bitmap_and_tidset_apriori_agree(db, threshold):
    lattice = PathLattice.paper_default(db.schema.location)
    transactions = [
        t.items for t in TransactionDatabase(db, lattice).transactions
    ]
    bitmap_stats, tidset_stats = MiningStats(), MiningStats()
    bitmap = apriori(
        transactions, threshold, counting="bitmap", stats=bitmap_stats
    )
    tidset = apriori(
        transactions, threshold, counting="tidset", stats=tidset_stats
    )
    assert bitmap == tidset
    assert bitmap_stats.counters_equal(tidset_stats)


def test_shared_mine_reuses_encoded_database(database):
    tdb = TransactionDatabase(
        database, PathLattice.paper_default(database.schema.location)
    )
    fresh = shared_mine(database, min_support=MIN_SUPPORT)
    reused = shared_mine(
        database, min_support=MIN_SUPPORT, transaction_db=tdb
    )
    again = shared_mine(
        database, min_support=MIN_SUPPORT, transaction_db=tdb
    )
    assert fresh.supports == reused.supports == again.supports
    assert fresh.stats.counters_equal(reused.stats)
    assert reused.stats.counters_equal(again.stats)


# ----------------------------------------------------------------------
# store mining: parallel vs serial vs in-memory
# ----------------------------------------------------------------------

@pytest.mark.parametrize("kernel", ["bitmap", "scan"])
def test_store_mining_parallel_equals_serial(store, database, kernel):
    reference = shared_mine(database, min_support=MIN_SUPPORT)
    for jobs in (1, 2):
        build_stats = BuildStats()
        result = shared_mine_store(
            store,
            min_support=MIN_SUPPORT,
            kernel=kernel,
            jobs=jobs,
            build_stats=build_stats,
        )
        assert result.supports == reference.supports
        assert result.stats.counters_equal(reference.stats)
        # Out-of-core invariant: never more than one live partition per
        # process, serial or parallel.
        assert build_stats.max_live_transaction_dbs == 1


def test_build_cube_parallel_equals_serial(store, database):
    serial = build_cube(store, min_support=MIN_SUPPORT, jobs=1)
    stats = BuildStats()
    parallel = build_cube(store, min_support=MIN_SUPPORT, jobs=2, stats=stats)
    assert stats.max_live_transaction_dbs == 1
    serial_cuboids = {
        (c.item_level, c.path_level): c for c in serial.cuboids
    }
    assert len(serial_cuboids) == len(parallel.cuboids)
    for cuboid in parallel.cuboids:
        twin = serial_cuboids[(cuboid.item_level, cuboid.path_level)]
        assert set(cuboid.cells) == set(twin.cells)
        for key, cell in cuboid.cells.items():
            assert cell.record_ids == twin.cells[key].record_ids
            assert cell.paths == twin.cells[key].paths


# ----------------------------------------------------------------------
# interning + bitmap primitives
# ----------------------------------------------------------------------

def test_interner_round_trip_and_canonical_order():
    interner = ItemInterner(sort_key=lambda s: s)
    row = interner.encode(["pear", "apple", "mango"])
    assert [interner.items[i] for i in row] == ["apple", "mango", "pear"]
    assert interner.id_of("apple") == interner.intern("apple")
    assert interner.key_of(interner.id_of("pear")) == "pear"
    assert interner.decode(row) == frozenset({"apple", "mango", "pear"})


def test_interned_transactions_track_base_alphabet():
    interned = InternedTransactions.from_transactions(
        [{"a", "b"}, {"b", "c"}], sort_key=lambda s: s
    )
    assert interned.n_base == 3
    interned.interner.intern("projection-only")
    # Extending the interner must not move the row/mask boundary.
    assert interned.n_base == 3
    assert len(interned.interner) == 4


def test_bitmap_mask_counting_matches_scan_counting():
    rows = [(0, 1), (1, 2), (0, 1, 2), (2,)]
    masks = item_masks(rows, 3)
    assert [m.bit_count() for m in masks] == [2, 3, 3]
    transactions = [frozenset(row) for row in rows]
    candidates = [(0, 1), (0, 2), (1, 2), (0, 1, 2), (0, 7)]
    by_mask = count_candidates_masks(transactions, candidates)
    by_scan = count_candidates(transactions, candidates)
    assert by_mask == by_scan
    assert (0, 7) not in by_mask  # zero support -> absent, like the scan


# ----------------------------------------------------------------------
# jobs validation and the CLI flag
# ----------------------------------------------------------------------

@pytest.mark.parametrize("jobs", [-1, 1.5, True])
def test_store_entry_points_reject_bad_jobs(store, jobs):
    with pytest.raises(StoreError):
        shared_mine_store(store, min_support=MIN_SUPPORT, jobs=jobs)
    with pytest.raises(StoreError):
        build_cube(store, min_support=MIN_SUPPORT, jobs=jobs)


def test_jobs_zero_resolves_to_cpu_count_minus_one(store):
    """``jobs=0`` means "use the machine": cpu_count - 1, floored at 1."""
    import os

    from repro.perf.pool import resolve_jobs

    expected = max(1, (os.cpu_count() or 2) - 1)
    assert resolve_jobs(0) == expected
    assert resolve_jobs(1) == 1
    result = shared_mine_store(store, min_support=MIN_SUPPORT, jobs=0)
    reference = shared_mine_store(store, min_support=MIN_SUPPORT)
    assert result.supports == reference.supports


def test_cli_build_jobs_flag(tmp_path, capsys):
    target = str(tmp_path / "wh")
    assert main([
        "init", target, "--synthetic", "--n-dims", "2", "--fanouts", "2,3",
        "--n-location-groups", "3", "--locations-per-group", "2",
        "--max-duration", "3", "--partition-size", "25",
    ]) == 0
    assert main([
        "ingest", target, "--synthetic", "--n-paths", "50", "--seed", "3",
    ]) == 0
    capsys.readouterr()
    # --jobs 0 is no longer an error: it resolves to cpu_count - 1 and
    # says so on stderr.
    assert main([
        "build", target, "--min-support", "0.2", "--no-exceptions",
        "--jobs", "0",
    ]) == 0
    captured = capsys.readouterr()
    assert "--jobs 0 resolved to" in captured.err
    assert "built" in captured.out
    assert main([
        "build", target, "--min-support", "0.2", "--no-exceptions",
        "--jobs", "-1",
    ]) == 2
    assert "jobs must be" in capsys.readouterr().err
    assert main([
        "build", target, "--min-support", "0.2", "--no-exceptions",
        "--jobs", "2",
    ]) == 0
    captured = capsys.readouterr()
    assert "built" in captured.out
    import os

    if 2 > (os.cpu_count() or 1):
        assert "exceeds the machine's" in captured.err
