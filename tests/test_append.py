"""Incremental store append (repro.store.append): delta-merge parity.

The load-bearing contract: appending a batch to a persisted cube and
querying it is **byte-identical** (``cube_to_json``) to rebuilding the
cube from scratch over the extended store — across both build engines,
both exception kernels, both storage formats, and serial/pooled
re-mining; before *and* after compaction; warm handle and cold reopen.

The durability contracts ride along: appends never rewrite the base
``cells.bin``; a crash between the delta-segment publish and the meta
commit leaves the old cube fully readable and the next append refuses
the now-stale cube; a rebuild sweeps crash orphans; fresh segment ids
skip over orphaned files.
"""

from __future__ import annotations

import json

import pytest

from repro.core.path import Path, PathRecord
from repro.core.path_database import PathDatabase
from repro.core.serialization import cube_to_json
from repro.errors import StoreError
from repro.store import (
    BuildStats,
    PartitionedPathStore,
    append_records,
    build_cube,
)
from repro.store.cli import main
from repro.synth import GeneratorConfig, generate_path_database

CONFIG = GeneratorConfig(
    n_paths=150,
    n_dims=2,
    dim_fanouts=(2, 3),
    n_location_groups=3,
    locations_per_group=2,
    n_sequences=8,
    max_path_length=4,
    max_duration=3,
    seed=5,
)
MIN_SUPPORT = 0.05
PARTITION_SIZE = 40
BASE_ROWS = 120  # appends get the remaining 30 (a 25% batch)


@pytest.fixture(scope="module")
def database():
    return generate_path_database(CONFIG)


@pytest.fixture(scope="module")
def split(database):
    rows = list(database)
    return rows[:BASE_ROWS], rows[BASE_ROWS:]


def _base_store(directory, database, rows, fmt, engine, **build_kwargs):
    store = PartitionedPathStore.init(
        directory,
        database.schema,
        partition_size=PARTITION_SIZE,
        store_format=fmt,
    )
    store.ingest(PathDatabase(database.schema, rows, validate=False))
    cube = store.cube_store()
    build_cube(
        store,
        min_support=build_kwargs.pop("min_support", MIN_SUPPORT),
        into=cube,
        stats=BuildStats(),
        engine=engine,
        **build_kwargs,
    )
    return store, cube


@pytest.fixture(scope="module")
def rebuilt_reference(tmp_path_factory, database):
    """``cube_to_json`` of a from-scratch rebuild, cached per (engine, fmt)."""
    root = tmp_path_factory.mktemp("append-reference")
    cache: dict[tuple, str] = {}

    def reference(engine: str, fmt: str, **build_kwargs) -> str:
        key = (engine, fmt, tuple(sorted(build_kwargs.items())))
        if key not in cache:
            directory = root / f"ref-{len(cache)}"
            _, cube = _base_store(
                directory, database, list(database), fmt, engine,
                **build_kwargs,
            )
            cache[key] = cube_to_json(cube)
        return cache[key]

    return reference


# ----------------------------------------------------------------------
# the parity grid
# ----------------------------------------------------------------------

@pytest.mark.parametrize("engine", ["rollup", "direct"])
@pytest.mark.parametrize("kernel", ["bitmap", "scan"])
@pytest.mark.parametrize("fmt", ["binary", "json"])
@pytest.mark.parametrize("jobs", [1, 2])
def test_append_matches_rebuild_byte_identical(
    tmp_path, database, split, rebuilt_reference, engine, kernel, fmt, jobs
):
    base, batch = split
    store, cube = _base_store(tmp_path / "wh", database, base, fmt, engine)
    stats = append_records(
        store, batch, cube=cube, kernel=kernel, jobs=jobs, compact_after=0
    )
    assert stats["ingested"] == len(batch)
    assert stats["updated"] > 0
    expected = rebuilt_reference(engine, fmt)
    assert cube_to_json(cube) == expected

    # Cold reopen reads the delta overlay, not stale base state.
    cube.close()
    cold = store.cube_store()
    assert cube_to_json(cold) == expected
    if fmt == "binary":
        assert cold.delta_segments == [1]

    # Compaction folds the segments without changing a byte.
    folded = cold.compact()
    assert (folded > 0) == (fmt == "binary")
    assert cube_to_json(cold) == expected
    assert cold.delta_segments == []
    assert cube_to_json(store.cube_store()) == expected


def test_append_never_rewrites_the_base_heap(tmp_path, database, split):
    base, batch = split
    store, cube = _base_store(tmp_path / "wh", database, base, "binary", "rollup")
    heap = store.directory / "cube" / "cells.bin"
    before = (heap.stat().st_mtime_ns, heap.stat().st_size, heap.read_bytes())
    append_records(store, batch, cube=cube, compact_after=0)
    after = (heap.stat().st_mtime_ns, heap.stat().st_size, heap.read_bytes())
    assert before == after
    assert (store.directory / "cube" / "cells.delta.001.bin").exists()
    assert (store.directory / "cube" / "cells.delta.idx").exists()


def test_append_without_exceptions_matches_rebuild(
    tmp_path, database, split, rebuilt_reference
):
    """Bloom-pruned promotion path: no full sweep, still byte-identical."""
    base, batch = split
    store, cube = _base_store(
        tmp_path / "wh", database, base, "binary", "rollup",
        compute_exceptions=False, min_support=6,
    )
    stats = append_records(store, batch, cube=cube, compact_after=0)
    assert stats["created"] > 0  # this split promotes keys at δ=6
    expected = rebuilt_reference(
        "rollup", "binary", compute_exceptions=False, min_support=6
    )
    assert cube_to_json(cube) == expected
    cube.compact()
    assert cube_to_json(cube) == expected


def test_fractional_delta_append_demotes_to_rebuild_state(
    tmp_path, database, split, rebuilt_reference
):
    base, batch = split
    store, cube = _base_store(
        tmp_path / "wh", database, base, "binary", "rollup",
        min_support=0.08,
    )
    stats = append_records(store, batch, cube=cube, compact_after=0)
    assert stats["demoted"] > 0
    expected = rebuilt_reference("rollup", "binary", min_support=0.08)
    assert cube_to_json(cube) == expected


def test_iceberg_promotion_lands_in_rebuild_order(
    tmp_path, database, split, rebuilt_reference
):
    base, batch = split
    store, cube = _base_store(
        tmp_path / "wh", database, base, "binary", "rollup", min_support=6
    )
    stats = append_records(store, batch, cube=cube, compact_after=0)
    assert stats["created"] > 0 and stats["promoted"] > 0
    expected = rebuilt_reference("rollup", "binary", min_support=6)
    assert cube_to_json(cube) == expected


def test_auto_compaction_trips_at_threshold(tmp_path, database, split):
    base, batch = split
    store, cube = _base_store(tmp_path / "wh", database, base, "binary", "rollup")
    first, second = batch[:15], batch[15:]
    r1 = append_records(store, first, cube=cube, compact_after=2)
    assert r1["compacted"] == 0 and cube.delta_segments == [1]
    r2 = append_records(store, second, cube=cube, compact_after=2)
    assert r2["compacted"] > 0 and cube.delta_segments == []
    counters = cube.build_stats["append"]
    assert counters["batches"] == 2
    assert counters["compactions"] == 1
    assert counters["delta_segments"] == 0
    assert counters["last_compaction"]["folded_segments"] == 2


# ----------------------------------------------------------------------
# counters and guardrails
# ----------------------------------------------------------------------

def test_append_counters_persist_and_surface_in_stats(
    tmp_path, capsys, database, split
):
    base, batch = split
    store, cube = _base_store(tmp_path / "wh", database, base, "binary", "rollup")
    append_records(store, batch, cube=cube, compact_after=0)
    cube.close()

    meta = json.loads(
        (store.directory / "cube" / "cube.json").read_text(encoding="utf-8")
    )
    counters = meta["build_stats"]["append"]
    assert counters["batches"] == 1
    assert counters["records_appended"] == len(batch)
    assert counters["delta_segments"] == 1
    assert meta["build_stats"]["records"] == len(store)

    assert main(["stats", str(store.directory)]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["cube"]["build_stats"]["append"]["batches"] == 1
    assert report["cube"]["delta_segments"] == 1


def test_append_bumps_the_build_version(tmp_path, database, split):
    base, batch = split
    store, cube = _base_store(tmp_path / "wh", database, base, "binary", "rollup")
    before = cube.build_version
    append_records(store, batch, cube=cube, compact_after=0)
    assert cube.build_version != before


def test_id_collision_rejected_before_touching_the_cube(
    tmp_path, database, split
):
    base, _ = split
    store, cube = _base_store(tmp_path / "wh", database, base, "binary", "rollup")
    snapshot = cube_to_json(cube)
    colliding = [PathRecord(0, base[0].dims, base[0].path)]
    with pytest.raises(StoreError, match="high-water mark"):
        append_records(store, colliding, cube=cube)
    assert len(store) == BASE_ROWS
    assert cube_to_json(cube) == snapshot
    assert cube.delta_segments == []


def test_stale_cube_refused(tmp_path, database, split):
    base, batch = split
    store, cube = _base_store(tmp_path / "wh", database, base, "binary", "rollup")
    store.ingest(
        PathDatabase(database.schema, batch[:5], validate=False)
    )  # out-of-band ingest the cube never saw
    with pytest.raises(StoreError, match="stale"):
        append_records(store, batch[5:], cube=cube)


def test_unbuilt_cube_refused(tmp_path, database, split):
    base, batch = split
    store = PartitionedPathStore.init(
        tmp_path / "wh", database.schema, partition_size=PARTITION_SIZE
    )
    store.ingest(PathDatabase(database.schema, base, validate=False))
    with pytest.raises(StoreError, match="no cube has been built"):
        append_records(store, batch)


def test_empty_batch_is_a_noop(tmp_path, database, split):
    base, _ = split
    store, cube = _base_store(tmp_path / "wh", database, base, "binary", "rollup")
    snapshot = cube_to_json(cube)
    stats = append_records(store, [], cube=cube)
    assert stats["ingested"] == 0 and stats["updated"] == 0
    assert cube_to_json(cube) == snapshot


# ----------------------------------------------------------------------
# crash consistency
# ----------------------------------------------------------------------

def test_interrupted_append_leaves_old_cube_readable(
    tmp_path, database, split, rebuilt_reference
):
    """Crash between the delta/overlay publish and the meta commit.

    The meta file is the commit point: restoring the pre-append
    ``cube.json`` (= the crash happened before the rename) must leave
    the old cube byte-identical on a cold open, make the next append
    refuse the stale cube, and let a rebuild sweep the orphans.
    """
    base, batch = split
    store, cube = _base_store(tmp_path / "wh", database, base, "binary", "rollup")
    before_json = cube_to_json(cube)
    meta_path = store.directory / "cube" / "cube.json"
    old_meta = meta_path.read_bytes()

    append_records(store, batch, cube=cube, compact_after=0)
    cube.close()
    meta_path.write_bytes(old_meta)  # "crash" before the meta rename

    # Orphaned segment + overlay on disk, but the old state serves.
    assert (store.directory / "cube" / "cells.delta.001.bin").exists()
    cold = store.cube_store()
    assert cold.delta_segments == []
    assert cube_to_json(cold) == before_json

    # The store moved on without the cube: appends refuse to pile on.
    with pytest.raises(StoreError, match="stale"):
        append_records(
            store,
            [PathRecord(10_000, base[0].dims, base[0].path)],
            cube=cold,
        )

    # A rebuild recovers: orphans swept, parity restored.
    rebuilt = store.cube_store()
    build_cube(
        store, min_support=MIN_SUPPORT, into=rebuilt, stats=BuildStats()
    )
    assert not list((store.directory / "cube").glob("cells.delta.*"))
    assert cube_to_json(rebuilt) == rebuilt_reference("rollup", "binary")


def test_fresh_segment_ids_skip_crash_orphans(tmp_path, database, split):
    base, batch = split
    store, cube = _base_store(tmp_path / "wh", database, base, "binary", "rollup")
    orphan = store.directory / "cube" / "cells.delta.007.bin"
    orphan.write_bytes(b"FCHEAP02")  # a crashed append's leftover
    append_records(store, batch, cube=cube, compact_after=0)
    assert cube.delta_segments == [8]


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def test_cli_append_and_compact_round_trip(tmp_path, capsys):
    directory = str(tmp_path / "wh")
    assert main([
        "init", directory, "--synthetic", "--n-dims", "2",
        "--fanouts", "2,3", "--partition-size", "60",
    ]) == 0
    assert main([
        "ingest", directory, "--synthetic", "--n-paths", "120", "--seed", "3",
    ]) == 0
    assert main(["build", directory, "--min-support", "0.1"]) == 0
    assert main([
        "append", directory, "--synthetic", "--n-paths", "12", "--seed", "4",
    ]) == 0
    out = capsys.readouterr().out
    assert "cell(s) updated" in out
    assert "1 delta segment(s) pending" in out
    assert main(["compact", directory]) == 0
    assert "folded 1 delta segment(s)" in capsys.readouterr().out
    assert main(["compact", directory]) == 0
    assert "nothing to compact" in capsys.readouterr().out
