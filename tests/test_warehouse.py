"""Tests for the warehouse substrate: simulation, cleaning, ETL (Section 2)."""

import pytest

from repro.core import PathDatabase, RawReading
from repro.core.stage import StageRecord
from repro.errors import CleaningError, GenerationError
from repro.warehouse import (
    ReaderModel,
    build_path_database,
    clean_readings,
    group_by_item,
    round_durations,
    sessionise,
    simulate_readings,
)


class TestSimulator:
    def test_stream_covers_every_stage(self, paper_db):
        readings = list(simulate_readings(paper_db))
        by_item = group_by_item(readings)
        assert len(by_item) == len(paper_db)
        for record in paper_db:
            reads = by_item[f"epc-{record.record_id}"]
            seen_locations = []
            for reading in reads:
                if not seen_locations or seen_locations[-1] != reading.location:
                    seen_locations.append(reading.location)
            assert tuple(seen_locations) == record.path.locations

    def test_deterministic(self, paper_db):
        a = list(simulate_readings(paper_db))
        b = list(simulate_readings(paper_db))
        assert a == b

    def test_noise_model_validation(self):
        with pytest.raises(GenerationError):
            ReaderModel(read_period=0)
        with pytest.raises(GenerationError):
            ReaderModel(miss_rate=1.5)
        with pytest.raises(GenerationError):
            ReaderModel(duplicate_rate=-0.1)

    def test_duplicates_produced(self, paper_db):
        noisy = ReaderModel(duplicate_rate=0.9, miss_rate=0.0, seed=1)
        readings = list(simulate_readings(paper_db, noisy))
        clean = list(simulate_readings(paper_db, ReaderModel(duplicate_rate=0.0,
                                                             miss_rate=0.0, seed=1)))
        assert len(readings) > len(clean)


class TestSessionise:
    def test_basic_stays(self):
        reads = [
            RawReading("e", 0.0, "a"),
            RawReading("e", 1.0, "a"),
            RawReading("e", 2.0, "b"),
            RawReading("e", 5.0, "b"),
        ]
        stays = sessionise(reads)
        assert stays == [StageRecord("a", 0.0, 1.0), StageRecord("b", 2.0, 5.0)]

    def test_return_visit_creates_new_stay(self):
        reads = [
            RawReading("e", 0.0, "a"),
            RawReading("e", 1.0, "b"),
            RawReading("e", 2.0, "a"),
        ]
        stays = sessionise(reads)
        assert [s.location for s in stays] == ["a", "b", "a"]

    def test_gap_threshold_splits(self):
        reads = [
            RawReading("e", 0.0, "a"),
            RawReading("e", 1.0, "a"),
            RawReading("e", 50.0, "a"),
        ]
        assert len(sessionise(reads)) == 1
        assert len(sessionise(reads, gap_threshold=10.0)) == 2

    def test_rejects_mixed_items(self):
        reads = [RawReading("e1", 0.0, "a"), RawReading("e2", 1.0, "a")]
        with pytest.raises(CleaningError, match="single item"):
            sessionise(reads)

    def test_rejects_unsorted(self):
        reads = [RawReading("e", 5.0, "a"), RawReading("e", 1.0, "a")]
        with pytest.raises(CleaningError, match="sorted"):
            sessionise(reads)

    def test_empty(self):
        assert sessionise([]) == []


class TestCleanReadings:
    def test_orders_by_epc(self):
        reads = [
            RawReading("z", 0.0, "a"),
            RawReading("a", 0.0, "b"),
        ]
        cleaned = list(clean_readings(reads))
        assert [epc for epc, _ in cleaned] == ["a", "z"]

    def test_unsorted_input_ok(self):
        reads = [
            RawReading("e", 5.0, "b"),
            RawReading("e", 0.0, "a"),
            RawReading("e", 2.0, "a"),
        ]
        (_, stays), = clean_readings(reads)
        assert [s.location for s in stays] == ["a", "b"]


class TestRoundTrip:
    def test_simulate_clean_etl_recovers_paths(self, paper_db):
        """The full §2 pipeline recovers every ground-truth path."""
        readings = simulate_readings(paper_db)
        master = {
            f"epc-{r.record_id}": r.dims for r in paper_db
        }
        rebuilt = build_path_database(
            readings,
            master,
            paper_db.schema,
            duration_reducer=round_durations(1.0),
        )
        assert len(rebuilt) == len(paper_db)
        recovered = {
            (record.dims, record.path.locations) for record in rebuilt
        }
        truth = {(record.dims, record.path.locations) for record in paper_db}
        assert recovered == truth

    def test_durations_recovered_within_rounding(self, paper_db):
        readings = simulate_readings(paper_db)
        master = {f"epc-{r.record_id}": r.dims for r in paper_db}
        rebuilt = build_path_database(
            readings, master, paper_db.schema,
            duration_reducer=round_durations(1.0),
        )
        # Align by sorted EPC = record id order in the paper db.
        truth = {r.record_id: r for r in paper_db}
        for record in rebuilt:
            original = truth[record.record_id]
            for rebuilt_stage, true_stage in zip(record.path, original.path):
                # Zero-duration stages round up to 1 unit; others match.
                expected = max(1.0, true_stage.duration)
                assert rebuilt_stage.duration == pytest.approx(expected, abs=1.0)

    def test_record_ids_mapping_preserves_alignment(self, paper_db):
        readings = simulate_readings(paper_db)
        master = {f"epc-{r.record_id}": r.dims for r in paper_db}
        ids = {f"epc-{r.record_id}": r.record_id for r in paper_db}
        rebuilt = build_path_database(
            readings, master, paper_db.schema, record_ids=ids
        )
        for record in paper_db:
            assert rebuilt[record.record_id].dims == record.dims
            assert (
                rebuilt[record.record_id].path.locations
                == record.path.locations
            )

    def test_record_ids_missing_epc_raises(self, paper_db):
        readings = simulate_readings(paper_db)
        master = {f"epc-{r.record_id}": r.dims for r in paper_db}
        with pytest.raises(CleaningError, match="no record id"):
            build_path_database(
                readings, master, paper_db.schema, record_ids={}
            )

    def test_zero_gap_rejected(self, paper_db):
        with pytest.raises(GenerationError, match="inter_stage_gap"):
            list(simulate_readings(paper_db, inter_stage_gap=0.0))

    def test_missing_master_data_raises(self, paper_db):
        readings = simulate_readings(paper_db)
        with pytest.raises(CleaningError, match="master data"):
            build_path_database(readings, {}, paper_db.schema)

    def test_round_durations_validation(self):
        with pytest.raises(CleaningError):
            round_durations(0)
        reducer = round_durations(2.0)
        assert reducer(3.2) == 4.0
        assert reducer(0.0) == 2.0
