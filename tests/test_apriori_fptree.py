"""Tests for the generic miners: Apriori (both counting modes) and FP-growth."""

import pytest

from repro.mining import MiningStats, apriori, fp_growth
from repro.mining.apriori import (
    count_candidates,
    count_candidates_tidset,
    generate_candidates,
    tid_lists,
)

T = [
    frozenset("abc"),
    frozenset("abd"),
    frozenset("ab"),
    frozenset("cd"),
    frozenset("acd"),
]


class TestApriori:
    def test_known_supports(self):
        result = apriori(T, min_support=2)
        assert result[frozenset("a")] == 4
        assert result[frozenset("ab")] == 3
        assert result[frozenset("cd")] == 2
        assert frozenset("abc") not in result  # support 1

    def test_scan_and_tidset_agree(self):
        scan = apriori(T, min_support=2, counting="scan")
        tidset = apriori(T, min_support=2, counting="tidset")
        assert scan == tidset

    def test_max_length(self):
        result = apriori(T, min_support=1, max_length=1)
        assert all(len(s) == 1 for s in result)

    def test_pair_filter_blocks_joins(self):
        result = apriori(T, min_support=2, pair_filter=lambda a, b: False)
        assert all(len(s) == 1 for s in result)

    def test_stats_collection(self):
        stats = MiningStats()
        apriori(T, min_support=2, stats=stats)
        assert stats.candidates_per_length[1] == 4  # a, b, c, d
        assert stats.frequent_per_length[1] == 4
        assert stats.total_candidates >= stats.total_frequent

    def test_unknown_counting_rejected(self):
        with pytest.raises(ValueError, match="counting"):
            apriori(T, min_support=1, counting="magic")

    def test_empty_database(self):
        assert apriori([], min_support=1) == {}

    def test_threshold_above_everything(self):
        assert apriori(T, min_support=99) == {}


class TestCandidateGeneration:
    def test_join_produces_sorted_supersets(self):
        frequent = [("a",), ("b",), ("c",)]
        candidates = generate_candidates(frequent, key=lambda x: x)
        assert set(candidates) == {("a", "b"), ("a", "c"), ("b", "c")}

    def test_subset_pruning(self):
        # With ("b","c") missing, the join of ("a","b") and ("a","c")
        # produces ("a","b","c") but the subset check rejects it.
        frequent = [("a", "b"), ("a", "c")]
        candidates = generate_candidates(frequent, key=lambda x: x)
        assert ("a", "b", "c") not in candidates
        frequent = [("a", "b"), ("a", "c"), ("b", "c")]
        candidates = generate_candidates(frequent, key=lambda x: x)
        assert candidates == [("a", "b", "c")]

    def test_subset_prune_counts(self):
        stats = MiningStats()
        frequent = [("a", "b"), ("a", "c")]  # (b,c) not frequent
        candidates = generate_candidates(frequent, stats=stats, key=lambda x: x)
        assert candidates == []
        assert stats.pruned["subset"] == 1


class TestCounting:
    def test_scan_counting(self):
        support = count_candidates(T, [("a", "b"), ("c", "d")])
        assert support[("a", "b")] == 3
        assert support[("c", "d")] == 2

    def test_tidset_counting_matches(self):
        item_tids = tid_lists(T)
        parents = {("a",): item_tids["a"], ("b",): item_tids["b"],
                   ("c",): item_tids["c"], ("d",): item_tids["d"]}
        tids = count_candidates_tidset([("a", "b"), ("c", "d")], parents)
        assert len(tids[("a", "b")]) == 3
        assert len(tids[("c", "d")]) == 2

    def test_tid_lists(self):
        tids = tid_lists(T)
        assert tids["a"] == {0, 1, 2, 4}
        assert tids["d"] == {1, 3, 4}


class TestFPGrowth:
    def test_agrees_with_apriori(self):
        assert fp_growth(T, min_support=2) == apriori(T, min_support=2)

    def test_agrees_on_support_one(self):
        assert fp_growth(T, min_support=1) == apriori(T, min_support=1)

    def test_max_length(self):
        result = fp_growth(T, min_support=1, max_length=2)
        full = fp_growth(T, min_support=1)
        assert result == {s: n for s, n in full.items() if len(s) <= 2}

    def test_empty(self):
        assert fp_growth([], min_support=1) == {}

    def test_agrees_on_synthetic_stage_items(self, tiny_synth_db, paper_db):
        """Cross-check on real mixed-item transactions."""
        from repro.core import PathLattice
        from repro.encoding import TransactionDatabase
        from repro.mining import item_sort_key

        lattice = PathLattice.paper_default(tiny_synth_db.schema.location)
        tdb = TransactionDatabase(tiny_synth_db, lattice)
        transactions = [t.items for t in tdb.transactions]
        a = apriori(transactions, min_support=8, key=item_sort_key, max_length=3)
        f = fp_growth(transactions, min_support=8, key=item_sort_key, max_length=3)
        assert a == f
