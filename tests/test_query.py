"""Tests for the OLAP query API, flow analysis, and rendering."""

import pytest

from repro.core import FlowCube, FlowGraph, ItemLevel, PathLattice
from repro.errors import QueryError
from repro.query import (
    FlowCubeQuery,
    compare_flowgraphs,
    duration_outcome_correlation,
    lead_time_deviations,
    render_dot,
    render_text,
    typical_paths,
)


@pytest.fixture(scope="module")
def cube():
    from repro.core import example_path_database

    db = example_path_database()
    return FlowCube.build(db, min_support=2, compute_exceptions=False)


@pytest.fixture(scope="module")
def query(cube):
    return FlowCubeQuery(cube)


class TestCoordinates:
    def test_named_coordinates(self, query):
        level, key = query.coordinates(product="outerwear", brand="nike")
        assert level == ItemLevel((2, 1))
        assert key == ("outerwear", "nike")

    def test_unmentioned_dims_are_star(self, query):
        level, key = query.coordinates(brand="nike")
        assert level == ItemLevel((0, 1))
        assert key == ("*", "nike")

    def test_unknown_value_rejected(self, query):
        with pytest.raises(QueryError, match="not a 'product' concept"):
            query.coordinates(product="socks")

    def test_unknown_dimension_rejected(self, query):
        from repro.errors import PathDatabaseError

        with pytest.raises(PathDatabaseError):
            query.coordinates(color="red")


class TestCellAccess:
    def test_cell_lookup(self, query):
        cell = query.cell(product="outerwear", brand="nike")
        assert cell.record_ids == (4, 5, 6)

    def test_below_iceberg_raises(self, query):
        with pytest.raises(QueryError, match="iceberg"):
            query.cell(product="shirt")

    def test_flowgraph_access(self, query):
        graph = query.flowgraph(product="outerwear", brand="nike")
        assert isinstance(graph, FlowGraph)
        assert graph.n_paths == 3

    def test_default_path_level_is_most_detailed(self, query, cube):
        level = query.default_path_level()
        assert level.duration_level == 1
        assert len(level.view.concepts) == max(
            len(lv.view.concepts) for lv in cube.path_lattice
        )


class TestSlice:
    def test_slice_on_brand(self, query):
        cells = list(query.slice(brand="nike"))
        assert cells
        for cell in cells:
            assert cell.key[1] == "nike"

    def test_slice_matches_descendants(self, query):
        cells = list(query.slice(product="clothing"))
        products = {cell.key[0] for cell in cells}
        # clothing itself plus materialised descendants; never '*'.
        assert "clothing" in products
        assert "*" not in products

    def test_slice_unknown_value(self, query):
        with pytest.raises(QueryError):
            list(query.slice(product="socks"))


class TestNavigation:
    def test_roll_up(self, query):
        cell = query.cell(product="outerwear", brand="nike")
        parent = query.roll_up(cell, "product")
        assert parent.key == ("clothing", "nike")
        top = query.roll_up(parent, "product")
        assert top.key == ("*", "nike")
        with pytest.raises(QueryError, match="already at"):
            query.roll_up(top, "product")

    def test_drill_down(self, query):
        cell = query.cell(product="shoes")
        children = query.drill_down(cell, "product")
        names = {c.key[0] for c in children}
        assert names == {"tennis"}  # sandals has 1 path: below iceberg

    def test_drill_down_from_star(self, query):
        cell = query.cell()  # apex
        children = query.drill_down(cell, "product")
        assert {c.key[0] for c in children} == {"clothing"}

    def test_drill_down_at_leaves_raises(self, query):
        cell = query.cell(product="tennis")
        with pytest.raises(QueryError, match="already at leaves"):
            query.drill_down(cell, "product")

    def test_change_path_level(self, query, cube):
        cell = query.cell(product="shoes")
        other_level = cube.path_lattice[3]
        moved = query.change_path_level(cell, other_level)
        assert moved.path_level == other_level
        assert moved.key == cell.key


class TestAnalysis:
    def test_typical_paths(self, query):
        graph = query.flowgraph()
        paths = typical_paths(graph, top_k=2)
        assert len(paths) == 2
        assert paths[0].probability >= paths[1].probability
        top = paths[0]
        assert top.locations == (
            "factory", "dist center", "truck", "shelf", "checkout",
        )
        assert top.expected_lead_time > 0
        with pytest.raises(QueryError):
            typical_paths(graph, top_k=0)

    def test_lead_time_deviations(self, query):
        cell = query.cell()
        flagged = lead_time_deviations(cell.flowgraph, list(cell.paths),
                                       z_threshold=1.2)
        # Record 7 has a 20-hour shelf stay: the clear outlier.
        assert flagged
        worst_path, z = flagged[0]
        assert abs(z) >= 1.2
        totals = [sum(float(d) for _, d in p) for p, _ in flagged]
        assert max(totals) == 29.0  # path of record 7

    def test_lead_time_requires_numeric_durations(self, query, cube):
        star_level = cube.path_lattice[1]
        cell = query.cell(path_level=star_level)
        with pytest.raises(QueryError, match="numeric duration"):
            lead_time_deviations(cell.flowgraph, list(cell.paths))

    def test_duration_outcome_correlation(self):
        paths = (
            [((("qc"), "9"), (("returns"), "1"))] * 8
            + [(("qc", "9"), ("ship", "1"))] * 2
            + [(("qc", "1"), ("ship", "1"))] * 9
            + [(("qc", "1"), ("returns", "1"))] * 1
        )
        stats = duration_outcome_correlation(
            paths, at_location="qc", long_stay=5, outcome_location="returns"
        )
        assert stats["p_long"] == pytest.approx(0.8)
        assert stats["p_short"] == pytest.approx(0.1)
        assert stats["lift"] == pytest.approx(8.0)

    def test_compare_flowgraphs(self, query):
        current = query.flowgraph(product="shoes")
        baseline = query.flowgraph(product="clothing")
        shifts = compare_flowgraphs(current, baseline, top_k=3)
        assert len(shifts) <= 3
        assert all("prefix" in s for s in shifts)

    def test_compare_identical_graphs_no_shift(self, query):
        graph = query.flowgraph()
        shifts = compare_flowgraphs(graph, graph, top_k=5)
        assert all(
            s["transition_shift"] == 0 and s["duration_shift"] == 0
            for s in shifts
        )


class TestRendering:
    def test_text_contains_structure(self, query):
        graph = query.flowgraph()
        text = render_text(graph)
        assert "factory" in text
        assert "→" in text
        assert "0.62" in text or "0.63" in text  # factory duration 10

    def test_text_shows_exceptions(self, paper_db):
        cube = FlowCube.build(paper_db, min_support=2, min_deviation=0.05)
        graph = FlowCubeQuery(cube).flowgraph()
        if graph.exceptions:
            assert "exceptions" in render_text(graph)

    def test_dot_is_wellformed(self, query):
        dot = render_dot(query.flowgraph(), name="paper")
        assert dot.startswith('digraph "paper"')
        assert dot.rstrip().endswith("}")
        assert '"factory"' in dot
        assert "->" in dot
