"""Tests for the experiment harness (repro.bench)."""

import pytest

from repro.bench import (
    ALL_EXPERIMENTS,
    ExperimentResult,
    fig11_pruning_power,
    result_to_csv,
    run_algorithms,
    run_experiments,
    write_results,
)
from repro.bench.cli import main as cli_main
from repro.synth import GeneratorConfig, generate_path_database


class TestRunAlgorithms:
    def test_all_three(self):
        db = generate_path_database(GeneratorConfig(n_paths=60, n_dims=2, seed=1))
        out = run_algorithms(db, 0.05)
        assert set(out) == {"shared", "cubing", "basic"}
        for elapsed, result in out.values():
            assert elapsed >= 0
            assert len(result) > 0

    def test_unknown_algorithm(self):
        db = generate_path_database(GeneratorConfig(n_paths=20, n_dims=2, seed=1))
        with pytest.raises(ValueError, match="unknown algorithm"):
            run_algorithms(db, 0.05, algorithms=("magic",))


class TestExperimentResult:
    def test_table_rendering(self):
        result = ExperimentResult(
            name="figX",
            title="t",
            x_label="n",
            series_labels=("shared", "cubing"),
            rows=[(100, {"shared": 1.5}), (200, {"shared": 2.0, "cubing": 3.0})],
        )
        table = result.as_table()
        assert "1.500s" in table
        assert "-" in table  # missing cubing at x=100

    def test_candidate_unit_rendering(self):
        result = ExperimentResult(
            name="fig11",
            title="t",
            x_label="length",
            series_labels=("shared",),
            rows=[(1, {"shared": 42.0})],
            unit="candidates",
        )
        assert "42" in result.as_table()
        assert "42.000s" not in result.as_table()

    def test_csv(self):
        result = ExperimentResult(
            name="figX",
            title="t",
            x_label="n",
            series_labels=("shared",),
            rows=[(100, {"shared": 1.5})],
        )
        text = result_to_csv(result)
        assert text.splitlines()[0] == "n,shared,unit"
        assert "100,1.5,s" in text


class TestExperiments:
    def test_registry_covers_all_figures(self):
        assert set(ALL_EXPERIMENTS) == {
            "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "compression",
        }

    def test_compression_experiment(self):
        from repro.bench.compression import compression_experiment

        result = compression_experiment(n_paths=80, deltas=(0.02, 0.1),
                                        taus=(0.9,))
        assert result.unit == "cells"
        by_delta = {x: row for x, row in result.rows}
        # Higher δ always materialises fewer (or equal) iceberg cells.
        assert by_delta[10.0]["iceberg_cells"] <= by_delta[2.0]["iceberg_cells"]
        # Non-redundant count never exceeds the iceberg count.
        for _, row in result.rows:
            assert row["nonredundant_tau_0.9"] <= row["iceberg_cells"]

    def test_fig11_tiny_run(self):
        result = fig11_pruning_power(scale=1.0, n_paths=60, min_support=0.2)
        assert result.rows
        shared_total = sum(v.get("shared", 0) for _, v in result.rows)
        basic_total = sum(v.get("basic", 0) for _, v in result.rows)
        assert basic_total > shared_total  # the pruning-power claim

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_experiments(["fig99"], verbose=False)

    def test_write_results(self, tmp_path):
        result = ExperimentResult(
            name="figX",
            title="t",
            x_label="n",
            series_labels=("shared",),
            rows=[(1, {"shared": 0.1})],
        )
        paths = write_results([result], tmp_path)
        assert paths == [tmp_path / "figX.csv"]
        assert paths[0].read_text().startswith("n,shared,unit")


class TestCLI:
    def test_help_when_no_args(self, capsys):
        assert cli_main([]) == 0
        assert "fig6" in capsys.readouterr().out

    def test_unknown_figure(self, capsys):
        assert cli_main(["fig99"]) == 2
        assert "unknown figures" in capsys.readouterr().err

    def test_runs_and_writes(self, tmp_path, capsys, monkeypatch):
        # Shrink fig11 so the CLI test is fast.
        import repro.bench.cli as cli
        import repro.bench.harness as harness

        def tiny_fig11(scale=1.0):
            return fig11_pruning_power(scale=scale, n_paths=60, min_support=0.2)

        monkeypatch.setitem(harness.ALL_EXPERIMENTS, "fig11", tiny_fig11)
        code = cli.main(["fig11", "--out", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "fig11" in out
        assert (tmp_path / "fig11.csv").exists()
