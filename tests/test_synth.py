"""Tests for the synthetic data generator (repro.synth, Section 6.1)."""

import numpy as np
import pytest

from repro.errors import GenerationError
from repro.synth import (
    GeneratorConfig,
    ZipfSampler,
    generate_location_sequences,
    generate_path_database,
    make_dimension_hierarchy,
    make_location_hierarchy,
)


class TestZipf:
    def test_uniform_at_alpha_zero(self):
        sampler = ZipfSampler(4, 0.0, np.random.default_rng(1))
        probabilities = sampler.probabilities()
        assert probabilities == pytest.approx([0.25] * 4)

    def test_skew_concentrates_mass(self):
        flat = ZipfSampler(10, 0.0, np.random.default_rng(1)).probabilities()
        skewed = ZipfSampler(10, 2.0, np.random.default_rng(1)).probabilities()
        assert skewed[0] > flat[0]
        assert skewed[-1] < flat[-1]

    def test_probabilities_sum_to_one(self):
        probabilities = ZipfSampler(7, 1.3, np.random.default_rng(1)).probabilities()
        assert probabilities.sum() == pytest.approx(1.0)

    def test_samples_in_range(self):
        sampler = ZipfSampler(5, 1.0, np.random.default_rng(2))
        draws = sampler.sample_many(1000)
        assert draws.min() >= 0 and draws.max() < 5
        assert 0 <= sampler.sample() < 5

    def test_empirical_matches_theoretical(self):
        sampler = ZipfSampler(4, 1.0, np.random.default_rng(3))
        draws = sampler.sample_many(20_000)
        empirical = np.bincount(draws, minlength=4) / len(draws)
        assert empirical == pytest.approx(sampler.probabilities(), abs=0.02)

    def test_bad_parameters(self):
        rng = np.random.default_rng(1)
        with pytest.raises(GenerationError):
            ZipfSampler(0, 1.0, rng)
        with pytest.raises(GenerationError):
            ZipfSampler(3, -1.0, rng)


class TestHierarchyGen:
    def test_dimension_hierarchy_shape(self):
        h = make_dimension_hierarchy("d0", (2, 3, 4))
        assert h.depth == 3
        assert len(h.concepts_at_level(1)) == 2
        assert len(h.concepts_at_level(2)) == 6
        assert len(h.leaves) == 24

    def test_location_hierarchy_shape(self):
        h = make_location_hierarchy(3, 4)
        assert h.depth == 2
        assert len(h.concepts_at_level(1)) == 3
        assert len(h.leaves) == 12

    def test_names_deterministic(self):
        a = make_dimension_hierarchy("x", (2, 2))
        b = make_dimension_hierarchy("x", (2, 2))
        assert list(a) == list(b)

    def test_bad_fanouts(self):
        with pytest.raises(GenerationError):
            make_dimension_hierarchy("x", ())
        with pytest.raises(GenerationError):
            make_location_hierarchy(0, 4)


class TestSequenceGen:
    def test_distinct_and_valid(self):
        h = make_location_hierarchy(4, 4)
        rng = np.random.default_rng(5)
        sequences = generate_location_sequences(h, 20, rng, 3, 8)
        assert len(set(sequences)) == 20
        leaves = set(h.leaves)
        for sequence in sequences:
            assert 3 <= len(sequence) <= 8
            assert all(loc in leaves for loc in sequence)
            # No immediate repeats.
            assert all(a != b for a, b in zip(sequence, sequence[1:]))

    def test_group_order_monotone(self):
        h = make_location_hierarchy(4, 4)
        rng = np.random.default_rng(5)
        for sequence in generate_location_sequences(h, 10, rng, 4, 8):
            groups = [h.parent(loc) for loc in sequence]
            assert groups == sorted(groups)

    def test_impossible_request_raises(self):
        h = make_location_hierarchy(1, 1)  # single location: length>1 impossible
        rng = np.random.default_rng(5)
        with pytest.raises(GenerationError, match="distinct sequences"):
            generate_location_sequences(h, 50, rng, 3, 4, max_attempts_factor=2)


class TestGenerator:
    def test_deterministic(self):
        config = GeneratorConfig(n_paths=50, seed=9)
        a = generate_path_database(config)
        b = generate_path_database(config)
        assert a.to_csv() == b.to_csv()

    def test_seed_changes_data(self):
        a = generate_path_database(GeneratorConfig(n_paths=50, seed=9))
        b = generate_path_database(GeneratorConfig(n_paths=50, seed=10))
        assert a.to_csv() != b.to_csv()

    def test_shape_matches_config(self):
        config = GeneratorConfig(
            n_paths=120, n_dims=3, n_sequences=8, max_duration=5, seed=4
        )
        db = generate_path_database(config)
        assert len(db) == 120
        assert db.schema.n_dimensions == 3
        assert len(db.distinct_location_sequences()) <= 8
        for record in db:
            assert all(1 <= s.duration <= 5 for s in record.path)

    def test_values_are_real_hierarchy_leaves(self):
        db = generate_path_database(GeneratorConfig(n_paths=40, seed=2))
        for record in db:
            for hierarchy, value in zip(db.schema.dimensions, record.dims):
                assert value in hierarchy
                assert hierarchy.level_of(value) == hierarchy.depth

    def test_with_override(self):
        config = GeneratorConfig(n_paths=10)
        bigger = config.with_(n_paths=99)
        assert bigger.n_paths == 99
        assert bigger.n_dims == config.n_dims

    def test_bad_config_rejected(self):
        with pytest.raises(GenerationError):
            GeneratorConfig(n_paths=-1)
        with pytest.raises(GenerationError):
            GeneratorConfig(min_path_length=5, max_path_length=3)
        with pytest.raises(GenerationError):
            GeneratorConfig(n_dims=0)

    def test_empty_database(self):
        db = generate_path_database(GeneratorConfig(n_paths=0))
        assert len(db) == 0
