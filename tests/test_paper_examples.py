"""End-to-end reproduction of every table and figure example in the paper.

Each test regenerates one artifact of Sections 2–5 from the Table 1 running
example:

* Table 1  — the path database itself,
* Table 2  — aggregation to (product-type, brand),
* Table 3  — the encoded transaction database,
* Table 4  — frequent itemsets at δ=3 (supports recomputed from Table 1;
  see EXPERIMENTS.md for the two printed values that contradict Table 1),
* Figure 1 — the two path views of the same path,
* Figure 3 — the full-database flowgraph,
* Figure 4 — the (outerwear, nike) cell flowgraph,
* Section 3's exception examples (structure, on engineered data in
  test_flowgraph_exceptions.py).
"""

import pytest

from repro.core import (
    DURATION_VALUE,
    FlowCube,
    FlowGraph,
    ItemLevel,
    LocationView,
    PathLevel,
    aggregate_path,
)
from repro.encoding import TransactionDatabase
from repro.mining import shared_mine

SHORT = {
    "factory": "f",
    "dist center": "d",
    "truck": "t",
    "warehouse": "w",
    "shelf": "s",
    "checkout": "c",
    "backroom": "b",
    "transportation": "T",
    "store": "S",
}


class TestTable1:
    def test_all_rows(self, paper_db):
        assert [r.record_id for r in paper_db] == list(range(1, 9))
        assert str(paper_db[1].path) == (
            "(factory, 10)(dist center, 2)(truck, 1)(shelf, 5)(checkout, 0)"
        )
        assert paper_db[6].dims == ("jacket", "nike")
        assert paper_db[8].path.locations[-1] == "dist center"


class TestTable2:
    def test_aggregated_grouping(self, paper_db, paper_lattice):
        cube = FlowCube.build(
            paper_db,
            path_lattice=paper_lattice,
            item_levels=[ItemLevel((2, 1))],
            min_support=1,
            compute_exceptions=False,
        )
        cuboid = cube.cuboid(ItemLevel((2, 1)), paper_lattice[0])
        groups = {key: cell.record_ids for key, cell in cuboid.cells.items()}
        assert groups == {
            ("shoes", "nike"): (1, 2, 3),
            ("shoes", "adidas"): (7, 8),
            ("outerwear", "nike"): (4, 5, 6),
        }


class TestTable3:
    EXPECTED = {
        1: ["1121", "21", "(f,10)", "(fd,2)", "(fdt,1)", "(fdts,5)", "(fdtsc,0)"],
        2: ["1121", "21", "(f,5)", "(fd,2)", "(fdt,1)", "(fdts,10)", "(fdtsc,0)"],
        3: ["1122", "21", "(f,10)", "(fd,1)", "(fdt,2)", "(fdts,5)", "(fdtsc,0)"],
        4: ["1111", "21", "(f,10)", "(ft,1)", "(fts,5)", "(ftsc,0)"],
        5: ["1112", "21", "(f,10)", "(ft,2)", "(fts,5)", "(ftsc,1)"],
        6: ["1112", "21", "(f,10)", "(ft,1)", "(ftw,5)"],
        7: ["1121", "22", "(f,5)", "(fd,2)", "(fdt,2)", "(fdts,20)"],
        8: ["1121", "22", "(f,5)", "(fd,2)", "(fdt,3)", "(fdts,10)", "(fdtsd,5)"],
    }

    def test_every_transaction(self, paper_db, paper_lattice):
        """Table 3 modulo code width: the paper spells tennis '121' (it
        omits the category digit, all products being clothing); our codes
        keep every hierarchy level, so tennis is '121' within the product
        hierarchy and renders as dimension digit + '121' = '1121'."""
        tdb = TransactionDatabase(paper_db, paper_lattice)
        for transaction in tdb:
            rendered = tdb.render_transaction(transaction, SHORT)
            assert rendered == self.EXPECTED[transaction.tid], (
                f"transaction {transaction.tid}"
            )


class TestTable4:
    def test_frequent_itemsets_at_delta_3(self, paper_db):
        """Table 4's verifiable rows (supports recomputed from Table 1)."""
        result = shared_mine(paper_db, min_support=3)
        cells = result.frequent_cells()
        # {12*}: 5 — shoes.
        assert cells[(ItemLevel((2, 0)), ("shoes", "*"))] == 5
        # {12*, 211}: 3 — shoes ∧ nike.
        assert cells[(ItemLevel((2, 1)), ("shoes", "nike"))] == 3
        segments = result.frequent_segments()
        apex = (ItemLevel((0, 0)), ("*", "*"), 0)
        # {(f,10)}: 5 and {(f,5)(fd,2)}: 3.
        assert segments[apex][((("factory",), "10"),)] == 5
        assert (
            segments[apex][
                ((("factory",), "5"), (("factory", "dist center"), "2"))
            ]
            == 3
        )


class TestFigure1:
    def test_both_views_of_one_path(self, paper_db, location_hierarchy):
        from repro.core import Path

        # Figure 1's middle path.
        path = Path(
            [
                ("dist center", 2),
                ("truck", 1),
                ("backroom", 4),
                ("shelf", 5),
                ("checkout", 0),
            ]
        )
        store_view = PathLevel(
            LocationView(
                location_hierarchy,
                ["transportation", "factory", "backroom", "shelf", "checkout"],
            ),
            DURATION_VALUE,
        )
        transport_view = PathLevel(
            LocationView(
                location_hierarchy,
                ["dist center", "truck", "warehouse", "factory", "store"],
            ),
            DURATION_VALUE,
        )
        assert [loc for loc, _ in aggregate_path(path, store_view)] == [
            "transportation", "backroom", "shelf", "checkout",
        ]
        assert [loc for loc, _ in aggregate_path(path, transport_view)] == [
            "dist center", "truck", "store",
        ]


class TestFigure3:
    @pytest.fixture
    def graph(self, paper_db, paper_lattice):
        return FlowGraph(
            aggregate_path(r.path, paper_lattice[0]) for r in paper_db
        )

    def test_printed_probabilities(self, graph):
        """Figure 3's annotations, recomputed from Table 1.

        The figure prints factory→dist center as 0.65 / →truck 0.35; the
        exact Table 1 fractions are 5/8 = 0.625 and 3/8 = 0.375 (the
        figure rounds loosely).  The duration annotations 0.38/0.62 are
        exactly 3/8 and 5/8.
        """
        factory = graph.node(("factory",))
        assert factory.duration_distribution()["5"] == pytest.approx(3 / 8)
        assert factory.duration_distribution()["10"] == pytest.approx(5 / 8)
        transitions = factory.transition_distribution()
        assert transitions["dist center"] == pytest.approx(5 / 8)
        assert transitions["truck"] == pytest.approx(3 / 8)

    def test_truck_split(self, graph):
        truck = graph.node(("factory", "truck"))
        assert truck.transition_distribution()["shelf"] == pytest.approx(0.67, abs=0.01)
        assert truck.transition_distribution()["warehouse"] == pytest.approx(
            0.33, abs=0.01
        )

    def test_text_exception_example_structure(self, paper_db, paper_lattice):
        """Section 3's worked exception: truck→warehouse is 33% in general
        but 50% for items that stayed 1 hour at the truck (records 4 and 6
        split warehouse/shelf; record 5 stayed 2 hours)."""
        paths = [
            aggregate_path(r.path, paper_lattice[0])
            for r in paper_db
            if r.path.locations[1] == "truck"
        ]
        graph = FlowGraph(paths)
        from repro.core import mine_exceptions

        exceptions = mine_exceptions(
            graph, paths, min_support=2, min_deviation=0.1
        )
        matching = [
            e
            for e in exceptions
            if e.kind == "transition"
            and e.node_prefix == ("factory", "truck")
            and ((("factory", "truck"), "1")) in e.condition
        ]
        assert matching
        assert matching[0].conditional["warehouse"] == pytest.approx(0.5)
        assert matching[0].baseline["warehouse"] == pytest.approx(1 / 3)


class TestFigure4:
    def test_cell_flowgraph(self, paper_db, paper_lattice):
        cube = FlowCube.build(
            paper_db,
            path_lattice=paper_lattice,
            item_levels=[ItemLevel((2, 1))],
            min_support=2,
            compute_exceptions=False,
        )
        graph = cube.cell(
            ItemLevel((2, 1)), ("outerwear", "nike"), paper_lattice[0]
        ).flowgraph
        assert graph.node(("factory",)).transition_distribution() == {"truck": 1.0}
        truck = graph.node(("factory", "truck")).transition_distribution()
        assert truck["shelf"] == pytest.approx(2 / 3)
        assert truck["warehouse"] == pytest.approx(1 / 3)
        shelf = graph.node(("factory", "truck", "shelf")).transition_distribution()
        assert shelf == {"checkout": 1.0}
