"""End-to-end smoke of ``flowcube-store serve`` against the example store.

What CI's serve-smoke job runs: build the built-in retail example store
with the CLI, start the server as a real subprocess on a free port, and
script a round trip over the JSON API — cube listing, a slice, a
roll-up, a drill-down, a point query, and the stats report — asserting
status codes and the shape of every payload.  The server is then asked
to shut down with SIGINT and must exit cleanly.

Usage:  python scripts/serve_smoke.py [workdir]

Exits non-zero (with an AssertionError traceback) on any failure.
"""

from __future__ import annotations

import http.client
import json
import re
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

CLI = [sys.executable, "-m", "repro.store.cli"]
ADDRESS = re.compile(r"at http://([\d.]+):(\d+)")


def cli(*args: str) -> None:
    subprocess.run([*CLI, *args], check=True)


def request(host, port, method, path, body=None):
    conn = http.client.HTTPConnection(host, port, timeout=10)
    try:
        payload = json.dumps(body) if body is not None else None
        headers = {"Content-Type": "application/json"} if payload else {}
        conn.request(method, path, payload, headers)
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def wait_for_address(process) -> tuple[str, int]:
    """The (host, port) the serve subprocess prints once it is bound."""
    deadline = time.time() + 30
    while time.time() < deadline:
        line = process.stdout.readline()
        if not line:
            break
        match = ADDRESS.search(line)
        if match:
            return match.group(1), int(match.group(2))
    raise AssertionError("server never printed its address")


def round_trip(host: str, port: int) -> None:
    status, info = request(host, port, "GET", "/")
    assert status == 200 and info["cubes"] == ["wh"], info

    status, detail = request(host, port, "GET", "/cubes/wh")
    assert status == 200, detail
    assert detail["cells"] > 0, detail
    assert detail["version"], "build version missing from /cubes/wh"

    status, cuboids = request(host, port, "GET", "/cubes/wh/cuboids")
    assert status == 200 and cuboids["cuboids"], cuboids

    status, sliced = request(
        host, port, "POST", "/cubes/wh/slice", {"cut": "product:clothing"}
    )
    assert status == 200 and sliced["n_cells"] >= 1, sliced
    # The cut matches the concept and everything under it.
    assert any(c["key"] == ["clothing", "*"] for c in sliced["cells"]), sliced

    status, rolled = request(
        host,
        port,
        "POST",
        "/cubes/wh/rollup",
        {"cut": "product:clothing", "dimension": "product"},
    )
    assert status == 200 and rolled["cell"]["key"][0] == "*", rolled

    status, drilled = request(
        host, port, "POST", "/cubes/wh/drilldown", {"dimension": "brand"}
    )
    assert status == 200 and drilled["n_cells"] >= 1, drilled

    status, queried = request(
        host, port, "POST", "/cubes/wh/query", {"cut": "product:clothing"}
    )
    assert status == 200 and queried["cell"]["flowgraph"]["nodes"], queried

    status, _ = request(host, port, "GET", "/cubes/nope")
    assert status == 404

    status, stats = request(host, port, "GET", "/stats")
    assert status == 200, stats
    tenant = stats["cubes"]["wh"]
    assert tenant["response_cache"]["misses"] >= 1, tenant
    assert stats["server"]["requests"] >= 8, stats


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    workdir = Path(argv[0]) if argv else Path(tempfile.mkdtemp("serve-smoke"))
    store = workdir / "wh"
    cli("init", "--example", str(store))
    cli("ingest", "--example", str(store))
    cli("build", str(store))

    process = subprocess.Popen(
        [*CLI, "serve", "--cubes", f"wh={store}", "--port", "0"],
        stdout=subprocess.PIPE,
        text=True,
    )
    try:
        host, port = wait_for_address(process)
        round_trip(host, port)
    finally:
        process.send_signal(signal.SIGINT)
        exit_code = process.wait(timeout=15)
    assert exit_code == 0, f"server exited with {exit_code}"
    print("serve smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
