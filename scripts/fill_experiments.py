"""Inject measured results/<fig>.csv tables into EXPERIMENTS.md.

Replaces each ``<!--FIGX-->`` placeholder with a markdown table rendered
from the matching CSV written by ``flowcube-bench --all --out results``.

Usage:  python scripts/fill_experiments.py [results_dir] [experiments_md]
"""

from __future__ import annotations

import csv
import sys
from pathlib import Path

PLACEHOLDERS = {
    "<!--FIG6-->": "fig6.csv",
    "<!--FIG7-->": "fig7.csv",
    "<!--FIG8-->": "fig8.csv",
    "<!--FIG9-->": "fig9.csv",
    "<!--FIG10-->": "fig10.csv",
    "<!--FIG11-->": "fig11.csv",
    "<!--COMPRESSION-->": "compression.csv",
}


def csv_to_markdown(path: Path) -> str:
    with path.open() as handle:
        rows = list(csv.reader(handle))
    header, *body = rows
    unit = header[-1]
    header = header[:-1]
    lines = [
        "| " + " | ".join(header) + " |",
        "|" + "---|" * len(header),
    ]
    for row in body:
        unit_value = row[-1]
        cells = []
        for i, cell in enumerate(row[:-1]):
            if i == 0 or not cell:
                cells.append(cell if cell else "—")
            elif unit_value == "s":
                cells.append(f"{float(cell):.2f}s")
            else:
                cells.append(f"{float(cell):g}")
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def main() -> int:
    results = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("results")
    target = Path(sys.argv[2]) if len(sys.argv) > 2 else Path("EXPERIMENTS.md")
    text = target.read_text()
    missing = []
    for placeholder, filename in PLACEHOLDERS.items():
        csv_path = results / filename
        if placeholder not in text:
            continue
        if not csv_path.exists():
            missing.append(filename)
            continue
        text = text.replace(placeholder, csv_to_markdown(csv_path))
    target.write_text(text)
    if missing:
        print(f"missing CSVs (placeholders left in place): {missing}")
        return 1
    print(f"filled {target} from {results}/")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
