"""Figure 10: runtime vs path density (δ=1%, d=5).

Swept by the number of distinct location sequences — few sequences means
dense paths and many frequent path segments.  Paper shape: expensive on
the dense end for both, but Shared gains a large advantage there because
Cubing re-mines the same dense segment space inside every frequent cell.
Basic is not runnable in this regime at all.
"""

import pytest

from benchmarks.conftest import BASE, run_once
from repro.mining import cubing_mine, shared_mine

SEQUENCE_COUNTS = [5, 20, 50]


@pytest.mark.parametrize("n_sequences", SEQUENCE_COUNTS)
def test_shared(benchmark, db_cache, n_sequences):
    db = db_cache(BASE.with_(n_sequences=n_sequences))
    result = run_once(benchmark, lambda: shared_mine(db, min_support=0.01))
    assert len(result) > 0


@pytest.mark.parametrize("n_sequences", SEQUENCE_COUNTS)
def test_cubing(benchmark, db_cache, n_sequences):
    db = db_cache(BASE.with_(n_sequences=n_sequences))
    result = run_once(benchmark, lambda: cubing_mine(db, min_support=0.01))
    assert len(result) > 0
