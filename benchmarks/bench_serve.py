"""Serving-path throughput: the HTTP slicer under closed-loop load.

The numbers the serving layer has to answer for:

* sustained QPS and tail latency (p50/p99) on the 320-path example cube
  (``bench_store.CONFIG``) for the workloads a dashboard actually sends:
  a *warm* repeated slice (answered from the tenant's rendered-response
  byte cache), a *mixed* rotation over every level-1 cut (response +
  query cache interplay), point queries, and ``/stats`` polls;
* whether the bytes coming off the socket under load are the same bytes
  a fresh seed ``"scan"`` kernel renders for the same cut — throughput
  that serves wrong answers does not count;
* the cold-slice service point at scale (full runs only): a 10k-path,
  ~15k-cell binary store mounted fresh, then one slice per level-1 cut
  — every request misses the response and query caches, so the latency
  is the zero-copy read path itself (lazy mask decode plus per-cell
  heap reads), with the tenant's ``io_counters`` reported next to the
  cube's size on disk.

Each client is a closed-loop thread with one persistent keep-alive
connection: it fires a request, waits for the full response, records the
latency, repeats until the measurement window closes.  QPS is total
completed requests over the window; percentiles are over every
individual request from every client.

``python -m benchmarks.bench_serve`` runs the sweep and writes
``BENCH_serve.json`` at the repository root; ``--quick`` shrinks the
window and client count to CI-smoke size.  The pytest entries below are
CI-sized spot checks of the same paths.
"""

from __future__ import annotations

import argparse
import http.client
import json
import statistics
import sys
import tempfile
import threading
import time
from pathlib import Path

import pytest

from benchmarks.bench_store import (
    CONFIG,
    FORMATS_SCALE_PATHS,
    MIN_SUPPORT,
    _disk_bytes,
    _make_store,
)
from repro.query.api import FlowCubeQuery
from repro.serve import ServerThread, create_app, slice_payload
from repro.serve.http import encode_json
from repro.store import build_cube
from repro.synth import generate_path_database, scaled_config

N_PARTITIONS = 4
CLIENTS = 4
DURATION_SECONDS = 2.0
WORKERS = 8
SCALE_PARTITIONS = 8


def _build_store(directory: Path, database):
    store = _make_store(directory, database, N_PARTITIONS)
    build_cube(
        store,
        min_support=MIN_SUPPORT,
        compute_exceptions=False,
        into=store.cube_store(),
    )
    return store


def _level1_cuts(database) -> list[dict[str, str]]:
    """One single-dimension cut per level-1 concept of every dimension."""
    cuts = []
    for hierarchy in database.schema.dimensions:
        for concept in sorted(hierarchy.concepts_at_level(1)):
            cuts.append({hierarchy.name: concept})
    return cuts


def _requests_for(workload: str, cuts) -> list[tuple[str, str, bytes | None]]:
    """The request rotation one closed-loop client plays for a workload."""
    first = "|".join(f"{k}:{v}" for k, v in sorted(cuts[0].items()))
    if workload == "slice_warm":
        return [("GET", f"/cubes/wh/slice?cut={first}", None)]
    if workload == "slice_mix":
        return [
            (
                "POST",
                "/cubes/wh/slice",
                json.dumps(
                    {"cut": "|".join(f"{k}:{v}" for k, v in sorted(c.items()))}
                ).encode(),
            )
            for c in cuts
        ]
    if workload == "query_point":
        return [
            ("POST", "/cubes/wh/query", json.dumps({"cut": first}).encode())
        ]
    if workload == "stats":
        return [("GET", "/stats", None)]
    raise ValueError(workload)


def _client_loop(
    address: tuple[str, int],
    requests: list[tuple[str, str, bytes | None]],
    deadline: float,
    latencies: list[float],
    failures: list[int],
) -> None:
    host, port = address
    conn = http.client.HTTPConnection(host, port, timeout=30)
    bad = 0
    index = 0
    try:
        while time.perf_counter() < deadline:
            method, path, body = requests[index % len(requests)]
            index += 1
            headers = {"Content-Type": "application/json"} if body else {}
            start = time.perf_counter()
            conn.request(method, path, body, headers)
            response = conn.getresponse()
            response.read()
            latencies.append(time.perf_counter() - start)
            if response.status != 200:
                bad += 1
    finally:
        failures.append(bad)
        conn.close()


def _percentile(ordered: list[float], q: float) -> float:
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[index]


def _measure(
    server: ServerThread,
    requests: list[tuple[str, str, bytes | None]],
    clients: int,
    duration: float,
) -> dict:
    per_client: list[list[float]] = [[] for _ in range(clients)]
    failures: list[int] = []
    start = time.perf_counter()
    deadline = start + duration
    threads = [
        threading.Thread(
            target=_client_loop,
            args=(server.address, requests, deadline, latencies, failures),
        )
        for latencies in per_client
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    latencies = sorted(lat for bucket in per_client for lat in bucket)
    return {
        "clients": clients,
        "requests": len(latencies),
        "seconds": round(elapsed, 3),
        "qps": round(len(latencies) / elapsed, 1),
        "p50_ms": round(_percentile(latencies, 0.50) * 1000, 3),
        "p99_ms": round(_percentile(latencies, 0.99) * 1000, 3),
        "mean_ms": round(statistics.fmean(latencies) * 1000, 3)
        if latencies
        else 0.0,
        "errors": sum(failures),
    }


def _cold_scale_point(n_paths: int = FORMATS_SCALE_PATHS) -> dict:
    """Cold-slice service latency on a cell-heavy store (full runs only).

    Mirrors ``bench_store``'s formats scale point: the cube is built at
    an absolute support of 2 so the store holds ~15k cells.  The server
    mounts the store fresh and each level-1 cut is requested exactly
    once over one keep-alive connection — the response cache, the query
    cache and the cell heap are all cold for every request, so the
    latencies chart the zero-copy read path itself (lazy mask decode
    plus per-matching-cell heap reads) at scale.  A warm repeat of the
    first cut closes the loop from the response byte cache, and the
    tenant's ``io_counters`` land next to the cube's bytes on disk.
    """
    database = generate_path_database(scaled_config(n_paths))
    cuts = _level1_cuts(database)
    encoded = [
        "|".join(f"{k}:{v}" for k, v in sorted(dims.items())) for dims in cuts
    ]
    with tempfile.TemporaryDirectory() as tmp:
        directory = Path(tmp) / "wh"
        store = _make_store(directory, database, SCALE_PARTITIONS)
        build_cube(
            store,
            min_support=2,
            compute_exceptions=False,
            into=store.cube_store(),
        )
        store.close()
        cube_bytes = _disk_bytes(directory / "cube")
        app = create_app({"wh": directory})
        with ServerThread(app, workers=WORKERS) as server:
            host, port = server.address
            conn = http.client.HTTPConnection(host, port, timeout=60)
            latencies = []
            try:
                for cut in encoded + encoded[:1]:  # last one: warm repeat
                    start = time.perf_counter()
                    conn.request("GET", f"/cubes/wh/slice?cut={cut}")
                    response = conn.getresponse()
                    response.read()
                    latencies.append(time.perf_counter() - start)
                    assert response.status == 200, cut
            finally:
                conn.close()
            warm_seconds = latencies.pop()
            tenant = app.tenants["wh"]
            io = tenant.cube_store.io_counters()
            n_cells = tenant.cube_store.n_cells()
            tenant.close()
    ordered = sorted(latencies)
    return {
        "n_paths": len(database),
        "n_partitions": SCALE_PARTITIONS,
        "build_min_support": 2,
        "n_cells": n_cells,
        "n_cold_requests": len(ordered),
        "cold_p50_ms": round(_percentile(ordered, 0.50) * 1000, 3),
        "cold_max_ms": round(ordered[-1] * 1000, 3),
        "cold_mean_ms": round(statistics.fmean(ordered) * 1000, 3),
        "warm_repeat_ms": round(warm_seconds * 1000, 3),
        "cube_bytes": cube_bytes,
        "io": io,
    }


def _parity(server: ServerThread, database) -> bool:
    """Socket slice bytes == the seed scan kernel's rendered payload."""
    tenant = server.app.tenants["wh"]
    dims = _level1_cuts(database)[0]
    cut = "|".join(f"{k}:{v}" for k, v in sorted(dims.items()))
    host, port = server.address
    conn = http.client.HTTPConnection(host, port, timeout=30)
    try:
        conn.request("GET", f"/cubes/wh/slice?cut={cut}")
        body = conn.getresponse().read()
    finally:
        conn.close()
    scan = FlowCubeQuery(tenant.cube_store, kernel="scan")
    cells = scan.slice_cells(None, **dims)
    return body == encode_json(slice_payload(tenant, dims, None, cells, False))


def run_suite(
    quick: bool = False,
    clients: int = CLIENTS,
    duration: float = DURATION_SECONDS,
    workers: int = WORKERS,
) -> dict:
    if quick:
        clients = min(clients, 2)
        duration = min(duration, 0.5)
    database = generate_path_database(CONFIG)
    cuts = _level1_cuts(database)
    with tempfile.TemporaryDirectory() as tmp:
        _build_store(Path(tmp) / "wh", database)
        app = create_app({"wh": Path(tmp) / "wh"})
        with ServerThread(app, workers=workers) as server:
            # One warm-up pass per workload primes every cache layer, so
            # the measured windows see steady-state behaviour.
            workloads = ("slice_warm", "slice_mix", "query_point", "stats")
            for workload in workloads:
                _measure(server, _requests_for(workload, cuts), 1, 0.2)
            report_workloads = {
                workload: _measure(
                    server, _requests_for(workload, cuts), clients, duration
                )
                for workload in workloads
            }
            parity = _parity(server, database)
            tenant_stats = app.tenants["wh"].stats()
    report = {
        "config": {
            "n_paths": len(database),
            "min_support": MIN_SUPPORT,
            "n_partitions": N_PARTITIONS,
            "clients": clients,
            "duration_seconds": duration,
            "server_workers": workers,
            "quick": quick,
        },
        "workloads": report_workloads,
        "parity": {"slice_byte_identical_to_scan_kernel": parity},
        "tenant": tenant_stats,
    }
    if not quick:
        report["cold_scale_point"] = _cold_scale_point()
    return report


# ----------------------------------------------------------------------
# CI-sized pytest entries (same paths, short windows)
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def serve_db():
    return generate_path_database(CONFIG)


@pytest.fixture(scope="module")
def server(tmp_path_factory, serve_db):
    directory = tmp_path_factory.mktemp("bench-serve") / "wh"
    _build_store(directory, serve_db)
    with ServerThread(create_app({"wh": directory})) as running:
        yield running


def test_served_slice_matches_scan_kernel(server, serve_db):
    assert _parity(server, serve_db)


def test_warm_slice_sustains_load(server, serve_db):
    cuts = _level1_cuts(serve_db)
    requests = _requests_for("slice_warm", cuts)
    _measure(server, requests, 1, 0.2)  # warm the response cache
    result = _measure(server, requests, 2, 0.5)
    assert result["errors"] == 0
    assert result["requests"] > 0
    # Soft CI floor; the full benchmark documents the real headline.
    assert result["qps"] > 50


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="HTTP slicer closed-loop load sweep -> BENCH_serve.json"
    )
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_serve.json"),
        help="output JSON path (default: repo root BENCH_serve.json)",
    )
    parser.add_argument("--clients", type=int, default=CLIENTS)
    parser.add_argument("--duration", type=float, default=DURATION_SECONDS)
    parser.add_argument("--workers", type=int, default=WORKERS)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: 2 clients, 0.5s windows",
    )
    args = parser.parse_args(argv)
    report = run_suite(
        quick=args.quick,
        clients=args.clients,
        duration=args.duration,
        workers=args.workers,
    )
    Path(args.out).write_text(
        json.dumps(report, indent=2) + "\n", encoding="utf-8"
    )
    print(json.dumps(report, indent=2))
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
