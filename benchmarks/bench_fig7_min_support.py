"""Figure 7: runtime vs minimum support (N fixed, d=5).

Paper shape: all algorithms get faster as δ rises; Shared stays fastest
and improves faster than Cubing (high δ lets it prune whole path-lattice
regions once, where Cubing re-checks them per cell).  Basic improves the
fastest of all — with few candidates its missing pruning stops mattering —
but from the worst starting point.
"""

import pytest

from benchmarks.conftest import run_once
from repro.mining import basic_mine, cubing_mine, shared_mine

SUPPORTS = [0.003, 0.01, 0.02]


@pytest.mark.parametrize("min_support", SUPPORTS)
def test_shared(benchmark, base_db, min_support):
    result = run_once(benchmark, lambda: shared_mine(base_db, min_support=min_support))
    assert len(result) > 0


@pytest.mark.parametrize("min_support", SUPPORTS)
def test_cubing(benchmark, base_db, min_support):
    result = run_once(benchmark, lambda: cubing_mine(base_db, min_support=min_support))
    assert len(result) > 0


@pytest.mark.parametrize("min_support", [0.02, 0.05])
def test_basic_high_support_only(benchmark, base_db, min_support):
    """Basic is only tractable at the high-δ end of the sweep."""
    result = run_once(
        benchmark,
        lambda: basic_mine(
            base_db, min_support=min_support, candidate_limit=200_000
        ),
    )
    assert len(result) > 0
