"""Persistent-store overhead: in-memory vs out-of-core construction.

Two questions the store layer has to answer honestly:

* what does out-of-core construction cost over ``FlowCube.build`` as the
  same database is split into 1 / 4 / 16 partitions (wall time + peak
  traced allocation, which is where out-of-core should win);
* what hit rate does the cube-store LRU cache reach once a query
  workload re-reads cells it has already materialised.

``python benchmarks/bench_store.py`` runs the full sweep and writes
``BENCH_store.json`` at the repository root; the pytest entries below are
CI-sized spot checks of the same paths.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import tempfile
import time
import tracemalloc
from pathlib import Path

import pytest

from benchmarks.conftest import run_once
from repro.core import FlowCube
from repro.query import FlowCubeQuery
from repro.store import PartitionedPathStore, build_cube, BuildStats
from repro.synth import GeneratorConfig, generate_path_database

#: Sweep configuration: one database, three partitionings of it.
CONFIG = GeneratorConfig(
    n_paths=320,
    n_dims=3,
    dim_fanouts=(3, 4),
    n_sequences=12,
    max_path_length=5,
    max_duration=4,
    seed=11,
)
PARTITION_COUNTS = (1, 4, 16)
MIN_SUPPORT = 0.05
CACHE_SIZE = 64


def _timed(fn):
    """(wall seconds, peak traced bytes, result) of one call."""
    tracemalloc.start()
    start = time.perf_counter()
    result = fn()
    elapsed = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return elapsed, peak, result


def _make_store(directory: Path, database, n_partitions: int):
    partition_size = math.ceil(len(database) / n_partitions)
    store = PartitionedPathStore.init(
        directory, database.schema, partition_size=partition_size
    )
    store.ingest(database)
    return store


def _cache_hit_rate(store: PartitionedPathStore) -> dict:
    """Build into the cube store, then replay a repeated query workload."""
    build_cube(
        store,
        min_support=MIN_SUPPORT,
        compute_exceptions=False,
        into=store.cube_store(),
    )
    served = store.cube_store(cache_size=CACHE_SIZE)
    query = FlowCubeQuery(served)
    lattice = served.path_lattice
    for _ in range(3):  # repeated workload: apex + every path level
        for level in lattice:
            query.flowgraph(level)
    return served.cache_stats()


def run_suite() -> dict:
    database = generate_path_database(CONFIG)
    in_memory_seconds, in_memory_peak, cube = _timed(
        lambda: FlowCube.build(
            database, min_support=MIN_SUPPORT, compute_exceptions=False
        )
    )
    report = {
        "config": {
            "n_paths": len(database),
            "min_support": MIN_SUPPORT,
            "cache_size": CACHE_SIZE,
        },
        "in_memory": {
            "seconds": round(in_memory_seconds, 4),
            "tracemalloc_peak_bytes": in_memory_peak,
            "n_cells": cube.n_cells(),
        },
        "partitioned": [],
    }
    for n_partitions in PARTITION_COUNTS:
        with tempfile.TemporaryDirectory() as tmp:
            store = _make_store(Path(tmp) / "wh", database, n_partitions)
            stats = BuildStats()
            seconds, peak, built = _timed(
                lambda: build_cube(
                    store,
                    min_support=MIN_SUPPORT,
                    compute_exceptions=False,
                    stats=stats,
                )
            )
            assert built.n_cells() == cube.n_cells()
            cache = _cache_hit_rate(store)
            report["partitioned"].append(
                {
                    "n_partitions": len(store.catalog.partitions),
                    "seconds": round(seconds, 4),
                    "tracemalloc_peak_bytes": peak,
                    "partition_scans": stats.scans,
                    "max_live_transaction_dbs": stats.max_live_transaction_dbs,
                    "cache": cache,
                }
            )
    return report


# ----------------------------------------------------------------------
# CI-sized pytest entries (same paths, one partitioning)
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def store_db():
    return generate_path_database(CONFIG)


def test_build_in_memory(benchmark, store_db):
    cube = run_once(
        benchmark,
        lambda: FlowCube.build(
            store_db, min_support=MIN_SUPPORT, compute_exceptions=False
        ),
    )
    assert cube.n_cells() > 0


@pytest.mark.parametrize("n_partitions", [4])
def test_build_partitioned(benchmark, store_db, n_partitions, tmp_path):
    store = _make_store(tmp_path / "wh", store_db, n_partitions)
    reference = FlowCube.build(
        store_db, min_support=MIN_SUPPORT, compute_exceptions=False
    )
    cube = run_once(
        benchmark,
        lambda: build_cube(
            store, min_support=MIN_SUPPORT, compute_exceptions=False
        ),
    )
    assert cube.n_cells() == reference.n_cells()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Store construction/cache sweep -> BENCH_store.json"
    )
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_store.json"),
        help="output JSON path (default: repo root BENCH_store.json)",
    )
    args = parser.parse_args(argv)
    report = run_suite()
    Path(args.out).write_text(
        json.dumps(report, indent=2) + "\n", encoding="utf-8"
    )
    print(json.dumps(report, indent=2))
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
