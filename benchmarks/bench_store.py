"""Persistent-store overhead: in-memory vs out-of-core construction.

Six questions the store and perf layers have to answer honestly:

* what does the interned bitmap counting kernel buy over the item-space
  tid-set kernel on the same Shared mining run (warm, on a shared
  encoded transaction database, and cold end-to-end);
* what does the bitmap exception kernel buy over the path-scanning
  exception pass on full with-exceptions builds, given that both emit
  identical exception lists and byte-identical cubes;
* what does out-of-core construction cost over ``FlowCube.build`` as the
  same database is split into 1 / 4 / 16 partitions (wall time + peak
  traced allocation, which is where out-of-core should win);
* how do parallel partition scans (``jobs``) move store mining and cube
  construction relative to the in-memory baselines;
* what does the aggregate-once roll-up measure engine buy over the
  direct per-item-level builder (in memory and out-of-core, across
  worker-pool sizes), given that both produce byte-identical cubes;
* what hit rate does the cube-store LRU cache reach once a query
  workload re-reads cells it has already materialised;
* what the binary storage backend buys over the JSON layout on the same
  data: cold cube open (store handle plus key catalogs for every
  cuboid, zero cell bytes read), cold index-first slice, the pooled
  pack pass decoding partitions, and bytes on disk — with the two
  formats' cubes asserted byte-identical under ``cube_to_json``, a
  legacy ``FCHEAP01`` (JSON-in-heap) row for the generation headline,
  and a zero-copy tripwire that *fails the run* if a cold open ever
  reads heap bytes or decodes catalog masks again;
* what incremental maintenance buys over reconstruction: a skewed 10%
  batch delta-merged into a prebuilt binary store (touched cells only,
  written as append-only delta segments) vs a full out-of-core rebuild
  of the grown database — with the appended cube asserted byte-identical
  to the rebuild before *and* after compaction, the base ``cells.bin``
  asserted untouched, and a cold open with pending deltas asserted
  zero-copy (the run fails on any violation);
* what the bitmap query kernel buys on the serving path: a cold slice
  over the cube store with the index-first kernel (predicates answered
  from the key catalog, only matching cells read) vs the seed full scan,
  a warm slice served from the query cache, and a roll-up answered by
  the derivation planner vs read from a materialised cuboid — with the
  derived answer checked byte-identical to a direct build.

``python benchmarks/bench_store.py`` runs the full sweep and writes
``BENCH_store.json`` at the repository root plus the measure-engine
section alone as ``BENCH_flowgraph.json`` and the query sweep as
``BENCH_query.json``; ``--quick`` runs a CI-smoke-sized subset of the
same paths in well under a minute.  The pytest entries below are
CI-sized spot checks.
"""

from __future__ import annotations

import argparse
import json
import math
import shutil
import sys
import tempfile
import time
import tracemalloc
from pathlib import Path

import pytest

from benchmarks.conftest import run_once
from repro.core import FlowCube
from repro.core.lattice import ItemLevel, PathLattice
from repro.core.serialization import cube_to_json
from repro.encoding.transactions import TransactionDatabase
from repro.mining import shared_mine
from repro.perf.query_kernel import CuboidKeyCatalog
from repro.query import FlowCubeQuery, derive_cuboid, plan_derivation
from repro.core.path import PathRecord
from repro.core.path_database import PathDatabase
from repro.store import (
    BuildStats,
    PartitionedPathStore,
    WorkerPool,
    append_records,
    build_cube,
    shared_mine_store,
)
from repro.synth import GeneratorConfig, generate_path_database, scaled_config

#: Sweep configuration: one database, three partitionings of it.
CONFIG = GeneratorConfig(
    n_paths=320,
    n_dims=3,
    dim_fanouts=(3, 4),
    n_sequences=12,
    max_path_length=5,
    max_duration=4,
    seed=11,
)
PARTITION_COUNTS = (1, 4, 16)
MIN_SUPPORT = 0.05
CACHE_SIZE = 64
JOBS_SWEEP = (1, 2, 4)
REPEATS = 3
#: Scale sweep: database sizes for ``--scale`` (paths per database).
SCALE_SWEEP = (10_000, 30_000, 100_000)
SCALE_PARTITIONS = 8
#: Database size for the full-run storage-format comparison point.
FORMATS_SCALE_PATHS = 10_000


def _timed(fn):
    """(wall seconds, peak traced bytes, result) of one call.

    Wall time and peak allocation come from *separate* runs: timing under
    tracemalloc inflates the wall clock several-fold, and a forked worker
    pool would inherit the (parent-side unreadable) tracing into every
    worker process.  The untraced run is timed; a second, traced run
    supplies the peak.
    """
    start = time.perf_counter()
    result = fn()
    elapsed = time.perf_counter() - start
    tracemalloc.start()
    fn()
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return elapsed, peak, result


def _best(fn, repeats: int):
    """(best wall seconds over *repeats* untraced runs, last result)."""
    best = math.inf
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _make_store(directory: Path, database, n_partitions: int):
    partition_size = math.ceil(len(database) / n_partitions)
    store = PartitionedPathStore.init(
        directory, database.schema, partition_size=partition_size
    )
    store.ingest(database)
    return store


def _kernel_section(database, repeats: int) -> dict:
    """Bitmap vs tid-set kernel on the same in-memory Shared run.

    The *warm* rows share one encoded :class:`TransactionDatabase` (the
    documented reuse path for δ sweeps: encoding and interning are paid
    once); the *end-to-end* rows re-encode from the path database on
    every run.  Both kernels must agree on every support and every
    counter — the speedup is only meaningful if the work is identical.
    """
    lattice = PathLattice.paper_default(database.schema.location)
    tdb = TransactionDatabase(database, lattice)
    tdb.interned()  # the warm basis shares the interned form too

    warm: dict[str, float] = {}
    cold: dict[str, float] = {}
    results = {}
    for kernel in ("tidset", "bitmap"):
        warm[kernel], results[kernel] = _best(
            lambda k=kernel: shared_mine(
                database, min_support=MIN_SUPPORT, transaction_db=tdb, kernel=k
            ),
            repeats,
        )
        cold[kernel], _ = _best(
            lambda k=kernel: shared_mine(
                database, min_support=MIN_SUPPORT, kernel=k
            ),
            repeats,
        )
    bitmap, tidset = results["bitmap"], results["tidset"]
    assert bitmap.supports == tidset.supports
    assert bitmap.stats.counters_equal(tidset.stats)
    return {
        "min_support": MIN_SUPPORT,
        "n_patterns": len(bitmap.supports),
        "shared_transaction_db": {
            "tidset_seconds": round(warm["tidset"], 4),
            "bitmap_seconds": round(warm["bitmap"], 4),
            "speedup": round(warm["tidset"] / warm["bitmap"], 2),
        },
        "end_to_end": {
            "tidset_seconds": round(cold["tidset"], 4),
            "bitmap_seconds": round(cold["bitmap"], 4),
            "speedup": round(cold["tidset"] / cold["bitmap"], 2),
        },
        "bitmap_phase_seconds": {
            phase: round(seconds, 4)
            for phase, seconds in sorted(bitmap.stats.phase_seconds.items())
        },
        "kernels_identical": True,
    }


def _sweep_pool(jobs: int) -> tuple[WorkerPool | None, float]:
    """(started pool or None for serial, spawn seconds paid once).

    The sweep's steady-state rows all reuse this one pool, so fork and
    shm-attach cost appears exactly once per sweep point — reported as
    ``pool_spawn_seconds`` next to, never inside, the build timings.
    """
    if jobs <= 1:
        return None, 0.0
    pool = WorkerPool(jobs)
    pool.start()
    return pool, pool.stats.spawn_seconds


def _jobs_section(store, database, repeats: int, jobs_sweep) -> dict:
    """Store mining and cube construction across worker-pool sizes.

    Every ``jobs > 1`` sweep point forks its persistent pool once and
    reuses it across all repeats of all three timed operations, so the
    rows measure steady-state builds; the one-time fork/attach cost is
    the separate ``pool_spawn_seconds`` column.
    """
    mine_baseline, _ = _best(
        lambda: shared_mine(database, min_support=MIN_SUPPORT), repeats
    )
    build_baseline, _ = _best(
        lambda: FlowCube.build(
            database, min_support=MIN_SUPPORT, compute_exceptions=False
        ),
        repeats,
    )
    mining = []
    building = []
    for jobs in jobs_sweep:
        pool, spawn_seconds = _sweep_pool(jobs)
        try:
            mine_stats = BuildStats()
            seconds, _ = _best(
                lambda: shared_mine_store(
                    store,
                    min_support=MIN_SUPPORT,
                    build_stats=mine_stats,
                    jobs=jobs,
                    pool=pool,
                ),
                repeats,
            )
            mining.append(
                {
                    "jobs": jobs,
                    "seconds": round(seconds, 4),
                    "pool_spawn_seconds": round(spawn_seconds, 4),
                    "vs_in_memory": round(seconds / mine_baseline, 2),
                    "pool": dict(mine_stats.pool),
                }
            )
            seconds, _ = _best(
                lambda: build_cube(
                    store,
                    min_support=MIN_SUPPORT,
                    compute_exceptions=False,
                    jobs=jobs,
                    pool=pool,
                ),
                repeats,
            )
            # With exceptions, the per-cell holistic pass fans out across
            # the same worker pool (bitmap kernel), so the jobs sweep shows
            # how it scales alongside the partition scans.
            exc_seconds, _ = _best(
                lambda: build_cube(
                    store, min_support=MIN_SUPPORT, jobs=jobs, pool=pool
                ),
                repeats,
            )
            building.append(
                {
                    "jobs": jobs,
                    "seconds": round(seconds, 4),
                    "pool_spawn_seconds": round(spawn_seconds, 4),
                    "vs_in_memory": round(seconds / build_baseline, 2),
                    "with_exceptions_seconds": round(exc_seconds, 4),
                }
            )
        finally:
            if pool is not None:
                pool.close()
    return {
        "n_partitions": len(store.catalog.partitions),
        "shared_mine": {
            "in_memory_seconds": round(mine_baseline, 4),
            "sweep": mining,
        },
        "build_cube": {
            "in_memory_seconds": round(build_baseline, 4),
            "sweep": building,
        },
    }


def _engine_section(store, database, repeats: int, jobs_sweep) -> dict:
    """Direct vs roll-up measure engine on identical (byte-for-byte) cubes.

    The direct builder re-aggregates every record's path once per
    (item level × path level); the roll-up engine aggregates once per
    path level and derives ancestor cuboids by merging child cells
    (Lemma 4.2).  The sweep times both in memory and out-of-core across
    worker-pool sizes.  Exceptions are holistic either way, so the
    headline rows skip them (like the other build rows in this file) and
    the with-exceptions rows pit the bitmap exception kernel against the
    path-scanning pass (plus the direct engine) on full builds — all
    three byte-identical, with identical per-cell exception lists.
    """
    engines = ("direct", "rollup")
    cubes = {}
    in_memory: dict[str, float] = {}
    for engine in engines:
        in_memory[engine], cubes[engine] = _best(
            lambda e=engine: FlowCube.build(
                database, min_support=MIN_SUPPORT, compute_exceptions=False, engine=e
            ),
            repeats,
        )
    assert cube_to_json(cubes["direct"]) == cube_to_json(cubes["rollup"])
    section: dict = {
        "n_item_levels": len(list(cubes["rollup"].item_lattice)),
        "n_path_levels": len(cubes["rollup"].path_lattice),
        "byte_identical": True,
        "in_memory": {
            "direct_seconds": round(in_memory["direct"], 4),
            "rollup_seconds": round(in_memory["rollup"], 4),
            "speedup": round(in_memory["direct"] / in_memory["rollup"], 2),
        },
    }
    # The exception-kernel ratio is a headline number, so this block runs
    # in quick mode too (with >= 2 repeats, like the mining kernels).
    exc_repeats = max(repeats, 2)
    exc_seconds: dict[str, float] = {}
    exc_cubes = {}
    for kernel in ("scan", "bitmap"):
        exc_seconds[kernel], exc_cubes[kernel] = _best(
            lambda k=kernel: FlowCube.build(
                database, min_support=MIN_SUPPORT, kernel=k
            ),
            exc_repeats,
        )
    direct_exc_seconds, direct_exc_cube = _best(
        lambda: FlowCube.build(
            database, min_support=MIN_SUPPORT, engine="direct"
        ),
        exc_repeats,
    )
    reference = cube_to_json(exc_cubes["bitmap"])
    assert cube_to_json(exc_cubes["scan"]) == reference
    assert cube_to_json(direct_exc_cube) == reference
    scan_cells = list(exc_cubes["scan"].cells())
    bitmap_cells = list(exc_cubes["bitmap"].cells())
    assert len(scan_cells) == len(bitmap_cells)
    assert all(
        a.flowgraph.exceptions == b.flowgraph.exceptions
        for a, b in zip(scan_cells, bitmap_cells)
    )
    section["in_memory_with_exceptions"] = {
        "scan_kernel_seconds": round(exc_seconds["scan"], 4),
        "bitmap_kernel_seconds": round(exc_seconds["bitmap"], 4),
        "direct_seconds": round(direct_exc_seconds, 4),
        "speedup": round(exc_seconds["scan"] / exc_seconds["bitmap"], 2),
        "engine_speedup": round(
            direct_exc_seconds / exc_seconds["bitmap"], 2
        ),
        "kernels_identical": True,
    }
    sweep = []
    for jobs in jobs_sweep:
        row: dict = {"jobs": jobs}
        pool, spawn_seconds = _sweep_pool(jobs)
        try:
            for engine in engines:
                seconds, _ = _best(
                    lambda e=engine: build_cube(
                        store,
                        min_support=MIN_SUPPORT,
                        compute_exceptions=False,
                        jobs=jobs,
                        engine=e,
                        pool=pool,
                    ),
                    repeats,
                )
                row[f"{engine}_seconds"] = round(seconds, 4)
        finally:
            if pool is not None:
                pool.close()
        row["pool_spawn_seconds"] = round(spawn_seconds, 4)
        row["speedup"] = round(row["direct_seconds"] / row["rollup_seconds"], 2)
        sweep.append(row)
    section["build_cube"] = {
        "n_partitions": len(store.catalog.partitions),
        "sweep": sweep,
    }
    return section


def _cache_hit_rate(store: PartitionedPathStore) -> dict:
    """Build into the cube store, then replay a repeated query workload."""
    build_cube(
        store,
        min_support=MIN_SUPPORT,
        compute_exceptions=False,
        into=store.cube_store(),
    )
    served = store.cube_store(cache_size=CACHE_SIZE)
    query = FlowCubeQuery(served)
    lattice = served.path_lattice
    for _ in range(3):  # repeated workload: apex + every path level
        for level in lattice:
            query.flowgraph(level)
    return served.cache_stats()


def _derived_byte_identical(database) -> bool:
    """Derived roll-up vs direct build, byte-for-byte (unpruned source).

    The planner's exactness contract: with the resolved iceberg threshold
    at 1 the source cuboid covers every record, so merging its cells
    (Lemma 4.2) must reproduce a direct build of the target cuboids
    exactly — same cells, same order, same serialisation.
    """
    base = ItemLevel([h.depth for h in database.schema.dimensions])
    source_cube = FlowCube.build(
        database, item_levels=[base], min_support=1, compute_exceptions=False
    )
    target = ItemLevel([1] + [0] * (len(base) - 1))
    direct = FlowCube.build(
        database, item_levels=[target], min_support=1, compute_exceptions=False
    )
    shell = FlowCube(
        database,
        direct.item_lattice,
        direct.path_lattice,
        direct.min_support,
        direct.min_deviation,
    )
    for path_level in source_cube.path_lattice:
        plan = plan_derivation(source_cube, target, path_level)
        cuboid = derive_cuboid(source_cube, plan)
        shell._cuboids[(target, path_level)] = cuboid
    return cube_to_json(shell) == cube_to_json(direct)


def _query_section(store: PartitionedPathStore, database, repeats: int) -> dict:
    """The serving path: index vs scan slice, cached repeats, derivation.

    *Cold* rows open a fresh :class:`CubeStore` handle per run, so every
    cell the kernel touches is a JSON file read — exactly what separates
    index-first slicing (reads = matches) from the seed full scan (reads
    = every cell at the path level).  The *warm* row repeats the slice on
    one query object, which the query cache answers without touching the
    store at all.
    """
    h0 = database.schema.dimensions[0]
    value = sorted(h0.concepts_at_level(1))[0]
    leaf = sorted(h0.concepts_at_level(h0.depth))[0]
    slice_repeats = max(repeats, 3)
    rows = []
    cold_index_lvl1 = None
    for dims in ({"d0": value}, {"d0": leaf}):
        cold: dict[str, float] = {}
        cells: dict[str, list] = {}
        for kernel in ("scan", "index"):
            best = math.inf
            for _ in range(slice_repeats):
                # A fresh handle per run keeps the cell reads cold; the
                # handle open itself (meta + key index) is identical for
                # both kernels and not what the sweep measures.
                query = FlowCubeQuery(
                    store.cube_store(cache_size=CACHE_SIZE), kernel=kernel
                )
                start = time.perf_counter()
                result = [
                    (c.item_level, c.key) for c in query.slice(**dims)
                ]
                best = min(best, time.perf_counter() - start)
            cold[kernel], cells[kernel] = best, result
        assert cells["index"] == cells["scan"]  # same cells, same order
        if cold_index_lvl1 is None:
            cold_index_lvl1 = cold["index"]
        rows.append(
            {
                "constraint": dims,
                "n_matching_cells": len(cells["index"]),
                "scan_seconds": round(cold["scan"], 4),
                "index_seconds": round(cold["index"], 4),
                "speedup": round(cold["scan"] / cold["index"], 2),
            }
        )

    served = FlowCubeQuery(store.cube_store(cache_size=CACHE_SIZE))
    list(served.slice(d0=value))  # populate the query cache
    warm_seconds, _ = _best(
        lambda: list(served.slice(d0=value)), max(repeats, 2)
    )

    # Roll-up serving: a materialised cuboid read vs the planner merging
    # the same answer out of a partially built store that only kept the
    # dim-0 observation layer (the base level is fully iceberg-pruned at
    # this δ, so the drill-path leaf level is the realistic source).
    materialised_seconds, _ = _best(
        lambda: FlowCubeQuery(
            store.cube_store(cache_size=CACHE_SIZE)
        ).flowgraph(d0=value),
        repeats,
    )
    n_dims = len(database.schema.dimensions)
    observation = ItemLevel(
        [database.schema.dimensions[0].depth] + [0] * (n_dims - 1)
    )
    with tempfile.TemporaryDirectory() as tmp:
        partial = _make_store(Path(tmp) / "wh", database, 4)
        build_cube(
            partial,
            item_levels=[observation],
            min_support=MIN_SUPPORT,
            compute_exceptions=False,
            into=partial.cube_store(),
        )
        derived_seconds, _ = _best(
            lambda: FlowCubeQuery(
                partial.cube_store(cache_size=CACHE_SIZE), derive=True
            ).flowgraph(d0=value),
            repeats,
        )
    return {
        "cold_slice": {
            "sweep": rows,
            # Headline: the reads the index kernel avoids scale with the
            # slice's selectivity, so the leaf-level constraint shows the
            # index-first effect in full.
            "speedup": max(row["speedup"] for row in rows),
            "kernels_identical": True,
        },
        "warm_slice": {
            "seconds": round(warm_seconds, 4),
            "vs_cold_index": round(warm_seconds / cold_index_lvl1, 4),
            "cache_stats": served.cache_stats(),
        },
        "rollup": {
            "materialised_seconds": round(materialised_seconds, 4),
            "derived_seconds": round(derived_seconds, 4),
            "derived_vs_materialised": round(
                derived_seconds / materialised_seconds, 2
            ),
            "derived_byte_identical": _derived_byte_identical(database),
        },
    }


def _scale_section(scales, jobs: int = 2) -> list[dict]:
    """Serial vs pooled shared mining as the database grows (``--scale``).

    One row per database size: a serial baseline and a pooled run on one
    persistent pool, parity-checked (identical supports) against the
    baseline.  ``pool_spawn_seconds`` is the pool's one-time fork cost;
    ``pooled_seconds`` is the steady-state mining time on the started
    pool.  Single runs — at these sizes mining seconds dwarf timer noise.
    """
    rows = []
    for n_paths in scales:
        database = generate_path_database(scaled_config(n_paths))
        with tempfile.TemporaryDirectory() as tmp:
            store = _make_store(Path(tmp) / "wh", database, SCALE_PARTITIONS)
            start = time.perf_counter()
            serial = shared_mine_store(store, min_support=MIN_SUPPORT)
            serial_seconds = time.perf_counter() - start
            pool, spawn_seconds = _sweep_pool(jobs)
            stats = BuildStats()
            try:
                start = time.perf_counter()
                pooled = shared_mine_store(
                    store,
                    min_support=MIN_SUPPORT,
                    build_stats=stats,
                    jobs=jobs,
                    pool=pool,
                )
                pooled_seconds = time.perf_counter() - start
            finally:
                if pool is not None:
                    pool.close()
            assert pooled.supports == serial.supports
            rows.append(
                {
                    "n_paths": n_paths,
                    "n_patterns": len(serial.supports),
                    "serial_seconds": round(serial_seconds, 4),
                    "pooled_seconds": round(pooled_seconds, 4),
                    "pooled_jobs": jobs,
                    "pool_spawn_seconds": round(spawn_seconds, 4),
                    "speedup": round(serial_seconds / pooled_seconds, 2),
                    "pool": dict(stats.pool),
                    "parity": True,
                }
            )
    return rows


def _disk_bytes(directory: Path) -> int:
    """Total bytes of every file under *directory* (0 when absent)."""
    if not directory.exists():
        return 0
    return sum(p.stat().st_size for p in directory.rglob("*") if p.is_file())


def _zero_copy_tripwire(store, hierarchies, value) -> dict:
    """The zero-copy contract, enforced: the run fails on a regress.

    A fresh binary handle must read **zero** cell-heap bytes and decode
    **zero** catalog masks through open plus a :class:`CuboidKeyCatalog`
    for every cuboid — the masks stay lazy byte spans over the mmap'd
    ``cells.idx``.  An index-first slice must then stream mask bits
    (the counting hook) and pay heap bytes only for materialised cells.
    """
    served = store.cube_store(cache_size=CACHE_SIZE)
    for cuboid in served.cuboids:
        CuboidKeyCatalog(cuboid.keys, hierarchies, cuboid.value_masks)
    opened = served.io_counters()
    if opened["heap_bytes_read"] or opened["mask_bits_decoded"]:
        raise AssertionError(f"cold open is no longer zero-copy: {opened}")
    cells = list(FlowCubeQuery(served, kernel="index").slice(d0=value))
    sliced = served.io_counters()
    if not cells or not sliced["mask_bits_decoded"]:
        raise AssertionError(
            f"index-first slice did not stream catalog masks: {sliced}"
        )
    if not sliced["heap_bytes_read"]:
        raise AssertionError(
            f"slice materialised cells without heap reads: {sliced}"
        )
    served.close()
    return {
        "cold_open_heap_bytes": opened["heap_bytes_read"],
        "cold_open_mask_bits": opened["mask_bits_decoded"],
        "slice_mask_bits": sliced["mask_bits_decoded"],
        "slice_heap_bytes": sliced["heap_bytes_read"],
        "n_matching_cells": len(cells),
    }


def _formats_section(
    database,
    n_partitions: int,
    repeats: int,
    min_support: float,
    build_min_support: float | None = None,
) -> dict:
    """Binary vs JSON storage backends over identical data.

    One store per format over the same database, then the four numbers
    the backend exists for:

    * ``cold_open_seconds`` — a fresh :class:`CubeStore` handle plus a
      :class:`CuboidKeyCatalog` for every cuboid, i.e. everything a
      server needs before it can answer an index-first query, with zero
      cell bytes read (the binary path parses the mmap'd ``cells.idx``;
      the JSON path parses the inline cell list out of ``cube.json``);
    * ``cold_slice_seconds`` — a fresh handle plus one index-first
      slice, so the per-cell read path (heap ``pread`` vs one JSON file
      per cell) is measured on cells that are actually materialised;
    * ``pack_pass_seconds`` — the fused scan1+pack phase of a pooled
      shared-mine, which is where partition decode speed lands during a
      build (bulk ``frombytes`` arenas vs CSV parsing);
    * bytes on disk for the partition files and the cube directory.

    The two cubes must render byte-identically under ``cube_to_json`` —
    the formats differ in layout, never in content.

    *build_min_support* (default: *min_support*) sets the cube build's
    iceberg threshold separately from mining's, so the scale point can
    pair a realistic mining δ with a cell-heavy cube — cold open scales
    with cell count, mining with pattern count.
    """
    if build_min_support is None:
        build_min_support = min_support
    hierarchies = database.schema.dimensions
    value = sorted(hierarchies[0].concepts_at_level(1))[0]
    open_repeats = max(repeats, 3)
    rows: dict[str, dict] = {}
    rendered: dict[str, str] = {}
    n_cells = 0
    with tempfile.TemporaryDirectory() as tmp:
        for store_format in ("json", "binary"):
            directory = Path(tmp) / store_format
            partition_size = math.ceil(len(database) / n_partitions)
            store = PartitionedPathStore.init(
                directory,
                database.schema,
                partition_size=partition_size,
                store_format=store_format,
            )
            store.ingest(database)
            read_seconds, _ = _best(store.load_all, repeats)

            # The pack pass: scan1 decode + shared-memory pack.  The
            # miner times it into its "count" phase bucket, which the
            # first scan dominates at these candidate counts; the
            # fastest run's breakdown is reported.
            pool, _ = _sweep_pool(2)
            mine_seconds, best_stats = math.inf, None
            try:
                for _ in range(repeats):
                    start = time.perf_counter()
                    mined = shared_mine_store(
                        store, min_support=min_support, jobs=2, pool=pool
                    )
                    elapsed = time.perf_counter() - start
                    if elapsed < mine_seconds:
                        mine_seconds, best_stats = elapsed, mined.stats
            finally:
                if pool is not None:
                    pool.close()

            build_seconds, built = _best(
                lambda: build_cube(
                    store,
                    min_support=build_min_support,
                    compute_exceptions=False,
                    into=store.cube_store(),
                ),
                1,
            )
            n_cells = built.n_cells()

            def cold_open():
                served = store.cube_store(cache_size=CACHE_SIZE)
                for cuboid in served.cuboids:
                    # Same construction the serving CatalogPool does:
                    # binary cubes hand over precomputed masks, JSON
                    # cubes fall back to the per-cell index pass.
                    CuboidKeyCatalog(
                        cuboid.keys, hierarchies, cuboid.value_masks
                    )
                return served

            open_seconds, served = _best(cold_open, open_repeats)
            assert served.cell_format == store_format

            def cold_slice():
                query = FlowCubeQuery(
                    store.cube_store(cache_size=CACHE_SIZE), kernel="index"
                )
                return [
                    (c.item_level, c.key) for c in query.slice(d0=value)
                ]

            slice_seconds, matched = _best(cold_slice, open_repeats)
            rendered[store_format] = cube_to_json(served)
            rows[store_format] = {
                "partition_read_seconds": round(read_seconds, 4),
                "mine_seconds": round(mine_seconds, 4),
                "pack_pass_seconds": round(
                    best_stats.phase_seconds.get("count", 0.0), 4
                ),
                "build_seconds": round(build_seconds, 4),
                "cold_open_seconds": round(open_seconds, 5),
                "cold_slice_seconds": round(slice_seconds, 5),
                "n_matching_cells": len(matched),
                "partitions_bytes": _disk_bytes(directory / "partitions"),
                "cube_bytes": _disk_bytes(directory / "cube"),
            }
            if store_format == "binary":
                rows[store_format]["zero_copy"] = _zero_copy_tripwire(
                    store, hierarchies, value
                )

        # The previous heap generation (FCHEAP01: JSON payloads inside
        # the heap) on a copy of the same binary store.  Open and mask
        # streaming are identical — only the per-cell payload decode
        # differs — so this row isolates what the FCHEAP02 codec buys.
        legacy_dir = Path(tmp) / "binary-fcheap01"
        shutil.copytree(Path(tmp) / "binary", legacy_dir)
        legacy_store = PartitionedPathStore.open(legacy_dir)
        legacy_store.cube_store().convert("binary", generation=1)

        def legacy_cold_open():
            served = legacy_store.cube_store(cache_size=CACHE_SIZE)
            for cuboid in served.cuboids:
                CuboidKeyCatalog(cuboid.keys, hierarchies, cuboid.value_masks)
            return served

        legacy_open_seconds, legacy_served = _best(
            legacy_cold_open, open_repeats
        )

        def legacy_cold_slice():
            query = FlowCubeQuery(
                legacy_store.cube_store(cache_size=CACHE_SIZE),
                kernel="index",
            )
            return [(c.item_level, c.key) for c in query.slice(d0=value)]

        legacy_slice_seconds, legacy_matched = _best(
            legacy_cold_slice, open_repeats
        )
        assert cube_to_json(legacy_served) == rendered["binary"]
        assert len(legacy_matched) == rows["binary"]["n_matching_cells"]
        legacy_row = {
            "cold_open_seconds": round(legacy_open_seconds, 5),
            "cold_slice_seconds": round(legacy_slice_seconds, 5),
            "cube_bytes": _disk_bytes(legacy_dir / "cube"),
        }
        legacy_store.close()
    assert rendered["binary"] == rendered["json"]
    json_row, binary_row = rows["json"], rows["binary"]
    return {
        "n_paths": len(database),
        "n_partitions": n_partitions,
        "min_support": min_support,
        "build_min_support": build_min_support,
        "n_cells": n_cells,
        "json": json_row,
        "binary": binary_row,
        "binary_fcheap01": legacy_row,
        "byte_identical": True,
        "binary_speedup": {
            "cold_open": round(
                json_row["cold_open_seconds"]
                / binary_row["cold_open_seconds"],
                2,
            ),
            "cold_slice": round(
                json_row["cold_slice_seconds"]
                / binary_row["cold_slice_seconds"],
                2,
            ),
            "pack_pass": round(
                json_row["pack_pass_seconds"]
                / binary_row["pack_pass_seconds"],
                2,
            ),
            "partition_read": round(
                json_row["partition_read_seconds"]
                / binary_row["partition_read_seconds"],
                2,
            ),
            "partitions_bytes": round(
                json_row["partitions_bytes"]
                / binary_row["partitions_bytes"],
                2,
            ),
            "cube_bytes": round(
                json_row["cube_bytes"] / binary_row["cube_bytes"], 2
            ),
            "cold_slice_vs_fcheap01": round(
                legacy_row["cold_slice_seconds"]
                / binary_row["cold_slice_seconds"],
                2,
            ),
            "cube_bytes_vs_fcheap01": round(
                legacy_row["cube_bytes"] / binary_row["cube_bytes"], 2
            ),
        },
    }


#: Iceberg threshold for the append sweep: absolute, so the frontier does
#: not churn as the database grows and the rows isolate maintenance cost.
APPEND_MIN_SUPPORT = 2
APPEND_FRACTION = 0.1


def _skewed_batch(database, fraction: float) -> list[PathRecord]:
    """A *fraction*-sized batch skewed into one level-1 group per dim.

    A uniformly random batch touches nearly every cell, which measures a
    rebuild in disguise; a realistic maintenance batch (one day of one
    product family moving through one region) dirties a small corner of
    the cube.  Records are cloned from the base database — filtered to
    the first level-1 concept of every dimension — with fresh ids above
    the store's high-water mark.
    """
    hierarchies = database.schema.dimensions
    targets = tuple(
        sorted(h.concepts_at_level(1))[0] for h in hierarchies
    )
    matches = [
        record
        for record in database
        if all(
            h.ancestor_at_level(value, 1) == target
            for h, value, target in zip(hierarchies, record.dims, targets)
        )
    ]
    if not matches:  # pathological fanout: fall back to the first record
        matches = [next(iter(database))]
    n_batch = max(1, round(fraction * len(database)))
    floor = max(record.record_id for record in database) + 1
    return [
        PathRecord(floor + i, donor.dims, donor.path)
        for i, donor in enumerate(
            matches[i % len(matches)] for i in range(n_batch)
        )
    ]


def _append_point(database, n_partitions: int, repeats: int) -> dict:
    """One append-vs-rebuild row, with the contracts enforced.

    The baseline is a full out-of-core rebuild of the grown database into
    a fresh cube directory; the append run ingests the same batch into a
    copy of the prebuilt base store and delta-merges only touched cells.
    The row *raises* — failing the whole bench run — if the appended cube
    is not byte-identical to the rebuild (before **and** after
    compaction), if the append rewrote the base ``cells.bin``, or if a
    cold open with pending delta segments reads any heap bytes.
    """
    hierarchies = database.schema.dimensions
    batch = _skewed_batch(database, APPEND_FRACTION)
    combined = PathDatabase(
        database.schema, list(database) + batch, validate=False
    )
    with tempfile.TemporaryDirectory() as tmp:
        base_dir = Path(tmp) / "base"
        base = _make_store(base_dir, database, n_partitions)
        build_cube(
            base,
            min_support=APPEND_MIN_SUPPORT,
            compute_exceptions=False,
            into=base.cube_store(),
        )

        def rebuild(directory: Path) -> str:
            grown = _make_store(directory, combined, n_partitions)
            built = build_cube(
                grown,
                min_support=APPEND_MIN_SUPPORT,
                compute_exceptions=False,
                into=grown.cube_store(),
            )
            return cube_to_json(built)

        rebuild_seconds = math.inf
        reference = None
        for i in range(repeats):
            start = time.perf_counter()
            reference = rebuild(Path(tmp) / f"rebuild{i}")
            rebuild_seconds = min(
                rebuild_seconds, time.perf_counter() - start
            )

        append_seconds = math.inf
        compact_seconds = math.inf
        result = cold_heap_bytes = n_delta_segments = None
        for i in range(repeats):
            run_dir = Path(tmp) / f"run{i}"
            shutil.copytree(base_dir, run_dir)
            run_store = PartitionedPathStore.open(run_dir)
            heap = run_dir / "cube" / "cells.bin"
            stat = heap.stat()
            signature = (stat.st_mtime_ns, stat.st_size)
            start = time.perf_counter()
            result = append_records(run_store, batch, compact_after=0)
            append_seconds = min(
                append_seconds, time.perf_counter() - start
            )
            stat = heap.stat()
            if (stat.st_mtime_ns, stat.st_size) != signature:
                raise AssertionError(
                    "append rewrote the base cell heap "
                    f"(mtime/size changed): {heap}"
                )
            # Cold open with pending delta segments: the overlay index
            # must serve the cuboid layout at zero heap bytes, exactly
            # like a compacted store.
            cold = run_store.cube_store(cache_size=CACHE_SIZE)
            n_delta_segments = len(cold.delta_segments)
            for cuboid in cold.cuboids:
                CuboidKeyCatalog(cuboid.keys, hierarchies, cuboid.value_masks)
            counters = cold.io_counters()
            cold_heap_bytes = counters["heap_bytes_read"]
            if cold_heap_bytes:
                raise AssertionError(
                    "cold open with pending deltas read heap bytes: "
                    f"{counters}"
                )
            if cube_to_json(cold) != reference:
                raise AssertionError(
                    "append diverged from the from-scratch rebuild "
                    "(pre-compaction)"
                )
            start = time.perf_counter()
            cold.compact()
            compact_seconds = min(
                compact_seconds, time.perf_counter() - start
            )
            if cube_to_json(cold) != reference:
                raise AssertionError(
                    "compaction diverged from the from-scratch rebuild"
                )
            cold.close()
    return {
        "n_paths": len(database),
        "n_partitions": n_partitions,
        "min_support": APPEND_MIN_SUPPORT,
        "batch_records": len(batch),
        "batch_fraction": APPEND_FRACTION,
        "append_seconds": round(append_seconds, 4),
        "rebuild_seconds": round(rebuild_seconds, 4),
        "speedup": round(rebuild_seconds / append_seconds, 2),
        "compact_seconds": round(compact_seconds, 4),
        "cells_updated": result["updated"],
        "cells_created": result["created"],
        "delta_segments": n_delta_segments,
        "cold_open_heap_bytes": cold_heap_bytes,
        "base_heap_untouched": True,
        "byte_identical": True,
        "byte_identical_after_compaction": True,
    }


def _append_section(quick: bool, repeats: int) -> dict:
    """Append-vs-rebuild sweep: the 320-path smoke plus the 10k headline.

    The small point runs in every mode (``--quick`` included) as the
    parity smoke; the full run adds the scale point where the acceptance
    floor lives — a 10% batch into a 10k-path binary store must cost a
    fraction of the rebuild.
    """
    points = [
        _append_point(generate_path_database(CONFIG), 4, max(repeats, 2))
    ]
    if not quick:
        points.append(
            _append_point(
                generate_path_database(scaled_config(FORMATS_SCALE_PATHS)),
                SCALE_PARTITIONS,
                repeats,
            )
        )
    return {"points": points}


def _shm_segments() -> set[str]:
    """Names currently live under ``/dev/shm`` (POSIX shared memory)."""
    root = Path("/dev/shm")
    if not root.is_dir():  # pragma: no cover - non-POSIX-shm platform
        return set()
    return {entry.name for entry in root.iterdir()}


def _pool_smoke(database) -> dict:
    """One jobs=2 pooled build, checked for the two pool failure modes.

    Raises if the build held more than one transaction database live at
    once (the out-of-core contract) or if any shared-memory segment
    survived the build (an shm leak) — this is the CI tripwire the
    ``--quick`` run fails on.
    """
    before = _shm_segments()
    with tempfile.TemporaryDirectory() as tmp:
        store = _make_store(Path(tmp) / "wh", database, 4)
        stats = BuildStats()
        build_cube(
            store,
            min_support=MIN_SUPPORT,
            compute_exceptions=False,
            stats=stats,
            jobs=2,
        )
    leaked = sorted(_shm_segments() - before)
    if stats.max_live_transaction_dbs > 1:
        raise AssertionError(
            "pooled build held "
            f"{stats.max_live_transaction_dbs} transaction databases live"
        )
    if leaked:
        raise AssertionError(f"shared-memory segments leaked: {leaked}")
    return {
        "jobs": 2,
        "max_live_transaction_dbs": stats.max_live_transaction_dbs,
        "shm_leaked": 0,
        "pool": dict(stats.pool),
    }


def run_suite(quick: bool = False, scales=()) -> dict:
    repeats = 1 if quick else REPEATS
    partition_counts = (4,) if quick else PARTITION_COUNTS
    jobs_sweep = (1, 4) if quick else JOBS_SWEEP
    database = generate_path_database(CONFIG)
    in_memory_seconds, in_memory_peak, cube = _timed(
        lambda: FlowCube.build(
            database, min_support=MIN_SUPPORT, compute_exceptions=False
        )
    )
    report = {
        "config": {
            "n_paths": len(database),
            "min_support": MIN_SUPPORT,
            "cache_size": CACHE_SIZE,
            "quick": quick,
        },
        # Kernel timings keep >= 2 repeats even in quick mode: the ratios
        # are the headline numbers and single runs are too noisy.
        "kernel": _kernel_section(database, max(repeats, 2)),
        "in_memory": {
            "seconds": round(in_memory_seconds, 4),
            "tracemalloc_peak_bytes": in_memory_peak,
            "n_cells": cube.n_cells(),
        },
        "partitioned": [],
    }
    for n_partitions in partition_counts:
        with tempfile.TemporaryDirectory() as tmp:
            store = _make_store(Path(tmp) / "wh", database, n_partitions)
            stats = BuildStats()
            seconds, peak, built = _timed(
                lambda: build_cube(
                    store,
                    min_support=MIN_SUPPORT,
                    compute_exceptions=False,
                    stats=stats,
                )
            )
            assert built.n_cells() == cube.n_cells()
            if n_partitions == 4:
                report["jobs"] = _jobs_section(
                    store, database, repeats, jobs_sweep
                )
                report["engines"] = _engine_section(
                    store, database, repeats, jobs_sweep
                )
            cache = _cache_hit_rate(store)
            if n_partitions == 4:
                # _cache_hit_rate built the cube into the store's cube
                # directory, which is what the serving sweep reads.
                report["query"] = _query_section(store, database, repeats)
            report["partitioned"].append(
                {
                    "n_partitions": len(store.catalog.partitions),
                    "seconds": round(seconds, 4),
                    "vs_in_memory": round(seconds / in_memory_seconds, 2),
                    "tracemalloc_peak_bytes": peak,
                    "partition_scans": stats.scans,
                    "max_live_transaction_dbs": stats.max_live_transaction_dbs,
                    "cache": cache,
                }
            )
    # The pool tripwire runs in every mode — quick included — and raises
    # (failing CI) on a live-transaction-db or shm-segment leak.
    report["pool_smoke"] = _pool_smoke(database)
    # The storage-format sweep runs in every mode too (parity asserted);
    # the full run adds the 10k-path point, where the cold-open gap —
    # mmap'd index decode vs a large inline-JSON cell list — is the
    # acceptance headline.
    formats = [_formats_section(database, 4, repeats, MIN_SUPPORT)]
    if not quick:
        # The scale point mines at the sweep δ but builds at an absolute
        # support of 2, so the cube actually has enough cells (≈15k at
        # 10k paths) for cold open to measure per-cell index costs
        # rather than fixed overheads.
        formats.append(
            _formats_section(
                generate_path_database(scaled_config(FORMATS_SCALE_PATHS)),
                SCALE_PARTITIONS,
                2,
                MIN_SUPPORT,
                build_min_support=2,
            )
        )
    report["formats"] = formats
    # Incremental maintenance: append-vs-rebuild parity smoke in every
    # mode (raises on divergence or a rewritten base heap); the full run
    # adds the 10k-path acceptance point.
    report["append"] = _append_section(quick, repeats)
    if scales:
        report["scale"] = _scale_section(scales)
    return report


# ----------------------------------------------------------------------
# CI-sized pytest entries (same paths, one partitioning)
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def store_db():
    return generate_path_database(CONFIG)


def test_build_in_memory(benchmark, store_db):
    cube = run_once(
        benchmark,
        lambda: FlowCube.build(
            store_db, min_support=MIN_SUPPORT, compute_exceptions=False
        ),
    )
    assert cube.n_cells() > 0


@pytest.mark.parametrize("n_partitions,jobs", [(4, 1), (4, 4)])
def test_build_partitioned(benchmark, store_db, n_partitions, jobs, tmp_path):
    store = _make_store(tmp_path / "wh", store_db, n_partitions)
    reference = FlowCube.build(
        store_db, min_support=MIN_SUPPORT, compute_exceptions=False
    )
    cube = run_once(
        benchmark,
        lambda: build_cube(
            store, min_support=MIN_SUPPORT, compute_exceptions=False, jobs=jobs
        ),
    )
    assert cube.n_cells() == reference.n_cells()


def test_kernel_speedup_floor(store_db):
    """The warm bitmap kernel beats tid-sets by the documented margin."""
    section = _kernel_section(store_db, repeats=3)
    assert section["shared_transaction_db"]["speedup"] >= 3.0


@pytest.mark.parametrize("kernel", ["scan", "index"])
def test_slice_over_store(benchmark, store_db, kernel, tmp_path):
    store = _make_store(tmp_path / "wh", store_db, 4)
    build_cube(
        store,
        min_support=MIN_SUPPORT,
        compute_exceptions=False,
        into=store.cube_store(),
    )
    h0 = store_db.schema.dimensions[0]
    value = sorted(h0.concepts_at_level(1))[0]
    cells = run_once(
        benchmark,
        lambda: list(
            FlowCubeQuery(
                store.cube_store(cache_size=CACHE_SIZE), kernel=kernel
            ).slice(d0=value)
        ),
    )
    assert cells


def test_append_beats_rebuild_with_parity(store_db):
    """A skewed 10% append costs less than a rebuild and stays byte-exact.

    The parity / base-heap / zero-copy contracts are enforced inside
    ``_append_point`` (it raises on any violation); the spot check here
    is that delta maintenance actually wins at the CI size.
    """
    point = _append_point(store_db, n_partitions=4, repeats=2)
    assert point["byte_identical"]
    assert point["byte_identical_after_compaction"]
    assert point["base_heap_untouched"]
    assert point["cold_open_heap_bytes"] == 0
    assert point["delta_segments"] == 1
    assert point["speedup"] > 1.0


def test_formats_parity_and_binary_wins(store_db):
    """Binary and JSON stores render identical cubes; binary opens faster."""
    section = _formats_section(
        store_db, n_partitions=4, repeats=1, min_support=MIN_SUPPORT
    )
    assert section["byte_identical"]
    assert section["binary_speedup"]["cold_open"] > 1.0
    assert section["binary"]["partitions_bytes"] > 0
    # The zero-copy tripwire ran (it raises on regress) and the legacy
    # generation row parity-checked against the FCHEAP02 store.
    tripwire = section["binary"]["zero_copy"]
    assert tripwire["cold_open_heap_bytes"] == 0
    assert tripwire["cold_open_mask_bits"] == 0
    assert tripwire["slice_mask_bits"] > 0
    assert section["binary_fcheap01"]["cube_bytes"] > section["binary"][
        "cube_bytes"
    ]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Store construction/kernel/jobs sweep -> BENCH_store.json"
    )
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_store.json"),
        help="output JSON path (default: repo root BENCH_store.json)",
    )
    parser.add_argument(
        "--flowgraph-out",
        default=str(
            Path(__file__).resolve().parent.parent / "BENCH_flowgraph.json"
        ),
        help="measure-engine section output (default: repo root "
        "BENCH_flowgraph.json)",
    )
    parser.add_argument(
        "--query-out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_query.json"),
        help="query-sweep section output (default: repo root BENCH_query.json)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: single repeat, 4 partitions only, jobs 1 and 4, "
        "plus the pooled-build leak tripwire",
    )
    parser.add_argument(
        "--append",
        action="store_true",
        help="run only the append-vs-rebuild sweep (both sizes) and merge "
        "the section into an existing BENCH_store.json",
    )
    parser.add_argument(
        "--scale",
        nargs="?",
        const=",".join(str(n) for n in SCALE_SWEEP),
        default=None,
        metavar="N1,N2,...",
        help="also run the serial-vs-pooled scale sweep at these database "
        f"sizes (bare --scale means {','.join(str(n) for n in SCALE_SWEEP)})",
    )
    args = parser.parse_args(argv)
    if args.append:
        # Refresh just the append section, merged into the existing
        # report so the rest of the sweep need not re-run.
        section = _append_section(quick=args.quick, repeats=REPEATS)
        out = Path(args.out)
        report = (
            json.loads(out.read_text(encoding="utf-8"))
            if out.exists()
            else {}
        )
        report["append"] = section
        out.write_text(
            json.dumps(report, indent=2) + "\n", encoding="utf-8"
        )
        print(json.dumps(section, indent=2))
        print(f"\nmerged append section into {args.out}")
        return 0
    scales = ()
    if args.scale:
        scales = tuple(int(n) for n in args.scale.split(",") if n.strip())
    report = run_suite(quick=args.quick, scales=scales)
    Path(args.out).write_text(
        json.dumps(report, indent=2) + "\n", encoding="utf-8"
    )
    engines = {"config": report["config"], "engines": report["engines"]}
    Path(args.flowgraph_out).write_text(
        json.dumps(engines, indent=2) + "\n", encoding="utf-8"
    )
    query = {"config": report["config"], "query": report["query"]}
    Path(args.query_out).write_text(
        json.dumps(query, indent=2) + "\n", encoding="utf-8"
    )
    print(json.dumps(report, indent=2))
    print(f"\nwrote {args.out}, {args.flowgraph_out} and {args.query_out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
