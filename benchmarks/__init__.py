"""Benchmark suite for the Section 6 experiments."""
