"""Figure 8: runtime vs number of path-independent dimensions (δ=1%).

Paper shape: on deliberately sparse data all three algorithms stay
comparable as d grows from 2 to 10 — both Shared and Cubing prune the
empty cube space early, and Basic's candidate sets stay small.
"""

import pytest

from benchmarks.conftest import BASE, run_once
from repro.mining import basic_mine, cubing_mine, shared_mine

DIMS = [2, 5, 8]

SPARSE = BASE.with_(dim_fanouts=(5, 5, 10), dim_skew=0.3)


@pytest.mark.parametrize("n_dims", DIMS)
def test_shared(benchmark, db_cache, n_dims):
    db = db_cache(SPARSE.with_(n_dims=n_dims))
    result = run_once(benchmark, lambda: shared_mine(db, min_support=0.01))
    assert len(result) > 0


@pytest.mark.parametrize("n_dims", DIMS)
def test_cubing(benchmark, db_cache, n_dims):
    db = db_cache(SPARSE.with_(n_dims=n_dims))
    result = run_once(benchmark, lambda: cubing_mine(db, min_support=0.01))
    assert len(result) > 0


@pytest.mark.parametrize("n_dims", DIMS)
def test_basic(benchmark, db_cache, n_dims):
    db = db_cache(SPARSE.with_(n_dims=n_dims))
    result = run_once(
        benchmark,
        lambda: basic_mine(db, min_support=0.01, candidate_limit=200_000),
    )
    assert len(result) > 0
