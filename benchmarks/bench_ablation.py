"""Ablations of the design choices DESIGN.md calls out.

* **Pre-counting** (Shared with vs without the high-level pre-count pass) —
  quantifies optimisation 1 of Section 5 in isolation.
* **Counting strategy** (tidset vs scan) — our implementation decision;
  both are provided and must agree, tidset is the default because pure
  Python scanning is prohibitive.
* **Per-cell miner** (Apriori vs FP-growth inside Cubing) — Section 3
  says "any frequent pattern mining algorithm"; this measures the choice.
* **Exception mining source** (segments from Shared vs local per-cell
  mining) — the paper's integrated pipeline vs the naive one.
"""

import pytest

from benchmarks.conftest import BASE, run_once
from repro.core import FlowCube, PathLattice
from repro.encoding import TransactionDatabase
from repro.mining import apriori, cubing_mine, item_sort_key, shared_mine


@pytest.fixture(scope="module")
def db(db_cache):
    return db_cache(BASE.with_(n_paths=300))


@pytest.fixture(scope="module")
def cube_db(db_cache):
    """3-dim database for the full-cube-build ablations.

    ``FlowCube.build`` materialises the whole item lattice by default —
    4^d item levels — so the cube ablations use d=3 (64 levels) rather
    than the mining ablations' d=5 (1024 levels).
    """
    return db_cache(
        BASE.with_(n_paths=300, n_dims=3, dim_fanouts=(3, 3, 4))
    )


@pytest.fixture(scope="module")
def transactions(db):
    lattice = PathLattice.paper_default(db.schema.location)
    tdb = TransactionDatabase(db, lattice)
    return [t.items for t in tdb.transactions]


def test_shared_with_precounting(benchmark, db):
    result = run_once(
        benchmark,
        lambda: shared_mine(db, min_support=0.02, precount_lengths=(2,)),
    )
    assert result.stats.pruned.get("precount", 0) >= 0


def test_shared_without_precounting(benchmark, db):
    result = run_once(
        benchmark,
        lambda: shared_mine(db, min_support=0.02, precount_lengths=()),
    )
    assert "precount" not in result.stats.pruned


def test_apriori_tidset_counting(benchmark, transactions):
    result = run_once(
        benchmark,
        lambda: apriori(
            transactions, 30, key=item_sort_key, counting="tidset", max_length=4
        ),
    )
    assert result


def test_apriori_scan_counting(benchmark, transactions):
    result = run_once(
        benchmark,
        lambda: apriori(
            transactions, 30, key=item_sort_key, counting="scan", max_length=4
        ),
    )
    assert result


def test_cubing_with_apriori_cells(benchmark, db):
    result = run_once(
        benchmark, lambda: cubing_mine(db, min_support=0.02, miner="apriori")
    )
    assert len(result) > 0


def test_cubing_with_fpgrowth_cells(benchmark, db):
    result = run_once(
        benchmark, lambda: cubing_mine(db, min_support=0.02, miner="fpgrowth")
    )
    assert len(result) > 0


def test_exceptions_from_shared_segments(benchmark, cube_db):
    lattice = PathLattice.paper_default(cube_db.schema.location)
    mined = shared_mine(cube_db, path_lattice=lattice, min_support=0.02)
    segments = mined.segments_by_cell()
    cube = run_once(
        benchmark,
        lambda: FlowCube.build(
            cube_db,
            path_lattice=lattice,
            min_support=0.02,
            segments_by_cell=segments,
        ),
    )
    assert cube.n_cells() > 0


def test_exceptions_from_local_mining(benchmark, cube_db):
    lattice = PathLattice.paper_default(cube_db.schema.location)
    cube = run_once(
        benchmark,
        lambda: FlowCube.build(cube_db, path_lattice=lattice, min_support=0.02),
    )
    assert cube.n_cells() > 0
