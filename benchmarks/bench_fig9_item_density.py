"""Figure 9: runtime vs item-dimension density (δ=1%, d=5).

Datasets a (2,2,5), b (4,4,6), c (5,5,10) distinct values per hierarchy
level.  Paper shape: sparser data (more distinct values → fewer frequent
cells) is faster for everyone; Basic could not run on the densest dataset
a at all — mirrored here by benchmarking it on b and c only.
"""

import pytest

from benchmarks.conftest import BASE, run_once
from repro.mining import basic_mine, cubing_mine, shared_mine

DATASETS = {"a": (2, 2, 5), "b": (4, 4, 6), "c": (5, 5, 10)}


@pytest.mark.parametrize("dataset", sorted(DATASETS))
def test_shared(benchmark, db_cache, dataset):
    db = db_cache(BASE.with_(dim_fanouts=DATASETS[dataset]))
    result = run_once(benchmark, lambda: shared_mine(db, min_support=0.01))
    assert len(result) > 0


@pytest.mark.parametrize("dataset", sorted(DATASETS))
def test_cubing(benchmark, db_cache, dataset):
    db = db_cache(BASE.with_(dim_fanouts=DATASETS[dataset]))
    result = run_once(benchmark, lambda: cubing_mine(db, min_support=0.01))
    assert len(result) > 0


@pytest.mark.parametrize("dataset", ["b", "c"])
def test_basic_sparse_datasets_only(benchmark, db_cache, dataset):
    db = db_cache(BASE.with_(dim_fanouts=DATASETS[dataset]))
    result = run_once(
        benchmark,
        lambda: basic_mine(db, min_support=0.01, candidate_limit=200_000),
    )
    assert len(result) > 0
