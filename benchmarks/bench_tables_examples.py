"""Tables 1–4 / Figures 3–4: regeneration cost of the paper's artifacts.

These benchmarks time the building blocks the running example exercises —
transaction encoding (Table 3), shared mining at δ=3 (Table 4), flowgraph
construction (Figure 3), and a full flowcube build with exceptions — so
regressions in the core pipeline show up even without the big sweeps.
"""

import pytest

from repro.core import FlowCube, FlowGraph, PathLattice, aggregate_path
from repro.core import example_path_database
from repro.encoding import TransactionDatabase
from repro.mining import shared_mine
from repro.synth import GeneratorConfig, generate_path_database


@pytest.fixture(scope="module")
def paper_db():
    return example_path_database()


@pytest.fixture(scope="module")
def paper_lattice(paper_db):
    return PathLattice.paper_default(paper_db.schema.location)


@pytest.fixture(scope="module")
def medium_db():
    return generate_path_database(
        GeneratorConfig(n_paths=500, n_dims=3, dim_fanouts=(3, 3, 4),
                        n_sequences=15, seed=5)
    )


def test_table3_transaction_encoding(benchmark, paper_db, paper_lattice):
    tdb = benchmark(lambda: TransactionDatabase(paper_db, paper_lattice))
    assert len(tdb) == 8


def test_table4_shared_mining(benchmark, paper_db):
    result = benchmark(lambda: shared_mine(paper_db, min_support=3))
    assert len(result) > 0


def test_figure3_flowgraph_build(benchmark, paper_db, paper_lattice):
    paths = [aggregate_path(r.path, paper_lattice[0]) for r in paper_db]
    graph = benchmark(lambda: FlowGraph(paths))
    assert graph.n_paths == 8


def test_flowgraph_build_scales(benchmark, medium_db, paper_lattice):
    lattice = PathLattice.paper_default(medium_db.schema.location)
    paths = [aggregate_path(r.path, lattice[0]) for r in medium_db]
    graph = benchmark(lambda: FlowGraph(paths))
    assert graph.n_paths == len(medium_db)


def test_full_flowcube_build(benchmark, medium_db):
    cube = benchmark.pedantic(
        lambda: FlowCube.build(medium_db, min_support=0.02, min_deviation=0.1),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    assert cube.n_cells() > 0
