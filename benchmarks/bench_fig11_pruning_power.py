"""Figure 11: pruning power — candidates counted per pattern length.

Benchmarks Shared and Basic on the same database at a δ where Basic can
finish, then asserts the figure's two claims: Basic counts far more
candidates at every length, and keeps generating candidates to much
greater lengths (the ancestor-polluted transactions stretch patterns out).
"""

import pytest

from benchmarks.conftest import BASE, run_once
from repro.mining import basic_mine, shared_mine

#: δ high enough for Basic to complete at this size (see the fig11 docs).
MIN_SUPPORT = 0.1
CONFIG = BASE.with_(n_paths=300)


@pytest.fixture(scope="module")
def fig11_db(db_cache):
    return db_cache(CONFIG)


def test_shared(benchmark, fig11_db):
    result = run_once(
        benchmark, lambda: shared_mine(fig11_db, min_support=MIN_SUPPORT)
    )
    assert result.stats.total_candidates > 0


def test_basic(benchmark, fig11_db):
    result = run_once(
        benchmark,
        lambda: basic_mine(
            fig11_db, min_support=MIN_SUPPORT, candidate_limit=3_000_000
        ),
    )
    assert not result.stats.pruned.get("truncated"), "raise δ: basic truncated"


def test_pruning_claims(fig11_db):
    """The figure's claims, independent of wall-clock."""
    shared = shared_mine(fig11_db, min_support=MIN_SUPPORT)
    basic = basic_mine(
        fig11_db, min_support=MIN_SUPPORT, candidate_limit=3_000_000
    )
    assert basic.stats.total_candidates > 3 * shared.stats.total_candidates
    assert basic.stats.max_length > shared.stats.max_length
    # And despite all that extra work, no extra knowledge:
    assert shared.frequent_cells() == basic.frequent_cells()
    assert shared.frequent_segments() == basic.frequent_segments()
