"""Figure 6: runtime vs path-database size (δ=1%, d=5).

Paper shape: Shared and Cubing start close; as N grows, Shared's runtime
rises with a smaller slope than Cubing's.  Basic only runs at the smallest
size (the paper could not run it past 200k of 1M paths).
"""

import pytest

from benchmarks.conftest import BASE, run_once
from repro.mining import basic_mine, cubing_mine, shared_mine

SIZES = [200, 400, 800]


@pytest.mark.parametrize("n_paths", SIZES)
def test_shared(benchmark, db_cache, n_paths):
    db = db_cache(BASE.with_(n_paths=n_paths))
    result = run_once(benchmark, lambda: shared_mine(db, min_support=0.01))
    assert len(result) > 0


@pytest.mark.parametrize("n_paths", SIZES)
def test_cubing(benchmark, db_cache, n_paths):
    db = db_cache(BASE.with_(n_paths=n_paths))
    result = run_once(benchmark, lambda: cubing_mine(db, min_support=0.01))
    assert len(result) > 0


def test_basic_smallest_size_only(benchmark, db_cache):
    """Basic at the smallest N, with the blow-up guard armed."""
    db = db_cache(BASE.with_(n_paths=SIZES[0]))
    result = run_once(
        benchmark,
        lambda: basic_mine(db, min_support=0.01, candidate_limit=200_000),
    )
    assert len(result) > 0
