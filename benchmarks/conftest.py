"""Shared fixtures for the benchmark suite.

The benchmarks mirror the Section 6 experiments at pytest-friendly sizes
(a few hundred paths — pure Python is ~100× the paper's C++, and a CI run
should finish in minutes).  The same sweeps at larger scale are available
through ``flowcube-bench`` / ``python -m repro.bench``, which is what
EXPERIMENTS.md's numbers come from.

Databases are generated once per session and shared across benchmarks;
every generator config pins a seed, so timings compare like against like.
"""

from __future__ import annotations

import pytest

from repro.synth import GeneratorConfig, generate_path_database

#: The d=5 baseline configuration every figure sweeps around.
BASE = GeneratorConfig(
    n_paths=400,
    n_dims=5,
    dim_fanouts=(4, 4, 6),
    dim_skew=0.8,
    n_sequences=30,
    sequence_skew=0.8,
    seed=7,
)


@pytest.fixture(scope="session")
def base_db():
    """The N=400, d=5 reference database."""
    return generate_path_database(BASE)


@pytest.fixture(scope="session")
def db_cache():
    """Config-keyed database cache shared across the whole bench session."""
    cache: dict[GeneratorConfig, object] = {}

    def get(config: GeneratorConfig):
        if config not in cache:
            cache[config] = generate_path_database(config)
        return cache[config]

    return get


def run_once(benchmark, fn):
    """Benchmark a multi-second miner honestly: one round, no warmup."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
