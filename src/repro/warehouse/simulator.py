"""Raw RFID reading simulation (Section 1–2 substrate).

The paper starts from an already-cleaned path database; a real deployment
starts from a stream of ``(EPC, location, time)`` reads — each item read
possibly hundreds of times per location, with duplicate reads, small clock
jitter, and occasional missed reads.  This module produces such a stream
from a ground-truth path database, so the cleaning pipeline
(:mod:`repro.warehouse.cleaning`) can be exercised end to end and verified
against known truth.

This is our substitution for a physical RFID deployment (see DESIGN.md):
the generated stream exercises exactly the code paths real readers would —
deduplication, sessionisation into stays, duration recovery.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

import numpy as np

from repro.core.path_database import PathDatabase
from repro.core.stage import RawReading
from repro.errors import GenerationError

__all__ = ["ReaderModel", "simulate_readings"]


@dataclass(frozen=True)
class ReaderModel:
    """Physical characteristics of the simulated readers.

    Attributes:
        read_period: Time between successive reads of a stationary tag
            (same unit as stage durations; a 5-hour stay with period 0.5
            yields ~10 reads).
        jitter: Uniform timing noise (± this much) on each read.
        miss_rate: Probability an individual read is lost.
        duplicate_rate: Probability an individual read is reported twice
            (readers double-report on antenna handoff).
        seed: Seed of the noise process.
    """

    read_period: float = 0.5
    jitter: float = 0.05
    miss_rate: float = 0.02
    duplicate_rate: float = 0.05
    seed: int = 17

    def __post_init__(self) -> None:
        if self.read_period <= 0:
            raise GenerationError("read_period must be positive")
        if not 0 <= self.miss_rate < 1:
            raise GenerationError("miss_rate must be in [0, 1)")
        if not 0 <= self.duplicate_rate < 1:
            raise GenerationError("duplicate_rate must be in [0, 1)")


def simulate_readings(
    database: PathDatabase,
    model: ReaderModel | None = None,
    start_time: float = 0.0,
    inter_stage_gap: float = 0.25,
) -> Iterator[RawReading]:
    """Emit the raw reading stream a deployment would have produced.

    Each record's path is replayed on an absolute clock: the item sits at
    each stage for its duration and is read every ``read_period`` (with
    jitter, misses and duplicates).  A stage always produces at least one
    surviving read — an item that was somewhere *was* seen there — so
    cleaning can recover every stage.

    Args:
        database: Ground-truth paths.  EPCs are ``epc-{record_id}``.
        model: Reader noise model (defaults to :class:`ReaderModel`).
        start_time: Clock value at which every item starts its path.
        inter_stage_gap: Travel time inserted between consecutive stages.
            Must exceed the model's jitter (items cannot be in two places
            at one instant; a zero gap makes boundary reads collide in
            time and sessionisation would split stays spuriously).

    Yields:
        :class:`~repro.core.stage.RawReading` in *unsorted* arrival order
        (grouped by item, time-ordered within an item — real middleware
        output is messier, which the cleaning step must not rely on).
    """
    model = model or ReaderModel()
    if inter_stage_gap <= model.jitter:
        raise GenerationError(
            f"inter_stage_gap ({inter_stage_gap}) must exceed the reader "
            f"jitter ({model.jitter}) or stage boundaries collide"
        )
    rng = np.random.default_rng(model.seed)
    for record in database:
        epc = f"epc-{record.record_id}"
        clock = start_time
        for stage in record.path:
            n_reads = max(1, int(stage.duration / model.read_period))
            produced = 0
            for i in range(n_reads):
                moment = clock + i * model.read_period
                moment += float(rng.uniform(-model.jitter, model.jitter))
                moment = min(max(moment, clock), clock + stage.duration)
                is_last_chance = i == n_reads - 1 and produced == 0
                if not is_last_chance and rng.random() < model.miss_rate:
                    continue
                produced += 1
                yield RawReading(epc, moment, stage.location)
                if rng.random() < model.duplicate_rate:
                    yield RawReading(epc, moment, stage.location)
            # Anchor the stay's end so durations are recoverable.
            if stage.duration > 0:
                yield RawReading(epc, clock + stage.duration, stage.location)
            clock += stage.duration + inter_stage_gap
