"""RFID data cleaning (Section 2).

"After data cleaning, each path will have stages of the form
``(location, time_in, time_out)``": this module implements that step.  The
input is an arbitrary stream of raw ``(EPC, location, time)`` reads —
unordered, with duplicates and jitter; the output is, per item, a clean
sequence of :class:`~repro.core.stage.StageRecord` stays.

The sessionisation rule: sort an item's reads by time, then group maximal
runs of consecutive reads at the same location into one stay.  A *gap
threshold* guards against the pathological case where an item genuinely
left and came back faster than the reader period — a larger-than-threshold
silence at the same location splits the stay.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable, Iterator

from repro.core.stage import RawReading, StageRecord
from repro.errors import CleaningError

__all__ = ["group_by_item", "sessionise", "clean_readings"]


def group_by_item(readings: Iterable[RawReading]) -> dict[str, list[RawReading]]:
    """Bucket a raw stream by EPC, each bucket sorted by time."""
    buckets: dict[str, list[RawReading]] = defaultdict(list)
    for reading in readings:
        buckets[reading.epc].append(reading)
    for reads in buckets.values():
        reads.sort(key=lambda r: (r.time, r.location))
    return dict(buckets)


def sessionise(
    readings: list[RawReading],
    gap_threshold: float | None = None,
) -> list[StageRecord]:
    """Collapse one item's time-sorted reads into stays.

    Args:
        readings: All reads of a single EPC, sorted by time.
        gap_threshold: If two consecutive same-location reads are further
            apart than this, the stay splits in two (``None`` = never
            split).

    Returns:
        The item's stays in chronological order.  A stay's duration is
        last-read-time minus first-read-time; single-read stays have
        duration 0.

    Raises:
        CleaningError: If the reads mention more than one EPC, or are not
            time-sorted.
    """
    if not readings:
        return []
    epcs = {r.epc for r in readings}
    if len(epcs) != 1:
        raise CleaningError(f"sessionise expects a single item, got EPCs {epcs}")
    stages: list[StageRecord] = []
    current_location = readings[0].location
    time_in = readings[0].time
    last_time = readings[0].time
    for reading in readings[1:]:
        if reading.time < last_time:
            raise CleaningError("readings must be sorted by time")
        same_place = reading.location == current_location
        gap_ok = gap_threshold is None or reading.time - last_time <= gap_threshold
        if same_place and gap_ok:
            last_time = reading.time
            continue
        stages.append(StageRecord(current_location, time_in, last_time))
        current_location = reading.location
        time_in = reading.time
        last_time = reading.time
    stages.append(StageRecord(current_location, time_in, last_time))
    return stages


def clean_readings(
    readings: Iterable[RawReading],
    gap_threshold: float | None = None,
) -> Iterator[tuple[str, list[StageRecord]]]:
    """Clean a whole stream: yield ``(epc, stays)`` per item.

    Items come out in sorted-EPC order for determinism.
    """
    buckets = group_by_item(readings)
    for epc in sorted(buckets):
        yield epc, sessionise(buckets[epc], gap_threshold)
