"""ETL: raw readings + item master data → a path database (Section 2).

Ties the warehouse substrate together: clean the reading stream into stays,
convert stays into relative-duration stages (optionally discretised), join
each EPC with its path-independent dimension values, and emit a validated
:class:`~repro.core.path_database.PathDatabase` ready for flowcube
construction.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping

from repro.core.path import Path, PathRecord
from repro.core.path_database import PathDatabase, PathSchema
from repro.core.stage import RawReading, Stage
from repro.errors import CleaningError
from repro.warehouse.cleaning import clean_readings

__all__ = ["build_path_database", "round_durations"]


def round_durations(unit: float = 1.0) -> Callable[[float], float]:
    """A duration reducer that rounds stays to multiples of *unit*.

    Section 2 notes durations "may not need to be at the precision of
    seconds" — rounding to hours (or shifts, or days) is the simplest
    numerosity reduction.  Zero-length stays round up to one unit so a
    visited location is never erased.
    """
    if unit <= 0:
        raise CleaningError("rounding unit must be positive")

    def reduce(duration: float) -> float:
        return max(unit, round(duration / unit) * unit)

    return reduce


def build_path_database(
    readings: Iterable[RawReading],
    item_dimensions: Mapping[str, tuple[str, ...]],
    schema: PathSchema,
    gap_threshold: float | None = None,
    duration_reducer: Callable[[float], float] | None = None,
    record_ids: Mapping[str, int] | None = None,
) -> PathDatabase:
    """Run the full §2 pipeline on a raw reading stream.

    Args:
        readings: The raw ``(EPC, location, time)`` stream.
        item_dimensions: EPC → path-independent dimension values, in the
            schema's column order (the "item master" join).
        schema: Target schema; locations in the stream must exist in its
            location hierarchy (validated on construction).
        gap_threshold: Stay-splitting threshold for sessionisation.
        duration_reducer: Optional numerosity reduction for stage
            durations (e.g. :func:`round_durations`).
        record_ids: Optional EPC → record id assignment (e.g. to align
            with an existing master database).  Default: ids 1, 2, ... in
            sorted-EPC order.

    Returns:
        A validated path database.

    Raises:
        CleaningError: If an EPC in the stream has no master-data entry.
    """
    records: list[PathRecord] = []
    next_id = 1
    for epc, stays in clean_readings(readings, gap_threshold):
        if epc not in item_dimensions:
            raise CleaningError(f"no item master data for EPC {epc!r}")
        stages = []
        for stay in stays:
            duration = stay.duration
            if duration_reducer is not None:
                duration = duration_reducer(duration)
            stages.append(Stage(stay.location, duration))
        if record_ids is not None:
            if epc not in record_ids:
                raise CleaningError(f"no record id assigned for EPC {epc!r}")
            record_id = record_ids[epc]
        else:
            record_id = next_id
            next_id += 1
        records.append(PathRecord(record_id, item_dimensions[epc], Path(stages)))
    return PathDatabase(schema, records)
