"""RFID warehouse substrate: reading simulation, cleaning, ETL (Section 2)."""

from repro.warehouse.cleaning import clean_readings, group_by_item, sessionise
from repro.warehouse.etl import build_path_database, round_durations
from repro.warehouse.simulator import ReaderModel, simulate_readings

__all__ = [
    "ReaderModel",
    "build_path_database",
    "clean_readings",
    "group_by_item",
    "round_durations",
    "sessionise",
    "simulate_readings",
]
