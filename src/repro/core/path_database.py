"""The path database (Section 2, Table 1).

A :class:`PathDatabase` is a collection of :class:`~repro.core.path.PathRecord`
rows together with a :class:`PathSchema` that names the path-independent
dimensions and binds each of them — plus the stage location and duration
dimensions — to a concept hierarchy.

The module also ships :func:`example_path_database`, the eight-row running
example of Table 1, with the product/location hierarchies of Figures 2 and 5;
the paper-example tests and the quickstart build on it.
"""

from __future__ import annotations

import csv
import io
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass

from repro.core.hierarchy import ConceptHierarchy
from repro.core.path import Path, PathRecord
from repro.core.stage import Stage
from repro.errors import PathDatabaseError

__all__ = [
    "PathSchema",
    "PathDatabase",
    "example_path_database",
    "example_duration_hierarchy",
]


@dataclass(frozen=True)
class PathSchema:
    """Schema of a path database.

    Attributes:
        dimensions: Concept hierarchies of the path-independent dimensions,
            in column order (their ``name`` attributes are the column names).
        location: Concept hierarchy over stage locations (Figure 5).
        duration: Concept hierarchy over stage durations.  Durations are
            numeric; this hierarchy's leaves are the string forms of the
            discretised values (see :mod:`repro.core.aggregation`).
    """

    dimensions: tuple[ConceptHierarchy, ...]
    location: ConceptHierarchy
    duration: ConceptHierarchy

    def __init__(
        self,
        dimensions: Sequence[ConceptHierarchy],
        location: ConceptHierarchy,
        duration: ConceptHierarchy,
    ) -> None:
        object.__setattr__(self, "dimensions", tuple(dimensions))
        object.__setattr__(self, "location", location)
        object.__setattr__(self, "duration", duration)

    @property
    def dimension_names(self) -> tuple[str, ...]:
        """Column names of the path-independent dimensions."""
        return tuple(h.name for h in self.dimensions)

    @property
    def n_dimensions(self) -> int:
        """Number of path-independent dimensions."""
        return len(self.dimensions)

    def dimension(self, name: str) -> ConceptHierarchy:
        """Hierarchy of the dimension called *name*."""
        for hierarchy in self.dimensions:
            if hierarchy.name == name:
                return hierarchy
        raise PathDatabaseError(f"no dimension named {name!r} in schema")

    def dimension_index(self, name: str) -> int:
        """Column position of the dimension called *name*."""
        for i, hierarchy in enumerate(self.dimensions):
            if hierarchy.name == name:
                return i
        raise PathDatabaseError(f"no dimension named {name!r} in schema")


class PathDatabase:
    """An in-memory path database: a schema plus a list of records.

    The database validates on construction that every record has the right
    number of dimension values and that every dimension value / stage
    location is a concept known to the corresponding hierarchy, so that the
    downstream encoders never meet an unknown value.

    Args:
        schema: The :class:`PathSchema`.
        records: The rows.
        validate: Set to ``False`` to skip per-record hierarchy membership
            checks (useful for very large synthetic databases whose values
            are correct by construction).
    """

    def __init__(
        self,
        schema: PathSchema,
        records: Iterable[PathRecord],
        validate: bool = True,
    ) -> None:
        self.schema = schema
        self._records: list[PathRecord] = list(records)
        if validate:
            self._validate()

    def _validate(self) -> None:
        n_dims = self.schema.n_dimensions
        for record in self._records:
            if len(record.dims) != n_dims:
                raise PathDatabaseError(
                    f"record {record.record_id} has {len(record.dims)} dimension "
                    f"values, schema defines {n_dims}"
                )
            for hierarchy, value in zip(self.schema.dimensions, record.dims):
                if value not in hierarchy:
                    raise PathDatabaseError(
                        f"record {record.record_id}: value {value!r} is not in "
                        f"the {hierarchy.name!r} hierarchy"
                    )
            for stage in record.path:
                if stage.location not in self.schema.location:
                    raise PathDatabaseError(
                        f"record {record.record_id}: location {stage.location!r} "
                        f"is not in the location hierarchy"
                    )

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[PathRecord]:
        return iter(self._records)

    def __getitem__(self, record_id: int) -> PathRecord:
        for record in self._records:
            if record.record_id == record_id:
                return record
        raise PathDatabaseError(f"no record with id {record_id}")

    @property
    def records(self) -> tuple[PathRecord, ...]:
        """All rows, in insertion order."""
        return tuple(self._records)

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def distinct_location_sequences(self) -> set[tuple[str, ...]]:
        """The set of distinct location sequences present in the data."""
        return {record.path.locations for record in self._records}

    def max_path_length(self) -> int:
        """Length of the longest path, 0 for an empty database."""
        return max((len(r.path) for r in self._records), default=0)

    def describe(self) -> dict[str, object]:
        """Summary statistics used by the benchmark harness."""
        lengths = [len(r.path) for r in self._records]
        return {
            "records": len(self._records),
            "dimensions": self.schema.n_dimensions,
            "distinct_sequences": len(self.distinct_location_sequences()),
            "avg_path_length": sum(lengths) / len(lengths) if lengths else 0.0,
            "max_path_length": max(lengths, default=0),
        }

    # ------------------------------------------------------------------
    # (de)serialisation — simple CSV interchange format
    # ------------------------------------------------------------------
    def to_csv(self) -> str:
        """Serialise the rows (not the schema) to CSV.

        Columns: ``id``, one column per dimension, then ``path`` holding
        ``loc:dur`` steps joined by ``|``.  The CSV layer quotes commas,
        quotes, and newlines in dimension values; inside the path column,
        ``\\``, ``|`` and ``:`` occurring in location names are
        backslash-escaped so any location string round-trips losslessly
        (the store's partition files depend on this).
        """
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(["id", *self.schema.dimension_names, "path"])
        for record in self._records:
            path = "|".join(
                f"{_escape_location(s.location)}:{s.duration!r}"
                for s in record.path
            )
            writer.writerow([record.record_id, *record.dims, path])
        return buffer.getvalue()

    @classmethod
    def from_csv(cls, schema: PathSchema, text: str) -> "PathDatabase":
        """Inverse of :meth:`to_csv` for the given schema."""
        reader = csv.reader(io.StringIO(text))
        header = next(reader, None)
        expected = ["id", *schema.dimension_names, "path"]
        if header != expected:
            raise PathDatabaseError(f"bad CSV header {header!r}; expected {expected!r}")
        records: list[PathRecord] = []
        for row in reader:
            if not row:
                continue
            record_id, *dims, path_text = row
            stages = []
            for step in _split_unescaped(path_text, "|"):
                head, sep, duration = _rpartition_unescaped(step, ":")
                if not sep:
                    raise PathDatabaseError(f"malformed path step {step!r}")
                try:
                    stages.append(Stage(_unescape(head), float(duration)))
                except ValueError:
                    raise PathDatabaseError(
                        f"malformed duration in path step {step!r}"
                    ) from None
            records.append(PathRecord(int(record_id), tuple(dims), Path(stages)))
        return cls(schema, records)


# ----------------------------------------------------------------------
# path-column escaping (locations may contain the separators themselves)
# ----------------------------------------------------------------------

def _escape_location(text: str) -> str:
    """Backslash-escape the path-column separators inside a location."""
    return (
        text.replace("\\", "\\\\").replace("|", "\\|").replace(":", "\\:")
    )


def _unescape(text: str) -> str:
    """Inverse of :func:`_escape_location`."""
    out: list[str] = []
    escaped = False
    for ch in text:
        if escaped:
            out.append(ch)
            escaped = False
        elif ch == "\\":
            escaped = True
        else:
            out.append(ch)
    if escaped:
        raise PathDatabaseError(f"dangling escape in path text {text!r}")
    return "".join(out)


def _split_unescaped(text: str, separator: str) -> list[str]:
    """Split on *separator*, honouring backslash escapes (kept verbatim)."""
    parts: list[str] = []
    current: list[str] = []
    escaped = False
    for ch in text:
        if escaped:
            current.append(ch)
            escaped = False
        elif ch == "\\":
            current.append(ch)
            escaped = True
        elif ch == separator:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    parts.append("".join(current))
    return parts


def _rpartition_unescaped(text: str, separator: str) -> tuple[str, str, str]:
    """Like ``str.rpartition`` but only on unescaped separators."""
    escaped = False
    last = -1
    for i, ch in enumerate(text):
        if escaped:
            escaped = False
        elif ch == "\\":
            escaped = True
        elif ch == separator:
            last = i
    if last < 0:
        return text, "", ""
    return text[:last], separator, text[last + 1 :]


# ----------------------------------------------------------------------
# The paper's running example (Tables 1-4, Figures 2-5)
# ----------------------------------------------------------------------

def example_duration_hierarchy(max_duration: int = 24) -> ConceptHierarchy:
    """A flat duration hierarchy over integer hours ``0..max_duration``."""
    return ConceptHierarchy.flat(
        "duration", [str(h) for h in range(max_duration + 1)]
    )


def example_path_database() -> PathDatabase:
    """The eight-row path database of Table 1.

    Dimensions: *product* with the three-level hierarchy of Figure 2
    (clothing→{outerwear→{shirt,jacket}, shoes→{tennis,sandals}}) and *brand*
    (flat: nike, adidas).  Locations follow Figure 5's hierarchy:
    transportation→{dist center, truck, warehouse} and
    store→{backroom, shelf, checkout}, plus factory.
    """
    product = ConceptHierarchy.from_nested(
        "product",
        {
            "clothing": {
                "outerwear": {"shirt": {}, "jacket": {}},
                "shoes": {"tennis": {}, "sandals": {}},
            }
        },
    )
    brand = ConceptHierarchy.flat("brand", ["nike", "adidas"])
    location = ConceptHierarchy.from_nested(
        "location",
        {
            "transportation": {"dist center": {}, "truck": {}, "warehouse": {}},
            "factory": {},
            "store": {"backroom": {}, "shelf": {}, "checkout": {}},
        },
    )
    schema = PathSchema(
        dimensions=(product, brand),
        location=location,
        duration=example_duration_hierarchy(),
    )
    f, d, t, w, s, c = (
        "factory",
        "dist center",
        "truck",
        "warehouse",
        "shelf",
        "checkout",
    )
    rows: list[tuple[int, tuple[str, str], list[tuple[str, float]]]] = [
        (1, ("tennis", "nike"), [(f, 10), (d, 2), (t, 1), (s, 5), (c, 0)]),
        (2, ("tennis", "nike"), [(f, 5), (d, 2), (t, 1), (s, 10), (c, 0)]),
        (3, ("sandals", "nike"), [(f, 10), (d, 1), (t, 2), (s, 5), (c, 0)]),
        (4, ("shirt", "nike"), [(f, 10), (t, 1), (s, 5), (c, 0)]),
        (5, ("jacket", "nike"), [(f, 10), (t, 2), (s, 5), (c, 1)]),
        (6, ("jacket", "nike"), [(f, 10), (t, 1), (w, 5)]),
        (7, ("tennis", "adidas"), [(f, 5), (d, 2), (t, 2), (s, 20)]),
        (8, ("tennis", "adidas"), [(f, 5), (d, 2), (t, 3), (s, 10), (d, 5)]),
    ]
    records = [PathRecord(rid, dims, Path(path)) for rid, dims, path in rows]
    return PathDatabase(schema, records)
