"""JSON (de)serialisation of flowgraphs and flowcubes.

A data-warehouse artifact is only useful if it can be persisted and shipped
to the analysts' tools.  This module provides a stable, human-inspectable
JSON format:

* :func:`flowgraph_to_dict` / :func:`flowgraph_from_dict` — raw counts (so
  round-tripped graphs keep merging algebraically) plus exceptions;
* :func:`cube_to_json` / :func:`cube_from_json` — cells with coordinates
  and measures.  The cube format stores the path lattice structurally
  (view concepts + duration level) and rebinds it against the schema's
  location hierarchy on load; the path database itself is serialised
  separately via :meth:`~repro.core.path_database.PathDatabase.to_csv`.
"""

from __future__ import annotations

import json

from repro.core.flowcube import Cell, Cuboid, FlowCube
from repro.core.flowgraph import FlowGraph
from repro.core.hierarchy import ConceptHierarchy
from repro.core.flowgraph_exceptions import FlowException
from repro.core.lattice import ItemLattice, ItemLevel, LocationView, PathLattice, PathLevel
from repro.core.path_database import PathDatabase
from repro.errors import CubeError

__all__ = [
    "exceptions_from_dicts",
    "flowgraph_to_dict",
    "flowgraph_from_dict",
    "cube_to_json",
    "cube_from_json",
    "path_level_to_dict",
    "path_level_from_dict",
]


def flowgraph_to_dict(graph: FlowGraph) -> dict:
    """Serialise a flowgraph (raw counts + exceptions) to plain data.

    Nodes are emitted in canonical (prefix-sorted) order, and every mapping
    — duration/transition tallies, exception baselines and conditionals —
    with sorted keys, so that serialise→deserialise→serialise is
    byte-identical *and* independent of the order counts were accumulated
    in.  The cube store relies on the former to deduplicate and diff
    persisted cells; the cross-engine parity tests rely on the latter (the
    roll-up engine folds counts in merge order, not record order).
    """
    return {
        "n_paths": graph.n_paths,
        "nodes": [
            {
                "prefix": list(node.prefix),
                "count": node.count,
                "durations": _sorted_mapping(node.duration_counts),
                "transitions": _sorted_mapping(node.transition_counts),
            }
            for node in sorted(
                graph.nodes(), key=lambda n: (len(n.prefix), n.prefix)
            )
        ],
        "exceptions": [
            {
                "node_prefix": list(exc.node_prefix),
                "condition": [
                    {"prefix": list(prefix), "duration": duration}
                    for prefix, duration in exc.condition
                ],
                "kind": exc.kind,
                "support": exc.support,
                "baseline": _sorted_mapping(exc.baseline),
                "conditional": _sorted_mapping(exc.conditional),
                "deviation": exc.deviation,
            }
            for exc in graph.exceptions
        ],
    }


def _sorted_mapping(mapping) -> dict:
    """A plain dict with the keys in sorted order (canonical JSON form)."""
    return {key: mapping[key] for key in sorted(mapping)}


def flowgraph_from_dict(data: dict) -> FlowGraph:
    """Inverse of :func:`flowgraph_to_dict`."""
    graph = FlowGraph()
    graph.n_paths = int(data["n_paths"])
    # Nodes arrive shortest-prefix first, so parents always exist.
    for node_data in sorted(data["nodes"], key=lambda n: len(n["prefix"])):
        prefix = tuple(node_data["prefix"])
        from repro.core.flowgraph import FlowGraphNode

        node = FlowGraphNode(prefix)
        node.count = int(node_data["count"])
        node.duration_counts.update(node_data["durations"])
        node.transition_counts.update(node_data["transitions"])
        graph._index[prefix] = node  # noqa: SLF001 - same-package rebuild
        if len(prefix) == 1:
            graph._roots[prefix[0]] = node  # noqa: SLF001
        else:
            graph._index[prefix[:-1]].children[prefix[-1]] = node  # noqa: SLF001
    graph.exceptions = exceptions_from_dicts(data.get("exceptions", []))
    return graph


def exceptions_from_dicts(data: list[dict]) -> list[FlowException]:
    """Rebuild :class:`FlowException` objects from their plain-dict form.

    Shared by :func:`flowgraph_from_dict` and the binary cell codec
    (:func:`repro.store.binfmt.decode_cell_parts`), which stores the
    exception list as a JSON blob inside the ``FCHEAP02`` record.
    """
    return [
        FlowException(
            node_prefix=tuple(exc["node_prefix"]),
            condition=tuple(
                (tuple(c["prefix"]), c["duration"]) for c in exc["condition"]
            ),
            kind=exc["kind"],
            support=int(exc["support"]),
            baseline=dict(exc["baseline"]),
            conditional=dict(exc["conditional"]),
            deviation=float(exc["deviation"]),
        )
        for exc in data
    ]


def path_level_to_dict(level: PathLevel) -> dict:
    """Structural form of a path level: view concepts + duration level."""
    return {
        "view": sorted(level.view.concepts),
        "duration_level": level.duration_level,
    }


def path_level_from_dict(data: dict, location: "ConceptHierarchy") -> PathLevel:
    """Rebind a :func:`path_level_to_dict` payload against *location*."""
    return PathLevel(
        LocationView(location, data["view"]), int(data["duration_level"])
    )


def cube_to_json(cube: FlowCube) -> str:
    """Serialise a materialised flowcube (without its path database)."""
    payload = {
        "min_support": cube.min_support,
        "min_deviation": cube.min_deviation,
        "path_lattice": [
            path_level_to_dict(level) for level in cube.path_lattice
        ],
        "cuboids": [
            {
                "item_level": list(cuboid.item_level.levels),
                "path_level": cube.path_lattice.index_of(cuboid.path_level),
                "cells": [
                    {
                        "key": list(cell.key),
                        "record_ids": list(cell.record_ids),
                        "redundant": cell.redundant,
                        "flowgraph": flowgraph_to_dict(cell.flowgraph),
                    }
                    for cell in cuboid
                ],
            }
            for cuboid in cube.cuboids
        ],
    }
    return json.dumps(payload)


def cube_from_json(text: str, database: PathDatabase) -> FlowCube:
    """Rebuild a flowcube against its path database.

    The database must be the one (or an equal copy of the one) the cube was
    built from; cell ``record_ids`` index into it.
    """
    payload = json.loads(text)
    known_ids = {record.record_id for record in database}
    location = database.schema.location
    path_lattice = PathLattice(
        path_level_from_dict(level, location)
        for level in payload["path_lattice"]
    )
    cube = FlowCube(
        database=database,
        item_lattice=ItemLattice([h.depth for h in database.schema.dimensions]),
        path_lattice=path_lattice,
        min_support=payload["min_support"],
        min_deviation=payload["min_deviation"],
    )
    for cuboid_data in payload["cuboids"]:
        item_level = ItemLevel(cuboid_data["item_level"])
        path_level = path_lattice[int(cuboid_data["path_level"])]
        cuboid = Cuboid(item_level, path_level)
        for cell_data in cuboid_data["cells"]:
            key = tuple(cell_data["key"])
            record_ids = tuple(int(i) for i in cell_data["record_ids"])
            missing = [i for i in record_ids if i not in known_ids]
            if missing:
                raise CubeError(
                    f"cube references record ids {missing!r} absent from "
                    "the supplied database"
                )
            cuboid.cells[key] = Cell(
                key=key,
                item_level=item_level,
                path_level=path_level,
                record_ids=record_ids,
                flowgraph=flowgraph_from_dict(cell_data["flowgraph"]),
                paths=(),
                redundant=bool(cell_data["redundant"]),
            )
        cube._cuboids[(item_level, path_level)] = cuboid  # noqa: SLF001
    return cube
