"""Flowgraph similarity metrics φ (Section 4.3).

Redundancy pruning needs a function ``φ(G1, G2) → R`` that is *large when the
graphs are similar*.  The paper suggests KL divergence of the induced
probability distributions, and notes PDFA-style distances also work; φ is
explicitly pluggable and need not satisfy the triangle inequality.

Three metrics are provided, all returning values in ``[0, 1]`` with 1 =
identical:

* :func:`kl_similarity` — ``exp(-KL)`` of the per-node duration and
  transition distributions (Laplace-smoothed, so unseen outcomes don't send
  the divergence to ∞), weighted by how much traffic each node carries;
* :func:`tv_similarity` — 1 minus the traffic-weighted total-variation
  distance, a bounded and symmetric alternative;
* :func:`path_distribution_similarity` — compares the distributions the two
  graphs induce over *complete location sequences* (the PDFA view), which is
  sensitive to structural differences deep in the tree.

Nodes present in only one graph compare against a degenerate "missing"
distribution, so a graph with extra branches is penalised in proportion to
the probability mass those branches carry.
"""

from __future__ import annotations

import math
from collections.abc import Callable

from repro.core.flowgraph import FlowGraph, FlowGraphNode

__all__ = [
    "SimilarityMetric",
    "kl_divergence",
    "total_variation",
    "kl_similarity",
    "tv_similarity",
    "path_distribution_similarity",
]

#: Signature every φ shares: two flowgraphs in, similarity in [0, 1] out.
SimilarityMetric = Callable[[FlowGraph, FlowGraph], float]

_SMOOTHING = 1e-3


def kl_divergence(
    p: dict[str, float], q: dict[str, float], smoothing: float = _SMOOTHING
) -> float:
    """Smoothed Kullback–Leibler divergence ``KL(p ‖ q)``.

    Both distributions are re-normalised over the union of their supports
    after adding *smoothing* to every outcome, keeping the divergence finite
    when ``q`` lacks an outcome of ``p``.
    """
    keys = set(p) | set(q)
    if not keys:
        return 0.0
    p_total = sum(p.get(k, 0.0) + smoothing for k in keys)
    q_total = sum(q.get(k, 0.0) + smoothing for k in keys)
    divergence = 0.0
    for key in keys:
        p_k = (p.get(key, 0.0) + smoothing) / p_total
        q_k = (q.get(key, 0.0) + smoothing) / q_total
        divergence += p_k * math.log(p_k / q_k)
    return max(divergence, 0.0)


def total_variation(p: dict[str, float], q: dict[str, float]) -> float:
    """Total-variation distance ``0.5 * Σ |p - q|`` (in ``[0, 1]``)."""
    keys = set(p) | set(q)
    return 0.5 * sum(abs(p.get(k, 0.0) - q.get(k, 0.0)) for k in keys)


def _node_weights(graph: FlowGraph) -> dict[tuple[str, ...], float]:
    """Traffic share of every node: count / total paths."""
    if graph.n_paths == 0:
        return {}
    return {node.prefix: node.count / graph.n_paths for node in graph.nodes()}


def _weighted_node_score(
    g1: FlowGraph,
    g2: FlowGraph,
    node_score: Callable[[FlowGraphNode | None, FlowGraphNode | None], float],
) -> float:
    """Average *node_score* over the union of node prefixes, traffic-weighted.

    Weights come from both graphs so a branch that only exists in one of
    them still contributes (with a score of 0 from the side that lacks it).
    """
    w1 = _node_weights(g1)
    w2 = _node_weights(g2)
    prefixes = set(w1) | set(w2)
    if not prefixes:
        return 1.0
    total_weight = 0.0
    total_score = 0.0
    for prefix in prefixes:
        weight = w1.get(prefix, 0.0) + w2.get(prefix, 0.0)
        n1 = g1.node(prefix) if g1.has_node(prefix) else None
        n2 = g2.node(prefix) if g2.has_node(prefix) else None
        total_weight += weight
        total_score += weight * node_score(n1, n2)
    return total_score / total_weight if total_weight else 1.0


def kl_similarity(g1: FlowGraph, g2: FlowGraph) -> float:
    """φ based on ``exp(-KL)`` of per-node distributions (paper's suggestion).

    Each node contributes ``exp(-(KL_dur + KL_trans))``; a node missing from
    one graph contributes 0.  Scores average with traffic weights.
    """

    def score(n1: FlowGraphNode | None, n2: FlowGraphNode | None) -> float:
        if n1 is None or n2 is None:
            return 0.0
        divergence = kl_divergence(
            n1.duration_distribution(), n2.duration_distribution()
        ) + kl_divergence(
            n1.transition_distribution(), n2.transition_distribution()
        )
        return math.exp(-divergence)

    return _weighted_node_score(g1, g2, score)


def tv_similarity(g1: FlowGraph, g2: FlowGraph) -> float:
    """φ based on total-variation distance of per-node distributions."""

    def score(n1: FlowGraphNode | None, n2: FlowGraphNode | None) -> float:
        if n1 is None or n2 is None:
            return 0.0
        distance = 0.5 * (
            total_variation(n1.duration_distribution(), n2.duration_distribution())
            + total_variation(
                n1.transition_distribution(), n2.transition_distribution()
            )
        )
        return 1.0 - distance

    return _weighted_node_score(g1, g2, score)


def path_distribution_similarity(g1: FlowGraph, g2: FlowGraph) -> float:
    """φ comparing the induced distributions over complete location paths.

    This is the PDFA-distance flavour: 1 minus the total-variation distance
    between the two graphs' path-completion distributions (durations
    marginalised out).
    """
    p1 = dict(g1.enumerate_paths())
    p2 = dict(g2.enumerate_paths())
    return 1.0 - total_variation(p1, p2)
