"""Item and path abstraction lattices (Section 4.1).

*Item lattice.*  An :class:`ItemLevel` is the tuple ``(l1, ..., lm)`` of
abstraction levels, one per path-independent dimension.  Level 0 is the apex
``*`` ("any value"); deeper is more specific.  ``n1 ⪯ n2`` (``n1`` is *higher*
/ more general) when every component of ``n1`` is ≤ the matching component of
``n2``.

*Path lattice.*  A :class:`PathLevel` is the pair ``(location view, duration
level)``.  The location view ``⟨v1, ..., vk⟩`` is a *cut* through the location
concept hierarchy: an antichain of concepts that jointly covers every leaf
location, e.g. the transportation manager's view
``⟨dist center, truck, warehouse, factory, store⟩`` of Figure 5.  Aggregating
a path maps each stage location to its unique covering view concept and then
merges consecutive equal concepts (:mod:`repro.core.aggregation`).
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass

from repro.core.hierarchy import ANY, ConceptHierarchy
from repro.errors import LevelError

__all__ = [
    "ItemLevel",
    "ItemLattice",
    "LocationView",
    "PathLevel",
    "PathLattice",
    "DURATION_ANY",
    "DURATION_VALUE",
]

#: Duration abstraction level "any duration" (the ``*`` level).
DURATION_ANY = 0
#: Duration abstraction level "the value as stored in the path database".
DURATION_VALUE = 1


@dataclass(frozen=True, order=True)
class ItemLevel:
    """Abstraction levels of the path-independent dimensions, ``(l1...lm)``."""

    levels: tuple[int, ...]

    def __init__(self, levels: Iterable[int]) -> None:
        object.__setattr__(self, "levels", tuple(int(v) for v in levels))
        if any(v < 0 for v in self.levels):
            raise LevelError(f"negative item level in {self.levels!r}")

    def __len__(self) -> int:
        return len(self.levels)

    def __getitem__(self, index: int) -> int:
        return self.levels[index]

    def __iter__(self) -> Iterator[int]:
        return iter(self.levels)

    def is_higher_or_equal(self, other: "ItemLevel") -> bool:
        """``self ⪯ other``: self is at-or-above *other* in every dimension."""
        if len(self.levels) != len(other.levels):
            raise LevelError("cannot compare item levels of different arity")
        return all(a <= b for a, b in zip(self.levels, other.levels))

    def parents(self) -> tuple["ItemLevel", ...]:
        """Immediate generalisations: one dimension rolled up one level."""
        out = []
        for i, level in enumerate(self.levels):
            if level > 0:
                raised = list(self.levels)
                raised[i] = level - 1
                out.append(ItemLevel(raised))
        return tuple(out)

    def children_within(self, max_levels: Sequence[int]) -> tuple["ItemLevel", ...]:
        """Immediate specialisations bounded by the hierarchy depths."""
        out = []
        for i, level in enumerate(self.levels):
            if level < max_levels[i]:
                lowered = list(self.levels)
                lowered[i] = level + 1
                out.append(ItemLevel(lowered))
        return tuple(out)


class ItemLattice:
    """The lattice of all :class:`ItemLevel` tuples for a schema.

    Args:
        depths: Maximum level per dimension (the depth of each dimension's
            concept hierarchy).
    """

    def __init__(self, depths: Sequence[int]) -> None:
        self.depths = tuple(int(d) for d in depths)
        if any(d < 1 for d in self.depths):
            raise LevelError("every dimension hierarchy must have depth >= 1")

    @property
    def apex(self) -> ItemLevel:
        """The all-``*`` level (every dimension fully generalised)."""
        return ItemLevel([0] * len(self.depths))

    @property
    def base(self) -> ItemLevel:
        """The most specific level (every dimension at its leaves)."""
        return ItemLevel(self.depths)

    def __contains__(self, level: ItemLevel) -> bool:
        return len(level) == len(self.depths) and all(
            0 <= v <= d for v, d in zip(level, self.depths)
        )

    def __iter__(self) -> Iterator[ItemLevel]:
        """Every item level, most general first (by total depth)."""
        ranges = [range(d + 1) for d in self.depths]
        levels = [ItemLevel(combo) for combo in itertools.product(*ranges)]
        levels.sort(key=lambda lv: (sum(lv.levels), lv.levels))
        return iter(levels)

    def __len__(self) -> int:
        size = 1
        for d in self.depths:
            size *= d + 1
        return size

    def parents(self, level: ItemLevel) -> tuple[ItemLevel, ...]:
        """Immediate generalisations of *level* that lie in this lattice."""
        if level not in self:
            raise LevelError(f"{level!r} is not in this lattice")
        return level.parents()


@dataclass(frozen=True)
class LocationView:
    """An antichain cut through the location hierarchy.

    The view concepts jointly cover every leaf location; each concrete
    location aggregates to the unique view concept on its root path.
    """

    concepts: frozenset[str]

    def __init__(
        self, hierarchy: ConceptHierarchy, concepts: Iterable[str]
    ) -> None:
        chosen = frozenset(concepts)
        object.__setattr__(self, "concepts", chosen)
        object.__setattr__(self, "_hierarchy", hierarchy)
        self._validate(hierarchy)
        # Precompute leaf -> view concept for O(1) aggregation.
        mapping: dict[str, str] = {}
        for concept in chosen:
            for leaf in hierarchy.descendants(concept, include_self=True):
                if not hierarchy.children(leaf):
                    mapping[leaf] = concept
        object.__setattr__(self, "_leaf_map", mapping)

    def _validate(self, hierarchy: ConceptHierarchy) -> None:
        for concept in self.concepts:
            hierarchy.node(concept)  # raises UnknownConceptError
        for a in self.concepts:
            for b in self.concepts:
                if a != b and hierarchy.is_ancestor(a, b):
                    raise LevelError(
                        f"location view is not an antichain: {a!r} subsumes {b!r}"
                    )
        uncovered = [
            leaf
            for leaf in hierarchy.leaves
            if not any(
                hierarchy.is_ancestor(c, leaf, strict=False) for c in self.concepts
            )
        ]
        if uncovered:
            raise LevelError(
                f"location view does not cover leaves {sorted(uncovered)!r}"
            )

    @classmethod
    def leaf_view(cls, hierarchy: ConceptHierarchy) -> "LocationView":
        """The most detailed view: every leaf location kept distinct."""
        return cls(hierarchy, hierarchy.leaves)

    @classmethod
    def level_view(cls, hierarchy: ConceptHierarchy, level: int) -> "LocationView":
        """The uniform view that rolls every location up to *level*.

        Leaves shallower than *level* are kept as themselves.
        """
        concepts = {
            hierarchy.ancestor_at_level(leaf, level) for leaf in hierarchy.leaves
        }
        return cls(hierarchy, concepts)

    def aggregate(self, location: str) -> str:
        """Map a concrete *location* to its view concept."""
        mapped = self._leaf_map.get(location)  # type: ignore[attr-defined]
        if mapped is not None:
            return mapped
        # Non-leaf input (already partially aggregated): climb to the view.
        hierarchy: ConceptHierarchy = self._hierarchy  # type: ignore[attr-defined]
        for concept in (location, *hierarchy.ancestors(location)):
            if concept in self.concepts:
                return concept
        raise LevelError(f"location {location!r} is below no view concept")

    def is_higher_or_equal(self, other: "LocationView") -> bool:
        """``self ⪯ other``: every concept of *other* aggregates into self."""
        hierarchy: ConceptHierarchy = self._hierarchy  # type: ignore[attr-defined]
        return all(
            any(
                hierarchy.is_ancestor(mine, theirs, strict=False)
                for mine in self.concepts
            )
            for theirs in other.concepts
        )

    def __eq__(self, other: object) -> bool:
        return isinstance(other, LocationView) and self.concepts == other.concepts

    def __hash__(self) -> int:
        return hash(self.concepts)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"LocationView({sorted(self.concepts)!r})"


@dataclass(frozen=True)
class PathLevel:
    """A path abstraction level: ``(location view, duration level)``.

    ``duration_level`` is :data:`DURATION_ANY` (durations dropped to ``*``)
    or :data:`DURATION_VALUE` (kept at the database granularity); deeper
    duration hierarchies plug in by using larger integers and a custom
    discretiser in :mod:`repro.core.aggregation`.
    """

    view: LocationView
    duration_level: int

    def __post_init__(self) -> None:
        if self.duration_level < 0:
            raise LevelError(f"negative duration level {self.duration_level}")

    def is_higher_or_equal(self, other: "PathLevel") -> bool:
        """``self ⪯ other`` on the path lattice."""
        return (
            self.duration_level <= other.duration_level
            and self.view.is_higher_or_equal(other.view)
        )


class PathLattice:
    """A finite set of interesting :class:`PathLevel` values.

    The flowcube never materialises the full (exponential) path lattice; the
    materialisation plan names the levels worth computing.  The experiments
    of Section 6 use four: locations at the database level and one level
    higher, crossed with durations at the database level and ``*``.
    """

    def __init__(self, levels: Iterable[PathLevel]) -> None:
        self.levels = tuple(levels)
        if not self.levels:
            raise LevelError("a path lattice needs at least one level")

    @classmethod
    def paper_default(cls, hierarchy: ConceptHierarchy) -> "PathLattice":
        """The four levels used throughout Section 6."""
        detailed = LocationView.leaf_view(hierarchy)
        coarse = LocationView.level_view(hierarchy, max(hierarchy.depth - 1, 1))
        views = [detailed] if detailed == coarse else [detailed, coarse]
        return cls(
            PathLevel(view, duration_level)
            for view in views
            for duration_level in (DURATION_VALUE, DURATION_ANY)
        )

    def __iter__(self) -> Iterator[PathLevel]:
        return iter(self.levels)

    def __len__(self) -> int:
        return len(self.levels)

    def __getitem__(self, index: int) -> PathLevel:
        return self.levels[index]

    def index_of(self, level: PathLevel) -> int:
        """Position of *level* in the lattice (used as a compact level id)."""
        for i, candidate in enumerate(self.levels):
            if candidate == level:
                return i
        raise LevelError(f"{level!r} is not one of the interesting path levels")
