"""The flowcube (Section 4, Definitions 4.1 and 4.5).

A flowcube is a collection of *cuboids*.  A cuboid ``⟨Il, Pl⟩`` groups the
path database's records into cells by their item dimensions rolled up to
item level ``Il``, with the paths of each cell aggregated to path level
``Pl``; the measure of a cell is the flowgraph over those aggregated paths.

Only *iceberg* cells — at least δ paths — are materialised (Definition
4.5); flowgraph exceptions use the same δ together with the deviation
threshold ε.  Redundancy pruning (Definition 4.4) lives in
:mod:`repro.core.redundancy`.

This module provides the direct (semantics-defining) builder.  The
optimised construction paths — the Shared algorithm and the Cubing baseline
— live in :mod:`repro.mining` and produce the same cells; the test-suite
cross-checks them against this builder.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping, Sequence
from dataclasses import dataclass, field
from time import perf_counter

from repro.core.aggregation import (
    WeightedPaths,
    aggregate_path,
    weight_paths,
)
from repro.core.flowgraph import FlowGraph
from repro.core.flowgraph_exceptions import (
    EXCEPTION_KERNELS,
    Segment,
    mine_exceptions_weighted,
    resolve_min_support,
)
from repro.core.lattice import ItemLattice, ItemLevel, PathLattice, PathLevel
from repro.core.path_database import PathDatabase
from repro.errors import CubeError

__all__ = ["CellKey", "Cell", "Cuboid", "FlowCube"]

#: A cell's coordinates: one (possibly rolled-up) value per item dimension.
CellKey = tuple[str, ...]


@dataclass
class Cell:
    """One cell of a cuboid: coordinates, member paths, and the measure."""

    key: CellKey
    item_level: ItemLevel
    path_level: PathLevel
    record_ids: tuple[int, ...]
    flowgraph: FlowGraph
    #: The cell's path multiset in weighted ``(path, weight)`` form — each
    #: distinct aggregated path once, in first-seen record order, with its
    #: multiplicity (kept for exception re-mining and lead-time queries;
    #: drop with :meth:`FlowCube.compact`).
    paths: WeightedPaths = ()
    #: Set by redundancy pruning when the cell's flowgraph is inferable
    #: from its item-lattice parents.
    redundant: bool = False

    @property
    def n_paths(self) -> int:
        """Number of paths aggregated in the cell."""
        return len(self.record_ids)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Cell({self.key!r}, n={self.n_paths}, redundant={self.redundant})"


@dataclass
class Cuboid:
    """All cells sharing one ``⟨item level, path level⟩`` pair."""

    item_level: ItemLevel
    path_level: PathLevel
    cells: dict[CellKey, Cell] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self) -> Iterator[Cell]:
        return iter(self.cells.values())

    def __contains__(self, key: CellKey) -> bool:
        return key in self.cells

    def cell(self, key: CellKey) -> Cell:
        """The cell at *key*, raising if not materialised."""
        try:
            return self.cells[key]
        except KeyError:
            raise CubeError(
                f"cell {key!r} is not materialised in cuboid "
                f"{self.item_level.levels!r}"
            ) from None


class FlowCube:
    """A materialised iceberg flowcube over a path database.

    Build one with :meth:`FlowCube.build`; query cells through
    :meth:`cuboid` / :meth:`cell` / :meth:`flowgraph_for`, or the richer
    OLAP wrapper in :mod:`repro.query.api`.
    """

    def __init__(
        self,
        database: PathDatabase,
        item_lattice: ItemLattice,
        path_lattice: PathLattice,
        min_support: float,
        min_deviation: float,
    ) -> None:
        self.database = database
        self.item_lattice = item_lattice
        self.path_lattice = path_lattice
        self.min_support = min_support
        self.min_deviation = min_deviation
        self._cuboids: dict[tuple[ItemLevel, PathLevel], Cuboid] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        database: PathDatabase,
        path_lattice: PathLattice | None = None,
        item_levels: Iterable[ItemLevel] | None = None,
        min_support: float = 0.01,
        min_deviation: float = 0.1,
        compute_exceptions: bool = True,
        segments_by_cell: Mapping[
            tuple[ItemLevel, PathLevel, CellKey], Sequence[Segment]
        ]
        | None = None,
        engine: str = "rollup",
        kernel: str = "bitmap",
        stats: object | None = None,
    ) -> "FlowCube":
        """Materialise an iceberg flowcube.

        Args:
            database: The path database.
            path_lattice: Interesting path levels; defaults to the paper's
                four (Section 6.1).
            item_levels: Item levels to materialise; defaults to the whole
                item lattice (partial materialisation plans pass a subset —
                see :mod:`repro.core.materialization`).
            min_support: δ for both the iceberg condition and exceptions;
                a fraction of the database (<1) or an absolute path count.
            min_deviation: ε for exceptions.
            compute_exceptions: Skip the (holistic) exception pass when
                only the algebraic part of the measure is needed.
            segments_by_cell: Pre-mined frequent segments per cell, e.g.
                from :func:`repro.mining.shared.shared_mine` — avoids the
                per-cell local mining pass.
            engine: ``"rollup"`` (default) aggregates each record once per
                path level and derives ancestor cuboids by merging child
                cells (:mod:`repro.perf.measure_rollup`); ``"direct"`` is
                the semantics-defining per-cell builder the cross-check
                tests validate the roll-up engine against.  Both produce
                byte-identical serialised cubes.
            kernel: Exception-pass kernel — ``"bitmap"`` (AND+popcount over
                per-cell tid-sets, :mod:`repro.perf.exception_kernel`; the
                default) or ``"scan"`` (per-path re-scan).  Identical
                exception lists either way.
            stats: Optional stats sink with an ``add_phase(name, seconds)``
                method (e.g. :class:`repro.mining.stats.MiningStats`); the
                measure construction time lands in its ``materialize``
                bucket and the exception pass in ``exceptions``.
        """
        if engine == "rollup":
            from repro.perf.measure_rollup import build_rollup

            return build_rollup(
                cls,
                database,
                path_lattice=path_lattice,
                item_levels=item_levels,
                min_support=min_support,
                min_deviation=min_deviation,
                compute_exceptions=compute_exceptions,
                segments_by_cell=segments_by_cell,
                kernel=kernel,
                stats=stats,
            )
        if engine != "direct":
            raise CubeError(
                f"unknown measure engine {engine!r}; use 'direct' or 'rollup'"
            )
        if kernel not in EXCEPTION_KERNELS:
            raise CubeError(
                f"unknown exception kernel {kernel!r}; expected one of "
                f"{EXCEPTION_KERNELS}"
            )
        started = perf_counter()
        exception_seconds = 0.0
        index_cache: dict | None = {} if compute_exceptions else None
        schema = database.schema
        item_lattice = ItemLattice([h.depth for h in schema.dimensions])
        if path_lattice is None:
            path_lattice = PathLattice.paper_default(schema.location)
        cube = cls(
            database, item_lattice, path_lattice, min_support, min_deviation
        )
        levels = list(item_levels) if item_levels is not None else list(item_lattice)
        threshold = resolve_min_support(min_support, len(database))
        for item_level in levels:
            if item_level not in item_lattice:
                raise CubeError(f"item level {item_level!r} outside the lattice")
            groups = cube._group_records(item_level)
            for path_level in path_lattice:
                cuboid = Cuboid(item_level, path_level)
                for key, record_ids in groups.items():
                    if len(record_ids) < threshold:
                        continue  # iceberg condition
                    weighted = weight_paths(
                        aggregate_path(database[rid].path, path_level)
                        for rid in record_ids
                    )
                    graph = FlowGraph()
                    for path, weight in weighted:
                        graph.add_path(path, weight)
                    cell = Cell(
                        key=key,
                        item_level=item_level,
                        path_level=path_level,
                        record_ids=tuple(record_ids),
                        flowgraph=graph,
                        paths=weighted,
                    )
                    if compute_exceptions:
                        segments = None
                        if segments_by_cell is not None:
                            segments = segments_by_cell.get(
                                (item_level, path_level, key)
                            )
                        mine_started = perf_counter()
                        mine_exceptions_weighted(
                            graph,
                            weighted,
                            min_support=min_support,
                            min_deviation=min_deviation,
                            segments=segments,
                            kernel=kernel,
                            index_cache=index_cache,
                        )
                        exception_seconds += perf_counter() - mine_started
                    cuboid.cells[key] = cell
                cube._cuboids[(item_level, path_level)] = cuboid
        if stats is not None:
            if compute_exceptions:
                stats.add_phase("exceptions", exception_seconds)
            stats.add_phase(
                "materialize", perf_counter() - started - exception_seconds
            )
        return cube

    def _group_records(self, item_level: ItemLevel) -> dict[CellKey, list[int]]:
        """Group record ids by their dims rolled up to *item_level*."""
        hierarchies = self.database.schema.dimensions
        groups: dict[CellKey, list[int]] = {}
        for record in self.database:
            key = tuple(
                hierarchy.ancestor_at_level(value, level)
                for hierarchy, value, level in zip(
                    hierarchies, record.dims, item_level
                )
            )
            groups.setdefault(key, []).append(record.record_id)
        return groups

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    @property
    def cuboids(self) -> tuple[Cuboid, ...]:
        """All materialised cuboids."""
        return tuple(self._cuboids.values())

    def cuboid(self, item_level: ItemLevel, path_level: PathLevel) -> Cuboid:
        """The cuboid ⟨item_level, path_level⟩, raising if absent."""
        try:
            return self._cuboids[(item_level, path_level)]
        except KeyError:
            raise CubeError(
                f"cuboid ⟨{item_level.levels!r}, ...⟩ is not materialised"
            ) from None

    def has_cuboid(self, item_level: ItemLevel, path_level: PathLevel) -> bool:
        """Whether the cuboid ⟨item_level, path_level⟩ was materialised."""
        return (item_level, path_level) in self._cuboids

    def cell(
        self, item_level: ItemLevel, key: CellKey, path_level: PathLevel
    ) -> Cell:
        """Direct cell lookup."""
        return self.cuboid(item_level, path_level).cell(key)

    def cells(self) -> Iterator[Cell]:
        """Every materialised cell across all cuboids."""
        for cuboid in self._cuboids.values():
            yield from cuboid

    def n_cells(self, include_redundant: bool = True) -> int:
        """Number of materialised cells."""
        return sum(
            1 for cell in self.cells() if include_redundant or not cell.redundant
        )

    # ------------------------------------------------------------------
    # redundancy-aware access
    # ------------------------------------------------------------------
    def parent_cells(self, cell: Cell) -> list[Cell]:
        """The cell's item-lattice parents at the same path level.

        One parent per dimension not already at ``*``: the cell whose key
        rolls that dimension up one hierarchy level (Definition 4.4).
        Parents whose cuboid or cell is not materialised are skipped.
        """
        hierarchies = self.database.schema.dimensions
        parents: list[Cell] = []
        for dim, level in enumerate(cell.item_level):
            if level == 0:
                continue
            raised = list(cell.item_level.levels)
            raised[dim] = level - 1
            parent_level = ItemLevel(raised)
            parent_key = tuple(
                hierarchies[i].ancestor_at_level(value, parent_level[i])
                for i, value in enumerate(cell.key)
            )
            cuboid = self._cuboids.get((parent_level, cell.path_level))
            if cuboid is not None and parent_key in cuboid:
                parents.append(cuboid.cell(parent_key))
        return parents

    def flowgraph_for(
        self, item_level: ItemLevel, key: CellKey, path_level: PathLevel
    ) -> FlowGraph:
        """The cell's flowgraph, inferring from ancestors when redundant.

        A redundant (pruned) cell behaves like its nearest non-redundant
        item-lattice ancestor — the inference rule of Section 4.3.
        """
        cell = self.cell(item_level, key, path_level)
        while cell.redundant:
            parents = [p for p in self.parent_cells(cell) if not p.redundant]
            if not parents:
                parents = self.parent_cells(cell)
            if not parents:
                break  # no ancestor to infer from: fall back to own graph
            cell = max(parents, key=lambda c: c.n_paths)
        return cell.flowgraph

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def compact(self) -> None:
        """Drop per-cell aggregated paths to shrink the materialised cube.

        Exceptions and distributions are unaffected; only re-mining with
        different (ε, δ) would need the paths again.
        """
        for cell in self.cells():
            cell.paths = ()

    def describe(self) -> dict[str, object]:
        """Summary statistics (cuboids, cells, redundancy) for reporting."""
        cells = list(self.cells())
        return {
            "cuboids": len(self._cuboids),
            "cells": len(cells),
            "redundant_cells": sum(1 for c in cells if c.redundant),
            "exceptions": sum(len(c.flowgraph.exceptions) for c in cells),
            "paths": len(self.database),
        }
