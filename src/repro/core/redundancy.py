"""Redundancy pruning — non-redundant flowcubes (Section 4.3, Def. 4.4).

A cell's flowgraph ``G`` is *redundant* when, for **every** item-lattice
parent cell ``p_i`` (same path level) with flowgraph ``G_i``, the similarity
``φ(G, G_i) > τ``: the cell behaves like all of its generalisations and can
be inferred from them, so materialising it adds nothing.

Pruning sweeps the item lattice from the most specific levels upward so a
cell is always compared against parents that themselves survived or were
marked — matching the paper's low-to-high traversal.  Cells are *marked*
(``cell.redundant = True``) rather than deleted, so inference
(:meth:`repro.core.flowcube.FlowCube.flowgraph_for`) and audit queries keep
working; :func:`drop_redundant` performs the physical compression.
"""

from __future__ import annotations

from repro.core.flowcube import Cell, FlowCube
from repro.core.similarity import SimilarityMetric, kl_similarity

__all__ = ["is_redundant", "prune_redundant", "drop_redundant"]


def is_redundant(
    cube: FlowCube,
    cell: Cell,
    threshold: float,
    metric: SimilarityMetric = kl_similarity,
) -> bool:
    """Definition 4.4 for a single cell.

    A cell with no materialised parents (the apex cuboid, or parents lost
    to the iceberg condition) is never redundant — there is nothing to
    infer it from.
    """
    parents = cube.parent_cells(cell)
    if not parents:
        return False
    return all(
        metric(cell.flowgraph, parent.flowgraph) > threshold for parent in parents
    )


def prune_redundant(
    cube: FlowCube,
    threshold: float = 0.95,
    metric: SimilarityMetric = kl_similarity,
) -> int:
    """Mark every redundant cell in *cube*; returns how many were marked.

    Args:
        cube: A materialised flowcube.
        threshold: τ — similarity above which a cell matches a parent.
        metric: φ — any :data:`~repro.core.similarity.SimilarityMetric`.

    Cells are visited most-specific-first within each path level, so a
    redundant chain (2% milk ≈ milk ≈ dairy) collapses all the way up to
    the most general member that still differs from *its* parents.
    """
    marked = 0
    cells = sorted(
        cube.cells(), key=lambda c: -sum(c.item_level.levels)
    )
    for cell in cells:
        if cell.redundant:
            continue
        if is_redundant(cube, cell, threshold, metric):
            cell.redundant = True
            marked += 1
    return marked


def drop_redundant(cube: FlowCube) -> int:
    """Physically remove marked cells from their cuboids; returns the count.

    After dropping, :meth:`~repro.core.flowcube.FlowCube.flowgraph_for`
    can no longer serve the removed coordinates — run it only on cubes
    whose consumers query surviving cells (e.g. for space measurements).
    """
    removed = 0
    for cuboid in cube.cuboids:
        doomed = [key for key, cell in cuboid.cells.items() if cell.redundant]
        for key in doomed:
            del cuboid.cells[key]
            removed += 1
    return removed
