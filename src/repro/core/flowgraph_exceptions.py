"""Flowgraph exceptions (Section 3, Definition 3.1's ``X`` component).

An *exception* records that, conditioned on a frequent path prefix (a set of
``(location prefix, duration)`` constraints with support ≥ δ), a node's
transition or duration distribution deviates by more than ε from its
unconditional distribution.  The paper's two motivating examples:

* *transition*: "the truck→warehouse probability is 33% in general but 50%
  when the item stayed only 1 hour at the truck" — the condition includes
  the node's own duration;
* *duration*: "items spend 2 hours at the distribution center with
  probability 80%, but 100% if they spent 5 hours at the factory" — the
  condition constrains an ancestor stage.

Exceptions are a *holistic* measure (Lemma 4.3): they require the frequent
path segments of the cell.  :func:`mine_exceptions` accepts those segments
from the Shared algorithm's output, or mines them locally with the built-in
level-wise miner (:func:`mine_frequent_segments`) when none are supplied.

Two interchangeable kernels implement the pass (``kernel=`` on the
``mine_exceptions*`` entry points): ``"bitmap"`` (the default) indexes the
cell once into big-int tid-sets and answers every support and conditional
count with an AND + weighted popcount (:mod:`repro.perf.exception_kernel`);
``"scan"`` is the direct per-path implementation in this module.  Both
produce identical exception lists — same supports, distributions, and
canonical order — enforced by the parity property tests.
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.core.aggregation import (
    DURATION_ANY_LABEL,
    AggregatedPath,
    WeightedPath,
    total_weight,
)
from repro.core.flowgraph import FlowGraph

__all__ = [
    "EXCEPTION_KERNELS",
    "SegmentConstraint",
    "Segment",
    "FlowException",
    "resolve_min_support",
    "exception_sort_key",
    "mine_frequent_segments",
    "mine_frequent_segments_weighted",
    "mine_exceptions",
    "mine_exceptions_weighted",
    "serial_exception_pass",
]

#: Interchangeable exception-pass implementations; first entry is the default.
EXCEPTION_KERNELS = ("bitmap", "scan")

#: One constraint: the stage at this location prefix had this duration label.
SegmentConstraint = tuple[tuple[str, ...], str]

#: A path segment: constraints with nested prefixes, shortest first.
Segment = tuple[SegmentConstraint, ...]


@dataclass(frozen=True)
class FlowException:
    """A recorded deviation from a node's unconditional distribution.

    Attributes:
        node_prefix: The node whose distribution deviates.
        condition: The frequent segment being conditioned on.
        kind: ``"transition"`` or ``"duration"``.
        support: Number of cell paths satisfying the condition (and, for
            duration exceptions, reaching the node).
        baseline: The node's unconditional distribution.
        conditional: The distribution under the condition.
        deviation: Largest absolute probability change across outcomes.
    """

    node_prefix: tuple[str, ...]
    condition: Segment
    kind: str
    support: int
    baseline: dict[str, float]
    conditional: dict[str, float]
    deviation: float

    def __str__(self) -> str:
        condition = ", ".join(
            f"({'→'.join(p)}={d})" for p, d in self.condition
        )
        return (
            f"{self.kind} exception at {'→'.join(self.node_prefix)} "
            f"given [{condition}] (Δ={self.deviation:.2f}, n={self.support})"
        )


def resolve_min_support(min_support: float, n_paths: int) -> int:
    """Turn a δ given as a fraction (<1) or absolute count into a count.

    A fractional δ of 0.01 over 250 paths resolves to ``ceil(2.5) = 3``;
    absolute values pass through (floored at 1).
    """
    if min_support <= 0:
        return 1
    if min_support < 1:
        return max(1, math.ceil(min_support * n_paths))
    return int(min_support)


def _stage_items(path: AggregatedPath) -> list[SegmentConstraint]:
    """The exact-duration stage constraints a path satisfies."""
    items: list[SegmentConstraint] = []
    prefix: tuple[str, ...] = ()
    for location, duration in path:
        prefix = prefix + (location,)
        items.append((prefix, duration))
    return items


def _satisfies(path: AggregatedPath, segment: Segment) -> bool:
    """Whether *path* meets every constraint of *segment*."""
    locations = tuple(location for location, _ in path)
    return _satisfies_locations(path, locations, segment)


def _satisfies_locations(
    path: AggregatedPath, locations: tuple[str, ...], segment: Segment
) -> bool:
    """:func:`_satisfies` with the path's location tuple precomputed."""
    n = len(path)
    for constraint_prefix, duration in segment:
        index = len(constraint_prefix) - 1
        if index >= n:
            return False
        if locations[: index + 1] != constraint_prefix:
            return False
        if duration != DURATION_ANY_LABEL and path[index][1] != duration:
            return False
    return True


def mine_frequent_segments(
    paths: Sequence[AggregatedPath],
    min_support: float,
    max_length: int = 4,
) -> dict[Segment, int]:
    """Level-wise mining of frequent path segments within one cell.

    Items are exact-duration stage constraints; candidate itemsets only ever
    join constraints with *nested* prefixes, because the stages of a single
    path form a chain of prefixes — the unlinkable-stage pruning of
    Section 5 specialised to one cell.

    Args:
        paths: The cell's aggregated paths.
        min_support: δ — fraction of the cell (<1) or absolute count.
        max_length: Longest segment to mine (bounds the level-wise loop).

    Returns:
        Mapping segment → absolute support, for all segments with
        support ≥ δ.
    """
    return mine_frequent_segments_weighted(
        [(p, 1) for p in paths], min_support, max_length=max_length
    )


def mine_frequent_segments_weighted(
    weighted: Sequence[WeightedPath],
    min_support: float,
    max_length: int = 4,
) -> dict[Segment, int]:
    """:func:`mine_frequent_segments` over ``(path, weight)`` pairs.

    Each distinct path is examined once and contributes its weight to every
    support count — exactly the supports of the expanded multiset, at the
    cost of the *deduplicated* path set (the form cells store after the
    weighted-dedupe of PR 3).
    """
    threshold = resolve_min_support(min_support, total_weight(weighted))
    transactions = [
        (frozenset(_stage_items(path)), weight) for path, weight in weighted
    ]

    counts: Counter[SegmentConstraint] = Counter()
    for transaction, weight in transactions:
        for item in transaction:
            counts[item] += weight
    frequent: dict[Segment, int] = {
        (item,): n for item, n in counts.items() if n >= threshold
    }
    result = dict(frequent)
    # Each candidate's item frozenset is its parent's set plus the appended
    # constraint; carrying the sets level to level replaces the per-level
    # frozenset(c) rebuild with one set union per candidate.
    item_sets: dict[Segment, frozenset[SegmentConstraint]] = {
        segment: frozenset(segment) for segment in frequent
    }

    length = 1
    while frequent and length < max_length:
        candidates = _join_segments(list(frequent))
        if not candidates:
            break
        support: Counter[Segment] = Counter()
        candidate_sets = [
            (c, item_sets[c[:-1]] | {c[-1]}) for c in candidates
        ]
        for transaction, weight in transactions:
            for candidate, item_set in candidate_sets:
                if item_set <= transaction:
                    support[candidate] += weight
        frequent = {c: n for c, n in support.items() if n >= threshold}
        result.update(frequent)
        item_sets = {c: s for c, s in candidate_sets if c in frequent}
        length += 1
    return result


def _join_segments(segments: list[Segment]) -> list[Segment]:
    """Apriori join of equal-length segments sharing all but the last item."""
    by_prefix: dict[Segment, list[SegmentConstraint]] = {}
    for segment in segments:
        by_prefix.setdefault(segment[:-1], []).append(segment[-1])
    out: list[Segment] = []
    seen: set[Segment] = set()
    frequent_set = set(segments)
    for head, tails in by_prefix.items():
        tails.sort(key=lambda c: (len(c[0]), c[0], c[1]))
        n_head = len(head)
        for i, a in enumerate(tails):
            for b in tails[i + 1 :]:
                if a[0] == b[0]:
                    continue  # same stage, two durations: unsatisfiable
                if not _nested(a[0], b[0]):
                    continue  # unlinkable stages
                # Prefixes within a candidate are nested and pairwise
                # distinct, so their lengths are strictly distinct, and
                # a segment's canonical (len, duration) order is its
                # length order alone.  Every head item sorts below its
                # segment's last item, and the tails are length-sorted,
                # so head + (a, b) IS the canonical order — no sort.
                candidate = head + (a, b)
                if candidate in seen:
                    continue
                seen.add(candidate)
                # Dropping a gives head + (b,) and dropping b gives
                # head + (a,) — the two joined parents, frequent by
                # construction; only the head drops need checking.
                if all(
                    _drop(candidate, j) in frequent_set
                    for j in range(n_head)
                ):
                    out.append(candidate)
    return out


def _nested(a: tuple[str, ...], b: tuple[str, ...]) -> bool:
    shorter, longer = (a, b) if len(a) <= len(b) else (b, a)
    return longer[: len(shorter)] == shorter


def _drop(segment: Segment, index: int) -> Segment:
    return segment[:index] + segment[index + 1 :]


def exception_sort_key(exception: FlowException):
    """Canonical total order over one cell's exceptions.

    ``(node_prefix, kind, condition)`` is unique within a mining run (one
    transition exception per segment, one duration exception per child
    node per segment), so sorting by it gives every engine — direct,
    roll-up, out-of-core — the same exception list regardless of the order
    in which segments were enumerated.  Serialisation relies on this for
    byte-identical cubes across engines.
    """
    return (exception.node_prefix, exception.kind, exception.condition)


def mine_exceptions(
    graph: FlowGraph,
    paths: Sequence[AggregatedPath],
    min_support: float,
    min_deviation: float,
    segments: Iterable[Segment] | None = None,
    max_segment_length: int = 4,
    kernel: str = "bitmap",
    index_cache: dict | None = None,
) -> list[FlowException]:
    """Find all (ε, δ) exceptions of *graph* over the cell's *paths*.

    Args:
        graph: The cell's flowgraph (distributions already counted).
        paths: The aggregated paths the graph was built from.
        min_support: δ — fraction (<1) or absolute count.
        min_deviation: ε — minimum absolute probability change to record.
        segments: Frequent segments from a shared mining run; mined locally
            when omitted.
        max_segment_length: Bound for the local miner.
        kernel: ``"bitmap"`` (AND+popcount over tid-sets, the default) or
            ``"scan"`` (per-path re-scan) — identical results.
        index_cache: Optional dict shared across calls so cells with the
            same path multiset reuse one bitmap index (bitmap kernel only).

    The exceptions are also attached to ``graph.exceptions``, in the
    canonical :func:`exception_sort_key` order.
    """
    return mine_exceptions_weighted(
        graph,
        [(p, 1) for p in paths],
        min_support,
        min_deviation,
        segments=segments,
        max_segment_length=max_segment_length,
        kernel=kernel,
        index_cache=index_cache,
    )


def mine_exceptions_weighted(
    graph: FlowGraph,
    weighted: Sequence[WeightedPath],
    min_support: float,
    min_deviation: float,
    segments: Iterable[Segment] | None = None,
    max_segment_length: int = 4,
    kernel: str = "bitmap",
    index_cache: dict | None = None,
) -> list[FlowException]:
    """:func:`mine_exceptions` over the cell's ``(path, weight)`` pairs.

    Every support and every conditional count weighs each distinct path by
    its multiplicity, so the exceptions — supports, distributions, and
    deviations — are exactly those of the expanded path multiset while the
    holistic pass touches each distinct path once.
    """
    if kernel not in EXCEPTION_KERNELS:
        raise ValueError(
            f"unknown exception kernel {kernel!r}; expected one of "
            f"{EXCEPTION_KERNELS}"
        )
    if kernel == "bitmap":
        from repro.perf.exception_kernel import mine_exceptions_bitmap

        return mine_exceptions_bitmap(
            graph,
            weighted,
            min_support,
            min_deviation,
            segments=segments,
            max_segment_length=max_segment_length,
            index_cache=index_cache,
        )
    threshold = resolve_min_support(min_support, total_weight(weighted))
    if segments is None:
        segments = mine_frequent_segments_weighted(
            weighted, min_support, max_length=max_segment_length
        )
    prepared = [
        (path, weight, tuple(location for location, _ in path))
        for path, weight in weighted
    ]
    exceptions: list[FlowException] = []
    for segment in segments:
        if not segment:
            continue
        ordered = tuple(sorted(segment, key=lambda c: len(c[0])))
        deepest_prefix = ordered[-1][0]
        if not graph.has_node(deepest_prefix):
            continue
        satisfying = [
            (path, weight)
            for path, weight, locations in prepared
            if _satisfies_locations(path, locations, ordered)
        ]
        if total_weight(satisfying) < threshold:
            continue
        exceptions.extend(
            _transition_exception(graph, ordered, deepest_prefix, satisfying,
                                  min_deviation)
        )
        exceptions.extend(
            _duration_exceptions(graph, ordered, deepest_prefix, satisfying,
                                 threshold, min_deviation)
        )
    exceptions.sort(key=exception_sort_key)
    graph.exceptions = exceptions
    return exceptions


def _transition_exception(
    graph: FlowGraph,
    segment: Segment,
    node_prefix: tuple[str, ...],
    satisfying: list[WeightedPath],
    min_deviation: float,
) -> list[FlowException]:
    """Conditional next-location distribution at the deepest node."""
    from repro.core.flowgraph import TERMINATE

    node = graph.node(node_prefix)
    baseline = node.transition_distribution()
    counts: Counter[str] = Counter()
    depth = len(node_prefix)
    for path, weight in satisfying:
        if len(path) > depth:
            counts[path[depth][0]] += weight
        else:
            counts[TERMINATE] += weight
    conditional = _normalise(counts)
    deviation = _max_deviation(baseline, conditional)
    if deviation > min_deviation:
        return [
            FlowException(
                node_prefix=node_prefix,
                condition=segment,
                kind="transition",
                support=total_weight(satisfying),
                baseline=baseline,
                conditional=conditional,
                deviation=deviation,
            )
        ]
    return []


def _duration_exceptions(
    graph: FlowGraph,
    segment: Segment,
    node_prefix: tuple[str, ...],
    satisfying: list[WeightedPath],
    threshold: int,
    min_deviation: float,
) -> list[FlowException]:
    """Conditional duration distributions at the children of the node."""
    node = graph.node(node_prefix)
    out: list[FlowException] = []
    depth = len(node_prefix)
    for location, child in node.children.items():
        counts: Counter[str] = Counter()
        for path, weight in satisfying:
            if len(path) > depth and path[depth][0] == location:
                counts[path[depth][1]] += weight
        support = sum(counts.values())
        if support < threshold:
            continue
        baseline = child.duration_distribution()
        conditional = _normalise(counts)
        deviation = _max_deviation(baseline, conditional)
        if deviation > min_deviation:
            out.append(
                FlowException(
                    node_prefix=child.prefix,
                    condition=segment,
                    kind="duration",
                    support=support,
                    baseline=baseline,
                    conditional=conditional,
                    deviation=deviation,
                )
            )
    return out


def _normalise(counts: Counter[str]) -> dict[str, float]:
    total = sum(counts.values())
    if total == 0:
        return {}
    return {key: n / total for key, n in counts.items()}


def _max_deviation(baseline: dict[str, float], conditional: dict[str, float]) -> float:
    keys = set(baseline) | set(conditional)
    if not keys:
        return 0.0
    return max(
        abs(baseline.get(k, 0.0) - conditional.get(k, 0.0)) for k in keys
    )


def serial_exception_pass(
    min_support: float, min_deviation: float, kernel: str = "bitmap"
):
    """An in-process runner for cube builders' per-cell exception phase.

    Returns a callable ``run(batch)`` where *batch* is a list of
    ``(graph, weighted, segments)`` triples; it mines each cell in place
    (attaching ``graph.exceptions``) and accumulates wall time spent in
    ``run.seconds`` for the builders' ``"exceptions"`` phase bucket.  One
    bitmap index cache spans the runner's lifetime, so lattice cells that
    roll up to identical path multisets share an index across cuboids.

    The parallel counterpart (fanning a batch out over the ``jobs=N``
    worker pools) lives in :mod:`repro.store.builder`.
    """
    from time import perf_counter

    index_cache: dict = {}

    def run(batch) -> None:
        started = perf_counter()
        for graph, weighted, segments in batch:
            mine_exceptions_weighted(
                graph,
                weighted,
                min_support,
                min_deviation,
                segments=segments,
                kernel=kernel,
                index_cache=index_cache,
            )
        run.seconds += perf_counter() - started

    run.seconds = 0.0
    return run
