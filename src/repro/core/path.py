"""Paths and path-database records (Section 2, Table 1).

A *path* is the ordered sequence of stages one item traversed.  A *path
record* couples a path with the item's path-independent dimension values
(product, brand, ... — values that do not change as the item moves).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass

from repro.core.stage import Stage
from repro.errors import PathDatabaseError

__all__ = ["Path", "PathRecord"]


@dataclass(frozen=True)
class Path:
    """An immutable sequence of :class:`~repro.core.stage.Stage` objects."""

    stages: tuple[Stage, ...]

    def __init__(self, stages: Iterable[Stage | tuple[str, float]]) -> None:
        normalised = tuple(
            s if isinstance(s, Stage) else Stage(s[0], s[1]) for s in stages
        )
        object.__setattr__(self, "stages", normalised)

    def __len__(self) -> int:
        return len(self.stages)

    def __iter__(self) -> Iterator[Stage]:
        return iter(self.stages)

    def __getitem__(self, index: int) -> Stage:
        return self.stages[index]

    def __str__(self) -> str:
        return "".join(str(s) for s in self.stages)

    @property
    def locations(self) -> tuple[str, ...]:
        """The location sequence of the path, in travel order."""
        return tuple(s.location for s in self.stages)

    @property
    def durations(self) -> tuple[float, ...]:
        """The duration of each stage, aligned with :attr:`locations`."""
        return tuple(s.duration for s in self.stages)

    @property
    def total_duration(self) -> float:
        """End-to-end lead time: the sum of all stage durations."""
        return sum(s.duration for s in self.stages)

    def prefix(self, length: int) -> "Path":
        """The first *length* stages as a new path."""
        return Path(self.stages[:length])

    def location_prefix(self, length: int) -> tuple[str, ...]:
        """The first *length* locations (used by stage encodings)."""
        return self.locations[:length]


@dataclass(frozen=True)
class PathRecord:
    """One row of a path database: dimensions + the traversed path.

    Attributes:
        record_id: Stable integer id (the ``id`` column of Table 1).
        dims: Path-independent dimension values, positionally aligned with
            the database schema (e.g. ``("tennis", "nike")``).
        path: The traversed :class:`Path`.
    """

    record_id: int
    dims: tuple[str, ...]
    path: Path

    def __init__(
        self,
        record_id: int,
        dims: Sequence[str],
        path: Path | Iterable[Stage | tuple[str, float]],
    ) -> None:
        object.__setattr__(self, "record_id", int(record_id))
        object.__setattr__(self, "dims", tuple(dims))
        object.__setattr__(
            self, "path", path if isinstance(path, Path) else Path(path)
        )
        if not self.path.stages:
            raise PathDatabaseError(f"record {record_id} has an empty path")

    def dim(self, index: int) -> str:
        """Value of the *index*-th path-independent dimension."""
        try:
            return self.dims[index]
        except IndexError:
            raise PathDatabaseError(
                f"record {self.record_id} has {len(self.dims)} dimensions, "
                f"index {index} requested"
            ) from None

    def __str__(self) -> str:
        dims = ", ".join(self.dims)
        return f"<{dims} : {self.path}>"
