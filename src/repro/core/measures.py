"""Algebraic and holistic measure machinery (Section 4.2).

Lemma 4.2: the duration and transition distributions of a flowgraph are
*algebraic* — the flowgraph of a union of disjoint path sets is obtained by
summing a bounded number of per-node counts from each part.
:func:`merge_flowgraphs` implements exactly that, which lets a flowcube
derive high-item-level flowgraphs from already-materialised low-level ones
without another pass over the path database.

Lemma 4.3: the exception set is *holistic* — it cannot be merged upward from
per-part summaries, because frequent-in-the-union segments may be
infrequent in every part.  :func:`exceptions_are_mergeable` demonstrates the
failure mode constructively (it is used by the test-suite to document the
lemma); real exception computation goes through the shared mining pass.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.core.aggregation import AggregatedPath
from repro.core.flowgraph import FlowGraph
from repro.core.flowgraph_exceptions import mine_frequent_segments

__all__ = ["merge_flowgraphs", "exceptions_are_mergeable"]


def merge_flowgraphs(graphs: Iterable[FlowGraph]) -> FlowGraph:
    """Merge flowgraphs over disjoint path sets by summing node counts.

    The merged graph's distributions equal those of a flowgraph built
    directly over the union of the underlying paths (Lemma 4.2).  Exceptions
    are *not* merged — they are holistic (Lemma 4.3) and must be re-mined.

    Returns:
        A new :class:`FlowGraph`; inputs are left untouched.
    """
    merged = FlowGraph()
    for graph in graphs:
        merged.n_paths += graph.n_paths
        for node in graph.nodes():
            target = merged._index.get(node.prefix)  # noqa: SLF001 - same class
            if target is None:
                target = _clone_structure(merged, node.prefix)
            target.count += node.count
            target.duration_counts.update(node.duration_counts)
            target.transition_counts.update(node.transition_counts)
    return merged


def _clone_structure(graph: FlowGraph, prefix: tuple[str, ...]):
    """Create (and index) the node chain for *prefix* inside *graph*."""
    from repro.core.flowgraph import FlowGraphNode

    node = None
    for end in range(1, len(prefix) + 1):
        partial = prefix[:end]
        existing = graph._index.get(partial)  # noqa: SLF001 - same class
        if existing is None:
            existing = FlowGraphNode(partial)
            graph._index[partial] = existing  # noqa: SLF001
            if end == 1:
                graph._roots[partial[0]] = existing  # noqa: SLF001
            else:
                graph._index[partial[:-1]].children[partial[-1]] = existing  # noqa: SLF001
        node = existing
    assert node is not None
    return node


def exceptions_are_mergeable(
    parts: Sequence[Sequence[AggregatedPath]], min_support: float
) -> bool:
    """Check whether per-part frequent segments suffice for the union.

    Returns ``True`` only when every segment frequent in the union is
    frequent in at least one part — in which case part-local mining would
    have surfaced it.  Lemma 4.3 says this fails in general; the property
    tests use this function to exhibit concrete counterexamples.
    """
    union: list[AggregatedPath] = [path for part in parts for path in part]
    union_frequent = set(mine_frequent_segments(union, min_support))
    part_frequent: set = set()
    for part in parts:
        if part:
            part_frequent |= set(mine_frequent_segments(list(part), min_support))
    return union_frequent <= part_frequent
