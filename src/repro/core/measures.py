"""Algebraic and holistic measure machinery (Section 4.2).

Lemma 4.2: the duration and transition distributions of a flowgraph are
*algebraic* — the flowgraph of a union of disjoint path sets is obtained by
summing a bounded number of per-node counts from each part.
:func:`merge_flowgraphs` implements exactly that, which lets a flowcube
derive high-item-level flowgraphs from already-materialised low-level ones
without another pass over the path database.

Lemma 4.3: the exception set is *holistic* — it cannot be merged upward from
per-part summaries, because frequent-in-the-union segments may be
infrequent in every part.  :func:`exceptions_are_mergeable` demonstrates the
failure mode constructively (it is used by the test-suite to document the
lemma); real exception computation goes through the shared mining pass.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.core.aggregation import AggregatedPath
from repro.core.flowgraph import FlowGraph
from repro.core.flowgraph_exceptions import mine_frequent_segments

__all__ = ["merge_flowgraphs", "exceptions_are_mergeable"]


def merge_flowgraphs(graphs: Iterable[FlowGraph]) -> FlowGraph:
    """Merge flowgraphs over disjoint path sets by summing node counts.

    The merged graph's distributions equal those of a flowgraph built
    directly over the union of the underlying paths (Lemma 4.2).  Exceptions
    are *not* merged — they are holistic (Lemma 4.3) and must be re-mined.

    Thin functional wrapper over :meth:`FlowGraph.merge`.

    Returns:
        A new :class:`FlowGraph`; inputs are left untouched.
    """
    return FlowGraph().merge(graphs)


def exceptions_are_mergeable(
    parts: Sequence[Sequence[AggregatedPath]], min_support: float
) -> bool:
    """Check whether per-part frequent segments suffice for the union.

    Returns ``True`` only when every segment frequent in the union is
    frequent in at least one part — in which case part-local mining would
    have surfaced it.  Lemma 4.3 says this fails in general; the property
    tests use this function to exhibit concrete counterexamples.
    """
    union: list[AggregatedPath] = [path for part in parts for path in part]
    union_frequent = set(mine_frequent_segments(union, min_support))
    part_frequent: set = set()
    for part in parts:
        if part:
            part_frequent |= set(mine_frequent_segments(list(part), min_support))
    return union_frequent <= part_frequent
