"""Path stages and raw RFID readings (Section 2 of the paper).

An RFID deployment emits a stream of ``(EPC, location, time)`` readings.
After cleaning, the readings of one item collapse into *stages* of the form
``(location, time_in, time_out)``; for flow analysis absolute time is dropped
and each stage becomes a ``(location, duration)`` pair.  This module defines
those three representations.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RawReading", "StageRecord", "Stage"]


@dataclass(frozen=True, order=True)
class RawReading:
    """One raw tag read: *epc* seen at *location* at absolute *time*.

    Ordering is by ``(epc, time, location)`` so a sorted stream groups the
    readings of each item chronologically, which is what the cleaning step
    consumes.
    """

    epc: str
    time: float
    location: str


@dataclass(frozen=True)
class StageRecord:
    """A cleaned stay: the item was at *location* from *time_in* to *time_out*.

    Produced by :mod:`repro.warehouse.cleaning`; the flow model proper only
    uses the relative-duration view (:class:`Stage`).
    """

    location: str
    time_in: float
    time_out: float

    def __post_init__(self) -> None:
        if self.time_out < self.time_in:
            raise ValueError(
                f"stage at {self.location!r} ends before it starts "
                f"({self.time_out} < {self.time_in})"
            )

    @property
    def duration(self) -> float:
        """Length of the stay in the stream's time unit."""
        return self.time_out - self.time_in

    def to_stage(self) -> "Stage":
        """Drop absolute time, keeping ``(location, duration)``."""
        return Stage(self.location, self.duration)


@dataclass(frozen=True)
class Stage:
    """A ``(location, duration)`` pair — one step of a path.

    ``duration`` is whatever unit the path database uses (the paper's
    examples use hours).  Durations may be discretised to coarser values by
    :mod:`repro.core.aggregation`.
    """

    location: str
    duration: float

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"negative duration {self.duration} at {self.location!r}")

    def __str__(self) -> str:
        dur = int(self.duration) if float(self.duration).is_integer() else self.duration
        return f"({self.location}, {dur})"
