"""Path aggregation to a path abstraction level (Section 4.1).

Aggregating a path to level ``(⟨v1...vk⟩, tl)`` happens in two steps:

1. each stage's location rolls up to its covering view concept and its
   duration discretises to the duration level, and
2. consecutive stages whose locations aggregated to the same concept merge
   into one stage, with a merged duration (by default the sum of the parts,
   as the paper suggests; any reducer can be plugged in).

Aggregated stages carry *duration labels* — strings — rather than floats,
because at the ``*`` duration level the value is the symbolic
:data:`DURATION_ANY_LABEL` and flowgraph nodes hold multinomial
distributions over these labels.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator, Sequence

from repro.core.lattice import DURATION_ANY, PathLevel
from repro.core.path import Path
from repro.core.stage import Stage

__all__ = [
    "DURATION_ANY_LABEL",
    "AggregatedStage",
    "AggregatedPath",
    "WeightedPath",
    "WeightedPaths",
    "default_discretiser",
    "sum_merge",
    "max_merge",
    "aggregate_path",
    "aggregate_locations",
    "weight_paths",
    "expand_weighted",
    "total_weight",
]

#: Label of the "any duration" (``*``) level.
DURATION_ANY_LABEL = "*"

#: One aggregated stage: ``(location concept, duration label)``.
AggregatedStage = tuple[str, str]

#: An aggregated path: a tuple of aggregated stages.
AggregatedPath = tuple[AggregatedStage, ...]

#: A deduplicated aggregated path with its multiplicity in the cell.
WeightedPath = tuple[AggregatedPath, int]

#: A cell's path multiset in weighted form: each distinct aggregated path
#: once, in first-seen order, with how many records aggregated to it.
WeightedPaths = tuple[WeightedPath, ...]

#: Signature of a duration discretiser: numeric duration -> label.
Discretiser = Callable[[float], str]

#: Signature of a duration merger for collapsed consecutive stages.
Merger = Callable[[Sequence[float]], float]


def default_discretiser(duration: float) -> str:
    """Format a numeric duration as its integer-if-possible label."""
    return str(int(duration)) if float(duration).is_integer() else str(duration)


def sum_merge(durations: Sequence[float]) -> float:
    """Merged duration = sum of the merged stages (the paper's default)."""
    return float(sum(durations))


def max_merge(durations: Sequence[float]) -> float:
    """Merged duration = longest individual stay (an alternative reducer)."""
    return float(max(durations))


def aggregate_path(
    path: Path,
    level: PathLevel,
    discretiser: Discretiser = default_discretiser,
    merge: Merger = sum_merge,
) -> AggregatedPath:
    """Aggregate *path* to the path abstraction *level*.

    Args:
        path: The concrete path from the database.
        level: Target :class:`~repro.core.lattice.PathLevel`.
        discretiser: Maps a (merged) numeric duration to a label when the
            duration level keeps values.
        merge: Combines the numeric durations of merged consecutive stages
            *before* discretisation.

    Returns:
        The aggregated path, e.g. Figure 1's transportation view
        ``(("dist center", "2"), ("truck", "1"), ("store", "5"))``.
    """
    rolled: list[tuple[str, float]] = [
        (level.view.aggregate(stage.location), stage.duration) for stage in path
    ]
    merged: list[tuple[str, list[float]]] = []
    for location, duration in rolled:
        if merged and merged[-1][0] == location:
            merged[-1][1].append(duration)
        else:
            merged.append((location, [duration]))
    if level.duration_level == DURATION_ANY:
        return tuple((location, DURATION_ANY_LABEL) for location, _ in merged)
    return tuple(
        (location, discretiser(merge(durations))) for location, durations in merged
    )


def aggregate_locations(path: Path, level: PathLevel) -> tuple[str, ...]:
    """Just the merged location sequence of the aggregated path."""
    return tuple(location for location, _ in aggregate_path(path, level))


def weight_paths(paths: Iterable[AggregatedPath]) -> WeightedPaths:
    """Deduplicate *paths* into ``(path, weight)`` pairs, first-seen order.

    The weighted form is the cell representation used by
    :class:`~repro.core.flowcube.Cell`: identical aggregated paths — the
    common case once stages roll up — collapse into one entry whose weight
    is their multiplicity, so the flowgraph and the exception miner fold
    each distinct path once.
    """
    counts: dict[AggregatedPath, int] = {}
    for path in paths:
        counts[path] = counts.get(path, 0) + 1
    return tuple(counts.items())


def expand_weighted(weighted: Iterable[WeightedPath]) -> Iterator[AggregatedPath]:
    """Inverse of :func:`weight_paths`: yield each path ``weight`` times."""
    for path, weight in weighted:
        for _ in range(weight):
            yield path


def total_weight(weighted: Iterable[WeightedPath]) -> int:
    """Number of underlying records in a weighted path collection."""
    return sum(weight for _, weight in weighted)
