"""Concept hierarchies (Section 4.1 of the paper).

A *concept hierarchy* is a tree whose nodes are concepts and whose edges are
is-a relationships.  The most general concept ``*`` sits at the apex (level
0); more specific concepts live at deeper levels.  Every dimension of the
flowcube — path-independent item dimensions such as *product* or *brand*, the
stage *location* dimension, and the stage *duration* dimension — carries one.

The class supports the operations the rest of the library needs:

* ``level_of`` / ``ancestor_at_level`` — roll a concept up the tree,
* ``parent`` / ``children`` / ``ancestors`` — tree navigation,
* ``code_of`` / ``concept_for_code`` — the digit-string encoding of Section 5
  ("jacket" → ``"112"``: dimension digit, then one digit per tree level),
* ``is_ancestor`` — the pruning tests of Section 5 need fast subsumption.

Hierarchies are immutable after construction; building happens through
:meth:`ConceptHierarchy.from_edges` or :meth:`ConceptHierarchy.from_nested`.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping, Sequence
from dataclasses import dataclass

from repro.errors import HierarchyError, LevelError, UnknownConceptError

__all__ = ["ANY", "ConceptHierarchy", "HierarchyNode"]

#: Name of the apex concept present in every hierarchy ("any value").
ANY = "*"


@dataclass(frozen=True)
class HierarchyNode:
    """One concept in a hierarchy.

    Attributes:
        name: Concept name, unique within its hierarchy.
        level: Depth in the tree; the apex ``*`` is level 0.
        parent: Name of the parent concept, or ``None`` for the apex.
        children: Names of the child concepts, in insertion order.
        code: Digit-path from the apex (empty for the apex itself).  The
            *i*-th character is the sibling index (1-based) chosen at depth
            *i*; this is exactly the per-dimension part of the Section 5
            encoding where "jacket" becomes ``12`` under
            clothing→outerwear→jacket with the category digit omitted.
    """

    name: str
    level: int
    parent: str | None
    children: tuple[str, ...]
    code: str


class ConceptHierarchy:
    """An immutable is-a tree over the values of one dimension.

    Args:
        name: Dimension name this hierarchy describes (``"product"`` ...).
        nodes: Mapping concept name → :class:`HierarchyNode`.  Must contain
            the apex ``*`` at level 0 and be a single connected tree.

    Most callers should use the :meth:`from_edges` or :meth:`from_nested`
    constructors rather than building the node mapping by hand.
    """

    def __init__(self, name: str, nodes: Mapping[str, HierarchyNode]) -> None:
        if ANY not in nodes:
            raise HierarchyError(f"hierarchy {name!r} is missing the apex {ANY!r}")
        self.name = name
        self._nodes: dict[str, HierarchyNode] = dict(nodes)
        self._by_code: dict[str, str] = {n.code: n.name for n in self._nodes.values()}
        self._depth = max(n.level for n in self._nodes.values())
        self._leaves = tuple(
            n.name for n in self._nodes.values() if not n.children and n.name != ANY
        )
        self._validate()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls, name: str, edges: Iterable[tuple[str, str]]
    ) -> "ConceptHierarchy":
        """Build a hierarchy from ``(parent, child)`` pairs.

        The apex ``*`` is added automatically as the parent of every node
        that never appears as a child.  Sibling order follows first mention.

        Raises:
            HierarchyError: on cycles, duplicate parents, or empty input.
        """
        parent_of: dict[str, str] = {}
        children_of: dict[str, list[str]] = {ANY: []}
        for parent, child in edges:
            if child == ANY:
                raise HierarchyError(f"{ANY!r} cannot be a child concept")
            if child in parent_of and parent_of[child] != parent:
                raise HierarchyError(
                    f"concept {child!r} has two parents: "
                    f"{parent_of[child]!r} and {parent!r}"
                )
            parent_of[child] = parent
            children_of.setdefault(parent, [])
            if child not in children_of[parent]:
                children_of[parent].append(child)
            children_of.setdefault(child, [])
        if not parent_of:
            raise HierarchyError(f"hierarchy {name!r} has no edges")
        roots = [c for c in children_of if c != ANY and c not in parent_of]
        for root in roots:
            parent_of[root] = ANY
            children_of[ANY].append(root)
        return cls._from_tree(name, parent_of, children_of)

    @classmethod
    def from_nested(cls, name: str, tree: Mapping[str, object]) -> "ConceptHierarchy":
        """Build a hierarchy from a nested mapping.

        Example::

            ConceptHierarchy.from_nested("location", {
                "transportation": {"dist center": {}, "truck": {}},
                "store": {"shelf": {}, "checkout": {}},
            })

        Leaf concepts are written as empty mappings (or any non-mapping).
        """
        edges: list[tuple[str, str]] = []

        def walk(parent: str, subtree: Mapping[str, object]) -> None:
            for child, grandchildren in subtree.items():
                edges.append((parent, child))
                if isinstance(grandchildren, Mapping):
                    walk(child, grandchildren)

        walk(ANY, tree)
        return cls.from_edges(name, edges)

    @classmethod
    def flat(cls, name: str, values: Sequence[str]) -> "ConceptHierarchy":
        """A two-level hierarchy: ``*`` over the given leaf values."""
        return cls.from_edges(name, [(ANY, v) for v in values])

    @classmethod
    def _from_tree(
        cls,
        name: str,
        parent_of: Mapping[str, str],
        children_of: Mapping[str, list[str]],
    ) -> "ConceptHierarchy":
        nodes: dict[str, HierarchyNode] = {}

        def build(concept: str, level: int, code: str, seen: set[str]) -> None:
            if concept in seen:
                raise HierarchyError(f"cycle detected at concept {concept!r}")
            seen.add(concept)
            kids = tuple(children_of.get(concept, ()))
            nodes[concept] = HierarchyNode(
                name=concept,
                level=level,
                parent=parent_of.get(concept) if concept != ANY else None,
                children=kids,
                code=code,
            )
            for i, kid in enumerate(kids, start=1):
                build(kid, level + 1, code + _digit(i), seen)
            seen.discard(concept)

        build(ANY, 0, "", set())
        missing = set(parent_of) - set(nodes)
        if missing:
            raise HierarchyError(
                f"concepts unreachable from {ANY!r}: {sorted(missing)!r}"
            )
        return cls(name, nodes)

    def _validate(self) -> None:
        for node in self._nodes.values():
            if node.name == ANY:
                if node.level != 0 or node.parent is not None:
                    raise HierarchyError(f"apex {ANY!r} must be level 0 with no parent")
                continue
            parent = self._nodes.get(node.parent or "")
            if parent is None:
                raise HierarchyError(f"concept {node.name!r} has unknown parent")
            if node.level != parent.level + 1:
                raise HierarchyError(
                    f"concept {node.name!r} level {node.level} inconsistent with "
                    f"parent level {parent.level}"
                )

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def __contains__(self, concept: str) -> bool:
        return concept in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[str]:
        return iter(self._nodes)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ConceptHierarchy({self.name!r}, depth={self.depth}, "
            f"concepts={len(self._nodes)})"
        )

    def node(self, concept: str) -> HierarchyNode:
        """Return the node for *concept*, raising if absent."""
        try:
            return self._nodes[concept]
        except KeyError:
            raise UnknownConceptError(concept, self.name) from None

    @property
    def depth(self) -> int:
        """Deepest level in the tree (the apex is level 0)."""
        return self._depth

    @property
    def leaves(self) -> tuple[str, ...]:
        """All most-specific concepts, in code order."""
        return self._leaves

    def concepts_at_level(self, level: int) -> tuple[str, ...]:
        """All concepts residing exactly at *level*."""
        if not 0 <= level <= self._depth:
            raise LevelError(
                f"level {level} out of range 0..{self._depth} for {self.name!r}"
            )
        return tuple(n.name for n in self._nodes.values() if n.level == level)

    def level_of(self, concept: str) -> int:
        """Tree depth of *concept* (0 for the apex)."""
        return self.node(concept).level

    def parent(self, concept: str) -> str | None:
        """Immediate parent concept, or ``None`` for the apex."""
        return self.node(concept).parent

    def children(self, concept: str) -> tuple[str, ...]:
        """Immediate child concepts."""
        return self.node(concept).children

    def ancestors(self, concept: str, include_self: bool = False) -> tuple[str, ...]:
        """Ancestors of *concept* ordered from its parent up to ``*``."""
        chain: list[str] = [concept] if include_self else []
        current = self.node(concept).parent
        while current is not None:
            chain.append(current)
            current = self._nodes[current].parent
        return tuple(chain)

    def descendants(self, concept: str, include_self: bool = False) -> tuple[str, ...]:
        """All concepts below *concept*, pre-order."""
        out: list[str] = [concept] if include_self else []
        stack = list(reversed(self.node(concept).children))
        while stack:
            current = stack.pop()
            out.append(current)
            stack.extend(reversed(self._nodes[current].children))
        return tuple(out)

    def ancestor_at_level(self, concept: str, level: int) -> str:
        """Roll *concept* up to *level*.

        Returns *concept* unchanged when it already resides at or above the
        requested level (rolling up never specialises).
        """
        node = self.node(concept)
        if level < 0:
            raise LevelError(f"level must be >= 0, got {level}")
        while node.level > level:
            assert node.parent is not None  # only the apex has no parent
            node = self._nodes[node.parent]
        return node.name

    def is_ancestor(self, ancestor: str, concept: str, strict: bool = True) -> bool:
        """True when *ancestor* subsumes *concept* in the is-a tree."""
        anc = self.node(ancestor)
        cur = self.node(concept)
        if not strict and anc.name == cur.name:
            return True
        # Codes are digit-paths from the apex: ancestry == strict code prefix.
        return len(anc.code) < len(cur.code) and cur.code.startswith(anc.code)

    # ------------------------------------------------------------------
    # Section 5 encoding
    # ------------------------------------------------------------------
    def code_of(self, concept: str) -> str:
        """The digit-path code of *concept* (empty string for the apex)."""
        return self.node(concept).code

    def concept_for_code(self, code: str) -> str:
        """Inverse of :meth:`code_of`."""
        try:
            return self._by_code[code]
        except KeyError:
            raise UnknownConceptError(f"<code {code!r}>", self.name) from None

    def padded_code(self, concept: str, fill: str = "*") -> str:
        """Code of *concept* padded with *fill* out to the hierarchy depth.

        This reproduces the paper's fixed-width encodings where ``12*`` means
        "outerwear, any item".
        """
        code = self.code_of(concept)
        return code + fill * (self._depth - len(code))


def _digit(index: int) -> str:
    """Encode a 1-based sibling index as a single code character.

    Indexes above 9 continue through the alphabet so wide hierarchies still
    receive fixed-width, prefix-comparable codes.
    """
    if index < 10:
        return str(index)
    offset = index - 10
    if offset < 52:
        alphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
        return alphabet[offset]
    raise HierarchyError(f"more than 61 siblings are not supported (got {index})")
