"""Core data model: paths, hierarchies, lattices, flowgraphs, the flowcube."""

from repro.core.aggregation import (
    DURATION_ANY_LABEL,
    AggregatedPath,
    AggregatedStage,
    aggregate_locations,
    aggregate_path,
)
from repro.core.flowcube import Cell, CellKey, Cuboid, FlowCube
from repro.core.flowgraph import TERMINATE, FlowGraph, FlowGraphNode
from repro.core.flowgraph_exceptions import (
    FlowException,
    Segment,
    mine_exceptions,
    mine_frequent_segments,
    resolve_min_support,
)
from repro.core.hierarchy import ANY, ConceptHierarchy, HierarchyNode
from repro.core.incremental import append_batch
from repro.core.lattice import (
    DURATION_ANY,
    DURATION_VALUE,
    ItemLattice,
    ItemLevel,
    LocationView,
    PathLattice,
    PathLevel,
)
from repro.core.materialization import (
    MaterializationPlan,
    plan_between_layers,
    plan_by_budget,
)
from repro.core.measures import merge_flowgraphs
from repro.core.path import Path, PathRecord
from repro.core.path_database import (
    PathDatabase,
    PathSchema,
    example_path_database,
)
from repro.core.redundancy import drop_redundant, is_redundant, prune_redundant
from repro.core.serialization import (
    cube_from_json,
    cube_to_json,
    flowgraph_from_dict,
    flowgraph_to_dict,
)
from repro.core.similarity import (
    kl_divergence,
    kl_similarity,
    path_distribution_similarity,
    total_variation,
    tv_similarity,
)
from repro.core.stage import RawReading, Stage, StageRecord

__all__ = [
    "ANY",
    "DURATION_ANY",
    "DURATION_ANY_LABEL",
    "DURATION_VALUE",
    "TERMINATE",
    "AggregatedPath",
    "AggregatedStage",
    "Cell",
    "CellKey",
    "ConceptHierarchy",
    "Cuboid",
    "FlowCube",
    "FlowException",
    "FlowGraph",
    "FlowGraphNode",
    "HierarchyNode",
    "ItemLattice",
    "ItemLevel",
    "LocationView",
    "MaterializationPlan",
    "Path",
    "PathDatabase",
    "PathLattice",
    "PathLevel",
    "PathRecord",
    "PathSchema",
    "RawReading",
    "Segment",
    "Stage",
    "StageRecord",
    "aggregate_locations",
    "aggregate_path",
    "append_batch",
    "cube_from_json",
    "cube_to_json",
    "drop_redundant",
    "flowgraph_from_dict",
    "flowgraph_to_dict",
    "example_path_database",
    "is_redundant",
    "kl_divergence",
    "kl_similarity",
    "merge_flowgraphs",
    "mine_exceptions",
    "mine_frequent_segments",
    "path_distribution_similarity",
    "plan_between_layers",
    "plan_by_budget",
    "prune_redundant",
    "resolve_min_support",
    "total_variation",
    "tv_similarity",
]
