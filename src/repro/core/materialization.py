"""Partial materialisation planning (Section 5, "Partial Materialization").

For high-dimensional path databases the full cuboid lattice is too large
even after iceberg and redundancy compression.  The paper adopts the layer
strategy of Han et al. [11]: materialise

* the **minimum interesting layer** — the most general item level analysts
  ever use,
* the **observation layer** — the level where most analysis happens, and
* a chain of cuboids along a **popular drilling path** between the two.

:class:`MaterializationPlan` captures the chosen item levels (the path
lattice is small — the four Section 6 levels — and is always materialised
in full).  :func:`plan_between_layers` builds the drill chain;
:func:`estimate_cells` supports cost-based layer choice by estimating the
number of iceberg cells of a level from a sample of the database.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.flowcube import FlowCube
from repro.core.lattice import ItemLattice, ItemLevel, PathLattice
from repro.core.path_database import PathDatabase
from repro.errors import CubeError

__all__ = [
    "DERIVABILITY",
    "MaterializationPlan",
    "plan_between_layers",
    "estimate_cells",
    "plan_by_budget",
]

#: :meth:`MaterializationPlan.derivability` verdicts, most to least served.
DERIVABILITY = ("materialised", "derivable", "unreachable")


@dataclass(frozen=True)
class MaterializationPlan:
    """The set of item levels a flowcube build should materialise."""

    item_levels: tuple[ItemLevel, ...]

    def __post_init__(self) -> None:
        if not self.item_levels:
            raise CubeError("a materialisation plan needs at least one level")

    def __iter__(self):
        return iter(self.item_levels)

    def __len__(self) -> int:
        return len(self.item_levels)

    def derivation_source(self, level: ItemLevel) -> ItemLevel | None:
        """The planned level the query-time planner would merge from.

        The shallowest planned *strict descendant* of *level* — the same
        preference order as the build-time
        :func:`~repro.perf.measure_rollup.derivation_plan` and the
        query-time :func:`~repro.query.planner.plan_derivation` (which
        additionally weighs measured cell counts).  ``None`` when no
        planned level can answer *level*.
        """
        descendants = [
            planned
            for planned in self.item_levels
            if planned != level and level.is_higher_or_equal(planned)
        ]
        if not descendants:
            return None
        return min(descendants, key=lambda lv: (sum(lv.levels), lv.levels))

    def derivability(self, level: ItemLevel) -> str:
        """How a query at *level* would be served under this plan.

        One of :data:`DERIVABILITY`: ``"materialised"`` (the level is in
        the plan), ``"derivable"`` (absent, but a planned strict
        descendant exists for the roll-up planner to merge from), or
        ``"unreachable"`` (a query there raises
        :class:`~repro.errors.QueryError` even with derivation enabled).
        """
        if level in self.item_levels:
            return "materialised"
        if self.derivation_source(level) is not None:
            return "derivable"
        return "unreachable"

    def build(
        self,
        database: PathDatabase,
        path_lattice: PathLattice | None = None,
        **kwargs,
    ) -> FlowCube:
        """Materialise a flowcube restricted to the planned levels."""
        return FlowCube.build(
            database,
            path_lattice=path_lattice,
            item_levels=self.item_levels,
            **kwargs,
        )


def plan_between_layers(
    minimum_layer: ItemLevel,
    observation_layer: ItemLevel,
    drill_order: Sequence[int] | None = None,
) -> MaterializationPlan:
    """The [11]-style plan: both layers plus one popular drill path between.

    Args:
        minimum_layer: The most general interesting level (must be
            higher-or-equal to the observation layer on the item lattice).
        observation_layer: The level where most analysis happens.
        drill_order: Priority order of dimension indexes for the drill
            path; dimension ``drill_order[0]`` is specialised first, one
            hierarchy level at a time.  Defaults to left-to-right.

    Returns:
        A plan whose levels form a chain from the minimum layer down to
        the observation layer.
    """
    if not minimum_layer.is_higher_or_equal(observation_layer):
        raise CubeError(
            "the minimum interesting layer must generalise the observation layer"
        )
    order = list(drill_order) if drill_order is not None else list(
        range(len(minimum_layer))
    )
    if sorted(order) != list(range(len(minimum_layer))):
        raise CubeError(f"drill_order {order!r} must permute the dimensions")

    levels: list[ItemLevel] = [minimum_layer]
    current = list(minimum_layer.levels)
    for dim in order:
        while current[dim] < observation_layer[dim]:
            current[dim] += 1
            levels.append(ItemLevel(current))
    return MaterializationPlan(tuple(levels))


def estimate_cells(
    database: PathDatabase,
    level: ItemLevel,
    min_support: float,
    sample_size: int = 2000,
) -> int:
    """Estimate the number of iceberg cells at *level* from a sample.

    Groups the first *sample_size* records by their rolled-up dimensions,
    scales the per-group counts to the full database, and counts groups
    projected to clear the iceberg threshold.  Exact when the sample covers
    the whole database.
    """
    from repro.core.flowgraph_exceptions import resolve_min_support

    hierarchies = database.schema.dimensions
    records = database.records[:sample_size]
    if not records:
        return 0
    scale = len(database) / len(records)
    threshold = resolve_min_support(min_support, len(database))
    counts: dict[tuple[str, ...], int] = {}
    for record in records:
        key = tuple(
            h.ancestor_at_level(v, lv)
            for h, v, lv in zip(hierarchies, record.dims, level)
        )
        counts[key] = counts.get(key, 0) + 1
    return sum(1 for n in counts.values() if n * scale >= threshold)


def plan_by_budget(
    database: PathDatabase,
    max_cells: int,
    min_support: float = 0.01,
    sample_size: int = 2000,
) -> MaterializationPlan:
    """Greedy cost-based plan: add levels (most general first) while the
    estimated total cell count stays within *max_cells*.

    The apex level is always included so every query has a fallback
    ancestor cuboid.
    """
    lattice = ItemLattice([h.depth for h in database.schema.dimensions])
    chosen: list[ItemLevel] = []
    total = 0
    for level in lattice:  # iteration order: most general first
        cost = estimate_cells(database, level, min_support, sample_size)
        if not chosen or total + cost <= max_cells:
            chosen.append(level)
            total += cost
    return MaterializationPlan(tuple(chosen))
