"""Flowgraphs (Section 3, Definition 3.1).

A flowgraph is a tree-shaped probabilistic workflow built over a collection
of (aggregated) paths:

* nodes correspond to unique *location prefixes* — all common path prefixes
  share a branch,
* each node carries a multinomial **duration distribution** over the
  duration labels observed at the node,
* each node carries a multinomial **transition distribution** over the next
  locations, including an explicit **termination** outcome, and
* the graph carries a set of **exceptions**: frequent path prefixes whose
  conditional distributions deviate from the node's unconditional ones
  (computed in :mod:`repro.core.flowgraph_exceptions`).

Construction is a single pass over the paths (steps 1–2 of Section 3); the
counts are kept raw so flowgraphs over disjoint path sets merge additively —
the algebraic-measure property of Lemma 4.2 (see
:mod:`repro.core.measures`).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.core.aggregation import AggregatedPath
from repro.errors import CubeError

__all__ = ["TERMINATE", "FlowGraphNode", "FlowGraph"]

#: Sentinel outcome in a transition distribution: the path ends here.
TERMINATE = "<terminate>"


class FlowGraphNode:
    """One node of a flowgraph: a unique location prefix.

    Attributes:
        prefix: Location sequence from the start of the path to this node.
        count: Number of paths that reach this node.
        duration_counts: Observed duration labels at this node.
        transition_counts: Next-location counts; :data:`TERMINATE` counts
            paths ending at this node.
        children: Child nodes keyed by their location.
    """

    __slots__ = (
        "prefix",
        "count",
        "duration_counts",
        "transition_counts",
        "children",
    )

    def __init__(self, prefix: tuple[str, ...]) -> None:
        self.prefix = prefix
        self.count = 0
        # Plain dicts, not Counters: nodes are created by the hundred per
        # cell and Counter construction dominated graph-build profiles.
        self.duration_counts: dict[str, int] = {}
        self.transition_counts: dict[str, int] = {}
        self.children: dict[str, FlowGraphNode] = {}

    @property
    def location(self) -> str:
        """The location this node represents (last element of the prefix)."""
        return self.prefix[-1]

    @property
    def termination_count(self) -> int:
        """Number of paths that terminate at this node."""
        return self.transition_counts.get(TERMINATE, 0)

    def duration_distribution(self) -> dict[str, float]:
        """Probability of each duration label at this node."""
        total = sum(self.duration_counts.values())
        if total == 0:
            return {}
        return {label: n / total for label, n in self.duration_counts.items()}

    def transition_distribution(self) -> dict[str, float]:
        """Probability of each next location (and of terminating)."""
        total = sum(self.transition_counts.values())
        if total == 0:
            return {}
        return {target: n / total for target, n in self.transition_counts.items()}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FlowGraphNode({'→'.join(self.prefix)!r}, count={self.count})"


class FlowGraph:
    """A flowgraph over a collection of aggregated paths.

    Args:
        paths: The aggregated paths to summarise.  Pass none to start an
            empty graph and feed it incrementally with :meth:`add_path`.
    """

    def __init__(self, paths: Iterable[AggregatedPath] = ()) -> None:
        self._roots: dict[str, FlowGraphNode] = {}
        self._index: dict[tuple[str, ...], FlowGraphNode] = {}
        self.n_paths = 0
        #: Exceptions attached by :mod:`repro.core.flowgraph_exceptions`.
        self.exceptions: list = []
        for path in paths:
            self.add_path(path)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_path(self, path: AggregatedPath, weight: int = 1) -> None:
        """Fold one aggregated path into the counts.

        Args:
            path: Sequence of ``(location, duration label)`` stages.
            weight: Multiplicity (lets callers fold pre-grouped paths).
        """
        if not path:
            raise CubeError("cannot add an empty path to a flowgraph")
        self.n_paths += weight
        parent: FlowGraphNode | None = None
        prefix: tuple[str, ...] = ()
        index = self._index
        for location, duration in path:
            prefix = prefix + (location,)
            node = index.get(prefix)
            if node is None:
                node = FlowGraphNode(prefix)
                index[prefix] = node
                if parent is None:
                    self._roots[location] = node
                else:
                    parent.children[location] = node
            node.count += weight
            counts = node.duration_counts
            counts[duration] = counts.get(duration, 0) + weight
            if parent is not None:
                counts = parent.transition_counts
                counts[location] = counts.get(location, 0) + weight
            parent = node
        assert parent is not None
        counts = parent.transition_counts
        counts[TERMINATE] = counts.get(TERMINATE, 0) + weight

    def merge(self, others: Iterable["FlowGraph"]) -> "FlowGraph":
        """Fold other flowgraphs over *disjoint* path sets into this one.

        The flowgraph is an algebraic measure (Lemma 4.2): the graph of a
        union of disjoint path sets is obtained by summing each node's
        ``count`` and duration/transition tallies — all integers, so the
        merge is exact and the operation is associative and commutative.
        The roll-up engine (:mod:`repro.perf.measure_rollup`) derives every
        ancestor cell's flowgraph this way instead of re-aggregating paths.

        Exceptions are holistic (Lemma 4.3) and are *not* merged; re-mine
        them over the merged cell's paths.

        Returns:
            ``self`` (mutated in place), for chaining.
        """
        for other in others:
            self.n_paths += other.n_paths
            for node in other.nodes():
                target = self._index.get(node.prefix)
                if target is None:
                    target = self._grow_chain(node.prefix)
                target.count += node.count
                for counts, additions in (
                    (target.duration_counts, node.duration_counts),
                    (target.transition_counts, node.transition_counts),
                ):
                    if counts:
                        for key, n in additions.items():
                            counts[key] = counts.get(key, 0) + n
                    else:  # fresh chain node: bulk-copy at C speed
                        counts.update(additions)
        return self

    def _grow_chain(self, prefix: tuple[str, ...]) -> FlowGraphNode:
        """Create (and index) the node chain for *prefix*, zero counts."""
        node: FlowGraphNode | None = None
        for end in range(1, len(prefix) + 1):
            partial = prefix[:end]
            existing = self._index.get(partial)
            if existing is None:
                existing = FlowGraphNode(partial)
                self._index[partial] = existing
                if end == 1:
                    self._roots[partial[0]] = existing
                else:
                    self._index[partial[:-1]].children[partial[-1]] = existing
            node = existing
        assert node is not None
        return node

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    @property
    def roots(self) -> tuple[FlowGraphNode, ...]:
        """Nodes whose prefix has length 1 (the start locations)."""
        return tuple(self._roots.values())

    def node(self, prefix: Iterable[str]) -> FlowGraphNode:
        """The node for a location *prefix*, raising if absent."""
        key = tuple(prefix)
        try:
            return self._index[key]
        except KeyError:
            raise CubeError(f"no flowgraph node with prefix {key!r}") from None

    def has_node(self, prefix: Iterable[str]) -> bool:
        """Whether a node exists for the location *prefix*."""
        return tuple(prefix) in self._index

    def nodes(self) -> Iterator[FlowGraphNode]:
        """All nodes, shortest prefixes first (BFS-compatible order)."""
        return iter(sorted(self._index.values(), key=lambda n: n.prefix))

    def __len__(self) -> int:
        return len(self._index)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FlowGraph(paths={self.n_paths}, nodes={len(self._index)})"

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    def path_probability(self, path: AggregatedPath) -> float:
        """Probability the model assigns to a complete aggregated path.

        The product of the start probability, each duration probability,
        each transition probability, and the final termination probability.
        Returns 0.0 as soon as any step is unseen.
        """
        if not path:
            return 0.0
        probability = 1.0
        first_location = path[0][0]
        root = self._roots.get(first_location)
        if root is None or self.n_paths == 0:
            return 0.0
        probability *= root.count / self.n_paths
        prefix: tuple[str, ...] = ()
        previous: FlowGraphNode | None = None
        for location, duration in path:
            prefix = prefix + (location,)
            node = self._index.get(prefix)
            if node is None:
                return 0.0
            if previous is not None:
                transition = previous.transition_distribution().get(location, 0.0)
                probability *= transition
            duration_probability = node.duration_distribution().get(duration, 0.0)
            probability *= duration_probability
            previous = node
        assert previous is not None
        probability *= previous.transition_distribution().get(TERMINATE, 0.0)
        return probability

    def enumerate_paths(self) -> Iterator[tuple[tuple[str, ...], float]]:
        """Yield every (location sequence, completion probability) pair.

        The completion probability multiplies start, transition, and
        termination probabilities (durations marginalised out); the values
        over all yielded sequences sum to 1.
        """
        if self.n_paths == 0:
            return
        stack: list[tuple[FlowGraphNode, float]] = [
            (root, root.count / self.n_paths) for root in self.roots
        ]
        while stack:
            node, probability = stack.pop()
            transitions = node.transition_distribution()
            for target, p in transitions.items():
                if target == TERMINATE:
                    yield node.prefix, probability * p
                else:
                    stack.append((node.children[target], probability * p))

    def expected_remaining_duration(self, prefix: Iterable[str]) -> float:
        """Expected total duration from (and including) the node at *prefix*.

        Duration labels must be numeric at this path level; the ``*`` label
        contributes zero.  Useful for lead-time analysis (intro question 1).
        """
        node = self.node(prefix)
        return self._expected_duration(node)

    def _expected_duration(self, node: FlowGraphNode) -> float:
        own = 0.0
        for label, probability in node.duration_distribution().items():
            if label != "*":
                own += float(label) * probability
        downstream = 0.0
        for target, probability in node.transition_distribution().items():
            if target != TERMINATE:
                downstream += probability * self._expected_duration(
                    node.children[target]
                )
        return own + downstream
