"""Incremental flowcube maintenance (an extension enabled by Lemma 4.2).

RFID data arrives continuously; rebuilding the cube per batch is wasteful.
Lemma 4.2 says the algebraic part of the measure — the per-node duration
and transition counts — supports additive updates, so appending a batch of
new paths touches only the affected cells' counters.  The holistic part
(exceptions) must be re-mined, but only in the cells the batch touched.

The iceberg frontier can move in *both* directions:

* a key that was below δ may cross it once the batch lands — its cell is
  materialised from scratch (the cube's ``database`` stays the source of
  truth), and inserted in first-seen record order so the updated cube is
  indistinguishable from a rebuild;
* with a *fractional* δ the resolved threshold grows with the database,
  so untouched cells can fall below it — those are demoted (dropped),
  again matching what a rebuild would produce.

Frontier checks group the whole database **once per item level** and
reuse that grouping across every path level sharing it (a cuboid is an
⟨item level, path level⟩ pair), so appends cost one database pass per
item level with promotion candidates instead of the old
O(|cuboids| × |database|) per-key rescan.  Redundancy marks are
invalidated in touched cells (a cell may stop — or start — matching its
parents).

The store-backed counterpart — delta segments over the persisted binary
heap — lives in :mod:`repro.store.append` and follows the same promotion
/ demotion / ordering rules against :class:`~repro.store.CubeStore`.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.aggregation import aggregate_path, weight_paths
from repro.core.flowcube import Cell, FlowCube
from repro.core.flowgraph import FlowGraph
from repro.core.flowgraph_exceptions import (
    mine_exceptions_weighted,
    resolve_min_support,
)
from repro.core.lattice import ItemLevel
from repro.core.path import Path, PathRecord
from repro.errors import CubeError

__all__ = ["append_batch"]


def _roll_up(dims, item_level: ItemLevel, hierarchies) -> tuple[str, ...]:
    return tuple(
        hierarchy.ancestor_at_level(value, level)
        for hierarchy, value, level in zip(hierarchies, dims, item_level)
    )


def append_batch(
    cube: FlowCube,
    batch: Sequence[PathRecord],
    recompute_exceptions: bool = True,
) -> dict[str, int]:
    """Fold a batch of new path records into a materialised cube.

    Args:
        cube: The cube to update (its ``database`` is extended in place).
        batch: New records; ids must not collide with existing ones.
        recompute_exceptions: Re-mine (ε, δ) exceptions in touched cells.

    Returns:
        Update statistics: ``{"updated": ..., "created": ...,
        "still_below_delta": ..., "demoted": ...}`` cell counts.

    Raises:
        CubeError: On record-id collisions or schema mismatch.
    """
    if not batch:
        return {
            "updated": 0,
            "created": 0,
            "still_below_delta": 0,
            "demoted": 0,
        }
    database = cube.database
    existing_ids = {record.record_id for record in database}
    for record in batch:
        if record.record_id in existing_ids:
            raise CubeError(f"record id {record.record_id} already in the cube")
        if len(record.dims) != database.schema.n_dimensions:
            raise CubeError(
                f"record {record.record_id} has {len(record.dims)} dimensions, "
                f"schema defines {database.schema.n_dimensions}"
            )

    # Extend the backing database (source of truth for from-scratch cells).
    database._records.extend(batch)  # noqa: SLF001 - cube owns its database
    threshold = resolve_min_support(cube.min_support, len(database))
    hierarchies = database.schema.dimensions

    # Group the batch once per distinct item level; every path level of
    # that item level reuses the grouping.
    batch_groups: dict[ItemLevel, dict[tuple[str, ...], list[PathRecord]]] = {}
    for cuboid in cube.cuboids:
        if cuboid.item_level in batch_groups:
            continue
        groups: dict[tuple[str, ...], list[PathRecord]] = {}
        for record in batch:
            key = _roll_up(record.dims, cuboid.item_level, hierarchies)
            groups.setdefault(key, []).append(record)
        batch_groups[cuboid.item_level] = groups

    # Full-database groupings, computed lazily — only for item levels
    # with promotion candidates, and at most once each.
    full_groups: dict[ItemLevel, dict[tuple[str, ...], list[int]]] = {}

    def membership(item_level: ItemLevel) -> dict[tuple[str, ...], list[int]]:
        groups = full_groups.get(item_level)
        if groups is None:
            groups = cube._group_records(item_level)  # noqa: SLF001
            full_groups[item_level] = groups
        return groups

    # Aggregated batch paths, memoised per (record, path level).
    agg_cache: dict[tuple[int, object], Path] = {}

    def aggregated(record: PathRecord, path_level) -> Path:
        memo_key = (record.record_id, path_level)
        path = agg_cache.get(memo_key)
        if path is None:
            path = aggregate_path(record.path, path_level)
            agg_cache[memo_key] = path
        return path

    updated = created = below = demoted = 0
    for cuboid in cube.cuboids:
        groups = batch_groups[cuboid.item_level]
        touched: list[Cell] = []
        candidates: list[tuple[tuple[str, ...], list[PathRecord]]] = []
        for key, records in groups.items():
            cell = cuboid.cells.get(key)
            if cell is None:
                candidates.append((key, records))
                continue
            new_paths = tuple(
                aggregated(r, cuboid.path_level) for r in records
            )
            for path in new_paths:
                cell.flowgraph.add_path(path)
            cell.record_ids = cell.record_ids + tuple(
                r.record_id for r in records
            )
            # Fold the batch into the weighted (path, weight) multiset,
            # preserving first-seen order for the existing entries.
            merged: dict = dict(cell.paths)
            for path in new_paths:
                merged[path] = merged.get(path, 0) + 1
            cell.paths = tuple(merged.items())
            cell.redundant = False  # marks are stale for touched cells
            updated += 1
            touched.append(cell)

        promoted_any = False
        if candidates:
            full = membership(cuboid.item_level)
            for key, _records in candidates:
                member_ids = full.get(key, ())
                if len(member_ids) < threshold:
                    below += 1
                    continue
                weighted = weight_paths(
                    aggregate_path(database[rid].path, cuboid.path_level)
                    for rid in member_ids
                )
                graph = FlowGraph()
                for path, weight in weighted:
                    graph.add_path(path, weight)
                cell = Cell(
                    key=key,
                    item_level=cuboid.item_level,
                    path_level=cuboid.path_level,
                    record_ids=tuple(member_ids),
                    flowgraph=graph,
                    paths=weighted,
                )
                cuboid.cells[key] = cell
                created += 1
                promoted_any = True
                touched.append(cell)

        # A rising threshold (fractional δ over a grown database) can
        # drop cells below the frontier — demote them, as a rebuild
        # would.  Touched cells are filtered too: a merge may not keep
        # pace with the threshold.
        for key in [
            key
            for key, cell in cuboid.cells.items()
            if cell.n_paths < threshold
        ]:
            del cuboid.cells[key]
            demoted += 1

        if promoted_any:
            # Restore first-seen record order: a promoted cell slots in
            # where a rebuild would have placed it, not at the end.
            order = membership(cuboid.item_level)
            cuboid.cells = {
                key: cuboid.cells[key]
                for key in order
                if key in cuboid.cells
            }

        if recompute_exceptions:
            for cell in touched:
                if cell.key not in cuboid.cells:
                    continue  # demoted after all
                mine_exceptions_weighted(
                    cell.flowgraph,
                    list(cell.paths),
                    min_support=cube.min_support,
                    min_deviation=cube.min_deviation,
                )
    return {
        "updated": updated,
        "created": created,
        "still_below_delta": below,
        "demoted": demoted,
    }
