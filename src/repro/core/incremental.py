"""Incremental flowcube maintenance (an extension enabled by Lemma 4.2).

RFID data arrives continuously; rebuilding the cube per batch is wasteful.
Lemma 4.2 says the algebraic part of the measure — the per-node duration
and transition counts — supports additive updates, so appending a batch of
new paths touches only the affected cells' counters.  The holistic part
(exceptions) must be re-mined, but only in the cells the batch touched.

Limits, faithfully inherited from the paper's analysis:

* the *iceberg frontier* can move: a cell that was below δ before the
  batch may cross it.  :func:`append_batch` detects those cells and
  materialises them from scratch (it keeps the cube's `database` as the
  source of truth);
* redundancy marks are invalidated in touched cells (a cell may stop —
  or start — matching its parents) and are recomputed there.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.aggregation import aggregate_path, weight_paths
from repro.core.flowcube import Cell, FlowCube
from repro.core.flowgraph import FlowGraph
from repro.core.flowgraph_exceptions import (
    mine_exceptions_weighted,
    resolve_min_support,
)
from repro.core.path import PathRecord
from repro.errors import CubeError

__all__ = ["append_batch"]


def append_batch(
    cube: FlowCube,
    batch: Sequence[PathRecord],
    recompute_exceptions: bool = True,
) -> dict[str, int]:
    """Fold a batch of new path records into a materialised cube.

    Args:
        cube: The cube to update (its ``database`` is extended in place).
        batch: New records; ids must not collide with existing ones.
        recompute_exceptions: Re-mine (ε, δ) exceptions in touched cells.

    Returns:
        Update statistics: ``{"updated": ..., "created": ...,
        "still_below_delta": ...}`` cell counts.

    Raises:
        CubeError: On record-id collisions or schema mismatch.
    """
    if not batch:
        return {"updated": 0, "created": 0, "still_below_delta": 0}
    database = cube.database
    existing_ids = {record.record_id for record in database}
    for record in batch:
        if record.record_id in existing_ids:
            raise CubeError(f"record id {record.record_id} already in the cube")
        if len(record.dims) != database.schema.n_dimensions:
            raise CubeError(
                f"record {record.record_id} has {len(record.dims)} dimensions, "
                f"schema defines {database.schema.n_dimensions}"
            )

    # Extend the backing database (source of truth for from-scratch cells).
    database._records.extend(batch)  # noqa: SLF001 - cube owns its database
    threshold = resolve_min_support(cube.min_support, len(database))
    hierarchies = database.schema.dimensions

    updated = created = below = 0
    for cuboid in cube.cuboids:
        # Group the batch by this cuboid's cell keys.
        groups: dict[tuple[str, ...], list[PathRecord]] = {}
        for record in batch:
            key = tuple(
                h.ancestor_at_level(value, level)
                for h, value, level in zip(
                    hierarchies, record.dims, cuboid.item_level
                )
            )
            groups.setdefault(key, []).append(record)
        for key, records in groups.items():
            new_paths = tuple(
                aggregate_path(r.path, cuboid.path_level) for r in records
            )
            cell = cuboid.cells.get(key)
            if cell is not None:
                for path in new_paths:
                    cell.flowgraph.add_path(path)
                cell.record_ids = cell.record_ids + tuple(
                    r.record_id for r in records
                )
                # Fold the batch into the weighted (path, weight) multiset,
                # preserving first-seen order for the existing entries.
                merged: dict = dict(cell.paths)
                for path in new_paths:
                    merged[path] = merged.get(path, 0) + 1
                cell.paths = tuple(merged.items())
                cell.redundant = False  # marks are stale for touched cells
                updated += 1
            else:
                # The cell may have just crossed the iceberg frontier:
                # count its full membership in the extended database.
                member_ids = [
                    r.record_id
                    for r in database
                    if tuple(
                        h.ancestor_at_level(v, lv)
                        for h, v, lv in zip(
                            hierarchies, r.dims, cuboid.item_level
                        )
                    )
                    == key
                ]
                if len(member_ids) < threshold:
                    below += 1
                    continue
                weighted = weight_paths(
                    aggregate_path(database[rid].path, cuboid.path_level)
                    for rid in member_ids
                )
                graph = FlowGraph()
                for path, weight in weighted:
                    graph.add_path(path, weight)
                cell = Cell(
                    key=key,
                    item_level=cuboid.item_level,
                    path_level=cuboid.path_level,
                    record_ids=tuple(member_ids),
                    flowgraph=graph,
                    paths=weighted,
                )
                cuboid.cells[key] = cell
                created += 1
            if recompute_exceptions:
                mine_exceptions_weighted(
                    cell.flowgraph,
                    list(cell.paths),
                    min_support=cube.min_support,
                    min_deviation=cube.min_deviation,
                )
    return {"updated": updated, "created": created, "still_below_delta": below}
