"""Valid location-sequence generation (Section 6.1).

The paper first generates "the set of all valid sequences of locations that
an item can take through the system", then each synthetic path picks one.
We model a retail-style flow: sequences move through the location groups in
order (factory-ish areas first, store-ish areas last), choosing a concrete
location per visited group, possibly lingering in a group for more than one
stage.  That gives sequences the nested-prefix structure real supply chains
have — many sequences share long prefixes, which is what makes path mining
non-trivial.
"""

from __future__ import annotations

import numpy as np

from repro.core.hierarchy import ConceptHierarchy
from repro.errors import GenerationError

__all__ = ["generate_location_sequences"]


def generate_location_sequences(
    hierarchy: ConceptHierarchy,
    n_sequences: int,
    rng: np.random.Generator,
    min_length: int = 3,
    max_length: int = 8,
    max_attempts_factor: int = 50,
) -> list[tuple[str, ...]]:
    """Generate *n_sequences* distinct valid location sequences.

    Args:
        hierarchy: Location hierarchy (groups at level 1, leaves at 2).
        n_sequences: How many distinct sequences to produce.
        rng: Seeded generator.
        min_length: Shortest sequence.
        max_length: Longest sequence.
        max_attempts_factor: Give up (raise) after
            ``n_sequences * max_attempts_factor`` draws — the location
            alphabet may be too small for the requested distinct count.

    Returns:
        Distinct sequences, each a tuple of leaf locations with no
        immediate repeats, visiting groups in nondecreasing order.
    """
    groups = sorted(hierarchy.concepts_at_level(1))
    leaves_by_group = {g: sorted(hierarchy.children(g)) for g in groups}
    if not groups or any(not v for v in leaves_by_group.values()):
        raise GenerationError("location hierarchy must have groups with leaves")

    sequences: set[tuple[str, ...]] = set()
    attempts = 0
    limit = n_sequences * max_attempts_factor
    while len(sequences) < n_sequences:
        attempts += 1
        if attempts > limit:
            raise GenerationError(
                f"could not generate {n_sequences} distinct sequences "
                f"(got {len(sequences)}); enlarge the location hierarchy "
                "or the length range"
            )
        length = int(rng.integers(min_length, max_length + 1))
        sequence: list[str] = []
        group_index = 0
        while len(sequence) < length:
            remaining = length - len(sequence)
            remaining_groups = len(groups) - group_index
            # Ensure we can still reach the last group: cap the stay.
            max_stay = max(1, remaining - (remaining_groups - 1))
            stay = int(rng.integers(1, max_stay + 1))
            leaves = leaves_by_group[groups[group_index]]
            grew = False
            for _ in range(stay):
                choices = [
                    leaf
                    for leaf in leaves
                    if not sequence or leaf != sequence[-1]
                ]
                if not choices:
                    break
                sequence.append(choices[int(rng.integers(len(choices)))])
                grew = True
            if group_index < len(groups) - 1:
                group_index += 1
            elif not grew:
                break  # last group and no non-repeating leaf: dead end
        if len(sequence) >= min_length:
            sequences.add(tuple(sequence))
    return sorted(sequences)
