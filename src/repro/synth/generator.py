"""The synthetic path-database generator (Section 6.1).

Reproduces the paper's data synthesis: a retail-style location hierarchy
with 2 abstraction levels, path-independent dimensions with 3-level concept
hierarchies, a fixed pool of valid location sequences, and Zipf-distributed
choices at every level (varying α controls the density of frequent cells
and frequent path segments).

Entry points:

* :class:`GeneratorConfig` — every §6 experiment is a point in this
  parameter space (the per-figure configurations live in
  :mod:`repro.bench.experiments`);
* :func:`generate_path_database` — build the database for one config.

Generation per record follows the paper exactly: first the dimension
values (Zipf level by level down the hierarchy), then a Zipf-chosen valid
location sequence, then a Zipf-distributed random duration per stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.hierarchy import ConceptHierarchy
from repro.core.path import Path, PathRecord
from repro.core.path_database import PathDatabase, PathSchema
from repro.core.stage import Stage
from repro.errors import GenerationError
from repro.synth.hierarchy_gen import (
    make_dimension_hierarchy,
    make_location_hierarchy,
)
from repro.synth.sequence_gen import generate_location_sequences
from repro.synth.zipf import ZipfSampler

__all__ = ["GeneratorConfig", "generate_path_database", "scaled_config"]


@dataclass(frozen=True)
class GeneratorConfig:
    """Parameters of one synthetic path database.

    Attributes:
        n_paths: Number of records (the paper's N).
        n_dims: Path-independent dimensions (the paper's d).
        dim_fanouts: Distinct values per hierarchy level of every
            dimension — Figure 9's density knob: dataset a=(2,2,5),
            b=(4,4,6), c=(5,5,10).
        dim_skew: Zipf α for value choice at each dimension level.
        n_location_groups: Level-1 location concepts.
        locations_per_group: Leaf locations per group.
        n_sequences: Size of the valid-sequence pool — Figure 10's path
            density knob (few sequences = dense paths).
        sequence_skew: Zipf α over the sequence pool.
        min_path_length / max_path_length: Sequence length range.
        max_duration: Stage durations are drawn from ``1..max_duration``.
        duration_skew: Zipf α over durations.
        seed: Master seed; every database is a pure function of its config.
    """

    n_paths: int = 1000
    n_dims: int = 5
    dim_fanouts: tuple[int, ...] = (5, 5, 10)
    dim_skew: float = 0.8
    n_location_groups: int = 4
    locations_per_group: int = 4
    n_sequences: int = 30
    sequence_skew: float = 0.8
    min_path_length: int = 3
    max_path_length: int = 8
    max_duration: int = 10
    duration_skew: float = 1.0
    seed: int = 7

    def with_(self, **overrides) -> "GeneratorConfig":
        """A copy with the given fields replaced (sweep helper)."""
        return replace(self, **overrides)

    def __post_init__(self) -> None:
        if self.n_paths < 0:
            raise GenerationError(f"n_paths must be >= 0, got {self.n_paths}")
        if self.n_dims < 1:
            raise GenerationError(f"n_dims must be >= 1, got {self.n_dims}")
        if self.min_path_length < 1 or self.max_path_length < self.min_path_length:
            raise GenerationError(
                f"bad path length range "
                f"[{self.min_path_length}, {self.max_path_length}]"
            )
        if self.max_duration < 1:
            raise GenerationError(f"max_duration must be >= 1")


def scaled_config(n_paths: int, seed: int = 11) -> GeneratorConfig:
    """A scale-sweep preset: *n_paths* records over a fixed-shape schema.

    The benchmark scale sweep (``bench_store.py --scale``) needs database
    size to be the only variable: the hierarchy shapes, sequence pool,
    and skews stay constant so the pattern count (and therefore the
    mining work per record) grows with N rather than with schema width.
    """
    return GeneratorConfig(
        n_paths=n_paths,
        n_dims=3,
        dim_fanouts=(3, 4),
        n_location_groups=4,
        locations_per_group=3,
        n_sequences=16,
        max_path_length=5,
        max_duration=4,
        seed=seed,
    )


def generate_path_database(config: GeneratorConfig) -> PathDatabase:
    """Generate the path database described by *config* (deterministic)."""
    rng = np.random.default_rng(config.seed)

    dimensions = tuple(
        make_dimension_hierarchy(f"d{i}", config.dim_fanouts)
        for i in range(config.n_dims)
    )
    location = make_location_hierarchy(
        config.n_location_groups, config.locations_per_group
    )
    duration = ConceptHierarchy.flat(
        "duration", [str(v) for v in range(config.max_duration + 1)]
    )
    schema = PathSchema(dimensions, location, duration)

    sequences = generate_location_sequences(
        location,
        config.n_sequences,
        rng,
        min_length=config.min_path_length,
        max_length=config.max_path_length,
    )

    # Per-level Zipf samplers, shared across dimensions (fresh draws each
    # record keep dimensions independent).
    level_samplers = [
        ZipfSampler(fanout, config.dim_skew, rng) for fanout in config.dim_fanouts
    ]
    sequence_sampler = ZipfSampler(len(sequences), config.sequence_skew, rng)
    duration_sampler = ZipfSampler(config.max_duration, config.duration_skew, rng)

    # Vectorised draws: one rank matrix per hierarchy level.
    n = config.n_paths
    level_ranks = [
        sampler.sample_many(n * config.n_dims).reshape(n, config.n_dims)
        for sampler in level_samplers
    ]
    sequence_ranks = sequence_sampler.sample_many(n)

    records: list[PathRecord] = []
    for row in range(n):
        dims = tuple(
            _leaf_name(
                dimensions[d].name,
                [int(level_ranks[level][row, d]) for level in range(len(level_ranks))],
            )
            for d in range(config.n_dims)
        )
        sequence = sequences[int(sequence_ranks[row])]
        durations = duration_sampler.sample_many(len(sequence)) + 1
        path = Path(
            Stage(loc, float(dur)) for loc, dur in zip(sequence, durations)
        )
        records.append(PathRecord(row + 1, dims, path))
    return PathDatabase(schema, records, validate=False)


def _leaf_name(prefix: str, ranks: list[int]) -> str:
    """Concept name for the leaf reached by taking *ranks* down the tree.

    Matches :func:`make_dimension_hierarchy`'s naming scheme, so the value
    is a real leaf of the generated hierarchy without tree walks.
    """
    return "_".join([prefix, *(str(r) for r in ranks)])
