"""Bounded Zipf sampling (Section 6.1; Zipf [21]).

The paper draws every synthetic choice — concept-hierarchy values, location
sequences, stage durations — from Zipf distributions with varying skew α to
control how concentrated frequent patterns are.  :class:`ZipfSampler` is a
seeded, bounded-support Zipf over ranks ``0..n-1`` with ``P(r) ∝ 1/(r+1)^α``
(α = 0 degenerates to uniform).
"""

from __future__ import annotations

import numpy as np

from repro.errors import GenerationError

__all__ = ["ZipfSampler"]


class ZipfSampler:
    """Draw ranks from a bounded Zipf distribution.

    Args:
        n: Support size; ranks are ``0..n-1`` with rank 0 most likely.
        alpha: Skew; 0 is uniform, larger concentrates mass on low ranks.
        rng: A seeded :class:`numpy.random.Generator`.
    """

    def __init__(self, n: int, alpha: float, rng: np.random.Generator) -> None:
        if n < 1:
            raise GenerationError(f"Zipf support must be >= 1, got {n}")
        if alpha < 0:
            raise GenerationError(f"Zipf skew must be >= 0, got {alpha}")
        self.n = n
        self.alpha = alpha
        self._rng = rng
        weights = 1.0 / np.arange(1, n + 1, dtype=float) ** alpha
        self._cdf = np.cumsum(weights / weights.sum())
        # Guard against floating point drift at the top of the CDF.
        self._cdf[-1] = 1.0

    def sample(self) -> int:
        """One rank."""
        return int(np.searchsorted(self._cdf, self._rng.random(), side="right"))

    def sample_many(self, size: int) -> np.ndarray:
        """A vector of *size* ranks (one vectorised draw)."""
        return np.searchsorted(
            self._cdf, self._rng.random(size), side="right"
        ).astype(np.int64)

    def probabilities(self) -> np.ndarray:
        """The probability of each rank, descending."""
        probabilities = np.empty(self.n)
        probabilities[0] = self._cdf[0]
        probabilities[1:] = np.diff(self._cdf)
        return probabilities
