"""Synthetic RFID path generation (Section 6.1)."""

from repro.synth.generator import (
    GeneratorConfig,
    generate_path_database,
    scaled_config,
)
from repro.synth.hierarchy_gen import (
    make_dimension_hierarchy,
    make_location_hierarchy,
)
from repro.synth.sequence_gen import generate_location_sequences
from repro.synth.zipf import ZipfSampler

__all__ = [
    "GeneratorConfig",
    "ZipfSampler",
    "generate_location_sequences",
    "generate_path_database",
    "make_dimension_hierarchy",
    "make_location_hierarchy",
    "scaled_config",
]
