"""Synthetic concept-hierarchy construction (Section 6.1).

The experiments give every path-independent dimension a 3-level concept
hierarchy and every location a 2-level one, varying the number of distinct
values per level to control data density (Figure 9's datasets a/b/c are
fanouts (2,2,5), (4,4,6) and (5,5,10)).  Names are deterministic
(``d0_1_2_3``-style) so generated databases are reproducible and
hierarchy membership is obvious when debugging.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.hierarchy import ANY, ConceptHierarchy
from repro.errors import GenerationError

__all__ = ["make_dimension_hierarchy", "make_location_hierarchy"]


def make_dimension_hierarchy(
    name: str, fanouts: Sequence[int]
) -> ConceptHierarchy:
    """A balanced hierarchy for one dimension.

    Args:
        name: Dimension name (becomes the concept-name prefix).
        fanouts: Children per node at each level; ``(2, 2, 5)`` yields 2
            level-1 concepts, each with 2 children, each with 5 leaves.

    Concept names encode their position: level-1 ``name_i``, level-2
    ``name_i_j``, and so on.
    """
    if not fanouts or any(f < 1 for f in fanouts):
        raise GenerationError(f"fanouts must be positive, got {fanouts!r}")
    edges: list[tuple[str, str]] = []

    def expand(parent: str, level: int) -> None:
        if level == len(fanouts):
            return
        for i in range(fanouts[level]):
            child = f"{parent}_{i}" if parent != ANY else f"{name}_{i}"
            edges.append((parent, child))
            expand(child, level + 1)

    expand(ANY, 0)
    return ConceptHierarchy.from_edges(name, edges)


def make_location_hierarchy(
    n_groups: int, leaves_per_group: int
) -> ConceptHierarchy:
    """The 2-level location hierarchy of the experiments.

    ``n_groups`` level-1 concepts (``area_g``) each own
    ``leaves_per_group`` concrete locations (``loc_g_i``).
    """
    if n_groups < 1 or leaves_per_group < 1:
        raise GenerationError(
            f"need positive group counts, got {n_groups}x{leaves_per_group}"
        )
    edges: list[tuple[str, str]] = []
    for g in range(n_groups):
        group = f"area_{g}"
        edges.append((ANY, group))
        for i in range(leaves_per_group):
            edges.append((group, f"loc_{g}_{i}"))
    return ConceptHierarchy.from_edges("location", edges)
