"""Section 6 experiment harness: figure sweeps, runner, CLI."""

from repro.bench.experiments import (
    ALL_EXPERIMENTS,
    ExperimentResult,
    fig6_database_size,
    fig7_minimum_support,
    fig8_dimensions,
    fig9_item_density,
    fig10_path_density,
    fig11_pruning_power,
    run_algorithms,
)
from repro.bench.harness import result_to_csv, run_experiments, write_results

__all__ = [
    "ALL_EXPERIMENTS",
    "ExperimentResult",
    "fig6_database_size",
    "fig7_minimum_support",
    "fig8_dimensions",
    "fig9_item_density",
    "fig10_path_density",
    "fig11_pruning_power",
    "result_to_csv",
    "run_algorithms",
    "run_experiments",
    "write_results",
]
