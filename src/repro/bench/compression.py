"""Cube-compression experiment (Sections 4.3–4.4's size claims).

The paper argues two compression levers but reports no size figures for
them; this experiment quantifies both on synthetic data:

* the **iceberg condition** — materialised cells vs δ;
* **non-redundant flowcubes** — cells surviving redundancy pruning vs τ.

Registered in the harness as ``compression`` (an addition beyond the
paper's six figures; EXPERIMENTS.md reports it alongside them).
"""

from __future__ import annotations

from repro.bench.experiments import ExperimentResult
from repro.core import FlowCube, prune_redundant, tv_similarity
from repro.synth import GeneratorConfig, generate_path_database

__all__ = ["compression_experiment"]


def compression_experiment(
    scale: float = 1.0,
    n_paths: int = 1000,
    deltas: tuple[float, ...] = (0.005, 0.01, 0.02, 0.05),
    taus: tuple[float, ...] = (0.8, 0.9, 0.95),
) -> ExperimentResult:
    """Cells materialised under each (δ, τ) combination.

    Rows are δ values (in %); series are the raw iceberg cell count plus
    the non-redundant count at each τ.  Redundancy uses the
    total-variation φ, which is bounded and threshold-friendly.
    """
    result = ExperimentResult(
        name="compression",
        title="Cube size vs iceberg δ and redundancy τ (d=3)",
        x_label="min_support_%",
        series_labels=(
            "iceberg_cells",
            *[f"nonredundant_tau_{tau:g}" for tau in taus],
        ),
        unit="cells",
    )
    config = GeneratorConfig(
        n_paths=max(50, int(n_paths * scale)),
        n_dims=3,
        dim_fanouts=(3, 3, 4),
        n_sequences=20,
        seed=13,
    )
    database = generate_path_database(config)
    for delta in deltas:
        row: dict[str, float] = {}
        cube = FlowCube.build(
            database, min_support=delta, compute_exceptions=False
        )
        row["iceberg_cells"] = float(cube.n_cells())
        for tau in taus:
            # Re-mark per τ on a fresh cube (marks are sticky).
            fresh = FlowCube.build(
                database, min_support=delta, compute_exceptions=False
            )
            prune_redundant(fresh, threshold=tau, metric=tv_similarity)
            row[f"nonredundant_tau_{tau:g}"] = float(
                fresh.n_cells(include_redundant=False)
            )
        result.rows.append((delta * 100, row))
    result.notes.append(
        "lower τ treats more cells as inferable from parents; the paper "
        "gives no reference numbers for this table (extension experiment)"
    )
    return result
