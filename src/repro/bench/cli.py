"""Command-line entry point: ``flowcube-bench`` / ``python -m repro.bench``.

Examples::

    flowcube-bench fig6 fig11          # two figures at laptop scale
    flowcube-bench --scale 5 fig10     # 5x larger databases
    flowcube-bench --all --out results # everything, CSVs persisted
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.experiments import ALL_EXPERIMENTS
from repro.bench.harness import run_experiments, write_results

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="flowcube-bench",
        description=(
            "Reproduce the FlowCube paper's Section 6 experiments "
            "(figures 6-11)."
        ),
    )
    parser.add_argument(
        "figures",
        nargs="*",
        metavar="FIG",
        help=f"experiments to run: {', '.join(ALL_EXPERIMENTS)}",
    )
    parser.add_argument(
        "--all", action="store_true", help="run every experiment"
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help=(
            "database-size multiplier (1.0 = laptop defaults; the paper's "
            "C++ scale is roughly --scale 100)"
        ),
    )
    parser.add_argument(
        "--out",
        metavar="DIR",
        default=None,
        help="also write one CSV per experiment into DIR",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI body; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.all:
        names = list(ALL_EXPERIMENTS)
    elif args.figures:
        unknown = [f for f in args.figures if f not in ALL_EXPERIMENTS]
        if unknown:
            print(
                f"unknown figures: {', '.join(unknown)} "
                f"(choose from {', '.join(ALL_EXPERIMENTS)})",
                file=sys.stderr,
            )
            return 2
        names = args.figures
    else:
        _build_parser().print_help()
        return 0
    results = run_experiments(names, scale=args.scale)
    if args.out:
        for path in write_results(results, args.out):
            print(f"wrote {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
