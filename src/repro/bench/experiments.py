"""The Section 6 experiments (Figures 6–11), as reusable functions.

Each ``fig*`` function runs one sweep and returns an
:class:`ExperimentResult` with the same x-axis and series the paper plots.
A ``scale`` argument shrinks the database sizes: the paper's C++ ran 100k–1M
paths; pure Python is ~100× slower, so the default ``scale=1.0`` maps the
sweep onto laptop-sized databases with every *relative* parameter (δ in %,
densities, dimension counts) unchanged — preserving curve shapes.  Pass
``scale=50`` (and patience) for paper-scale inputs.

The Basic baseline is only run where the paper could run it (it exhausted
memory past 200k paths / on the densest datasets); its truncations are
reported.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.core.path_database import PathDatabase
from repro.mining import basic_mine, cubing_mine, shared_mine
from repro.mining.result import FlowMiningResult
from repro.synth import GeneratorConfig, generate_path_database

__all__ = [
    "ExperimentResult",
    "run_algorithms",
    "fig6_database_size",
    "fig7_minimum_support",
    "fig8_dimensions",
    "fig9_item_density",
    "fig10_path_density",
    "fig11_pruning_power",
    "ALL_EXPERIMENTS",
]

#: Baseline generator settings shared by the sweeps (d=5, the usual paper
#: configuration); individual figures override their swept parameter.
_BASE = GeneratorConfig(
    n_paths=1000,
    n_dims=5,
    dim_fanouts=(4, 4, 6),
    dim_skew=0.8,
    n_sequences=30,
    sequence_skew=0.8,
    seed=7,
)


@dataclass
class ExperimentResult:
    """One figure's reproduced data.

    Attributes:
        name: Figure id, e.g. ``"fig6"``.
        title: Human title matching the paper's caption.
        x_label: Name of the swept parameter.
        series_labels: Algorithm names, column order of ``rows``.
        rows: One entry per x value: ``(x, {algo: value})``; an algorithm
            absent from a row was not run at that point (like the paper's
            missing Basic points).
        unit: Unit of the row values — ``"s"`` for runtimes (most
            figures), ``"candidates"`` for Figure 11.
        notes: Free-form remarks (truncations, pattern counts).
    """

    name: str
    title: str
    x_label: str
    series_labels: tuple[str, ...]
    rows: list[tuple[object, dict[str, float]]] = field(default_factory=list)
    unit: str = "s"
    notes: list[str] = field(default_factory=list)

    def as_table(self) -> str:
        """Fixed-width table of the rows (the harness prints this)."""
        header = [self.x_label, *self.series_labels]
        widths = [max(14, len(h) + 2) for h in header]
        lines = ["".join(h.ljust(w) for h, w in zip(header, widths))]
        for x, timings in self.rows:
            cells = [str(x)]
            for label in self.series_labels:
                value = timings.get(label)
                if value is None:
                    cells.append("-")
                elif self.unit == "s":
                    cells.append(f"{value:.3f}s")
                else:
                    cells.append(f"{value:g}")
            lines.append("".join(c.ljust(w) for c, w in zip(cells, widths)))
        return "\n".join(lines)


def _timed(fn: Callable[[], FlowMiningResult]) -> tuple[float, FlowMiningResult]:
    started = time.perf_counter()
    result = fn()
    return time.perf_counter() - started, result


def run_algorithms(
    database: PathDatabase,
    min_support: float,
    algorithms: Sequence[str] = ("shared", "cubing", "basic"),
    basic_candidate_limit: int = 300_000,
) -> dict[str, tuple[float, FlowMiningResult]]:
    """Run the requested miners on one database; returns seconds + result."""
    out: dict[str, tuple[float, FlowMiningResult]] = {}
    for algorithm in algorithms:
        if algorithm == "shared":
            out[algorithm] = _timed(
                lambda: shared_mine(database, min_support=min_support)
            )
        elif algorithm == "cubing":
            out[algorithm] = _timed(
                lambda: cubing_mine(database, min_support=min_support)
            )
        elif algorithm == "basic":
            out[algorithm] = _timed(
                lambda: basic_mine(
                    database,
                    min_support=min_support,
                    candidate_limit=basic_candidate_limit,
                )
            )
        else:
            raise ValueError(f"unknown algorithm {algorithm!r}")
    return out


def _scaled(scale: float, n: int) -> int:
    return max(50, int(n * scale))


def fig6_database_size(
    scale: float = 1.0, min_support: float = 0.01
) -> ExperimentResult:
    """Figure 6: runtime vs path-database size (paper: 100k–1M, δ=1%, d=5).

    The paper could only run Basic up to 200k of 1M paths (candidates no
    longer fit in memory); mirroring that, Basic runs on the two smallest
    sizes only.
    """
    result = ExperimentResult(
        name="fig6",
        title="Runtime vs database size (δ=1%, d=5)",
        x_label="paths",
        series_labels=("shared", "cubing", "basic"),
    )
    sizes = [_scaled(scale, n) for n in (500, 1000, 2000, 3000, 4000, 5000)]
    for i, n_paths in enumerate(sizes):
        database = generate_path_database(_BASE.with_(n_paths=n_paths))
        algorithms = ("shared", "cubing", "basic") if i < 2 else ("shared", "cubing")
        timings = run_algorithms(database, min_support, algorithms)
        result.rows.append((n_paths, {a: t for a, (t, _) in timings.items()}))
        if i < 2 and timings["basic"][1].stats.pruned.get("truncated"):
            result.notes.append(
                f"basic truncated at N={n_paths} (candidate blow-up)"
            )
    result.notes.append(
        "paper: basic only ran to 200k of 1M paths; here it runs on the two "
        "smallest sizes only"
    )
    return result


def fig7_minimum_support(
    scale: float = 1.0, n_paths: int = 2000
) -> ExperimentResult:
    """Figure 7: runtime vs minimum support 0.3%–2.0% (N=100k, d=5)."""
    result = ExperimentResult(
        name="fig7",
        title="Runtime vs minimum support (N fixed, d=5)",
        x_label="min_support_%",
        series_labels=("shared", "cubing", "basic"),
    )
    database = generate_path_database(_BASE.with_(n_paths=_scaled(scale, n_paths)))
    for support_pct in (0.3, 0.6, 0.9, 1.2, 1.5, 1.8, 2.0):
        algorithms = (
            ("shared", "cubing", "basic")
            if support_pct >= 0.9
            else ("shared", "cubing")
        )
        timings = run_algorithms(database, support_pct / 100.0, algorithms)
        result.rows.append((support_pct, {a: t for a, (t, _) in timings.items()}))
    result.notes.append(
        "basic only runs for δ ≥ 0.9%: at laptop scale the low-δ absolute "
        "thresholds are far below the paper's (3 vs 300 paths), and basic's "
        "candidate blow-up hits correspondingly earlier"
    )
    return result


def fig8_dimensions(scale: float = 1.0, n_paths: int = 1000) -> ExperimentResult:
    """Figure 8: runtime vs number of dimensions 2–10 (N=100k, δ=1%).

    The paper used deliberately sparse data here (low skew, wide fanouts)
    to keep high-dimension cuboids from exploding — all three algorithms
    end up comparable.
    """
    result = ExperimentResult(
        name="fig8",
        title="Runtime vs number of dimensions (δ=1%, sparse data)",
        x_label="dimensions",
        series_labels=("shared", "cubing", "basic"),
    )
    sparse = _BASE.with_(
        n_paths=_scaled(scale, n_paths),
        dim_fanouts=(5, 5, 10),
        dim_skew=0.3,
    )
    for n_dims in range(2, 11):
        database = generate_path_database(sparse.with_(n_dims=n_dims))
        timings = run_algorithms(database, 0.01)
        result.rows.append((n_dims, {a: t for a, (t, _) in timings.items()}))
    return result


def fig9_item_density(scale: float = 1.0, n_paths: int = 1000) -> ExperimentResult:
    """Figure 9: runtime vs item density — datasets a/b/c (N=100k, δ=1%, d=5).

    Dataset a: 2,2,5 distinct values per level; b: 4,4,6; c: 5,5,10.
    Denser data (fewer distinct values) means more frequent cells and
    segments, so everything slows down; the paper could not run Basic on
    dataset a at all.
    """
    result = ExperimentResult(
        name="fig9",
        title="Runtime vs item density (δ=1%, d=5)",
        x_label="dataset",
        series_labels=("shared", "cubing", "basic"),
    )
    fanouts = {"a": (2, 2, 5), "b": (4, 4, 6), "c": (5, 5, 10)}
    for label, fanout in fanouts.items():
        database = generate_path_database(
            _BASE.with_(n_paths=_scaled(scale, n_paths), dim_fanouts=fanout)
        )
        algorithms = ("shared", "cubing") if label == "a" else (
            "shared", "cubing", "basic"
        )
        timings = run_algorithms(database, 0.01, algorithms)
        result.rows.append((label, {a: t for a, (t, _) in timings.items()}))
    result.notes.append("paper: basic could not run on dataset a; skipped here too")
    return result


def fig10_path_density(scale: float = 1.0, n_paths: int = 1000) -> ExperimentResult:
    """Figure 10: runtime vs path density (N=100k, δ=1%, d=5).

    Swept by the number of distinct location sequences: few sequences =
    dense paths = many frequent segments.  Shared's advantage grows with
    density because Cubing re-mines the segments inside every frequent
    cell; Basic cannot run at all (candidate explosion).
    """
    result = ExperimentResult(
        name="fig10",
        title="Runtime vs path density (δ=1%, d=5)",
        x_label="distinct_sequences",
        series_labels=("shared", "cubing"),
    )
    for n_sequences in (5, 10, 20, 30, 40, 50):
        database = generate_path_database(
            _BASE.with_(n_paths=_scaled(scale, n_paths), n_sequences=n_sequences)
        )
        timings = run_algorithms(database, 0.01, ("shared", "cubing"))
        result.rows.append((n_sequences, {a: t for a, (t, _) in timings.items()}))
    result.notes.append("paper: basic not runnable (dense paths explode candidates)")
    return result


def fig11_pruning_power(
    scale: float = 1.0,
    n_paths: int = 500,
    min_support: float = 0.08,
) -> ExperimentResult:
    """Figure 11: candidates counted per pattern length, Shared vs Basic.

    The rows hold candidate *counts* (not seconds).  Shared's pruning cuts
    both the per-length counts and the maximum length it ever considers;
    Basic drags items-plus-ancestors out to much longer patterns (the
    paper's run stops at 8 vs 12; ours at ~8 vs ~17).

    δ defaults higher than the other figures so Basic *finishes* instead
    of tripping the blow-up guard — the paper's Basic run completed here
    too, since Figure 11 is the one plot that needs its full curve.
    """
    result = ExperimentResult(
        name="fig11",
        title="Pruning power: candidates per pattern length (d=5)",
        x_label="length",
        series_labels=("shared", "basic"),
        unit="candidates",
    )
    database = generate_path_database(_BASE.with_(n_paths=_scaled(scale, n_paths)))
    shared = shared_mine(database, min_support=min_support)
    basic = basic_mine(database, min_support=min_support, candidate_limit=5_000_000)
    lengths = sorted(
        set(shared.stats.candidates_per_length)
        | set(basic.stats.candidates_per_length)
    )
    for length in lengths:
        result.rows.append(
            (
                length,
                {
                    "shared": float(shared.stats.candidates_per_length.get(length, 0)),
                    "basic": float(basic.stats.candidates_per_length.get(length, 0)),
                },
            )
        )
    result.notes.append(
        f"shared max length {shared.stats.max_length}, "
        f"basic max length {basic.stats.max_length}"
        + (
            " (basic truncated by candidate limit)"
            if basic.stats.pruned.get("truncated")
            else ""
        )
    )
    return result


def _compression(scale: float = 1.0) -> ExperimentResult:
    from repro.bench.compression import compression_experiment

    return compression_experiment(scale=scale)


#: Registry used by the CLI: figure id → experiment function.  The
#: ``compression`` entry is an extension experiment (Sections 4.3–4.4's
#: size claims), not one of the paper's figures.
ALL_EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "fig6": fig6_database_size,
    "fig7": fig7_minimum_support,
    "fig8": fig8_dimensions,
    "fig9": fig9_item_density,
    "fig10": fig10_path_density,
    "fig11": fig11_pruning_power,
    "compression": _compression,
}
