"""Persistent partitioned FlowCube storage (the warehouse-scale layer).

The in-memory pipeline assumes the path database fits in RAM; this package
removes that assumption end to end:

* :class:`~repro.store.pathstore.PartitionedPathStore` — the path database
  as size-bounded partition files (columnar binary by default, CSV as
  the portable interchange format — see :mod:`repro.store.binfmt`)
  under a JSON catalog (:class:`~repro.store.catalog.Catalog`) with
  schema fingerprints and Bloom-style partition summaries
  (:class:`~repro.store.partition.BloomSummary`);
* :func:`~repro.store.builder.build_cube` /
  :func:`~repro.store.builder.shared_mine_store` — out-of-core cube
  construction and Algorithm 1, one partition in memory at a time,
  with ``jobs=N`` passes running on a persistent shared-memory
  :class:`~repro.perf.pool.WorkerPool` (re-exported here) that callers
  can keep across builds;
* :class:`~repro.store.cube_store.CubeStore` — the materialised cube
  persisted cell by cell (packed mmap'd heap or one JSON file per
  cell), lazily rebuilt behind a bounded
  :class:`~repro.store.cache.LRUCache`;
* ``flowcube-store`` (:mod:`repro.store.cli`) — init / ingest / build /
  query / stats / migrate.
"""

from repro.perf.pool import PoolStats, WorkerPool, resolve_jobs
from repro.store.append import append_records
from repro.store.binfmt import DEFAULT_STORE_FORMAT, STORE_FORMATS
from repro.store.builder import (
    POOL_MODES,
    STORE_KERNELS,
    BuildStats,
    build_cube,
    shared_mine_store,
)
from repro.store.cache import LRUCache
from repro.store.catalog import (
    Catalog,
    schema_fingerprint,
    schema_from_dict,
    schema_to_dict,
)
from repro.store.cube_store import CELL_FORMATS, CubeStore, StoredCuboid
from repro.store.partition import BloomSummary, PartitionMeta
from repro.store.pathstore import PartitionedPathStore

__all__ = [
    "CELL_FORMATS",
    "DEFAULT_STORE_FORMAT",
    "POOL_MODES",
    "STORE_FORMATS",
    "STORE_KERNELS",
    "BloomSummary",
    "BuildStats",
    "Catalog",
    "CubeStore",
    "LRUCache",
    "PartitionMeta",
    "PartitionedPathStore",
    "PoolStats",
    "StoredCuboid",
    "WorkerPool",
    "append_records",
    "build_cube",
    "resolve_jobs",
    "schema_fingerprint",
    "schema_from_dict",
    "schema_to_dict",
    "shared_mine_store",
]
