"""The store catalog: schema persistence, fingerprints, partition registry.

``catalog.json`` is the root of a partitioned store directory.  It records

* the full :class:`~repro.core.path_database.PathSchema` (every concept
  hierarchy as a nested tree, sibling order preserved so the Section 5
  digit codes are reproduced exactly on load),
* a SHA-256 *schema fingerprint* — ingest refuses data whose schema does
  not hash to the catalog's fingerprint, so partition files can never mix
  incompatible hierarchies,
* the store *format* — ``"binary"`` (columnar partitions + packed cell
  heap, the default for new stores) or ``"json"`` (CSV partitions +
  one-JSON-file-per-cell cubes, the portable interchange layout);
  catalogs written before the format field default to ``"json"``,
* one :class:`~repro.store.partition.PartitionMeta` entry per partition
  file (row counts, record-id ranges, Bloom summaries), and
* an ``extra`` mapping for tool state (e.g. the synthetic generator
  configuration the CLI stores so ``ingest --synthetic`` reuses it).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path as FsPath

from repro.core.hierarchy import ANY, ConceptHierarchy
from repro.core.path_database import PathSchema
from repro.errors import StoreError
from repro.store.binfmt import DEFAULT_STORE_FORMAT, STORE_FORMATS
from repro.store.partition import PartitionMeta

__all__ = [
    "CATALOG_VERSION",
    "Catalog",
    "hierarchy_to_nested",
    "schema_to_dict",
    "schema_from_dict",
    "schema_fingerprint",
]

CATALOG_VERSION = 1
CATALOG_FILENAME = "catalog.json"


# ----------------------------------------------------------------------
# schema (de)serialisation
# ----------------------------------------------------------------------

def hierarchy_to_nested(hierarchy: ConceptHierarchy) -> dict:
    """A hierarchy as the nested mapping ``from_nested`` accepts.

    Sibling order is preserved, which keeps the digit codes — and hence
    every encoded transaction — identical across a save/load cycle.
    """

    def subtree(concept: str) -> dict:
        return {child: subtree(child) for child in hierarchy.children(concept)}

    return subtree(ANY)


def schema_to_dict(schema: PathSchema) -> dict:
    """Serialise a path schema (all hierarchies) to plain data."""
    return {
        "dimensions": [
            {"name": h.name, "tree": hierarchy_to_nested(h)}
            for h in schema.dimensions
        ],
        "location": {
            "name": schema.location.name,
            "tree": hierarchy_to_nested(schema.location),
        },
        "duration": {
            "name": schema.duration.name,
            "tree": hierarchy_to_nested(schema.duration),
        },
    }


def schema_from_dict(data: dict) -> PathSchema:
    """Inverse of :func:`schema_to_dict`."""
    return PathSchema(
        dimensions=[
            ConceptHierarchy.from_nested(entry["name"], entry["tree"])
            for entry in data["dimensions"]
        ],
        location=ConceptHierarchy.from_nested(
            data["location"]["name"], data["location"]["tree"]
        ),
        duration=ConceptHierarchy.from_nested(
            data["duration"]["name"], data["duration"]["tree"]
        ),
    )


def schema_fingerprint(schema: PathSchema) -> str:
    """SHA-256 over the canonical schema serialisation.

    Key order is *not* sorted: sibling order determines the hierarchy
    codes, so two schemas that differ only in sibling order are genuinely
    incompatible and must fingerprint differently.
    """
    canonical = json.dumps(schema_to_dict(schema), separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# the catalog file
# ----------------------------------------------------------------------

class Catalog:
    """In-memory image of a store's ``catalog.json``.

    Args:
        directory: The store directory the catalog belongs to.
        schema: The store's path schema.
        partition_size: Maximum rows per partition file.
        partitions: Existing partition entries (empty for a new store).
        extra: Free-form tool state persisted alongside the catalog.
        store_format: ``"binary"`` or ``"json"`` (see module docs).
    """

    def __init__(
        self,
        directory: FsPath,
        schema: PathSchema,
        partition_size: int,
        partitions: list[PartitionMeta] | None = None,
        extra: dict | None = None,
        store_format: str = DEFAULT_STORE_FORMAT,
    ) -> None:
        if partition_size < 1:
            raise StoreError(f"partition size must be >= 1, got {partition_size}")
        if store_format not in STORE_FORMATS:
            raise StoreError(
                f"unknown store format {store_format!r}; "
                f"expected one of {STORE_FORMATS}"
            )
        self.store_format = store_format
        self.directory = FsPath(directory)
        self.schema = schema
        self.fingerprint = schema_fingerprint(schema)
        self.partition_size = partition_size
        self.partitions: list[PartitionMeta] = list(partitions or [])
        self.extra: dict = dict(extra or {})

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    @property
    def path(self) -> FsPath:
        return self.directory / CATALOG_FILENAME

    def save(self) -> None:
        """Write the catalog atomically (write-temp + rename)."""
        payload = {
            "version": CATALOG_VERSION,
            "schema": schema_to_dict(self.schema),
            "fingerprint": self.fingerprint,
            "partition_size": self.partition_size,
            "format": self.store_format,
            "partitions": [meta.to_dict() for meta in self.partitions],
            "extra": self.extra,
        }
        self.directory.mkdir(parents=True, exist_ok=True)
        temp = self.path.with_suffix(".json.tmp")
        temp.write_text(json.dumps(payload, indent=1), encoding="utf-8")
        temp.replace(self.path)

    @classmethod
    def load(cls, directory: FsPath) -> "Catalog":
        """Read ``catalog.json`` from *directory*."""
        path = FsPath(directory) / CATALOG_FILENAME
        if not path.exists():
            raise StoreError(f"no store catalog at {path}")
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise StoreError(f"corrupt store catalog at {path}: {exc}") from None
        if payload.get("version") != CATALOG_VERSION:
            raise StoreError(
                f"unsupported catalog version {payload.get('version')!r} "
                f"(this build reads version {CATALOG_VERSION})"
            )
        schema = schema_from_dict(payload["schema"])
        catalog = cls(
            directory=FsPath(directory),
            schema=schema,
            partition_size=int(payload["partition_size"]),
            partitions=[
                PartitionMeta.from_dict(entry)
                for entry in payload.get("partitions", [])
            ],
            extra=payload.get("extra", {}),
            store_format=payload.get("format", "json"),
        )
        if catalog.fingerprint != payload["fingerprint"]:
            raise StoreError(
                f"catalog fingerprint mismatch at {path}: the schema payload "
                "does not hash to the recorded fingerprint"
            )
        return catalog

    # ------------------------------------------------------------------
    # registry
    # ------------------------------------------------------------------
    def add(self, meta: PartitionMeta) -> None:
        """Register a new partition entry."""
        self.partitions.append(meta)

    @property
    def total_records(self) -> int:
        """Row count across all partitions (from the catalog, no file IO)."""
        return sum(meta.n_records for meta in self.partitions)

    @property
    def max_record_id(self) -> int:
        """Largest record id ingested so far (-1 for an empty store)."""
        return max((meta.max_record_id for meta in self.partitions), default=-1)

    def next_partition_id(self) -> int:
        return max(
            (meta.partition_id for meta in self.partitions), default=-1
        ) + 1

    def describe(self) -> dict[str, object]:
        """Catalog summary for ``flowcube-store stats``."""
        return {
            "partitions": len(self.partitions),
            "records": self.total_records,
            "partition_size": self.partition_size,
            "format": self.store_format,
            "dimensions": list(self.schema.dimension_names),
            "fingerprint": self.fingerprint[:12],
        }
