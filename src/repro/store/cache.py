"""A bounded LRU cache fronting cube-store reads.

The :class:`~repro.store.cube_store.CubeStore` persists every cell as its
own file and only materialises a flowgraph when a query first touches it.
This cache keeps the hot cells in memory, bounded by entry count, and
exposes hit/miss/eviction counters so serving behaviour is observable —
the ``flowcube-store stats`` verb and the store benchmark report them.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Hashable
from typing import Any

__all__ = ["LRUCache"]

_MISSING = object()


class LRUCache:
    """Least-recently-used mapping with a fixed capacity.

    Args:
        capacity: Maximum number of entries kept; the least recently *read
            or written* entry is evicted when a put overflows the bound.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Hashable, default: Any = None) -> Any:
        """The cached value for *key*, counting a hit or a miss."""
        value = self._entries.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return default
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert/refresh *key*, evicting the coldest entry on overflow."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        # Membership tests do not count as hits/misses: they are used by
        # bookkeeping, not by the read path.
        return key in self._entries

    def clear(self) -> None:
        """Drop every entry; the counters keep accumulating."""
        self._entries.clear()

    @property
    def hit_rate(self) -> float:
        """Fraction of reads served from memory (0.0 when never read)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict[str, float | int]:
        """Counters for reporting: size, capacity, hits, misses, evictions."""
        return {
            "capacity": self.capacity,
            "size": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }
