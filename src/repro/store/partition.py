"""Partition files of the on-disk path store.

A partitioned store splits a :class:`~repro.core.path_database.PathDatabase`
into size-bounded *partitions*, each persisted as one file in the
store's format — a columnar binary blob (``part-XXXXX.bin``, see
:mod:`repro.store.binfmt`) for ``"binary"`` stores, or a CSV file
(``part-XXXXX.csv``, the portable interchange format of
:meth:`PathDatabase.to_csv`) for ``"json"`` stores.
:func:`write_partition` / :func:`read_partition` dispatch on the file
suffix, so mixed stores mid-migration stay readable.  Every partition
carries a :class:`PartitionMeta` catalog entry holding

* the row count and the (min, max) record-id range, and
* one :class:`BloomSummary` per path-independent dimension plus one for
  the stage locations.  Summaries index each record's value *and* its
  hierarchy ancestors, so partition pruning works at any abstraction
  level (``select_partitions(product="outerwear")`` skips partitions
  whose leaves all live under other level-1 concepts).

Bloom summaries are classic bitset Bloom filters: membership answers are
"maybe" (with a small false-positive rate) or a definite "no", which is
exactly what a scan planner needs to skip partition files without
touching them.
"""

from __future__ import annotations

import hashlib
import mmap
from dataclasses import dataclass, field
from pathlib import Path as FsPath

from repro.core.path_database import PathDatabase, PathSchema
from repro.errors import StoreError
from repro.store.binfmt import (
    PARTITION_MAGIC,
    StringTable,
    pack_partition,
    unpack_partition,
)

__all__ = [
    "BloomSummary",
    "PartitionMeta",
    "LOCATION_SUMMARY",
    "partition_filename",
    "partition_generation",
    "summarise_partition",
    "write_partition",
    "read_partition",
]

#: File suffix per store format (``"binary"`` / ``"json"``).
_FORMAT_SUFFIXES = {"binary": ".bin", "json": ".csv"}

#: Summary key used for the stage-location column (dimension summaries are
#: keyed ``dim:<name>`` so a dimension literally named "location" cannot
#: collide with it).
LOCATION_SUMMARY = "location"


class BloomSummary:
    """A Bloom-style membership summary over one column's values.

    Args:
        n_bits: Bitset width.  The default (1024) keeps the false-positive
            rate under ~2% for a few hundred distinct values.
        n_hashes: Probes per value, derived by double hashing from one
            BLAKE2b digest.
        bits: Pre-existing bitset (used when loading from the catalog).
    """

    def __init__(self, n_bits: int = 1024, n_hashes: int = 4, bits: int = 0) -> None:
        if n_bits < 8 or n_hashes < 1:
            raise StoreError(
                f"bad Bloom geometry: {n_bits} bits / {n_hashes} hashes"
            )
        self.n_bits = n_bits
        self.n_hashes = n_hashes
        self.bits = bits

    def _positions(self, value: str) -> list[int]:
        digest = hashlib.blake2b(value.encode("utf-8"), digest_size=16).digest()
        h1 = int.from_bytes(digest[:8], "big")
        h2 = int.from_bytes(digest[8:], "big") | 1  # odd => full cycle
        return [(h1 + i * h2) % self.n_bits for i in range(self.n_hashes)]

    def add(self, value: str) -> None:
        """Record *value* in the summary."""
        for position in self._positions(value):
            self.bits |= 1 << position

    def might_contain(self, value: str) -> bool:
        """False means definitely absent; True means possibly present."""
        return all(self.bits >> p & 1 for p in self._positions(value))

    def to_dict(self) -> dict:
        """JSON-safe form (the bitset serialises as hex)."""
        return {
            "n_bits": self.n_bits,
            "n_hashes": self.n_hashes,
            "bits": format(self.bits, "x"),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BloomSummary":
        """Inverse of :meth:`to_dict`."""
        return cls(
            n_bits=int(data["n_bits"]),
            n_hashes=int(data["n_hashes"]),
            bits=int(data["bits"], 16),
        )


@dataclass
class PartitionMeta:
    """Catalog entry for one partition file."""

    partition_id: int
    filename: str
    n_records: int
    min_record_id: int
    max_record_id: int
    summaries: dict[str, BloomSummary] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "partition_id": self.partition_id,
            "filename": self.filename,
            "n_records": self.n_records,
            "min_record_id": self.min_record_id,
            "max_record_id": self.max_record_id,
            "summaries": {
                name: summary.to_dict()
                for name, summary in self.summaries.items()
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PartitionMeta":
        return cls(
            partition_id=int(data["partition_id"]),
            filename=str(data["filename"]),
            n_records=int(data["n_records"]),
            min_record_id=int(data["min_record_id"]),
            max_record_id=int(data["max_record_id"]),
            summaries={
                name: BloomSummary.from_dict(payload)
                for name, payload in data.get("summaries", {}).items()
            },
        )


def summarise_partition(database: PathDatabase) -> dict[str, BloomSummary]:
    """Build the per-column Bloom summaries of one partition.

    Every dimension value and stage location is inserted together with its
    full ancestor chain (excluding the apex ``*``), so queries phrased at
    any hierarchy level prune correctly.
    """
    schema = database.schema
    summaries: dict[str, BloomSummary] = {
        f"dim:{h.name}": BloomSummary() for h in schema.dimensions
    }
    summaries[LOCATION_SUMMARY] = BloomSummary()
    for record in database:
        for hierarchy, value in zip(schema.dimensions, record.dims):
            summary = summaries[f"dim:{hierarchy.name}"]
            for concept in hierarchy.ancestors(value, include_self=True):
                if concept != "*":
                    summary.add(concept)
        location_summary = summaries[LOCATION_SUMMARY]
        for stage in record.path:
            chain = schema.location.ancestors(stage.location, include_self=True)
            for concept in chain:
                if concept != "*":
                    location_summary.add(concept)
    return summaries


def partition_filename(partition_id: int, store_format: str) -> str:
    """The canonical partition filename for *store_format*."""
    suffix = _FORMAT_SUFFIXES.get(store_format)
    if suffix is None:
        raise StoreError(f"unknown store format {store_format!r}")
    return f"part-{partition_id:05d}{suffix}"


def write_partition(
    path: FsPath, database: PathDatabase, strings: StringTable | None = None
) -> None:
    """Persist one partition, binary (``.bin``) or CSV by suffix.

    With *strings*, binary partitions are written in the generation-2
    shared-vocabulary layout (``FCPART02``); the caller is responsible
    for saving the table (``strings.bin``) **before** the catalog points
    at the new file.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    if path.suffix == ".bin":
        path.write_bytes(pack_partition(database, strings))
    else:
        path.write_text(database.to_csv(), encoding="utf-8")


def read_partition(
    path: FsPath, schema: PathSchema, strings: StringTable | None = None
) -> PathDatabase:
    """Load one partition file back into a :class:`PathDatabase`.

    Binary partitions are mmap'd and decoded through memoryview slices
    — each arena's ``frombytes`` reads straight out of the page cache
    with no intermediate whole-file ``bytes`` copy.  The map is
    transient: everything the database needs is materialised before the
    view is released, so nothing pins the file afterwards.
    """
    if not path.exists():
        raise StoreError(f"partition file {path} is missing")
    if path.suffix == ".bin":
        with open(path, "rb") as handle:
            try:
                mapped = mmap.mmap(
                    handle.fileno(), 0, access=mmap.ACCESS_READ
                )
            except (OSError, ValueError) as exc:
                raise StoreError(
                    f"cannot map partition file {path}: {exc}"
                ) from None
            try:
                view = memoryview(mapped)
                try:
                    return unpack_partition(view, schema, strings)
                finally:
                    view.release()
            finally:
                mapped.close()
    return PathDatabase.from_csv(schema, path.read_text(encoding="utf-8"))


def partition_generation(path: FsPath) -> int:
    """Layout generation of one ``.bin`` partition file (1 or 2).

    Used by ``migrate`` to spot generation-1 files that need rewriting
    even when the store format is already ``"binary"``.
    """
    with open(path, "rb") as handle:
        magic = handle.read(8)
    return 1 if magic == PARTITION_MAGIC else 2
