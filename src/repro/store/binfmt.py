"""Binary on-disk codecs: columnar partitions and the packed cell index.

CSV partitions and one-JSON-file-per-cell cap the store's scale: every
pack pass re-parses text, and opening a cube costs one ``stat`` +
``json.loads`` per cell.  This module defines the two compact binary
layouts behind the ``"binary"`` store format (see DESIGN.md for byte
diagrams):

* :func:`pack_partition` / :func:`unpack_partition` — a columnar
  partition file (``part-XXXXX.bin``): one interned string table plus
  ``int64`` reference/offset arenas and a ``float64`` duration arena,
  so :func:`~repro.store.partition.read_partition` rebuilds a
  :class:`~repro.core.path_database.PathDatabase` with bulk
  ``array.frombytes`` decodes instead of per-field text parsing;
* :func:`pack_cell_index` / :func:`unpack_cell_index` — the cell-heap
  offset/key index (``cells.idx``): every cuboid's cell keys and
  ``(offset, length, n_paths, redundant)`` entries in grouped columnar
  arenas, so :class:`~repro.store.cube_store.CubeStore` materialises
  its whole in-memory index with a handful of C-speed ``zip`` passes
  and *zero* cell-payload IO.

Framing rules shared by both codecs:

* all integers are native-endian ``int64`` (``array('q')``), durations
  native ``float64`` (``array('d')``); the header leads with
  :data:`ORDER_TAG`, whose bytes read back wrong on a foreign-endian
  host, turning silent corruption into a :class:`StoreError`;
* every arena starts on an 8-byte boundary (the UTF-8 string blob is
  zero-padded), and decoding slices **exactly** the bytes each arena
  owns before ``frombytes`` — never a full-buffer ``cast('q')``, which
  breaks the moment a variable-length blob is not a multiple of eight;
* the cell heap (``cells.bin``) itself is not parsed here: it is an
  append-only blob of ``<q``-length-prefixed JSON payloads after
  :data:`HEAP_MAGIC`, addressed only through the index offsets.
"""

from __future__ import annotations

import struct
from array import array
from collections.abc import Iterable, Sequence

from repro.core.path import Path, PathRecord
from repro.core.path_database import PathDatabase, PathSchema
from repro.core.stage import Stage
from repro.errors import StoreError

__all__ = [
    "DEFAULT_STORE_FORMAT",
    "HEAP_MAGIC",
    "INDEX_MAGIC",
    "PARTITION_MAGIC",
    "STORE_FORMATS",
    "pack_cell_index",
    "pack_partition",
    "unpack_cell_index",
    "unpack_partition",
]

#: Store-level format names: ``"binary"`` (columnar partitions + cell
#: heap) and ``"json"`` (CSV partitions + one JSON file per cell — the
#: portable interchange layout).
STORE_FORMATS = ("binary", "json")

#: New stores default to the compact binary layout.
DEFAULT_STORE_FORMAT = "binary"

#: Leading 8 bytes of a columnar partition file.
PARTITION_MAGIC = b"FCPART01"

#: Leading 8 bytes of a cell-heap index file (``cells.idx``).
INDEX_MAGIC = b"FCCIDX01"

#: Leading 8 bytes of a cell-heap blob (``cells.bin``).
HEAP_MAGIC = b"FCHEAP01"

#: Endianness sentinel: stored as the first header word; a reader on a
#: host with the opposite byte order decodes a different value and
#: rejects the file instead of mis-addressing every arena.
ORDER_TAG = 0x0102030405060708

#: Length prefix framing one heap payload (always little-endian — the
#: heap is only ever addressed through index offsets; the prefix exists
#: for recovery tools walking the blob).
HEAP_LENGTH_STRUCT = struct.Struct("<q")

_I64 = 8


def _pad8(n: int) -> int:
    """Zero bytes needed to round *n* up to an 8-byte boundary."""
    return (-n) % 8


def _pack_strings(strings: Iterable[str]) -> tuple[bytes, bytes, int]:
    """Intern table → (offsets arena, padded UTF-8 blob, blob length)."""
    encoded = [s.encode("utf-8") for s in strings]
    offsets = array("q", [0])
    position = 0
    for chunk in encoded:
        position += len(chunk)
        offsets.append(position)
    blob = b"".join(encoded)
    return offsets.tobytes(), blob + b"\x00" * _pad8(len(blob)), len(blob)


def _check_magic(buffer: bytes, magic: bytes, what: str) -> None:
    if len(buffer) < len(magic) or buffer[: len(magic)] != magic:
        raise StoreError(f"not a {what}: bad magic")


def _read_header(buffer: bytes, offset: int, count: int, what: str) -> array:
    header = _read_i64(buffer, offset, count, what)
    if header[0] != ORDER_TAG:
        raise StoreError(
            f"cannot read {what}: byte-order tag mismatch "
            "(file written on a host with different endianness?)"
        )
    return header


def _read_i64(buffer: bytes, offset: int, count: int, what: str) -> array:
    """Decode exactly *count* int64s at *offset* (never a full-buffer cast)."""
    end = offset + count * _I64
    if end > len(buffer):
        raise StoreError(f"corrupt {what}: truncated at byte {offset}")
    out = array("q")
    out.frombytes(buffer[offset:end])
    return out


def _read_f64(buffer: bytes, offset: int, count: int, what: str) -> array:
    end = offset + count * _I64
    if end > len(buffer):
        raise StoreError(f"corrupt {what}: truncated at byte {offset}")
    out = array("d")
    out.frombytes(buffer[offset:end])
    return out


def _read_strings(
    buffer: bytes, offset: int, n_strings: int, blob_len: int, what: str
) -> tuple[list[str], int]:
    """Decode the intern table; returns (strings, offset past the blob)."""
    offsets = _read_i64(buffer, offset, n_strings + 1, what)
    blob_start = offset + (n_strings + 1) * _I64
    blob_end = blob_start + blob_len
    if blob_end > len(buffer):
        raise StoreError(f"corrupt {what}: truncated string blob")
    blob = buffer[blob_start:blob_end]
    strings = [
        blob[offsets[i] : offsets[i + 1]].decode("utf-8")
        for i in range(n_strings)
    ]
    return strings, blob_end + _pad8(blob_len)


def _key_tuples(
    strings: list[str], refs: array, n_dims: int, n_rows: int
) -> list[tuple[str, ...]]:
    """Rebuild *n_rows* width-``n_dims`` tuples from flat string refs."""
    if n_dims == 0:
        return [()] * n_rows
    decoded = list(map(strings.__getitem__, refs))
    return list(zip(*(decoded[d::n_dims] for d in range(n_dims))))


# --------------------------------------------------------------------------
# Columnar partitions
# --------------------------------------------------------------------------


def pack_partition(database: PathDatabase) -> bytes:
    """Encode *database* as one columnar partition blob.

    Layout (all arenas 8-byte aligned)::

        FCPART01 | header i64[6] | string offsets i64[S+1] | utf8 blob ⌈8⌉
        | record_ids i64[R] | dim refs i64[R*D] | path offsets i64[R+1]
        | stage location refs i64[T] | stage durations f64[T]

    header = [ORDER_TAG, n_records R, n_dims D, n_strings S,
    blob byte length, total stages T].  Dimension values and stage
    locations share one interned string table, so repeated concepts and
    locations cost 8 bytes per reference; durations are exact IEEE
    doubles (no ``repr`` round-trip).
    """
    interned: dict[str, int] = {}
    record_ids = array("q")
    dim_refs = array("q")
    path_offsets = array("q", [0])
    location_refs = array("q")
    durations = array("d")
    total_stages = 0
    for record in database:
        record_ids.append(record.record_id)
        for value in record.dims:
            dim_refs.append(interned.setdefault(value, len(interned)))
        for stage in record.path:
            location_refs.append(
                interned.setdefault(stage.location, len(interned))
            )
            durations.append(stage.duration)
        total_stages += len(record.path)
        path_offsets.append(total_stages)
    offsets_bytes, blob_bytes, blob_len = _pack_strings(interned)
    header = array(
        "q",
        [
            ORDER_TAG,
            len(database),
            database.schema.n_dimensions,
            len(interned),
            blob_len,
            total_stages,
        ],
    )
    return b"".join(
        (
            PARTITION_MAGIC,
            header.tobytes(),
            offsets_bytes,
            blob_bytes,
            record_ids.tobytes(),
            dim_refs.tobytes(),
            path_offsets.tobytes(),
            location_refs.tobytes(),
            durations.tobytes(),
        )
    )


def unpack_partition(buffer: bytes, schema: PathSchema) -> PathDatabase:
    """Decode a :func:`pack_partition` blob back into a database.

    The whole decode is bulk work — ``frombytes`` per arena, one
    ``zip`` transpose for the dim tuples, one ``map`` over
    :class:`Stage` — with the only per-record Python being the final
    :class:`PathRecord` construction.  Validation against the schema is
    skipped: partitions are written by :func:`pack_partition` from an
    already-validated database.
    """
    what = "columnar partition"
    _check_magic(buffer, PARTITION_MAGIC, what)
    header = _read_header(buffer, len(PARTITION_MAGIC), 6, what)
    _, n_records, n_dims, n_strings, blob_len, total_stages = header
    if n_dims != schema.n_dimensions:
        raise StoreError(
            f"partition has {n_dims} dimensions, schema expects "
            f"{schema.n_dimensions}"
        )
    offset = len(PARTITION_MAGIC) + 6 * _I64
    strings, offset = _read_strings(buffer, offset, n_strings, blob_len, what)
    record_ids = _read_i64(buffer, offset, n_records, what)
    offset += n_records * _I64
    dim_refs = _read_i64(buffer, offset, n_records * n_dims, what)
    offset += n_records * n_dims * _I64
    path_offsets = _read_i64(buffer, offset, n_records + 1, what)
    offset += (n_records + 1) * _I64
    location_refs = _read_i64(buffer, offset, total_stages, what)
    offset += total_stages * _I64
    duration_values = _read_f64(buffer, offset, total_stages, what)

    dim_tuples = _key_tuples(strings, dim_refs, n_dims, n_records)
    stages = list(
        map(Stage, map(strings.__getitem__, location_refs), duration_values)
    )
    records = []
    append = records.append
    for i in range(n_records):
        path = object.__new__(Path)
        object.__setattr__(
            path, "stages", tuple(stages[path_offsets[i] : path_offsets[i + 1]])
        )
        append(PathRecord(record_ids[i], dim_tuples[i], path))
    return PathDatabase(schema, records, validate=False)


# --------------------------------------------------------------------------
# Cell-heap index
# --------------------------------------------------------------------------


def pack_cell_index(
    cuboids: Iterable[
        tuple[
            Sequence[int],
            int,
            Iterable[tuple[tuple[str, ...], int, int, int, bool]],
        ]
    ],
    n_dims: int,
) -> bytes:
    """Encode every cuboid's key/offset columns as one ``cells.idx`` blob.

    *cuboids* yields ``(item_level_ids, path_level_id, cells)`` where
    each cell is ``(key, heap offset, payload length, n_paths,
    redundant)``.  Layout::

        FCCIDX01 | header i64[6] | string offsets i64[S+1] | utf8 blob ⌈8⌉
        | cuboid table i64[C*(2+D)] | key refs i64[N*D]
        | offsets i64[N] | lengths i64[N] | n_paths i64[N]
        | redundant u8[N] ⌈8⌉
        | mask counts i64[C*D] | mask value refs i64[M]
        | mask bits (per mask, ⌈cuboid cells / 8⌉ bytes ⌈8⌉)

    header = [ORDER_TAG, n_cuboids C, n_cells N, n_dims D, n_strings S,
    blob byte length].  Cuboid table rows are ``[n_cells,
    path_level_id, item_level…]``; the global columns are grouped by
    cuboid in table order, so a reader slices each cuboid's run without
    any per-cell bookkeeping.

    The trailing masks section precomputes what
    :class:`~repro.perf.query_kernel.CuboidKeyCatalog` would otherwise
    derive cell by cell: for every (cuboid, dimension, distinct value),
    a little-endian bitmap of the cell *ordinals* holding that value.
    M is the total distinct-value count; each mask occupies the
    cuboid's ``⌈cells/8⌉`` bytes zero-padded to 8, so a reader
    reconstructs every catalog with one ``int.from_bytes`` per value
    instead of a Python pass over every cell.
    """
    interned: dict[str, int] = {}
    cuboid_table = array("q")
    key_refs = array("q")
    offsets = array("q")
    lengths = array("q")
    n_paths_column = array("q")
    redundant_column = bytearray()
    mask_counts = array("q")
    mask_refs = array("q")
    mask_bits: list[bytes] = []
    n_cuboids = 0
    n_cells = 0
    for item_level, path_level_id, cells in cuboids:
        n_cuboids += 1
        count = 0
        buckets: list[dict[int, list[int]]] = [{} for _ in range(n_dims)]
        for key, offset, length, n_paths, redundant in cells:
            for dim, part in enumerate(key):
                ref = interned.setdefault(part, len(interned))
                key_refs.append(ref)
                buckets[dim].setdefault(ref, []).append(count)
            count += 1
            offsets.append(offset)
            lengths.append(length)
            n_paths_column.append(n_paths)
            redundant_column.append(1 if redundant else 0)
        row = array("q", [count, path_level_id])
        row.extend(item_level)
        if len(row) != 2 + n_dims:
            raise StoreError(
                f"item level width {len(row) - 2} does not match "
                f"{n_dims} dimensions"
            )
        cuboid_table.extend(row)
        n_cells += count
        n_bytes = (count + 7) >> 3
        padded = n_bytes + _pad8(n_bytes)
        for per_dim in buckets:
            mask_counts.append(len(per_dim))
            for ref, positions in per_dim.items():
                mask_refs.append(ref)
                bits = bytearray(padded)
                for position in positions:
                    bits[position >> 3] |= 1 << (position & 7)
                mask_bits.append(bytes(bits))
    offsets_bytes, blob_bytes, blob_len = _pack_strings(interned)
    header = array(
        "q",
        [ORDER_TAG, n_cuboids, n_cells, n_dims, len(interned), blob_len],
    )
    return b"".join(
        (
            INDEX_MAGIC,
            header.tobytes(),
            offsets_bytes,
            blob_bytes,
            cuboid_table.tobytes(),
            key_refs.tobytes(),
            offsets.tobytes(),
            lengths.tobytes(),
            n_paths_column.tobytes(),
            bytes(redundant_column),
            b"\x00" * _pad8(len(redundant_column)),
            mask_counts.tobytes(),
            mask_refs.tobytes(),
            *mask_bits,
        )
    )


def unpack_cell_index(
    buffer: bytes,
) -> list[
    tuple[
        tuple[int, ...],
        int,
        list[tuple[str, ...]],
        list[tuple[int, int, int, bool]],
        list[dict[str, int]],
    ]
]:
    """Decode ``cells.idx`` → ``[(item_level_ids, path_level_id, keys,
    entries, masks)]`` with entries as ``(offset, length, n_paths,
    redundant)`` and masks as one ``{value: ordinal bitmap}`` per
    dimension.

    Everything per-cell happens inside C loops: one ``map`` decodes the
    key refs, one ``zip`` transpose rebuilds the key tuples, one
    four-column ``zip`` materialises the entry tuples, and each catalog
    mask is a single ``int.from_bytes``.
    """
    what = "cell index"
    _check_magic(buffer, INDEX_MAGIC, what)
    header = _read_header(buffer, len(INDEX_MAGIC), 6, what)
    _, n_cuboids, n_cells, n_dims, n_strings, blob_len = header
    offset = len(INDEX_MAGIC) + 6 * _I64
    strings, offset = _read_strings(buffer, offset, n_strings, blob_len, what)
    cuboid_table = _read_i64(buffer, offset, n_cuboids * (2 + n_dims), what)
    offset += n_cuboids * (2 + n_dims) * _I64
    key_refs = _read_i64(buffer, offset, n_cells * n_dims, what)
    offset += n_cells * n_dims * _I64
    heap_offsets = _read_i64(buffer, offset, n_cells, what)
    offset += n_cells * _I64
    heap_lengths = _read_i64(buffer, offset, n_cells, what)
    offset += n_cells * _I64
    n_paths_column = _read_i64(buffer, offset, n_cells, what)
    offset += n_cells * _I64
    if offset + n_cells > len(buffer):
        raise StoreError(f"corrupt {what}: truncated redundant column")
    redundant_column = buffer[offset : offset + n_cells]
    offset += n_cells + _pad8(n_cells)
    mask_counts = _read_i64(buffer, offset, n_cuboids * n_dims, what)
    offset += n_cuboids * n_dims * _I64
    total_masks = sum(mask_counts)
    mask_refs = _read_i64(buffer, offset, total_masks, what)
    offset += total_masks * _I64

    keys = _key_tuples(strings, key_refs, n_dims, n_cells)
    entries = list(
        zip(
            heap_offsets,
            heap_lengths,
            n_paths_column,
            map(bool, redundant_column),
        )
    )
    out = []
    position = 0
    row = 0
    mask_row = 0
    mask_at = 0
    width = 2 + n_dims
    for _ in range(n_cuboids):
        count = cuboid_table[row]
        path_level_id = cuboid_table[row + 1]
        item_level = tuple(cuboid_table[row + 2 : row + width])
        row += width
        n_bytes = (count + 7) >> 3
        padded = n_bytes + _pad8(n_bytes)
        masks: list[dict[str, int]] = []
        for dim in range(n_dims):
            n_values = mask_counts[mask_row + dim]
            per_dim: dict[str, int] = {}
            for ref in mask_refs[mask_at : mask_at + n_values]:
                end = offset + padded
                if end > len(buffer):
                    raise StoreError(f"corrupt {what}: truncated mask bits")
                per_dim[strings[ref]] = int.from_bytes(
                    buffer[offset:end], "little"
                )
                offset = end
            mask_at += n_values
            masks.append(per_dim)
        mask_row += n_dims
        out.append(
            (
                item_level,
                path_level_id,
                keys[position : position + count],
                entries[position : position + count],
                masks,
            )
        )
        position += count
    return out
