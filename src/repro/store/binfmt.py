"""Binary on-disk codecs: columnar partitions and the packed cell index.

CSV partitions and one-JSON-file-per-cell cap the store's scale: every
pack pass re-parses text, and opening a cube costs one ``stat`` +
``json.loads`` per cell.  This module defines the two compact binary
layouts behind the ``"binary"`` store format (see DESIGN.md for byte
diagrams):

* :func:`pack_partition` / :func:`unpack_partition` — a columnar
  partition file (``part-XXXXX.bin``): one interned string table plus
  ``int64`` reference/offset arenas and a ``float64`` duration arena,
  so :func:`~repro.store.partition.read_partition` rebuilds a
  :class:`~repro.core.path_database.PathDatabase` with bulk
  ``array.frombytes`` decodes instead of per-field text parsing;
* :func:`pack_cell_index` / :func:`unpack_cell_index` — the cell-heap
  offset/key index (``cells.idx``): every cuboid's cell keys and
  ``(offset, length, n_paths, redundant)`` entries in grouped columnar
  arenas, so :class:`~repro.store.cube_store.CubeStore` materialises
  its whole in-memory index with a handful of C-speed ``zip`` passes
  and *zero* cell-payload IO;
* :class:`StringTable` — the shared per-store intern table
  (``strings.bin``): one mmap'd vocabulary for every partition, with
  ``FCPART02`` partitions carrying only a small local→global remap
  arena instead of a private copy of the location/product strings;
* :func:`encode_cell_payload` / :func:`decode_cell_payload` /
  :func:`decode_cell_parts` — the compact ``FCHEAP02`` cell codec:
  varint-packed flowgraph counters with a parent-ordinal node
  encoding, bulk ``int32`` record ids, and (optionally zlib'd) JSON
  exception lists, byte-identical through ``cube_to_json``;
* :class:`MaskArena` / :class:`LazyMaskMap` — lazily-sliced catalog
  masks: ``cells.idx`` stays mmap'd and each ``(cuboid, dim, value)``
  bitmap is decoded with one ``int.from_bytes`` over the map the first
  time a query actually ANDs it, never during open.

Framing rules shared by the ``int64`` codecs:

* all integers are native-endian ``int64`` (``array('q')``), durations
  native ``float64`` (``array('d')``); the header leads with
  :data:`ORDER_TAG`, whose bytes read back wrong on a foreign-endian
  host, turning silent corruption into a :class:`StoreError`;
* every arena starts on an 8-byte boundary (the UTF-8 string blob is
  zero-padded), and decoding slices **exactly** the bytes each arena
  owns before ``frombytes`` — never a full-buffer ``cast('q')``, which
  breaks the moment a variable-length blob is not a multiple of eight;
* decode buffers may be ``bytes``, a ``memoryview``, or an ``mmap`` —
  every slice taken is exactly the bytes an arena owns, so an mmap'd
  reader touches only the pages it needs.

The cell heap (``cells.bin``) is an append-only blob of
``<q``-length-prefixed payloads after :data:`HEAP_MAGIC` (generation 1,
JSON payloads) or :data:`HEAP_MAGIC_V2` (generation 2,
:func:`encode_cell_payload` binary payloads), addressed only through
the index offsets.
"""

from __future__ import annotations

import json
import mmap
import os
import struct
import zlib
from array import array
from collections.abc import Iterable, Sequence
from pathlib import Path as FsPath

from repro.core.flowgraph import FlowGraph, FlowGraphNode
from repro.core.path import Path, PathRecord
from repro.core.path_database import PathDatabase, PathSchema
from repro.core.stage import Stage
from repro.errors import StoreError

__all__ = [
    "DEFAULT_STORE_FORMAT",
    "HEAP_MAGIC",
    "HEAP_MAGIC_V2",
    "INDEX_MAGIC",
    "PARTITION_MAGIC",
    "PARTITION_MAGIC_V2",
    "STORE_FORMATS",
    "STRINGS_FILENAME",
    "STRINGS_MAGIC",
    "LazyMaskMap",
    "MaskArena",
    "StringTable",
    "decode_cell_parts",
    "decode_cell_payload",
    "encode_cell_payload",
    "heap_generation",
    "pack_cell_index",
    "pack_partition",
    "pack_segment_offset",
    "split_segment_offset",
    "unpack_cell_index",
    "unpack_partition",
]

#: Store-level format names: ``"binary"`` (columnar partitions + cell
#: heap) and ``"json"`` (CSV partitions + one JSON file per cell — the
#: portable interchange layout).
STORE_FORMATS = ("binary", "json")

#: New stores default to the compact binary layout.
DEFAULT_STORE_FORMAT = "binary"

#: Leading 8 bytes of a generation-1 columnar partition file (private
#: per-partition string table).
PARTITION_MAGIC = b"FCPART01"

#: Leading 8 bytes of a generation-2 columnar partition file: string
#: references resolve through the shared store table via a
#: local→global remap arena.
PARTITION_MAGIC_V2 = b"FCPART02"

#: Leading 8 bytes of the shared per-store string table
#: (``strings.bin``).
STRINGS_MAGIC = b"FCSTRS01"

#: File name of the shared string table inside the partitions
#: directory.
STRINGS_FILENAME = "strings.bin"

#: Leading 8 bytes of a cell-heap index file (``cells.idx``).
INDEX_MAGIC = b"FCCIDX01"

#: Leading 8 bytes of a generation-1 cell-heap blob (JSON payloads).
HEAP_MAGIC = b"FCHEAP01"

#: Leading 8 bytes of a generation-2 cell-heap blob
#: (:func:`encode_cell_payload` binary payloads).
HEAP_MAGIC_V2 = b"FCHEAP02"

#: Endianness sentinel: stored as the first header word; a reader on a
#: host with the opposite byte order decodes a different value and
#: rejects the file instead of mis-addressing every arena.
ORDER_TAG = 0x0102030405060708

#: Length prefix framing one heap payload (always little-endian — the
#: heap is only ever addressed through index offsets; the prefix exists
#: for recovery tools walking the blob).
HEAP_LENGTH_STRUCT = struct.Struct("<q")

#: Delta-segment addressing: an index offset is a plain i64, so the high
#: bits carry the segment id — segment 0 is the base ``cells.bin`` heap,
#: segment *n* ≥ 1 the append-only ``cells.delta.{n:03d}.bin`` file.
#: 48 bits of local offset (256 TiB per segment) and 15 usable segment
#: bits keep the packed value positive in an i64.
SEGMENT_SHIFT = 48
SEGMENT_OFFSET_MASK = (1 << SEGMENT_SHIFT) - 1
MAX_SEGMENT_ID = (1 << (63 - SEGMENT_SHIFT)) - 1

_I64 = 8


def pack_segment_offset(segment_id: int, offset: int) -> int:
    """Tag a heap-local *offset* with its delta *segment_id*.

    Segment 0 round-trips to the bare offset, so base-heap entries are
    bit-identical to the pre-delta layout and old readers of fully
    compacted stores see nothing new.
    """
    if not 0 <= segment_id <= MAX_SEGMENT_ID:
        raise StoreError(
            f"delta segment id {segment_id} out of range (compact first)"
        )
    if not 0 <= offset <= SEGMENT_OFFSET_MASK:
        raise StoreError(f"heap offset {offset} exceeds the segment span")
    return (segment_id << SEGMENT_SHIFT) | offset


def split_segment_offset(packed: int) -> tuple[int, int]:
    """Inverse of :func:`pack_segment_offset`: ``(segment_id, offset)``."""
    return packed >> SEGMENT_SHIFT, packed & SEGMENT_OFFSET_MASK


def _pad8(n: int) -> int:
    """Zero bytes needed to round *n* up to an 8-byte boundary."""
    return (-n) % 8


def _pack_strings(strings: Iterable[str]) -> tuple[bytes, bytes, int]:
    """Intern table → (offsets arena, padded UTF-8 blob, blob length)."""
    encoded = [s.encode("utf-8") for s in strings]
    offsets = array("q", [0])
    position = 0
    for chunk in encoded:
        position += len(chunk)
        offsets.append(position)
    blob = b"".join(encoded)
    return offsets.tobytes(), blob + b"\x00" * _pad8(len(blob)), len(blob)


def _check_magic(buffer: bytes, magic: bytes, what: str) -> None:
    if len(buffer) < len(magic) or buffer[: len(magic)] != magic:
        raise StoreError(f"not a {what}: bad magic")


def _read_header(buffer: bytes, offset: int, count: int, what: str) -> array:
    header = _read_i64(buffer, offset, count, what)
    if header[0] != ORDER_TAG:
        raise StoreError(
            f"cannot read {what}: byte-order tag mismatch "
            "(file written on a host with different endianness?)"
        )
    return header


def _read_i64(buffer: bytes, offset: int, count: int, what: str) -> array:
    """Decode exactly *count* int64s at *offset* (never a full-buffer cast)."""
    end = offset + count * _I64
    if end > len(buffer):
        raise StoreError(f"corrupt {what}: truncated at byte {offset}")
    out = array("q")
    out.frombytes(buffer[offset:end])
    return out


def _read_f64(buffer: bytes, offset: int, count: int, what: str) -> array:
    end = offset + count * _I64
    if end > len(buffer):
        raise StoreError(f"corrupt {what}: truncated at byte {offset}")
    out = array("d")
    out.frombytes(buffer[offset:end])
    return out


def _read_strings(
    buffer: bytes, offset: int, n_strings: int, blob_len: int, what: str
) -> tuple[list[str], int]:
    """Decode the intern table; returns (strings, offset past the blob)."""
    offsets = _read_i64(buffer, offset, n_strings + 1, what)
    blob_start = offset + (n_strings + 1) * _I64
    blob_end = blob_start + blob_len
    if blob_end > len(buffer):
        raise StoreError(f"corrupt {what}: truncated string blob")
    blob = buffer[blob_start:blob_end]
    if not isinstance(blob, bytes):
        blob = bytes(blob)
    strings = [
        blob[offsets[i] : offsets[i + 1]].decode("utf-8")
        for i in range(n_strings)
    ]
    return strings, blob_end + _pad8(blob_len)


def _key_tuples(
    strings: list[str], refs: array, n_dims: int, n_rows: int
) -> list[tuple[str, ...]]:
    """Rebuild *n_rows* width-``n_dims`` tuples from flat string refs."""
    if n_dims == 0:
        return [()] * n_rows
    decoded = list(map(strings.__getitem__, refs))
    return list(zip(*(decoded[d::n_dims] for d in range(n_dims))))


# --------------------------------------------------------------------------
# Shared string table (strings.bin)
# --------------------------------------------------------------------------


class StringTable:
    """The shared per-store intern table backing ``FCPART02`` partitions.

    On disk (``strings.bin``)::

        FCSTRS01 | header i64[3] | string offsets i64[S+1] | utf8 blob ⌈8⌉

    header = [ORDER_TAG, n_strings S, blob byte length].  The table is
    **append-only**: global ids are stable across saves, so a reader
    holding an older map keeps resolving every id it has ever seen while
    a writer interns new vocabulary and atomically replaces the file.

    Loaded tables are mmap'd and decoded lazily — :meth:`get` slices one
    string out of the map the first time its id is referenced and
    memoises the result, so every partition sharing a location ends up
    with the *same* ``str`` object (identity-friendly hashing downstream)
    and an open touches only the vocabulary it actually resolves.
    """

    __slots__ = (
        "_blob_start",
        "_file",
        "_ids",
        "_mm",
        "_offsets",
        "_n_disk",
        "_strings",
    )

    def __init__(self) -> None:
        self._strings: list[str | None] = []
        self._ids: dict[str, int] | None = {}
        self._mm: mmap.mmap | None = None
        self._file = None
        self._offsets: array | None = None
        self._blob_start = 0
        self._n_disk = 0

    def __len__(self) -> int:
        return len(self._strings)

    @property
    def dirty(self) -> bool:
        """True when :meth:`intern` added strings not yet saved."""
        return len(self._strings) > self._n_disk

    def intern(self, value: str) -> int:
        """Global id of *value*, appending it if new."""
        ids = self._ids
        if ids is None:
            ids = {self.get(ref): ref for ref in range(len(self._strings))}
            self._ids = ids
        ref = ids.get(value)
        if ref is None:
            ref = len(self._strings)
            self._strings.append(value)
            ids[value] = ref
        return ref

    def get(self, ref: int) -> str:
        """The string with global id *ref* (lazily decoded from the map)."""
        try:
            value = self._strings[ref]
        except IndexError:
            raise StoreError(
                f"string table has no id {ref} (stale partition?)"
            ) from None
        if value is None:
            mm = self._mm
            if mm is None:
                raise StoreError("string table is closed")
            offsets = self._offsets
            start = self._blob_start + offsets[ref]
            value = mm[start : self._blob_start + offsets[ref + 1]].decode(
                "utf-8"
            )
            self._strings[ref] = value
        return value

    @classmethod
    def load(cls, path) -> "StringTable":
        """Map ``strings.bin`` at *path* (validating magic and byte order)."""
        what = "string table"
        try:
            handle = open(path, "rb")
        except OSError as exc:
            raise StoreError(f"cannot open string table {path}: {exc}") from None
        try:
            mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except (OSError, ValueError) as exc:
            handle.close()
            raise StoreError(f"cannot map string table {path}: {exc}") from None
        try:
            _check_magic(mapped, STRINGS_MAGIC, what)
            header = _read_header(mapped, len(STRINGS_MAGIC), 3, what)
            _, n_strings, blob_len = header
            offset = len(STRINGS_MAGIC) + 3 * _I64
            offsets = _read_i64(mapped, offset, n_strings + 1, what)
            blob_start = offset + (n_strings + 1) * _I64
            if blob_start + blob_len > len(mapped):
                raise StoreError(f"corrupt {what}: truncated string blob")
        except StoreError:
            mapped.close()
            handle.close()
            raise
        table = cls()
        table._mm = mapped
        table._file = handle
        table._offsets = offsets
        table._blob_start = blob_start
        table._strings = [None] * n_strings
        table._n_disk = n_strings
        table._ids = None
        return table

    def save(self, path) -> None:
        """Atomically (re)write the table at *path* (temp + rename)."""
        strings = [self.get(ref) for ref in range(len(self._strings))]
        offsets_bytes, blob_bytes, blob_len = _pack_strings(strings)
        header = array("q", [ORDER_TAG, len(strings), blob_len])
        path = FsPath(path)
        temp = path.parent / (path.name + ".tmp")
        temp.write_bytes(
            b"".join((STRINGS_MAGIC, header.tobytes(), offsets_bytes, blob_bytes))
        )
        os.replace(temp, path)
        self._n_disk = len(strings)

    def close(self) -> None:
        """Release the map and file handle (ids already decoded stay valid)."""
        mapped, self._mm = self._mm, None
        handle, self._file = self._file, None
        if mapped is not None:
            mapped.close()
        if handle is not None:
            handle.close()

    def __enter__(self) -> "StringTable":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# --------------------------------------------------------------------------
# FCHEAP02 cell payload codec
# --------------------------------------------------------------------------

_HEAP2_RAW = 0x01  # payload is a verbatim JSON blob (shape fell outside codec)
_HEAP2_EXC = 0x02  # record carries a (JSON) exception list
_HEAP2_EXC_ZLIB = 0x04  # ... and it is zlib-compressed
_HEAP2_PURE = 0x08  # varint stream has no continuation bytes (list() decode)

#: Fixed head after the flags byte: varint stream length, strings blob
#: length, record-id count (record ids follow as little-endian int32).
_HEAP2_HEAD = struct.Struct("<III")
_HEAP2_EXC_LEN = struct.Struct("<I")

_PAYLOAD_KEYS = (
    "key",
    "item_level",
    "path_level",
    "record_ids",
    "redundant",
    "flowgraph",
)
_FLOWGRAPH_KEYS = ("n_paths", "nodes", "exceptions")
_NODE_KEYS = ("prefix", "count", "durations", "transitions")

_LITTLE_ENDIAN = struct.pack("=H", 1) == struct.pack("<H", 1)


class _NotStructured(Exception):
    """Payload shape falls outside the structured codec → store raw JSON."""


def _append_varint(out: bytearray, value: int) -> None:
    while value >= 0x80:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def _decode_varints(stream: bytes) -> list[int]:
    values: list[int] = []
    append = values.append
    pending = 0
    shift = 0
    for byte in stream:
        if byte < 0x80:
            if shift:
                append(pending | (byte << shift))
                pending = 0
                shift = 0
            else:
                append(byte)
        else:
            pending |= (byte & 0x7F) << shift
            shift += 7
    if shift:
        raise StoreError("corrupt cell payload: dangling varint")
    return values


def _json_bytes(payload) -> bytes:
    return json.dumps(payload, separators=(",", ":")).encode("utf-8")


def _checked_count(value) -> int:
    """A non-negative true ``int`` (bools and floats force the raw path)."""
    if type(value) is not int or value < 0:
        raise _NotStructured
    return value


def _encode_structured(payload: dict) -> bytes:
    if not isinstance(payload, dict) or tuple(payload) != _PAYLOAD_KEYS:
        raise _NotStructured
    flowgraph = payload["flowgraph"]
    if not isinstance(flowgraph, dict) or tuple(flowgraph) != _FLOWGRAPH_KEYS:
        raise _NotStructured
    strings: dict[str, int] = {}

    def sid(value: str) -> int:
        if type(value) is not str:
            raise _NotStructured
        ref = strings.get(value)
        if ref is None:
            ref = len(strings)
            strings[value] = ref
        return ref

    body = bytearray()
    key = payload["key"]
    item_level = payload["item_level"]
    record_ids = payload["record_ids"]
    nodes = flowgraph["nodes"]
    exceptions = flowgraph["exceptions"]
    if not (
        isinstance(key, (list, tuple))
        and isinstance(item_level, (list, tuple))
        and isinstance(record_ids, (list, tuple))
        and isinstance(nodes, list)
        and isinstance(exceptions, list)
    ):
        raise _NotStructured
    redundant = payload["redundant"]
    if redundant is not True and redundant is not False:
        raise _NotStructured
    _append_varint(body, len(key))
    for part in key:
        _append_varint(body, sid(part))
    _append_varint(body, len(item_level))
    for level in item_level:
        _append_varint(body, _checked_count(level))
    _append_varint(body, _checked_count(payload["path_level"]))
    body.append(1 if redundant else 0)
    _append_varint(body, _checked_count(flowgraph["n_paths"]))
    _append_varint(body, len(nodes))
    ordinals: dict[tuple, int] = {}
    for node in nodes:
        if not isinstance(node, dict) or tuple(node) != _NODE_KEYS:
            raise _NotStructured
        prefix = node["prefix"]
        if not isinstance(prefix, (list, tuple)) or not prefix:
            raise _NotStructured
        prefix = tuple(prefix)
        if len(prefix) == 1:
            _append_varint(body, 0)
        else:
            parent = ordinals.get(prefix[:-1])
            if parent is None:
                raise _NotStructured
            _append_varint(body, parent + 1)
        ordinals[prefix] = len(ordinals)
        _append_varint(body, sid(prefix[-1]))
        _append_varint(body, _checked_count(node["count"]))
        for mapping in (node["durations"], node["transitions"]):
            if not isinstance(mapping, dict):
                raise _NotStructured
            _append_varint(body, len(mapping))
            for text, count in mapping.items():
                _append_varint(body, sid(text))
                _append_varint(body, _checked_count(count))
    rid_arena = array("i")
    try:
        for rid in record_ids:
            if type(rid) is not int or rid < 0:
                raise _NotStructured
            rid_arena.append(rid)
    except OverflowError:
        raise _NotStructured from None
    if not _LITTLE_ENDIAN:
        rid_arena.byteswap()
    head = bytearray()
    _append_varint(head, len(strings))
    chunks = [text.encode("utf-8") for text in strings]
    for chunk in chunks:
        _append_varint(head, len(chunk))
    stream = bytes(head) + bytes(body)
    flags = 0
    if not stream or max(stream) < 0x80:
        flags |= _HEAP2_PURE
    exc_blob = b""
    if exceptions:
        flags |= _HEAP2_EXC
        exc_blob = _json_bytes(exceptions)
        packed = zlib.compress(exc_blob, 6)
        if len(packed) < len(exc_blob):
            flags |= _HEAP2_EXC_ZLIB
            exc_blob = packed
    blob = b"".join(chunks)
    try:
        parts = [
            bytes((flags,)),
            _HEAP2_HEAD.pack(len(stream), len(blob), len(rid_arena)),
            stream,
            blob,
            rid_arena.tobytes(),
        ]
        if exc_blob:
            parts.append(_HEAP2_EXC_LEN.pack(len(exc_blob)))
            parts.append(exc_blob)
    except struct.error:
        raise _NotStructured from None
    return b"".join(parts)


def encode_cell_payload(payload: dict) -> bytes:
    """Encode one cell payload as a generation-2 (``FCHEAP02``) record.

    Canonical payloads — the exact dict shape
    :meth:`~repro.store.cube_store.CubeStore.put_cell` writes — pack into
    one flags byte, a varint stream (parent-ordinal node encoding: each
    node stores its parent's ordinal and last location instead of the
    whole prefix), a per-cell UTF-8 string blob, a bulk little-endian
    ``int32`` record-id arena, and an optional (zlib'd when smaller)
    JSON exception blob.  Any payload outside that shape — foreign key
    order, bool/float counters, out-of-range record ids — falls back to
    a verbatim JSON record (:data:`_HEAP2_RAW`), so
    ``decode(encode(p)) == p`` holds for *every* JSON-compatible
    payload, byte-identical through ``cube_to_json``.
    """
    try:
        return _encode_structured(payload)
    except _NotStructured:
        return bytes((_HEAP2_RAW,)) + _json_bytes(payload)


def _split_heap2(buffer: bytes, flags: int):
    stream_len, blob_len, n_rids = _HEAP2_HEAD.unpack_from(buffer, 1)
    offset = 1 + _HEAP2_HEAD.size
    stream = buffer[offset : offset + stream_len]
    offset += stream_len
    blob = buffer[offset : offset + blob_len]
    offset += blob_len
    rid_end = offset + 4 * n_rids
    if rid_end > len(buffer):
        raise StoreError("corrupt cell payload: truncated record ids")
    rid_arena = array("i")
    rid_arena.frombytes(buffer[offset:rid_end])
    if not _LITTLE_ENDIAN:
        rid_arena.byteswap()
    exceptions: list = []
    if flags & _HEAP2_EXC:
        (exc_len,) = _HEAP2_EXC_LEN.unpack_from(buffer, rid_end)
        exc = buffer[rid_end + _HEAP2_EXC_LEN.size : rid_end + _HEAP2_EXC_LEN.size + exc_len]
        if flags & _HEAP2_EXC_ZLIB:
            exc = zlib.decompress(exc)
        exceptions = json.loads(exc)
    if flags & _HEAP2_PURE:
        values = list(stream)
    else:
        values = _decode_varints(stream)
    n_strings = values[0]
    strings: list[str] = []
    position = 0
    for length in values[1 : 1 + n_strings]:
        strings.append(blob[position : position + length].decode("utf-8"))
        position += length
    return values, 1 + n_strings, strings, rid_arena, exceptions


def decode_cell_payload(buffer: bytes) -> dict:
    """Decode a generation-2 heap record back into its payload dict.

    The result compares (and JSON-serialises) identically to what
    ``json.loads`` returns for the generation-1 record of the same cell
    — the parity contract ``migrate``/``convert`` assert per cell.
    """
    try:
        flags = buffer[0]
        if flags & _HEAP2_RAW:
            return json.loads(bytes(buffer[1:]))
        values, i, strings, rid_arena, exceptions = _split_heap2(buffer, flags)
        n_key = values[i]
        i += 1
        key = [strings[ref] for ref in values[i : i + n_key]]
        i += n_key
        n_item = values[i]
        i += 1
        item_level = values[i : i + n_item]
        i += n_item
        path_level = values[i]
        redundant = bool(values[i + 1])
        n_paths = values[i + 2]
        n_nodes = values[i + 3]
        i += 4
        nodes = []
        prefixes: list[list[str]] = []
        for _ in range(n_nodes):
            parent = values[i]
            location = strings[values[i + 1]]
            count = values[i + 2]
            i += 3
            if parent:
                prefix = prefixes[parent - 1] + [location]
            else:
                prefix = [location]
            prefixes.append(prefix)
            n = values[i]
            i += 1
            durations = {}
            for _ in range(n):
                durations[strings[values[i]]] = values[i + 1]
                i += 2
            n = values[i]
            i += 1
            transitions = {}
            for _ in range(n):
                transitions[strings[values[i]]] = values[i + 1]
                i += 2
            nodes.append(
                {
                    "prefix": prefix,
                    "count": count,
                    "durations": durations,
                    "transitions": transitions,
                }
            )
        return {
            "key": key,
            "item_level": item_level,
            "path_level": path_level,
            "record_ids": list(rid_arena),
            "redundant": redundant,
            "flowgraph": {
                "n_paths": n_paths,
                "nodes": nodes,
                "exceptions": exceptions,
            },
        }
    except (IndexError, ValueError, struct.error) as exc:
        raise StoreError(f"corrupt cell payload: {exc}") from None


def decode_cell_parts(buffer: bytes):
    """Decode a generation-2 record straight into live query objects.

    Returns ``(record_ids, redundant, flowgraph)`` without ever building
    the payload dict: nodes are constructed directly from the varint
    stream (``__new__`` + slot assignment, parents resolved by ordinal),
    skipping both ``json.loads`` and ``flowgraph_from_dict``.  This is
    the cold-slice hot path — materialising a cell is one pass over the
    stream, with the 1- and 2-entry tally dicts (the overwhelmingly
    common sizes) special-cased to dict literals.
    """
    from repro.core.serialization import exceptions_from_dicts, flowgraph_from_dict

    try:
        flags = buffer[0]
        if flags & _HEAP2_RAW:
            payload = json.loads(bytes(buffer[1:]))
            return (
                payload["record_ids"],
                payload["redundant"],
                flowgraph_from_dict(payload["flowgraph"]),
            )
        values, i, strings, rid_arena, exceptions = _split_heap2(buffer, flags)
        n_key = values[i]
        i += 1 + n_key
        n_item = values[i]
        i += 1 + n_item
        redundant = bool(values[i + 1])
        n_paths = values[i + 2]
        n_nodes = values[i + 3]
        i += 4
        graph = FlowGraph()
        graph.n_paths = n_paths
        index = graph._index  # noqa: SLF001 - same-package rebuild
        roots = graph._roots  # noqa: SLF001
        nodes: list[FlowGraphNode] = []
        new = FlowGraphNode.__new__
        for _ in range(n_nodes):
            parent_ordinal = values[i]
            location = strings[values[i + 1]]
            node = new(FlowGraphNode)
            node.count = values[i + 2]
            i += 3
            if parent_ordinal:
                parent = nodes[parent_ordinal - 1]
                prefix = parent.prefix + (location,)
                parent.children[location] = node
            else:
                prefix = (location,)
                roots[location] = node
            node.prefix = prefix
            n = values[i]
            i += 1
            if n == 1:
                node.duration_counts = {strings[values[i]]: values[i + 1]}
                i += 2
            elif n == 2:
                node.duration_counts = {
                    strings[values[i]]: values[i + 1],
                    strings[values[i + 2]]: values[i + 3],
                }
                i += 4
            else:
                end = i + 2 * n
                node.duration_counts = {
                    strings[values[j]]: values[j + 1] for j in range(i, end, 2)
                }
                i = end
            n = values[i]
            i += 1
            if n == 1:
                node.transition_counts = {strings[values[i]]: values[i + 1]}
                i += 2
            elif n == 2:
                node.transition_counts = {
                    strings[values[i]]: values[i + 1],
                    strings[values[i + 2]]: values[i + 3],
                }
                i += 4
            else:
                end = i + 2 * n
                node.transition_counts = {
                    strings[values[j]]: values[j + 1] for j in range(i, end, 2)
                }
                i = end
            node.children = {}
            index[prefix] = node
            nodes.append(node)
        if exceptions:
            graph.exceptions = exceptions_from_dicts(exceptions)
        return list(rid_arena), redundant, graph
    except (IndexError, ValueError, struct.error) as exc:
        raise StoreError(f"corrupt cell payload: {exc}") from None


def heap_generation(magic: bytes) -> int:
    """Heap generation for the leading 8 bytes of ``cells.bin``."""
    if magic == HEAP_MAGIC:
        return 1
    if magic == HEAP_MAGIC_V2:
        return 2
    raise StoreError("not a cell heap: bad magic")


# --------------------------------------------------------------------------
# Lazily-sliced catalog masks
# --------------------------------------------------------------------------


class MaskArena:
    """Owner of the masks region of an mmap'd ``cells.idx``.

    Hands out :class:`LazyMaskMap` views whose bitmaps are decoded from
    the map — one ``int.from_bytes`` over exactly the mask's bytes — the
    first time a query ANDs them, and memoised after that.  ``counters``
    (shared with the owning store backend) tallies every decode so the
    benchmark tripwire can prove masks really stream from the index.

    :meth:`close` materialises whatever the outstanding maps have *not*
    decoded yet before the buffer is dropped, so a catalog built against
    a superseded map keeps answering queries after ``maybe_reload()``
    swapped the backend underneath it.
    """

    __slots__ = ("_buffer", "_maps", "counters")

    def __init__(self, buffer, counters: dict | None = None) -> None:
        self._buffer = buffer
        self._maps: list[LazyMaskMap] = []
        self.counters = counters if counters is not None else {}

    def new_map(self, spans: dict[str, tuple[int, int]]) -> "LazyMaskMap":
        mask_map = LazyMaskMap(self, spans)
        self._maps.append(mask_map)
        return mask_map

    def read(self, start: int, end: int) -> int:
        buffer = self._buffer
        if buffer is None:
            raise StoreError("cell index is closed")
        self.counters["mask_bits_decoded"] = (
            self.counters.get("mask_bits_decoded", 0) + 1
        )
        return int.from_bytes(buffer[start:end], "little")

    def close(self, materialise: bool = True) -> None:
        """Drop the buffer, first decoding what live maps still need.

        *materialise* is False for a final (user-initiated) store close,
        where later mask reads are a caller bug and should raise rather
        than silently pay a full eager decode.
        """
        if self._buffer is None:
            return
        if materialise:
            for mask_map in self._maps:
                mask_map.materialise()
        self._buffer = None


class LazyMaskMap:
    """One cuboid dimension's ``{value: cell-ordinal bitmap}``, lazily.

    Quacks like the plain dict
    :class:`~repro.perf.query_kernel.CuboidKeyCatalog` used to copy the
    masks into — ``get`` / ``items`` / ``keys`` / iteration / ``len`` —
    but each bitmap stays a ``(start, end)`` span over the mmap'd index
    until the first access decodes it.
    """

    __slots__ = ("_arena", "_masks", "_spans")

    def __init__(self, arena: MaskArena, spans: dict[str, tuple[int, int]]) -> None:
        self._arena = arena
        self._spans = spans
        self._masks: dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._spans)

    def __contains__(self, value) -> bool:
        return value in self._spans

    def __iter__(self):
        return iter(self._spans)

    def keys(self):
        return self._spans.keys()

    def get(self, value, default=0):
        mask = self._masks.get(value)
        if mask is None:
            span = self._spans.get(value)
            if span is None:
                return default
            mask = self._arena.read(span[0], span[1])
            self._masks[value] = mask
        return mask

    def items(self):
        if len(self._masks) != len(self._spans):
            self.materialise()
        return self._masks.items()

    def materialise(self) -> None:
        """Decode every remaining span (used by :meth:`MaskArena.close`)."""
        masks = self._masks
        for value, span in self._spans.items():
            if value not in masks:
                masks[value] = self._arena.read(span[0], span[1])


# --------------------------------------------------------------------------
# Columnar partitions
# --------------------------------------------------------------------------


def pack_partition(
    database: PathDatabase, strings: StringTable | None = None
) -> bytes:
    """Encode *database* as one columnar partition blob.

    Without *strings* — the generation-1 layout, a self-contained file
    (all arenas 8-byte aligned)::

        FCPART01 | header i64[6] | string offsets i64[S+1] | utf8 blob ⌈8⌉
        | record_ids i64[R] | dim refs i64[R*D] | path offsets i64[R+1]
        | stage location refs i64[T] | stage durations f64[T]

    header = [ORDER_TAG, n_records R, n_dims D, n_strings S,
    blob byte length, total stages T].  Dimension values and stage
    locations share one interned string table, so repeated concepts and
    locations cost 8 bytes per reference; durations are exact IEEE
    doubles (no ``repr`` round-trip).

    With *strings* — the generation-2 layout: the private string table
    is replaced by a local→global **remap arena** into the shared store
    table (every value is interned into *strings*, which the caller
    saves as ``strings.bin``)::

        FCPART02 | header i64[6] | remap i64[S]
        | record_ids i64[R] | dim refs i64[R*D] | path offsets i64[R+1]
        | stage location refs i64[T] | stage durations f64[T]

    header = [ORDER_TAG, R, D, n_locals S, 0 (reserved), T]; dim and
    location refs stay partition-local (dense, decode-once), and the
    remap arena resolves them through the shared vocabulary.
    """
    interned: dict[str, int] = {}
    record_ids = array("q")
    dim_refs = array("q")
    path_offsets = array("q", [0])
    location_refs = array("q")
    durations = array("d")
    total_stages = 0
    for record in database:
        record_ids.append(record.record_id)
        for value in record.dims:
            dim_refs.append(interned.setdefault(value, len(interned)))
        for stage in record.path:
            location_refs.append(
                interned.setdefault(stage.location, len(interned))
            )
            durations.append(stage.duration)
        total_stages += len(record.path)
        path_offsets.append(total_stages)
    if strings is None:
        magic = PARTITION_MAGIC
        offsets_bytes, blob_bytes, blob_len = _pack_strings(interned)
        table_bytes = offsets_bytes + blob_bytes
    else:
        magic = PARTITION_MAGIC_V2
        blob_len = 0
        remap = array("q", [strings.intern(value) for value in interned])
        table_bytes = remap.tobytes()
    header = array(
        "q",
        [
            ORDER_TAG,
            len(database),
            database.schema.n_dimensions,
            len(interned),
            blob_len,
            total_stages,
        ],
    )
    return b"".join(
        (
            magic,
            header.tobytes(),
            table_bytes,
            record_ids.tobytes(),
            dim_refs.tobytes(),
            path_offsets.tobytes(),
            location_refs.tobytes(),
            durations.tobytes(),
        )
    )


def unpack_partition(
    buffer, schema: PathSchema, strings: StringTable | None = None
) -> PathDatabase:
    """Decode a :func:`pack_partition` blob back into a database.

    Accepts either generation (dispatch on the magic); generation-2
    buffers additionally need the store's shared :class:`StringTable`.
    *buffer* may be ``bytes`` or a ``memoryview`` over an mmap'd file —
    every arena is sliced exactly, so a mapped read touches only the
    pages the decode needs.

    The whole decode is bulk work — ``frombytes`` per arena, one
    ``zip`` transpose for the dim tuples, one ``map`` over
    :class:`Stage` — with the only per-record Python being the final
    :class:`PathRecord` construction.  Validation against the schema is
    skipped: partitions are written by :func:`pack_partition` from an
    already-validated database.
    """
    what = "columnar partition"
    if len(buffer) >= 8 and buffer[:8] == PARTITION_MAGIC_V2:
        shared = True
    else:
        _check_magic(buffer, PARTITION_MAGIC, what)
        shared = False
    header = _read_header(buffer, len(PARTITION_MAGIC), 6, what)
    _, n_records, n_dims, n_strings, blob_len, total_stages = header
    if n_dims != schema.n_dimensions:
        raise StoreError(
            f"partition has {n_dims} dimensions, schema expects "
            f"{schema.n_dimensions}"
        )
    offset = len(PARTITION_MAGIC) + 6 * _I64
    if shared:
        if strings is None:
            raise StoreError(
                "partition references the shared string table, but the "
                "store has no strings.bin"
            )
        remap = _read_i64(buffer, offset, n_strings, what)
        offset += n_strings * _I64
        table_get = strings.get
        strings = [table_get(ref) for ref in remap]
    else:
        strings, offset = _read_strings(
            buffer, offset, n_strings, blob_len, what
        )
    record_ids = _read_i64(buffer, offset, n_records, what)
    offset += n_records * _I64
    dim_refs = _read_i64(buffer, offset, n_records * n_dims, what)
    offset += n_records * n_dims * _I64
    path_offsets = _read_i64(buffer, offset, n_records + 1, what)
    offset += (n_records + 1) * _I64
    location_refs = _read_i64(buffer, offset, total_stages, what)
    offset += total_stages * _I64
    duration_values = _read_f64(buffer, offset, total_stages, what)

    dim_tuples = _key_tuples(strings, dim_refs, n_dims, n_records)
    stages = list(
        map(Stage, map(strings.__getitem__, location_refs), duration_values)
    )
    records = []
    append = records.append
    for i in range(n_records):
        path = object.__new__(Path)
        object.__setattr__(
            path, "stages", tuple(stages[path_offsets[i] : path_offsets[i + 1]])
        )
        append(PathRecord(record_ids[i], dim_tuples[i], path))
    return PathDatabase(schema, records, validate=False)


# --------------------------------------------------------------------------
# Cell-heap index
# --------------------------------------------------------------------------


def pack_cell_index(
    cuboids: Iterable[
        tuple[
            Sequence[int],
            int,
            Iterable[tuple[tuple[str, ...], int, int, int, bool]],
        ]
    ],
    n_dims: int,
) -> bytes:
    """Encode every cuboid's key/offset columns as one ``cells.idx`` blob.

    *cuboids* yields ``(item_level_ids, path_level_id, cells)`` where
    each cell is ``(key, heap offset, payload length, n_paths,
    redundant)``.  Layout::

        FCCIDX01 | header i64[6] | string offsets i64[S+1] | utf8 blob ⌈8⌉
        | cuboid table i64[C*(2+D)] | key refs i64[N*D]
        | offsets i64[N] | lengths i64[N] | n_paths i64[N]
        | redundant u8[N] ⌈8⌉
        | mask counts i64[C*D] | mask value refs i64[M]
        | mask bits (per mask, ⌈cuboid cells / 8⌉ bytes ⌈8⌉)

    header = [ORDER_TAG, n_cuboids C, n_cells N, n_dims D, n_strings S,
    blob byte length].  Cuboid table rows are ``[n_cells,
    path_level_id, item_level…]``; the global columns are grouped by
    cuboid in table order, so a reader slices each cuboid's run without
    any per-cell bookkeeping.

    The trailing masks section precomputes what
    :class:`~repro.perf.query_kernel.CuboidKeyCatalog` would otherwise
    derive cell by cell: for every (cuboid, dimension, distinct value),
    a little-endian bitmap of the cell *ordinals* holding that value.
    M is the total distinct-value count; each mask occupies the
    cuboid's ``⌈cells/8⌉`` bytes zero-padded to 8, so a reader
    reconstructs every catalog with one ``int.from_bytes`` per value
    instead of a Python pass over every cell.
    """
    interned: dict[str, int] = {}
    cuboid_table = array("q")
    key_refs = array("q")
    offsets = array("q")
    lengths = array("q")
    n_paths_column = array("q")
    redundant_column = bytearray()
    mask_counts = array("q")
    mask_refs = array("q")
    mask_bits: list[bytes] = []
    n_cuboids = 0
    n_cells = 0
    for item_level, path_level_id, cells in cuboids:
        n_cuboids += 1
        count = 0
        buckets: list[dict[int, list[int]]] = [{} for _ in range(n_dims)]
        for key, offset, length, n_paths, redundant in cells:
            for dim, part in enumerate(key):
                ref = interned.setdefault(part, len(interned))
                key_refs.append(ref)
                buckets[dim].setdefault(ref, []).append(count)
            count += 1
            offsets.append(offset)
            lengths.append(length)
            n_paths_column.append(n_paths)
            redundant_column.append(1 if redundant else 0)
        row = array("q", [count, path_level_id])
        row.extend(item_level)
        if len(row) != 2 + n_dims:
            raise StoreError(
                f"item level width {len(row) - 2} does not match "
                f"{n_dims} dimensions"
            )
        cuboid_table.extend(row)
        n_cells += count
        n_bytes = (count + 7) >> 3
        padded = n_bytes + _pad8(n_bytes)
        for per_dim in buckets:
            mask_counts.append(len(per_dim))
            for ref, positions in per_dim.items():
                mask_refs.append(ref)
                bits = bytearray(padded)
                for position in positions:
                    bits[position >> 3] |= 1 << (position & 7)
                mask_bits.append(bytes(bits))
    offsets_bytes, blob_bytes, blob_len = _pack_strings(interned)
    header = array(
        "q",
        [ORDER_TAG, n_cuboids, n_cells, n_dims, len(interned), blob_len],
    )
    return b"".join(
        (
            INDEX_MAGIC,
            header.tobytes(),
            offsets_bytes,
            blob_bytes,
            cuboid_table.tobytes(),
            key_refs.tobytes(),
            offsets.tobytes(),
            lengths.tobytes(),
            n_paths_column.tobytes(),
            bytes(redundant_column),
            b"\x00" * _pad8(len(redundant_column)),
            mask_counts.tobytes(),
            mask_refs.tobytes(),
            *mask_bits,
        )
    )


def unpack_cell_index(
    buffer,
    mask_arena: MaskArena | None = None,
) -> list[
    tuple[
        tuple[int, ...],
        int,
        list[tuple[str, ...]],
        list[tuple[int, int, int, bool]],
        list,
    ]
]:
    """Decode ``cells.idx`` → ``[(item_level_ids, path_level_id, keys,
    entries, masks)]`` with entries as ``(offset, length, n_paths,
    redundant)`` and masks as one ``{value: ordinal bitmap}`` mapping
    per dimension.

    Everything per-cell happens inside C loops: one ``map`` decodes the
    key refs, one ``zip`` transpose rebuilds the key tuples, one
    four-column ``zip`` materialises the entry tuples.

    Without *mask_arena* each catalog mask is decoded eagerly (a single
    ``int.from_bytes`` per value).  With it — an arena wrapping the
    same (typically mmap'd) *buffer* — masks come back as
    :class:`LazyMaskMap` views holding only byte spans: the open does
    **zero** mask decoding, and each bitmap streams out of the map the
    first time a query ANDs it.
    """
    what = "cell index"
    _check_magic(buffer, INDEX_MAGIC, what)
    header = _read_header(buffer, len(INDEX_MAGIC), 6, what)
    _, n_cuboids, n_cells, n_dims, n_strings, blob_len = header
    offset = len(INDEX_MAGIC) + 6 * _I64
    strings, offset = _read_strings(buffer, offset, n_strings, blob_len, what)
    cuboid_table = _read_i64(buffer, offset, n_cuboids * (2 + n_dims), what)
    offset += n_cuboids * (2 + n_dims) * _I64
    key_refs = _read_i64(buffer, offset, n_cells * n_dims, what)
    offset += n_cells * n_dims * _I64
    heap_offsets = _read_i64(buffer, offset, n_cells, what)
    offset += n_cells * _I64
    heap_lengths = _read_i64(buffer, offset, n_cells, what)
    offset += n_cells * _I64
    n_paths_column = _read_i64(buffer, offset, n_cells, what)
    offset += n_cells * _I64
    if offset + n_cells > len(buffer):
        raise StoreError(f"corrupt {what}: truncated redundant column")
    redundant_column = buffer[offset : offset + n_cells]
    offset += n_cells + _pad8(n_cells)
    mask_counts = _read_i64(buffer, offset, n_cuboids * n_dims, what)
    offset += n_cuboids * n_dims * _I64
    total_masks = sum(mask_counts)
    mask_refs = _read_i64(buffer, offset, total_masks, what)
    offset += total_masks * _I64

    keys = _key_tuples(strings, key_refs, n_dims, n_cells)
    entries = list(
        zip(
            heap_offsets,
            heap_lengths,
            n_paths_column,
            map(bool, redundant_column),
        )
    )
    out = []
    position = 0
    row = 0
    mask_row = 0
    mask_at = 0
    width = 2 + n_dims
    for _ in range(n_cuboids):
        count = cuboid_table[row]
        path_level_id = cuboid_table[row + 1]
        item_level = tuple(cuboid_table[row + 2 : row + width])
        row += width
        n_bytes = (count + 7) >> 3
        padded = n_bytes + _pad8(n_bytes)
        masks: list = []
        for dim in range(n_dims):
            n_values = mask_counts[mask_row + dim]
            end = offset + n_values * padded
            if end > len(buffer):
                raise StoreError(f"corrupt {what}: truncated mask bits")
            if mask_arena is None:
                per_dim: dict[str, int] = {}
                for ref in mask_refs[mask_at : mask_at + n_values]:
                    per_dim[strings[ref]] = int.from_bytes(
                        buffer[offset : offset + padded], "little"
                    )
                    offset += padded
                masks.append(per_dim)
            else:
                spans: dict[str, tuple[int, int]] = {}
                for ref in mask_refs[mask_at : mask_at + n_values]:
                    spans[strings[ref]] = (offset, offset + padded)
                    offset += padded
                masks.append(mask_arena.new_map(spans))
            mask_at += n_values
        mask_row += n_dims
        out.append(
            (
                item_level,
                path_level_id,
                keys[position : position + count],
                entries[position : position + count],
                masks,
            )
        )
        position += count
    return out
