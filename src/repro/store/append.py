"""Incremental store append: delta-merge maintenance of a persisted cube.

:func:`append_records` ingests a batch of new path records into a
:class:`~repro.store.pathstore.PartitionedPathStore` and folds them into
the store's *persisted* cube without rebuilding it:

* **Algebraic counters** (Lemma 4.2) — each touched cell's flowgraph is
  updated by :meth:`~repro.core.flowgraph.FlowGraph.merge`-ing a delta
  graph built from the batch's aggregated paths; untouched cells are
  never read, let alone rewritten.
* **Iceberg frontier** — promotion candidates (batch keys the cube does
  not hold) are membership-counted through the partition catalog: with
  exceptions off the scan is Bloom-pruned to the partitions that might
  hold a candidate's members (:meth:`select_partitions`); with
  exceptions on the sweep is a single full pass (Lemma 4.3 needs the
  touched cells' complete path multisets anyway).  A *fractional* δ
  resolves against the grown record count, so untouched cells can fall
  below the frontier — they are demoted from the index without any
  heap IO, exactly as a rebuild would drop them.
* **Exceptions** (Lemma 4.3, holistic) — re-mined only for the dirty
  cells, through the same per-cell kernel and
  :class:`~repro.perf.pool.WorkerPool` fan-out the builder uses, so an
  appended cube is byte-identical (``cube_to_json``) to a from-scratch
  rebuild over the extended store.
* **Durability** — on the binary backend, dirty cells land in an
  append-only ``cells.delta.NNN.bin`` segment plus a full index overlay
  (``cells.delta.idx``); the base ``cells.bin`` is never rewritten.
  The meta publish is the commit point.  Once ``compact_after``
  segments pile up, :meth:`CubeStore.compact` folds them back into a
  clean base heap.

The in-memory counterpart (a :class:`~repro.core.flowcube.FlowCube`
updated in place) is :func:`repro.core.incremental.append_batch`; this
module follows the same promotion / demotion / ordering rules against
the on-disk index.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterable

from repro.core.aggregation import aggregate_path, weight_paths
from repro.core.flowcube import Cell, CellKey
from repro.core.flowgraph import FlowGraph
from repro.core.flowgraph_exceptions import (
    resolve_min_support,
    serial_exception_pass,
)
from repro.core.lattice import ItemLattice, ItemLevel
from repro.core.path import Path, PathRecord
from repro.errors import StoreError
from repro.store.cube_store import CubeStore, _new_append_stats

__all__ = ["append_records"]


def _roll_up(dims, item_level: ItemLevel, hierarchies) -> CellKey:
    return tuple(
        hierarchy.ancestor_at_level(value, level)
        for hierarchy, value, level in zip(hierarchies, dims, item_level)
    )


def _require_fresh(cube: CubeStore, store) -> dict:
    """The cube's build-stats snapshot, verified against the store.

    A crashed or out-of-band ingest leaves the store ahead of the cube;
    appending on top would bake the divergence into every later batch,
    so the mismatch is refused up front (before this batch's ingest).
    """
    if not cube.is_built:
        raise StoreError(
            f"no cube has been built at {cube.directory} "
            "(run `flowcube-store build` first)"
        )
    stats = cube.build_stats
    if stats is None or "records" not in stats:
        raise StoreError(
            "cube carries no build stats; rebuild it once before appending"
        )
    if int(stats["records"]) != len(store):
        raise StoreError(
            f"cube covers {stats['records']} records but the store holds "
            f"{len(store)}; the cube is stale — rebuild before appending"
        )
    return stats


def append_records(
    store,
    records: Iterable[PathRecord],
    *,
    cube: CubeStore | None = None,
    recompute_exceptions: bool = True,
    kernel: str = "bitmap",
    jobs: int = 1,
    pool=None,
    compact_after: int | None = 16,
) -> dict:
    """Ingest *records* and delta-merge them into the store's cube.

    Args:
        store: The :class:`~repro.store.pathstore.PartitionedPathStore`.
        records: New path records; ids must be strictly greater than the
            store's high-water mark (the ingest invariant).
        cube: An open :class:`CubeStore` handle over ``store/cube``, or
            ``None`` to open (and close) one for this call.
        recompute_exceptions: Re-mine (ε, δ) exceptions in dirty cells.
            Forced off when the cube was built without exceptions, so an
            append never diverges from what a rebuild would produce.
        kernel: Exception kernel, ``"bitmap"`` or ``"scan"``.
        jobs: Fan the dirty-cell exception pass over a worker pool of
            this size (``1`` = serial).
        pool: An already-running :class:`~repro.perf.pool.WorkerPool`
            to reuse instead of forking one (overrides *jobs*).
        compact_after: Fold delta segments into a clean base heap once
            this many are pending (``0``/``None`` disables).

    Returns:
        Statistics: records/partitions ingested, cells updated /
        created / promoted / demoted, candidates still below δ, pending
        delta segments, and cells compacted (0 unless the threshold
        tripped).

    Raises:
        StoreError: On id collisions, a missing or stale cube, or a
            cube predating build-stats provenance.
    """
    rows = list(records)
    owned_cube = cube is None
    if owned_cube:
        cube = store.cube_store()
    try:
        build_stats = _require_fresh(cube, store)
        if not rows:
            return {
                "ingested": 0,
                "partitions": 0,
                "updated": 0,
                "created": 0,
                "promoted": 0,
                "demoted": 0,
                "still_below_delta": 0,
                "delta_segments": len(cube.delta_segments),
                "compacted": 0,
            }
        # The cube was built with exceptions iff the build ran that
        # phase; re-mining cells of an exception-free cube would add
        # exceptions a rebuild (with the same flags) would not have.
        mine = recompute_exceptions and (
            "exceptions" in build_stats.get("phase_seconds", {})
        )
        store.ingest(rows)  # raises before the cube is touched
        result = _merge_batch(
            store, cube, rows, build_stats, mine, kernel, jobs, pool
        )
        result["compacted"] = 0
        if compact_after and len(cube.delta_segments) >= compact_after:
            result["compacted"] = cube.compact()
        result["delta_segments"] = len(cube.delta_segments)
        return result
    finally:
        if owned_cube:
            cube.close()


def _merge_batch(
    store, cube, rows, build_stats, mine, kernel, jobs, pool
) -> dict:
    schema = store.schema
    hierarchies = schema.dimensions
    lattice = cube.path_lattice
    levels = cube.item_levels
    if levels is None:
        # Cubes persisted before the build's item levels were recorded:
        # assume the full lattice (the builder's default).
        levels = list(ItemLattice([h.depth for h in hierarchies]))
    threshold = resolve_min_support(cube.min_support, len(store))
    index = cube._index  # noqa: SLF001 - same-package maintenance path

    # ------------------------------------------------------------------
    # classify the batch per item level
    # ------------------------------------------------------------------
    batch_groups: list[dict[CellKey, list[PathRecord]]] = []
    for item_level in levels:
        groups: dict[CellKey, list[PathRecord]] = {}
        for record in rows:
            key = _roll_up(record.dims, item_level, hierarchies)
            groups.setdefault(key, []).append(record)
        batch_groups.append(groups)

    # Existing key order and sizes per item level (identical across the
    # level's path-level cuboids — membership is path-level independent).
    existing_order: list[list[CellKey]] = []
    sizes: list[dict[CellKey, int]] = []
    for item_level in levels:
        order: list[CellKey] = []
        size: dict[CellKey, int] = {}
        for level_id in range(len(lattice)):
            entries = index.get((item_level, level_id))
            if entries:
                order = list(entries)
                size = {key: entry[-2] for key, entry in entries.items()}
                break
        existing_order.append(order)
        sizes.append(size)

    updated_keys: list[set[CellKey]] = []
    candidate_keys: list[set[CellKey]] = []
    for i in range(len(levels)):
        existing = sizes[i]
        updated_keys.append({k for k in batch_groups[i] if k in existing})
        candidate_keys.append({k for k in batch_groups[i] if k not in existing})

    # ------------------------------------------------------------------
    # one partition sweep: candidate membership + the paths dirty cells
    # will need (all touched-cell members with exceptions on; candidate
    # members only — Bloom-pruned — with exceptions off)
    # ------------------------------------------------------------------
    members: dict[tuple[int, CellKey], list[int]] = {}
    paths: dict[int, Path] = {}
    first_seen: dict[int, dict[CellKey, None]] = {}
    sweep_levels = [
        i
        for i in range(len(levels))
        if candidate_keys[i] or (mine and updated_keys[i])
    ]
    if sweep_levels:
        if mine:
            selected = None  # full pass: Lemma 4.3 needs every member path
        else:
            dim_names = schema.dimension_names
            chosen: set[int] = set()
            for i in sweep_levels:
                for key in candidate_keys[i]:
                    constraints = {
                        name: part
                        for name, part, depth in zip(
                            dim_names, key, levels[i]
                        )
                        if depth > 0
                    }
                    chosen.update(store.select_partitions(**constraints))
            selected = sorted(chosen)

        # Per distinct dims tuple: whether the record's path is needed,
        # its candidate hits, and its key per swept level (for the
        # first-seen cell ordering a rebuild would produce).
        classify_cache: dict[tuple, tuple] = {}

        def classify(dims: tuple) -> tuple:
            info = classify_cache.get(dims)
            if info is None:
                needs = False
                hits: list[tuple[int, CellKey]] = []
                keys: list[tuple[int, CellKey]] = []
                for i in sweep_levels:
                    key = _roll_up(dims, levels[i], hierarchies)
                    keys.append((i, key))
                    if key in candidate_keys[i]:
                        hits.append((i, key))
                        needs = True
                    elif key in updated_keys[i]:
                        needs = mine or needs
                info = (needs, tuple(hits), tuple(keys))
                classify_cache[dims] = info
            return info

        if selected is None:
            databases = (db for _, db in store.iter_partitions())
        else:
            databases = (store.load_partition(pid) for pid in selected)
        full_scan = selected is None
        for database in databases:
            for record in database:
                needs, hits, keys = classify(record.dims)
                if full_scan:
                    for i, key in keys:
                        if candidate_keys[i]:
                            first_seen.setdefault(i, {}).setdefault(key)
                if needs:
                    paths.setdefault(record.record_id, record.path)
                for i, key in hits:
                    members.setdefault((i, key), []).append(record.record_id)

    # Batch paths are always at hand, scan or no scan.
    for record in rows:
        paths.setdefault(record.record_id, record.path)

    # ------------------------------------------------------------------
    # resolve the frontier per item level
    # ------------------------------------------------------------------
    promoted: list[dict[CellKey, list[int]]] = []
    below = 0
    for i in range(len(levels)):
        crossed: dict[CellKey, list[int]] = {}
        for key in batch_groups[i]:
            if key not in candidate_keys[i]:
                continue
            member_ids = members.get((i, key), ())
            if len(member_ids) >= threshold:
                crossed[key] = list(member_ids)
            else:
                below += 1
        promoted.append(crossed)

    demoted_cells = 0
    final_order: list[list[CellKey]] = []
    merged_sizes: list[dict[CellKey, int]] = []
    for i in range(len(levels)):
        survivors: dict[CellKey, int] = {}
        n_levels_present = sum(
            1
            for level_id in range(len(lattice))
            if index.get((levels[i], level_id))
        )
        for key, n_paths in sizes[i].items():
            if key in updated_keys[i]:
                n_paths += len(batch_groups[i][key])
            if n_paths >= threshold:
                survivors[key] = n_paths
            else:
                demoted_cells += n_levels_present
                if key in updated_keys[i]:
                    updated_keys[i].discard(key)
        for key, member_ids in promoted[i].items():
            survivors[key] = len(member_ids)
        merged_sizes.append(survivors)

        if promoted[i]:
            if i in first_seen:
                # Full sweep: the rebuild's membership order, verbatim.
                order = [k for k in first_seen[i] if k in survivors]
            else:
                # Pruned sweep: recover each surviving cell's first
                # member id (ids ascend across ingests, so first-seen
                # key order ≡ ascending first-id order).
                first_ids: dict[CellKey, int] = {
                    key: ids[0] for key, ids in promoted[i].items()
                }
                if existing_order[i]:
                    ref_level = next(
                        level_id
                        for level_id in range(len(lattice))
                        if index.get((levels[i], level_id))
                    )
                    for key in existing_order[i]:
                        if key in survivors and key not in first_ids:
                            cell = cube.cell(
                                levels[i], key, lattice[ref_level]
                            )
                            first_ids[key] = cell.record_ids[0]
                order = sorted(survivors, key=first_ids.__getitem__)
        else:
            order = [k for k in existing_order[i] if k in survivors]
        final_order.append(order)

    # ------------------------------------------------------------------
    # materialise the dirty cells, in canonical cuboid order
    # ------------------------------------------------------------------
    agg_cache: dict[tuple[int, int], Path] = {}

    def aggregated(record_id: int, level_id: int) -> Path:
        memo_key = (record_id, level_id)
        path = agg_cache.get(memo_key)
        if path is None:
            path = aggregate_path(paths[record_id], lattice[level_id])
            agg_cache[memo_key] = path
        return path

    dirty: dict[tuple[ItemLevel, int, CellKey], Cell] = {}
    layout: list[tuple[ItemLevel, int, list[CellKey]]] = []
    triples: list[tuple[FlowGraph, tuple, None]] = []
    updated_cells = created_cells = 0
    for i, item_level in enumerate(levels):
        for level_id in range(len(lattice)):
            layout.append((item_level, level_id, final_order[i]))
            path_level = lattice[level_id]
            for key in final_order[i]:
                if key in updated_keys[i]:
                    old = cube.cell(item_level, key, path_level)
                    batch_records = batch_groups[i][key]
                    delta = FlowGraph()
                    for record in batch_records:
                        delta.add_path(
                            aggregated(record.record_id, level_id)
                        )
                    merged_ids = old.record_ids + tuple(
                        r.record_id for r in batch_records
                    )
                    cell = Cell(
                        key=key,
                        item_level=item_level,
                        path_level=path_level,
                        record_ids=merged_ids,
                        flowgraph=old.flowgraph.merge([delta]),
                        paths=(),
                        redundant=False,
                    )
                    updated_cells += 1
                elif key in promoted[i]:
                    member_ids = promoted[i][key]
                    weighted = weight_paths(
                        aggregated(rid, level_id) for rid in member_ids
                    )
                    graph = FlowGraph()
                    for path, weight in weighted:
                        graph.add_path(path, weight)
                    cell = Cell(
                        key=key,
                        item_level=item_level,
                        path_level=path_level,
                        record_ids=tuple(member_ids),
                        flowgraph=graph,
                        paths=(),
                        redundant=False,
                    )
                    created_cells += 1
                else:
                    continue  # untouched: keep the existing entry verbatim
                dirty[(item_level, level_id, key)] = cell
                if mine:
                    weighted = weight_paths(
                        aggregated(rid, level_id)
                        for rid in cell.record_ids
                    )
                    triples.append((cell.flowgraph, weighted, None))

    # ------------------------------------------------------------------
    # re-mine exceptions in the dirty cells only (Lemma 4.3)
    # ------------------------------------------------------------------
    if mine and triples:
        from repro.store.builder import _ensure_pool, _pooled_exception_pass

        run_pool, owned_pool = _ensure_pool(
            store, lattice, jobs, pool, None
        )
        try:
            if run_pool is not None:
                run = _pooled_exception_pass(
                    run_pool, cube.min_support, cube.min_deviation, kernel
                )
            else:
                run = serial_exception_pass(
                    cube.min_support, cube.min_deviation, kernel=kernel
                )
            run(triples)
        finally:
            if owned_pool:
                run_pool.close()

    # ------------------------------------------------------------------
    # publish: delta segment -> index overlay -> meta (the commit point)
    # ------------------------------------------------------------------
    engaged = False
    if dirty:
        engaged = cube.begin_delta()
    if dirty or demoted_cells:
        cube.merge_cells(dirty, layout)

    counters = build_stats.setdefault("append", _new_append_stats())
    counters["batches"] += 1
    counters["records_appended"] += len(rows)
    counters["cells_updated"] += updated_cells
    counters["cells_created"] += created_cells
    counters["cells_promoted"] += sum(len(p) for p in promoted)
    counters["cells_demoted"] += demoted_cells
    counters["still_below_delta"] += below
    counters["delta_segments"] = len(cube.delta_segments) + (
        1 if engaged else 0
    )
    build_stats["records"] = len(store)
    build_stats["partitions"] = len(store.catalog.partitions)
    build_stats["cells"] = cube.n_cells()
    seed = (
        f"{build_stats.get('version')}:append:{counters['batches']}:"
        f"{build_stats['records']}:{build_stats['cells']}"
    )
    build_stats["version"] = hashlib.sha1(
        seed.encode("utf-8")
    ).hexdigest()[:12]
    cube.flush()

    return {
        "ingested": len(rows),
        "partitions": len(store.catalog.partitions),
        "updated": updated_cells,
        "created": created_cells,
        "promoted": sum(len(p) for p in promoted),
        "demoted": demoted_cells,
        "still_below_delta": below,
    }
