"""Out-of-core flowcube construction over a partitioned store.

The in-memory pipeline (:meth:`~repro.core.flowcube.FlowCube.build`,
:func:`~repro.mining.shared.shared_mine`) assumes the whole path database —
and, for Shared, the whole encoded transaction database D' — fits in
memory.  This module re-runs the same algorithms *partition at a time*
against a :class:`~repro.store.pathstore.PartitionedPathStore`:

* :func:`shared_mine_store` is Algorithm 1 with every database pass split
  into per-partition scans.  Each scan encodes exactly one partition into
  a :class:`~repro.encoding.transactions.TransactionDatabase`, counts
  candidates against it with the scan-mode counter
  (:func:`~repro.mining.apriori.count_candidates`), and merges the partial
  supports into a running :class:`collections.Counter`.  Supports are
  additive over a disjoint partitioning of D', so the result is *exactly*
  :func:`shared_mine`'s — the test suite asserts equality.

* :func:`build_cube` materialises the iceberg cube with two scan families:
  a membership pass grouping record ids into cells (ids only — no paths
  are retained), then one aggregation pass per item level that rebuilds
  the iceberg cells' aggregated paths.  Cells come out identical to
  ``FlowCube.build``'s because partitions preserve record order, so group
  insertion order, ``record_ids`` tuples, path order, and the
  ``mine_exceptions`` inputs all coincide.

Peak memory is O(one partition + counters/cells), never O(database), and
:class:`BuildStats.max_live_transaction_dbs` *proves* the one-partition
claim: the encoder is wrapped in a live-count tracker and the recorded
peak is asserted to be 1 in the tests.
"""

from __future__ import annotations

import itertools
import time
from collections import Counter
from collections.abc import Iterable, Iterator, Mapping, Sequence
from dataclasses import dataclass

from repro.core.aggregation import aggregate_path
from repro.core.flowcube import Cell, CellKey, Cuboid, FlowCube
from repro.core.flowgraph import FlowGraph
from repro.core.flowgraph_exceptions import (
    Segment,
    mine_exceptions,
    resolve_min_support,
)
from repro.core.lattice import ItemLattice, ItemLevel, PathLattice, PathLevel
from repro.encoding.transactions import TransactionDatabase
from repro.errors import CubeError
from repro.mining.apriori import count_candidates, generate_candidates
from repro.mining.result import FlowMiningResult, item_sort_key
from repro.mining.shared import (
    high_level_projection,
    next_precount_length,
    precount_prune,
    shared_pair_filter,
    top_path_level_id,
)
from repro.mining.stats import MiningStats
from repro.store.pathstore import PartitionedPathStore

__all__ = ["BuildStats", "build_cube", "shared_mine_store"]


@dataclass
class BuildStats:
    """Counters collected during an out-of-core build.

    Attributes:
        partitions: Partition files in the store when the build started.
        records: Total path records scanned (per full pass).
        scans: Partition files read across the whole build.
        max_live_transaction_dbs: Peak number of encoded
            :class:`TransactionDatabase` instances alive at once — the
            out-of-core invariant says this never exceeds 1.
        cuboids: Cuboids materialised.
        cells: Iceberg cells materialised.
        elapsed_seconds: Wall-clock time of the build.
    """

    partitions: int = 0
    records: int = 0
    scans: int = 0
    max_live_transaction_dbs: int = 0
    cuboids: int = 0
    cells: int = 0
    elapsed_seconds: float = 0.0


class _LiveTracker:
    """Counts concurrently-alive encoded partitions and records the peak."""

    def __init__(self) -> None:
        self.live = 0
        self.peak = 0

    def enter(self) -> None:
        self.live += 1
        self.peak = max(self.peak, self.live)

    def exit(self) -> None:
        self.live -= 1


def _iter_encoded(
    store: PartitionedPathStore,
    path_lattice: PathLattice,
    tracker: _LiveTracker,
    build_stats: BuildStats | None = None,
) -> Iterator[list[frozenset]]:
    """Encode and yield one partition's transactions at a time.

    The tracker brackets each encoded partition's lifetime: ``exit`` runs
    when the consumer advances past the yield, before the next partition
    is encoded, so ``tracker.peak`` stays 1 unless a consumer holds on to
    a previous partition's transactions.
    """
    for _, database in store.iter_partitions():
        tracker.enter()
        try:
            encoded = TransactionDatabase(
                database, path_lattice, include_top_level=False
            )
            if build_stats is not None:
                build_stats.scans += 1
            yield [t.items for t in encoded.transactions]
        finally:
            tracker.exit()


def _high_projection(
    transaction: frozenset, path_lattice: PathLattice, top_id: int | None
) -> tuple:
    """One transaction's sorted high-abstraction-level item projection."""
    projected = {
        high_level_projection(item, path_lattice, top_id)
        for item in transaction
    }
    projected.discard(None)
    return tuple(sorted(projected, key=item_sort_key))


def shared_mine_store(
    store: PartitionedPathStore,
    path_lattice: PathLattice | None = None,
    min_support: float = 0.01,
    max_length: int | None = None,
    precount_lengths: tuple[int, ...] = (2,),
    build_stats: BuildStats | None = None,
) -> FlowMiningResult:
    """Algorithm 1 over a partitioned store, one partition in memory at a time.

    Level-wise structure, candidate generation, and every pruning rule are
    identical to :func:`~repro.mining.shared.shared_mine`; only the
    counting strategy differs — each logical pass over D' becomes a
    sequence of per-partition scans whose partial supports merge by
    Counter addition.  Supports are additive over the disjoint partition
    of D', so the mined result is exactly the in-memory one.

    Args:
        store: The partitioned path store (the database D).
        path_lattice: Interesting path levels (defaults to the paper's 4).
        min_support: δ, fractional (<1) or absolute, resolved against the
            store's total record count.
        max_length: Optional bound on pattern length.
        precount_lengths: As in ``shared_mine``; high-level projections
            are recomputed per scan instead of cached per transaction, so
            pre-counting stays O(partition) in memory.
        build_stats: Optional :class:`BuildStats` to fill (partition scans
            and the live-encoded-partition peak).

    Returns:
        A :class:`~repro.mining.result.FlowMiningResult`.
    """
    stats = MiningStats()
    started = time.perf_counter()
    if path_lattice is None:
        path_lattice = PathLattice.paper_default(store.schema.location)
    tracker = _LiveTracker()
    if build_stats is not None:
        build_stats.partitions = len(store.catalog.partitions)
        build_stats.records = len(store)
    threshold = resolve_min_support(min_support, len(store))
    top_id = top_path_level_id(path_lattice)

    # --- Scan 1: single-item counts + pre-count of length min(precount) ---
    counts: Counter = Counter()
    precounts: dict[int, Counter] = {}
    next_precount = next_precount_length(precount_lengths, 1)
    for transactions in _iter_encoded(store, path_lattice, tracker, build_stats):
        for transaction in transactions:
            counts.update(transaction)
            if next_precount is not None:
                high = _high_projection(transaction, path_lattice, top_id)
                table = precounts.setdefault(next_precount, Counter())
                for combo in itertools.combinations(high, next_precount):
                    table[frozenset(combo)] += 1
    stats.scans += 1
    stats.candidates_per_length[1] = len(counts)
    if next_precount in precounts:
        stats.precounted_patterns += len(precounts[next_precount])

    frequent_sorted = sorted(
        ((item,) for item, n in counts.items() if n >= threshold),
        key=lambda t: item_sort_key(t[0]),
    )
    stats.frequent_per_length[1] = len(frequent_sorted)
    supports: dict[frozenset, int] = {
        frozenset(t): counts[t[0]] for t in frequent_sorted
    }

    # --- Level-wise loop: one partitioned scan per candidate length ------
    length = 1
    while frequent_sorted and (max_length is None or length < max_length):
        candidates = generate_candidates(
            frequent_sorted, shared_pair_filter, stats, item_sort_key
        )
        candidates = precount_prune(
            candidates, precounts, threshold, path_lattice, top_id, stats
        )
        if not candidates:
            break
        next_precount = next_precount_length(precount_lengths, length + 1)
        precount_table: Counter | None = None
        if next_precount is not None and next_precount not in precounts:
            precount_table = precounts.setdefault(next_precount, Counter())
        support: Counter = Counter()
        for transactions in _iter_encoded(
            store, path_lattice, tracker, build_stats
        ):
            # Partial supports over a disjoint slice of D' — merging the
            # per-partition Counters is exact.
            support.update(count_candidates(transactions, candidates, None))
            if precount_table is not None:
                for transaction in transactions:
                    high = _high_projection(transaction, path_lattice, top_id)
                    for combo in itertools.combinations(high, next_precount):
                        precount_table[frozenset(combo)] += 1
        stats.scans += 1
        stats.candidates_per_length[length + 1] += len(candidates)
        if precount_table is not None:
            stats.precounted_patterns += len(precount_table)
        length += 1
        frequent_sorted = [c for c in candidates if support[c] >= threshold]
        stats.frequent_per_length[length] += len(frequent_sorted)
        for itemset in frequent_sorted:
            supports[frozenset(itemset)] = support[itemset]

    stats.elapsed_seconds = time.perf_counter() - started
    if build_stats is not None:
        build_stats.max_live_transaction_dbs = max(
            build_stats.max_live_transaction_dbs, tracker.peak
        )
        build_stats.elapsed_seconds += stats.elapsed_seconds
    return FlowMiningResult(
        supports=supports,
        threshold=threshold,
        n_transactions=len(store),
        schema=store.schema,
        path_lattice=path_lattice,
        stats=stats,
    )


def build_cube(
    store: PartitionedPathStore,
    path_lattice: PathLattice | None = None,
    item_levels: Iterable[ItemLevel] | None = None,
    min_support: float = 0.01,
    min_deviation: float = 0.1,
    compute_exceptions: bool = True,
    segments_by_cell: Mapping[
        tuple[ItemLevel, PathLevel, CellKey], Sequence[Segment]
    ]
    | None = None,
    use_shared: bool = False,
    into=None,
    stats: BuildStats | None = None,
):
    """Materialise the iceberg flowcube of a partitioned store.

    Produces exactly the cube :meth:`FlowCube.build` would produce over
    the concatenated store (same cuboids, cell keys, record ids, path
    order, flowgraphs, and exceptions) while reading one partition at a
    time:

    1. *Membership pass* — one scan grouping record ids per cell for every
       requested item level (ids only; partitions preserve record order,
       so the groups' insertion order matches the in-memory builder's).
    2. *Aggregation pass per item level* — re-scan the partitions and
       aggregate paths only for cells that met the iceberg threshold,
       then assemble that level's cuboids and (optionally) mine each
       cell's flowgraph exceptions.

    Args:
        store: The partitioned path store.
        path_lattice: Interesting path levels (defaults to the paper's 4).
        item_levels: Item levels to materialise (default: whole lattice).
        min_support: δ, fractional (<1) or absolute, resolved against the
            store's total record count.
        min_deviation: ε for exceptions.
        compute_exceptions: Skip exception mining when only the algebraic
            measure is needed.
        segments_by_cell: Pre-mined frequent segments, as from
            :meth:`FlowMiningResult.segments_by_cell`.
        use_shared: Run :func:`shared_mine_store` first and feed its
            segments into exception mining (ignored when
            ``segments_by_cell`` is given or exceptions are off).
        into: ``None`` to return an in-memory
            :class:`~repro.core.flowcube.FlowCube` (the store is then
            loaded once at the end to back it), or a
            :class:`~repro.store.cube_store.CubeStore` — each cuboid is
            persisted and dropped as soon as it is built, keeping the
            output out-of-core too.
        stats: Optional :class:`BuildStats` to fill.

    Returns:
        The :class:`FlowCube`, or *into* (flushed) when a cube store was
        given.
    """
    started = time.perf_counter()
    build_stats = stats if stats is not None else BuildStats()
    schema = store.schema
    item_lattice = ItemLattice([h.depth for h in schema.dimensions])
    if path_lattice is None:
        path_lattice = PathLattice.paper_default(schema.location)
    levels = list(item_levels) if item_levels is not None else list(item_lattice)
    for item_level in levels:
        if item_level not in item_lattice:
            raise CubeError(f"item level {item_level!r} outside the lattice")
    threshold = resolve_min_support(min_support, len(store))
    build_stats.partitions = len(store.catalog.partitions)
    build_stats.records = len(store)

    if (
        use_shared
        and compute_exceptions
        and segments_by_cell is None
    ):
        segments_by_cell = shared_mine_store(
            store,
            path_lattice,
            min_support=min_support,
            build_stats=build_stats,
        ).segments_by_cell()

    hierarchies = schema.dimensions

    def roll_up(dims: tuple, item_level: ItemLevel) -> CellKey:
        return tuple(
            hierarchy.ancestor_at_level(value, level)
            for hierarchy, value, level in zip(hierarchies, dims, item_level)
        )

    # --- Membership pass: record ids per cell, for every item level ------
    groups: dict[ItemLevel, dict[CellKey, list[int]]] = {
        item_level: {} for item_level in levels
    }
    for _, database in store.iter_partitions():
        build_stats.scans += 1
        for record in database:
            for item_level in levels:
                key = roll_up(record.dims, item_level)
                groups[item_level].setdefault(key, []).append(record.record_id)

    if into is not None:
        into.create(path_lattice, min_support, min_deviation)
        cube = None
    else:
        cube = FlowCube(
            store.load_all(), item_lattice, path_lattice, min_support,
            min_deviation,
        )

    # --- One aggregation pass per item level ------------------------------
    for item_level in levels:
        iceberg = {
            key: ids
            for key, ids in groups[item_level].items()
            if len(ids) >= threshold
        }
        # (key, path-level id) -> that cell's aggregated paths, in record
        # order — partitions arrive in id order, so order matches the
        # in-memory builder's per-cell tuple exactly.
        paths_by_cell: dict[tuple[CellKey, int], list] = {}
        for _, database in store.iter_partitions():
            build_stats.scans += 1
            for record in database:
                key = roll_up(record.dims, item_level)
                if key not in iceberg:
                    continue
                for level_id, path_level in enumerate(path_lattice):
                    paths_by_cell.setdefault((key, level_id), []).append(
                        aggregate_path(record.path, path_level)
                    )
        for level_id, path_level in enumerate(path_lattice):
            cuboid = Cuboid(item_level, path_level)
            for key, record_ids in iceberg.items():
                paths = tuple(paths_by_cell.get((key, level_id), ()))
                graph = FlowGraph(paths)
                cell = Cell(
                    key=key,
                    item_level=item_level,
                    path_level=path_level,
                    record_ids=tuple(record_ids),
                    flowgraph=graph,
                    paths=paths,
                )
                if compute_exceptions:
                    segments = None
                    if segments_by_cell is not None:
                        segments = segments_by_cell.get(
                            (item_level, path_level, key)
                        )
                    mine_exceptions(
                        graph,
                        paths,
                        min_support=min_support,
                        min_deviation=min_deviation,
                        segments=segments,
                    )
                cuboid.cells[key] = cell
            build_stats.cuboids += 1
            build_stats.cells += len(cuboid)
            if into is not None:
                into.put_cuboid(cuboid)
                # The cuboid (paths, graphs and all) is garbage from here:
                # the output side of the build is out-of-core too.
            else:
                cube._cuboids[(item_level, path_level)] = cuboid

    build_stats.elapsed_seconds += time.perf_counter() - started
    if into is not None:
        into.flush()
        return into
    return cube
