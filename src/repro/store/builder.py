"""Out-of-core flowcube construction over a partitioned store.

The in-memory pipeline (:meth:`~repro.core.flowcube.FlowCube.build`,
:func:`~repro.mining.shared.shared_mine`) assumes the whole path database —
and, for Shared, the whole encoded transaction database D' — fits in
memory.  This module re-runs the same algorithms *partition at a time*
against a :class:`~repro.store.pathstore.PartitionedPathStore`:

* :func:`shared_mine_store` is Algorithm 1 with every database pass split
  into per-partition scans.  Each scan encodes exactly one partition into
  a :class:`~repro.encoding.transactions.TransactionDatabase`, counts
  candidates against it — with the interned bitmap counter
  (:func:`~repro.perf.bitmap.count_candidates_masks`, the default
  ``kernel="bitmap"``) or the textbook subset-test counter
  (:func:`~repro.mining.apriori.count_candidates`, ``kernel="scan"``) —
  and merges the partial supports into a running
  :class:`collections.Counter`.  Supports are additive over a disjoint
  partitioning of D', so the result is *exactly* :func:`shared_mine`'s —
  the test suite asserts equality.

* :func:`build_cube` materialises the iceberg cube.  The default
  ``engine="rollup"`` performs a single roll-up scan — membership and
  weighted base paths for the root item levels only, merged in partition
  order — and derives every other level's cells by merging child cells
  (:mod:`repro.perf.measure_rollup`).  ``engine="direct"`` keeps the
  original two scan families: a membership pass grouping record ids into
  cells (ids only — no paths are retained), then one aggregation pass per
  item level that rebuilds the iceberg cells' aggregated paths.  Cells
  come out identical either way because partitions preserve record
  order, so group insertion order, ``record_ids`` tuples, path order,
  and the exception-mining inputs all coincide.

Both entry points accept ``jobs``: with ``jobs > 1`` the per-partition
scans of each pass run on a persistent fork-once
:class:`~repro.perf.pool.WorkerPool` (one batched task per partition per
pass, routed to its affine worker slot).  Callers may pass their own
``pool=`` to amortise the fork across many builds — benchmark sweeps and
repeated CLI builds reuse one pool — and the default mining
``pool_mode="shared"`` interns the transaction rows once, coordinator
side, into a :mod:`multiprocessing.shared_memory` segment every worker
attaches zero-copy: the level-wise counting passes then ship only dense
candidate-id arrays and support-count arrays, never pickled transactions
or item dataclasses.  Partial results merge in partition order, and
every merge is either a ``Counter`` sum or an
extend-in-partition-order, so parallel runs are bit-identical to serial
ones — the parity is asserted by the tests.

Peak memory is O(one partition + counters/cells) per process, never
O(database), and :class:`BuildStats.max_live_transaction_dbs` *proves*
the one-partition claim: every partition read — decoded for the cube
passes, encoded for the mining passes — is bracketed by a live-count
tracker, and the recorded per-process peak is asserted to be 1 in the
tests.

Partition decode cost follows the store's format transparently: every
scan goes through :func:`~repro.store.partition.read_partition`, so on
a ``"binary"`` store (the default) the fused scan1+pack pass and the
worker-side re-reads deserialise columnar arenas with bulk
``array.frombytes`` instead of parsing CSV text — the per-pass decode
drops from per-field Python to a handful of C calls, coordinator and
workers alike.
"""

from __future__ import annotations

import hashlib
import itertools
import time
from array import array
from collections import Counter
from datetime import datetime, timezone
from collections.abc import Iterable, Iterator, Mapping, Sequence
from dataclasses import dataclass, field
from time import perf_counter

from repro.core.aggregation import aggregate_path, weight_paths
from repro.core.flowcube import Cell, CellKey, Cuboid, FlowCube
from repro.core.flowgraph import FlowGraph
from repro.core.flowgraph_exceptions import (
    Segment,
    mine_exceptions_weighted,
    resolve_min_support,
    serial_exception_pass,
)
from repro.core.lattice import ItemLattice, ItemLevel, PathLattice, PathLevel
from repro.encoding.transactions import EncodingMemo, TransactionDatabase
from repro.errors import CubeError
from repro.mining.apriori import count_candidates, generate_candidates
from repro.mining.result import FlowMiningResult, item_sort_key
from repro.mining.shared import (
    high_level_projection,
    next_precount_length,
    precount_prune,
    shared_pair_filter,
    top_path_level_id,
)
from repro.mining.stats import MiningStats
from repro.perf.bitmap import count_candidates_masks
from repro.perf.interning import ItemInterner
from repro.perf.pool import (
    WorkerPool,
    cached_masks,
    cached_setrows,
    count_ids_masks,
    count_ids_scan,
    resolve_jobs,
    shared_rows,
    worker_context,
)
from repro.perf.measure_rollup import (
    ENGINES,
    assemble_cuboids,
    derivation_plan,
    derive_levels,
    merge_scan,
    prune_to_iceberg,
    scan_records,
)
from repro.store.pathstore import PartitionedPathStore

__all__ = [
    "POOL_MODES",
    "STORE_KERNELS",
    "BuildStats",
    "build_cube",
    "shared_mine_store",
]

#: Per-partition counting kernels accepted by :func:`shared_mine_store`.
STORE_KERNELS = ("bitmap", "scan")

#: Mining-pass transaction residency under ``jobs > 1``: ``"shared"``
#: interns rows once into a shared-memory segment all workers attach;
#: ``"plain"`` keeps the PR-2 behaviour (each worker re-encodes its
#: affine partitions from disk) for hosts without usable ``/dev/shm``.
POOL_MODES = ("shared", "plain")


@dataclass
class BuildStats:
    """Counters collected during an out-of-core build.

    Attributes:
        partitions: Partition files in the store when the build started.
        records: Total path records scanned (per full pass).
        scans: Partition files read across the whole build.
        max_live_transaction_dbs: Peak number of partition databases —
            decoded :class:`~repro.core.path_database.PathDatabase` or
            encoded :class:`TransactionDatabase` — alive at once in any
            one process; the out-of-core invariant says this never
            exceeds 1 (with ``jobs > 1`` each worker holds at most one).
        cuboids: Cuboids materialised.
        cells: Iceberg cells materialised.
        built_at: UTC timestamp of the build start (ISO-8601, seconds
            precision); stamped by :func:`build_cube` so the persisted
            cube carries build provenance.
        elapsed_seconds: Wall-clock time of the build.
        phase_seconds: Wall-clock per build phase — ``membership`` (the
            direct engine's id-grouping pass), ``aggregate`` (record
            scanning / path aggregation), ``materialize`` (measure
            derivation and cell assembly), and ``exceptions`` (the
            per-cell holistic exception pass, serial or pool-fanned) —
            alongside the mining phases a
            :class:`~repro.mining.stats.MiningStats` tracks — plus
            ``pool_spawn``, the worker fork/bind cost this build actually
            paid (zero when it reused an already-started pool).
        pool: Lifetime counters of the :class:`~repro.perf.pool.WorkerPool`
            the build ran on (:meth:`~repro.perf.pool.PoolStats.as_dict`
            snapshot: spawn count/seconds, shm segments/bytes, task
            batches, worker busy seconds); empty for serial builds.
    """

    partitions: int = 0
    records: int = 0
    scans: int = 0
    max_live_transaction_dbs: int = 0
    cuboids: int = 0
    cells: int = 0
    built_at: str = ""
    elapsed_seconds: float = 0.0
    phase_seconds: dict = field(default_factory=dict)
    pool: dict = field(default_factory=dict)

    def add_phase(self, name: str, seconds: float) -> None:
        """Accumulate wall-clock time into the named phase bucket."""
        self.phase_seconds[name] = self.phase_seconds.get(name, 0.0) + seconds

    @property
    def version(self) -> str:
        """A short content digest identifying this build.

        Hashes the build's shape (records, cells, cuboids) and its
        timestamp, so two rebuilds of the same store get distinct
        versions; serving layers expose it as the cube's build version.
        """
        seed = (
            f"{self.built_at}:{self.records}:{self.cells}:{self.cuboids}:"
            f"{self.partitions}"
        )
        return hashlib.sha1(seed.encode("utf-8")).hexdigest()[:12]

    def as_dict(self) -> dict:
        """JSON-ready snapshot, e.g. for ``CubeStore`` metadata."""
        out = {
            "version": self.version,
            "built_at": self.built_at,
            "partitions": self.partitions,
            "records": self.records,
            "scans": self.scans,
            "max_live_transaction_dbs": self.max_live_transaction_dbs,
            "cuboids": self.cuboids,
            "cells": self.cells,
            "elapsed_seconds": round(self.elapsed_seconds, 4),
            "phase_seconds": {
                name: round(seconds, 4)
                for name, seconds in sorted(self.phase_seconds.items())
            },
        }
        if self.pool:
            out["pool"] = dict(self.pool)
        return out


class _LiveTracker:
    """Counts concurrently-alive partition databases and records the peak."""

    def __init__(self) -> None:
        self.live = 0
        self.peak = 0

    def enter(self) -> None:
        self.live += 1
        self.peak = max(self.peak, self.live)

    def exit(self) -> None:
        self.live -= 1


# ----------------------------------------------------------------------
# per-partition scan bodies (shared by the serial and parallel paths)
# ----------------------------------------------------------------------
#
# Each function below consumes exactly one partition and returns a plain,
# picklable partial result; the drivers merge partials in partition
# order.  Keeping the bodies pure is what makes serial and parallel runs
# provably identical.

def _high_projection(
    transaction: frozenset, path_lattice: PathLattice, top_id: int | None
) -> tuple:
    """One transaction's sorted high-abstraction-level item projection."""
    projected = {
        high_level_projection(item, path_lattice, top_id)
        for item in transaction
    }
    projected.discard(None)
    return tuple(sorted(projected, key=item_sort_key))


def _mine_scan1_partition(
    transactions: Sequence[frozenset],
    path_lattice: PathLattice,
    top_id: int | None,
    next_precount: int | None,
) -> tuple[Counter, Counter | None]:
    """Scan 1 over one partition: item counts + optional pre-count table."""
    counts: Counter = Counter()
    table: Counter | None = Counter() if next_precount is not None else None
    for transaction in transactions:
        counts.update(transaction)
        if next_precount is not None:
            high = _high_projection(transaction, path_lattice, top_id)
            for combo in itertools.combinations(high, next_precount):
                table[frozenset(combo)] += 1
    return counts, table


def _mine_count_partition(
    transactions: Sequence[frozenset],
    candidates: Sequence[tuple],
    kernel: str,
    path_lattice: PathLattice,
    top_id: int | None,
    next_precount: int | None,
) -> tuple[Counter, Counter | None]:
    """One level-wise pass over one partition: candidate supports."""
    if kernel == "bitmap":
        support = count_candidates_masks(transactions, candidates)
    else:
        support = count_candidates(transactions, candidates, None)
    table: Counter | None = None
    if next_precount is not None:
        table = Counter()
        for transaction in transactions:
            high = _high_projection(transaction, path_lattice, top_id)
            for combo in itertools.combinations(high, next_precount):
                table[frozenset(combo)] += 1
    return support, table


def _membership_partition(
    database, levels: Sequence[ItemLevel], hierarchies
) -> list[dict[CellKey, list[int]]]:
    """Record ids grouped per cell, one dict per requested item level."""
    groups: list[dict[CellKey, list[int]]] = [{} for _ in levels]
    # Records heavily share dimension-value tuples, and a roll-up only
    # depends on those, so the per-level cell keys are memoised per
    # distinct ``record.dims``.
    keys_cache: dict[tuple, list[CellKey]] = {}
    for record in database:
        keys = keys_cache.get(record.dims)
        if keys is None:
            keys = [
                _roll_up(record.dims, item_level, hierarchies)
                for item_level in levels
            ]
            keys_cache[record.dims] = keys
        for index in range(len(levels)):
            groups[index].setdefault(keys[index], []).append(record.record_id)
    return groups


def _aggregate_partition(
    database,
    item_level: ItemLevel,
    iceberg_keys: frozenset,
    path_lattice: PathLattice,
    hierarchies,
) -> dict[tuple[CellKey, int], list]:
    """One item level's aggregated paths for the iceberg cells."""
    paths_by_cell: dict[tuple[CellKey, int], list] = {}
    for record in database:
        key = _roll_up(record.dims, item_level, hierarchies)
        if key not in iceberg_keys:
            continue
        for level_id, path_level in enumerate(path_lattice):
            paths_by_cell.setdefault((key, level_id), []).append(
                aggregate_path(record.path, path_level)
            )
    return paths_by_cell


def _aggregate_batch_partition(
    database,
    spec: Sequence[tuple[ItemLevel, frozenset]],
    path_lattice: PathLattice,
    hierarchies,
) -> list[dict[tuple[CellKey, int], list]]:
    """Every item level's aggregated paths in one partition sweep.

    Produces, per spec entry, exactly :func:`_aggregate_partition`'s dict
    (same keys, same append order), but aggregates each record's path
    once per *path* level instead of once per (item level, path level) —
    the aggregation doesn't depend on the item level — and memoises
    roll-ups per distinct ``record.dims`` as in the membership pass.
    """
    out: list[dict[tuple[CellKey, int], list]] = [{} for _ in spec]
    keys_cache: dict[tuple, list[CellKey]] = {}
    n_path_levels = len(path_lattice)
    for record in database:
        keys = keys_cache.get(record.dims)
        if keys is None:
            keys = [
                _roll_up(record.dims, item_level, hierarchies)
                for item_level, _ in spec
            ]
            keys_cache[record.dims] = keys
        aggregated = None
        for index, (_, iceberg_keys) in enumerate(spec):
            key = keys[index]
            if key not in iceberg_keys:
                continue
            if aggregated is None:
                aggregated = [
                    aggregate_path(record.path, path_level)
                    for path_level in path_lattice
                ]
            bucket = out[index]
            for level_id in range(n_path_levels):
                bucket.setdefault((key, level_id), []).append(
                    aggregated[level_id]
                )
    return out


def _roll_up(dims: tuple, item_level: ItemLevel, hierarchies) -> CellKey:
    return tuple(
        hierarchy.ancestor_at_level(value, level)
        for hierarchy, value, level in zip(hierarchies, dims, item_level)
    )


# ----------------------------------------------------------------------
# the worker side
# ----------------------------------------------------------------------
#
# Everything below the pool boundary is a module-level task function run
# by :class:`~repro.perf.pool.WorkerPool` against the per-process context
# dict (:func:`~repro.perf.pool.worker_context`).  The pool is persistent
# — it may outlive this build and serve the next one — so a build never
# assumes fresh workers: it *binds* its store with a broadcast task, and
# every derived cache is keyed by the shared-segment key the bind/attach
# cycle invalidates.


def _task_bind_store(store_dir: str, path_lattice: PathLattice) -> bool:
    """Point this worker at a store (broadcast once per build).

    Re-opens the store unconditionally — the catalog may have grown since
    a previous build through the same pool — and drops the one-slot
    partition cache, which could alias a prior build's data.
    """
    ctx = worker_context()
    ctx["store"] = PartitionedPathStore.open(store_dir)
    ctx["lattice"] = path_lattice
    ctx["cached"] = None
    # One encoding memo per worker per build: every partition this
    # worker encodes shares the ancestor-closure caches.
    ctx["memo"] = EncodingMemo()
    return True


def _task_bind_alphabet(key: object, items: list) -> int:
    """Install the mining alphabet (id → item) for a shared segment.

    The only per-build payload that ships actual item dataclasses — once
    per worker, not once per task — so shared-mode count passes can
    reconstruct high-level projections for the pre-count tables.
    """
    worker_context()[("alphabet", key)] = items
    return len(items)


def _worker_partition(partition_id: int, encode: bool):
    """The task's partition, via a one-slot per-process cache.

    Consecutive tasks for the same partition (common: each level-wise
    pass touches every partition) reuse the loaded — and, for mining
    tasks, encoded — data instead of re-reading the file.  The slot is
    dropped *before* a different partition is loaded, so each worker
    still holds at most one partition at any instant (the gauge's
    per-process invariant).
    """
    ctx = worker_context()
    cached = ctx["cached"]
    if cached is None or cached["partition_id"] != partition_id:
        ctx["cached"] = None  # drop before loading: ≤ 1 live
        store: PartitionedPathStore = ctx["store"]
        cached = {
            "partition_id": partition_id,
            "database": store.load_partition(partition_id),
            "transactions": None,
        }
        ctx["cached"] = cached
    if encode and cached["transactions"] is None:
        encoded = TransactionDatabase(
            cached["database"],
            ctx["lattice"],
            include_top_level=False,
            memo=ctx.get("memo"),
        )
        cached["transactions"] = [t.items for t in encoded.transactions]
    return cached


def _cached_high_projections(
    key: object, partition_id: int, top_id: int | None
) -> list[tuple]:
    """One shared partition's high-level projections, cached per process.

    Decoded from the zero-copy id rows through the broadcast alphabet
    exactly once per partition per build; the pre-count passes are the
    only consumers.  The cache slot is keyed by the segment key, so
    detaching the segment (new build, new data) drops it.
    """
    ctx = worker_context()
    cache = ctx.setdefault(("highproj", key), {})
    entry = cache.get(partition_id)
    if entry is None:
        alphabet = ctx[("alphabet", key)]
        path_lattice = ctx["lattice"]
        entry = [
            _high_projection(
                [alphabet[item_id] for item_id in row], path_lattice, top_id
            )
            for row in shared_rows(key).rows(partition_id)
        ]
        cache[partition_id] = entry
    return entry


def _task_count_shared(
    partition_id: int,
    key: object,
    flat: array,
    lengths: array,
    kernel: str,
    next_precount: int | None,
    top_id: int | None,
    n_items: int,
) -> tuple[array, Counter | None]:
    """One level-wise counting pass over one shared-memory partition.

    Candidates arrive as a flat id array + per-candidate lengths (nothing
    but machine ints crosses the pipe); supports leave as one
    ``array('q')`` aligned with candidate order.  The transaction rows
    themselves never travel — they are read from the attached segment,
    through per-partition mask / frozenset caches that persist across the
    level-wise passes.
    """
    if kernel == "bitmap":
        masks = cached_masks(key, partition_id, n_items)
        support = count_ids_masks(masks, flat, lengths)
    else:
        support = count_ids_scan(
            cached_setrows(key, partition_id), flat, lengths
        )
    table: Counter | None = None
    if next_precount is not None:
        table = Counter()
        for high in _cached_high_projections(key, partition_id, top_id):
            for combo in itertools.combinations(high, next_precount):
                table[frozenset(combo)] += 1
    return support, table


def _task_exceptions(
    batch: list, min_support: float, min_deviation: float, kernel: str
) -> list:
    """Mine one batch of cells' exceptions inside a worker process.

    Each entry is ``(weighted, segments)``; the flowgraph is rebuilt
    worker-side from the weighted multiset — its distributions are pure
    functions of the multiset (Lemma 4.2), so the baselines match the
    parent's graph exactly — and only the picklable exception list travels
    back.  The per-process index cache persists across batches *and*
    builds (it is content-keyed by path-multiset fingerprint), so cells
    sharing a fingerprint reuse one bitmap index however they arrive.
    """
    index_cache = worker_context().setdefault("exception_indexes", {})
    out = []
    for weighted, segments in batch:
        graph = FlowGraph()
        for path, weight in weighted:
            graph.add_path(path, weight)
        out.append(
            mine_exceptions_weighted(
                graph,
                weighted,
                min_support=min_support,
                min_deviation=min_deviation,
                segments=segments,
                kernel=kernel,
                index_cache=index_cache,
            )
        )
    return out


def _task_scan(kind: str, partition_id: int, payload: tuple):
    """One partition of one pass (the disk-resident task shapes)."""
    ctx = worker_context()
    store: PartitionedPathStore = ctx["store"]
    path_lattice: PathLattice = ctx["lattice"]
    cached = _worker_partition(partition_id, encode=kind in ("scan1", "count"))
    database = cached["database"]
    if kind == "scan1":
        top_id, next_precount = payload
        return _mine_scan1_partition(
            cached["transactions"], path_lattice, top_id, next_precount
        )
    if kind == "count":
        top_id, candidates, kernel, next_precount = payload
        return _mine_count_partition(
            cached["transactions"], candidates, kernel, path_lattice, top_id,
            next_precount,
        )
    if kind == "membership":
        (levels,) = payload
        return _membership_partition(database, levels, store.schema.dimensions)
    if kind == "rollup_scan":
        (root_levels,) = payload
        return scan_records(
            database, path_lattice, root_levels, store.schema.dimensions
        )
    if kind == "aggregate_batch":
        # One task covers every item level: loading and iterating the
        # partition once per level would drown this scale of work in
        # per-task dispatch and file reads.
        (spec,) = payload
        return _aggregate_batch_partition(
            database, spec, path_lattice, store.schema.dimensions
        )
    raise ValueError(f"unknown worker task kind {kind!r}")


# ----------------------------------------------------------------------
# the coordinator side of the pool
# ----------------------------------------------------------------------

def _ensure_pool(
    store: PartitionedPathStore,
    path_lattice: PathLattice,
    jobs: int,
    pool: WorkerPool | None,
    build_stats: BuildStats | None,
) -> tuple[WorkerPool | None, bool]:
    """Resolve the pool a build runs on: the caller's, a fresh one, or none.

    A caller-supplied pool always wins (that is how benchmark sweeps and
    repeated CLI builds amortise the fork); otherwise ``jobs > 1`` forks a
    build-owned pool the caller must see closed (``owned`` True).  Either
    way the build's store is bound into every worker, and any spawn cost
    paid *here* — zero for an already-started external pool — lands in the
    ``pool_spawn`` phase bucket, so steady-state timings can never hide
    fork cost again.
    """
    owned = False
    if pool is None:
        if jobs <= 1:
            return None, False
        pool = WorkerPool(jobs)
        owned = True
    spawn_before = pool.stats.spawn_seconds
    pool.start()
    pool.broadcast(_task_bind_store, str(store.directory), path_lattice)
    spawn_delta = pool.stats.spawn_seconds - spawn_before
    if build_stats is not None and spawn_delta:
        build_stats.add_phase("pool_spawn", spawn_delta)
    return pool, owned


def _finalise_pool_stats(build_stats: BuildStats, pool: WorkerPool | None):
    """Snapshot the pool's lifetime counters into the build's stats."""
    if pool is not None:
        build_stats.pool = pool.stats.as_dict()


def _pooled_exception_pass(
    pool: WorkerPool,
    min_support: float,
    min_deviation: float,
    kernel: str,
):
    """Per-cell exception mining fanned out over the worker pool.

    Cube assembly runs after aggregation, when the partition-affine
    workers sit idle — so each cuboid's cell batch is striped round-robin
    across the slots (``batch[i::jobs]``, a deterministic split) and the
    returned exception lists are reattached positionally to the parents'
    graphs.  Same ``run(batch)`` contract and ``run.seconds`` accounting
    as :func:`~repro.core.flowgraph_exceptions.serial_exception_pass`;
    the lists are identical to a serial pass because each worker rebuilds
    the cell graph from the same weighted multiset and the per-cell
    mining is independent.
    """
    jobs = pool.jobs

    def run(batch) -> None:
        started = perf_counter()
        futures = []
        for slot in range(jobs):
            chunk = batch[slot::jobs]
            if not chunk:
                continue
            payload = [(weighted, segments) for _, weighted, segments in chunk]
            futures.append(
                (
                    chunk,
                    pool.submit(
                        slot, _task_exceptions, payload, min_support,
                        min_deviation, kernel,
                    ),
                )
            )
        for chunk, future in futures:
            for (graph, _, _), exceptions in zip(chunk, future.result()):
                graph.exceptions = exceptions
        run.seconds += perf_counter() - started

    run.seconds = 0.0
    return run


def _share_mining_rows(
    store: PartitionedPathStore,
    pool: WorkerPool,
    key: object,
    path_lattice: PathLattice,
    top_id: int | None,
    next_precount: int | None,
    tracker: _LiveTracker,
    build_stats: BuildStats | None,
) -> tuple[Counter, Counter | None, ItemInterner]:
    """Scan 1 fused with the shared-memory pack pass.

    One serial read of each partition (the only file pass shared-mode
    mining ever makes): encode, count singletons, pre-count the first
    projection table, and intern every transaction into dense id rows.
    The rows then go into one shared segment all workers attach, and the
    alphabet (id → item) is broadcast once so workers can decode for
    later pre-count tables.  Only the compact id arrays outlive a
    partition on the coordinator's heap — the encoded database itself
    stays one-at-a-time, which is what the tracker gauge asserts.
    """
    interner = ItemInterner()
    counts: Counter = Counter()
    table: Counter | None = Counter() if next_precount is not None else None
    id_rows: list[list[array]] = []
    memo = EncodingMemo()
    for _, database in store.iter_partitions():
        tracker.enter()
        try:
            if build_stats is not None:
                build_stats.scans += 1
            encoded = TransactionDatabase(
                database, path_lattice, include_top_level=False, memo=memo
            )
            part_rows = []
            for transaction in encoded.transactions:
                items = transaction.items
                counts.update(items)
                if next_precount is not None:
                    high = _high_projection(items, path_lattice, top_id)
                    for combo in itertools.combinations(high, next_precount):
                        table[frozenset(combo)] += 1
                part_rows.append(interner.encode(items))
            id_rows.append(part_rows)
        finally:
            tracker.exit()
    pool.share_rows(key, id_rows)
    pool.broadcast(_task_bind_alphabet, key, interner.items)
    return counts, table, interner


def _count_pass_shared(
    store: PartitionedPathStore,
    pool: WorkerPool,
    key: object,
    interner: ItemInterner,
    candidates: Sequence[tuple],
    kernel: str,
    next_precount: int | None,
    top_id: int | None,
) -> Iterator[tuple[Counter, Counter | None]]:
    """One level-wise counting pass over the shared rows, per partition.

    Candidates are flattened into id arrays once, coordinator side; each
    partition's ``array('q')`` support vector comes back aligned with
    candidate order and is re-keyed to the item-space tuples here, so the
    caller merges exactly what the disk-resident pass would have yielded
    (zero-support candidates stay absent, Counter semantics supply the 0).
    """
    flat = array("i")
    lengths = array("i")
    for candidate in candidates:
        lengths.append(len(candidate))
        flat.extend([interner.id_of(item) for item in candidate])
    n_items = len(interner)
    for part_support, part_table in pool.map_partitions(
        store.partition_ids(), _task_count_shared, key, flat, lengths,
        kernel, next_precount, top_id, n_items,
    ):
        support: Counter = Counter()
        for index, value in enumerate(part_support):
            if value:
                support[candidates[index]] = value
        yield support, part_table


def _scan_partitions(
    store: PartitionedPathStore,
    pool: WorkerPool | None,
    tracker: _LiveTracker,
    build_stats: BuildStats | None,
    kind: str,
    payload: tuple,
    path_lattice: PathLattice,
) -> Iterator:
    """Run one pass over every partition, yielding partials in order.

    Serial (``pool is None``): partitions are loaded — and, for the
    mining passes, encoded — one at a time inside the tracker bracket.
    Parallel: one task per partition, routed to its affine pool slot;
    results are consumed in partition order (each worker holds one live
    partition, so the tracker records the per-process peak of 1).
    """
    encode = kind in ("scan1", "count")
    if pool is None:
        memo = EncodingMemo()
        for _, database in store.iter_partitions():
            tracker.enter()
            try:
                if build_stats is not None:
                    build_stats.scans += 1
                if encode:
                    encoded = TransactionDatabase(
                        database, path_lattice, include_top_level=False,
                        memo=memo,
                    )
                    transactions = [t.items for t in encoded.transactions]
                    if kind == "scan1":
                        top_id, next_precount = payload
                        yield _mine_scan1_partition(
                            transactions, path_lattice, top_id, next_precount
                        )
                    else:
                        top_id, candidates, kernel, next_precount = payload
                        yield _mine_count_partition(
                            transactions, candidates, kernel, path_lattice,
                            top_id, next_precount,
                        )
                elif kind == "membership":
                    (levels,) = payload
                    yield _membership_partition(
                        database, levels, store.schema.dimensions
                    )
                elif kind == "rollup_scan":
                    (root_levels,) = payload
                    yield scan_records(
                        database, path_lattice, root_levels,
                        store.schema.dimensions,
                    )
                else:
                    item_level, iceberg_keys = payload
                    yield _aggregate_partition(
                        database, item_level, iceberg_keys, path_lattice,
                        store.schema.dimensions,
                    )
            finally:
                tracker.exit()
    else:
        futures = [
            pool.submit(partition_id, _task_scan, kind, partition_id, payload)
            for partition_id in store.partition_ids()
        ]
        for future in futures:
            result = future.result()
            if build_stats is not None:
                build_stats.scans += 1
            # Each worker process holds at most one live partition.
            tracker.enter()
            tracker.exit()
            yield result


def shared_mine_store(
    store: PartitionedPathStore,
    path_lattice: PathLattice | None = None,
    min_support: float = 0.01,
    max_length: int | None = None,
    precount_lengths: tuple[int, ...] = (2,),
    build_stats: BuildStats | None = None,
    kernel: str = "bitmap",
    jobs: int = 1,
    pool: WorkerPool | None = None,
    pool_mode: str = "shared",
) -> FlowMiningResult:
    """Algorithm 1 over a partitioned store, one partition in memory at a time.

    Level-wise structure, candidate generation, and every pruning rule are
    identical to :func:`~repro.mining.shared.shared_mine`; only the
    counting strategy differs — each logical pass over D' becomes a
    sequence of per-partition scans whose partial supports merge by
    Counter addition.  Supports are additive over the disjoint partition
    of D', so the mined result is exactly the in-memory one.

    Args:
        store: The partitioned path store (the database D).
        path_lattice: Interesting path levels (defaults to the paper's 4).
        min_support: δ, fractional (<1) or absolute, resolved against the
            store's total record count.
        max_length: Optional bound on pattern length.
        precount_lengths: As in ``shared_mine``; high-level projections
            are recomputed per scan instead of cached per transaction, so
            pre-counting stays O(partition) in memory.
        build_stats: Optional :class:`BuildStats` to fill (partition scans
            and the live-partition peak).
        kernel: Per-partition counting — ``"bitmap"`` (default, local
            item masks + k-way AND) or ``"scan"`` (subset tests);
            identical supports.
        jobs: Partition scans run on a worker pool of this size when
            ``> 1`` (default 1 = serial; ``0`` resolves to
            ``cpu_count - 1``); results are identical either way.
        pool: An already-running :class:`~repro.perf.pool.WorkerPool` to
            run on instead of forking a build-owned one — the pool is
            left running for the caller's next build.  Overrides *jobs*.
        pool_mode: ``"shared"`` (default) interns the transaction rows
            once into shared memory (workers read zero-copy, count passes
            ship only id/support arrays); ``"plain"`` keeps the
            disk-resident behaviour where each worker re-encodes its
            affine partitions.  Identical results.

    Returns:
        A :class:`~repro.mining.result.FlowMiningResult`.
    """
    if kernel not in STORE_KERNELS:
        raise ValueError(
            f"unknown counting kernel {kernel!r}; expected {STORE_KERNELS}"
        )
    if pool_mode not in POOL_MODES:
        raise ValueError(
            f"unknown pool mode {pool_mode!r}; expected {POOL_MODES}"
        )
    jobs = resolve_jobs(jobs)
    stats = MiningStats()
    started = time.perf_counter()
    if path_lattice is None:
        path_lattice = PathLattice.paper_default(store.schema.location)
    tracker = _LiveTracker()
    if build_stats is not None:
        build_stats.partitions = len(store.catalog.partitions)
        build_stats.records = len(store)
    threshold = resolve_min_support(min_support, len(store))
    top_id = top_path_level_id(path_lattice)

    pool, pool_owned = _ensure_pool(store, path_lattice, jobs, pool, build_stats)
    use_shm = pool is not None and pool_mode == "shared"
    shm_key = str(store.directory)
    interner: ItemInterner | None = None
    try:
        # --- Scan 1: single-item counts + pre-count of min(precount) -----
        phase = time.perf_counter()
        precounts: dict[int, Counter] = {}
        next_precount = next_precount_length(precount_lengths, 1)
        if use_shm:
            # Fused with the shared-memory pack: the one and only file
            # pass of a shared-mode mine.
            counts, merged_table, interner = _share_mining_rows(
                store, pool, shm_key, path_lattice, top_id, next_precount,
                tracker, build_stats,
            )
        else:
            counts = Counter()
            merged_table = Counter() if next_precount is not None else None
            for part_counts, part_table in _scan_partitions(
                store, pool, tracker, build_stats,
                "scan1", (top_id, next_precount), path_lattice,
            ):
                counts.update(part_counts)
                if part_table is not None:
                    merged_table.update(part_table)
        if merged_table is not None:
            precounts[next_precount] = merged_table
        stats.add_phase("count", time.perf_counter() - phase)
        stats.scans += 1
        stats.candidates_per_length[1] = len(counts)
        if next_precount in precounts:
            stats.precounted_patterns += len(precounts[next_precount])

        frequent_sorted = sorted(
            ((item,) for item, n in counts.items() if n >= threshold),
            key=lambda t: item_sort_key(t[0]),
        )
        stats.frequent_per_length[1] = len(frequent_sorted)
        supports: dict[frozenset, int] = {
            frozenset(t): counts[t[0]] for t in frequent_sorted
        }

        # --- Level-wise loop: one partitioned scan per candidate length --
        length = 1
        while frequent_sorted and (max_length is None or length < max_length):
            phase = time.perf_counter()
            candidates = generate_candidates(
                frequent_sorted, shared_pair_filter, stats, item_sort_key
            )
            stats.add_phase("join", time.perf_counter() - phase)
            phase = time.perf_counter()
            candidates = precount_prune(
                candidates, precounts, threshold, path_lattice, top_id, stats
            )
            stats.add_phase("prune", time.perf_counter() - phase)
            if not candidates:
                break
            next_precount = next_precount_length(precount_lengths, length + 1)
            if next_precount in precounts:
                next_precount = None
            phase = time.perf_counter()
            support: Counter = Counter()
            merged_table = Counter() if next_precount is not None else None
            if use_shm:
                partials = _count_pass_shared(
                    store, pool, shm_key, interner, candidates, kernel,
                    next_precount, top_id,
                )
            else:
                partials = _scan_partitions(
                    store, pool, tracker, build_stats,
                    "count", (top_id, candidates, kernel, next_precount),
                    path_lattice,
                )
            for part_support, part_table in partials:
                # Partial supports over a disjoint slice of D' — merging
                # the per-partition Counters is exact.
                support.update(part_support)
                if part_table is not None:
                    merged_table.update(part_table)
            if merged_table is not None:
                precounts[next_precount] = merged_table
                stats.precounted_patterns += len(merged_table)
            stats.add_phase("count", time.perf_counter() - phase)
            stats.scans += 1
            stats.candidates_per_length[length + 1] += len(candidates)
            length += 1
            frequent_sorted = [c for c in candidates if support[c] >= threshold]
            stats.frequent_per_length[length] += len(frequent_sorted)
            for itemset in frequent_sorted:
                supports[frozenset(itemset)] = support[itemset]
    finally:
        if pool is not None:
            pool.release_rows(shm_key)
            if pool_owned:
                pool.close()

    stats.elapsed_seconds = time.perf_counter() - started
    if build_stats is not None:
        build_stats.max_live_transaction_dbs = max(
            build_stats.max_live_transaction_dbs, tracker.peak
        )
        build_stats.elapsed_seconds += stats.elapsed_seconds
        _finalise_pool_stats(build_stats, pool)
    return FlowMiningResult(
        supports=supports,
        threshold=threshold,
        n_transactions=len(store),
        schema=store.schema,
        path_lattice=path_lattice,
        stats=stats,
    )


def build_cube(
    store: PartitionedPathStore,
    path_lattice: PathLattice | None = None,
    item_levels: Iterable[ItemLevel] | None = None,
    min_support: float = 0.01,
    min_deviation: float = 0.1,
    compute_exceptions: bool = True,
    segments_by_cell: Mapping[
        tuple[ItemLevel, PathLevel, CellKey], Sequence[Segment]
    ]
    | None = None,
    use_shared: bool = False,
    into=None,
    stats: BuildStats | None = None,
    kernel: str = "bitmap",
    jobs: int = 1,
    engine: str = "rollup",
    pool: WorkerPool | None = None,
    pool_mode: str = "shared",
):
    """Materialise the iceberg flowcube of a partitioned store.

    Produces exactly the cube :meth:`FlowCube.build` would produce over
    the concatenated store (same cuboids, cell keys, record ids,
    flowgraphs, and exceptions) while reading one partition at a time.

    With the default ``engine="rollup"`` (the aggregate-once engine of
    :mod:`repro.perf.measure_rollup`) there is a single *roll-up scan*:
    each partition is read once, producing membership groups and weighted
    base paths for the root item levels only; every other level's cells
    derive in memory by merging child cells along the item lattice, and no
    partition is read again.  With ``engine="direct"`` the original two
    scan families run:

    1. *Membership pass* — one scan grouping record ids per cell for every
       requested item level (ids only; partitions preserve record order,
       so the groups' insertion order matches the in-memory builder's).
    2. *Aggregation pass per item level* — re-scan the partitions and
       aggregate paths only for cells that met the iceberg threshold,
       then assemble that level's cuboids and (optionally) mine each
       cell's flowgraph exceptions.

    Args:
        store: The partitioned path store.
        path_lattice: Interesting path levels (defaults to the paper's 4).
        item_levels: Item levels to materialise (default: whole lattice).
        min_support: δ, fractional (<1) or absolute, resolved against the
            store's total record count.
        min_deviation: ε for exceptions.
        compute_exceptions: Skip exception mining when only the algebraic
            measure is needed.
        segments_by_cell: Pre-mined frequent segments, as from
            :meth:`FlowMiningResult.segments_by_cell`.
        use_shared: Run :func:`shared_mine_store` first and feed its
            segments into exception mining (ignored when
            ``segments_by_cell`` is given or exceptions are off).
        into: ``None`` to return an in-memory
            :class:`~repro.core.flowcube.FlowCube` (the store is then
            loaded once at the end to back it), or a
            :class:`~repro.store.cube_store.CubeStore` — each cuboid is
            persisted and dropped as soon as it is built, keeping the
            output out-of-core too.
        stats: Optional :class:`BuildStats` to fill.
        kernel: ``"bitmap"`` (default) or ``"scan"`` — selects both the
            counting kernel :func:`shared_mine_store` uses when
            *use_shared* is set and the per-cell exception kernel
            (:mod:`repro.perf.exception_kernel` vs the per-path re-scan).
            Identical cubes either way.
        jobs: Partition scans (membership, aggregation, the optional
            Shared pre-mine, and the per-cell exception pass) run on a
            worker pool of this size when ``> 1`` (``0`` resolves to
            ``cpu_count - 1``); the built cube is identical either way.
        engine: ``"rollup"`` (default) or ``"direct"``; both engines —
            serial or parallel, in-memory or out-of-core — produce
            byte-identical serialised cubes (asserted by the property
            tests).
        pool: An already-running :class:`~repro.perf.pool.WorkerPool` to
            run every parallel pass on — overrides *jobs*, stays running
            afterwards.  Without it, ``jobs > 1`` forks a build-owned
            pool closed before returning.
        pool_mode: Mining-row residency for the Shared pre-mine —
            ``"shared"`` (default, shared-memory rows) or ``"plain"``
            (workers re-encode from disk); see :func:`shared_mine_store`.

    Returns:
        The :class:`FlowCube`, or *into* (flushed) when a cube store was
        given.
    """
    if engine not in ENGINES:
        raise CubeError(
            f"unknown measure engine {engine!r}; expected one of {ENGINES}"
        )
    if kernel not in STORE_KERNELS:
        raise CubeError(
            f"unknown kernel {kernel!r}; expected one of {STORE_KERNELS}"
        )
    if pool_mode not in POOL_MODES:
        raise CubeError(
            f"unknown pool mode {pool_mode!r}; expected one of {POOL_MODES}"
        )
    jobs = resolve_jobs(jobs)
    started = time.perf_counter()
    build_stats = stats if stats is not None else BuildStats()
    schema = store.schema
    item_lattice = ItemLattice([h.depth for h in schema.dimensions])
    if path_lattice is None:
        path_lattice = PathLattice.paper_default(schema.location)
    levels = list(item_levels) if item_levels is not None else list(item_lattice)
    for item_level in levels:
        if item_level not in item_lattice:
            raise CubeError(f"item level {item_level!r} outside the lattice")
    threshold = resolve_min_support(min_support, len(store))
    build_stats.partitions = len(store.catalog.partitions)
    build_stats.records = len(store)
    build_stats.built_at = datetime.now(timezone.utc).isoformat(
        timespec="seconds"
    )

    pool, pool_owned = _ensure_pool(store, path_lattice, jobs, pool, build_stats)
    try:
        if (
            use_shared
            and compute_exceptions
            and segments_by_cell is None
        ):
            segments_by_cell = shared_mine_store(
                store,
                path_lattice,
                min_support=min_support,
                build_stats=build_stats,
                kernel=kernel,
                pool=pool,
                pool_mode=pool_mode,
            ).segments_by_cell()

        if engine == "rollup":
            return _build_cube_rollup(
                store, path_lattice, levels, item_lattice, threshold,
                min_support, min_deviation, compute_exceptions,
                segments_by_cell, into, build_stats, pool, started, kernel,
            )
        return _build_cube_direct(
            store, path_lattice, levels, item_lattice, threshold,
            min_support, min_deviation, compute_exceptions,
            segments_by_cell, into, build_stats, pool, started, kernel,
        )
    finally:
        if pool_owned:
            pool.close()


def _build_cube_direct(
    store: PartitionedPathStore,
    path_lattice: PathLattice,
    levels: list[ItemLevel],
    item_lattice: ItemLattice,
    threshold: int,
    min_support: float,
    min_deviation: float,
    compute_exceptions: bool,
    segments_by_cell,
    into,
    build_stats: BuildStats,
    pool: WorkerPool | None,
    started: float,
    kernel: str = "bitmap",
):
    """``build_cube``'s direct engine body: membership, then aggregation.

    The original two scan families (see :func:`build_cube`).  The pool —
    when one is running — carries every partition task and the per-cell
    exception fan-out; its lifetime belongs to the caller.
    """
    tracker = _LiveTracker()
    exception_pass = None
    if compute_exceptions:
        exception_pass = (
            _pooled_exception_pass(pool, min_support, min_deviation, kernel)
            if pool is not None
            else serial_exception_pass(min_support, min_deviation, kernel)
        )
    # --- Membership pass: record ids per cell, for every item level ------
    phase = time.perf_counter()
    groups: dict[ItemLevel, dict[CellKey, list[int]]] = {
        item_level: {} for item_level in levels
    }
    for part_groups in _scan_partitions(
        store, pool, tracker, build_stats,
        "membership", (levels,), path_lattice,
    ):
        # Merging in partition order preserves both first-seen key
        # order and per-cell record order, so the groups are exactly
        # the single-scan ones.
        for index, item_level in enumerate(levels):
            merged = groups[item_level]
            for key, ids in part_groups[index].items():
                merged.setdefault(key, []).extend(ids)
    build_stats.add_phase("membership", time.perf_counter() - phase)

    if into is not None:
        into.create(
            path_lattice, min_support, min_deviation, item_levels=levels
        )
        cube = None
    else:
        cube = FlowCube(
            store.load_all(), item_lattice, path_lattice, min_support,
            min_deviation,
        )

    # --- Aggregation: rebuild the iceberg cells' paths --------------------
    #
    # (key, path-level id) -> that cell's aggregated paths, in record
    # order — partitions arrive in id order, so order matches the
    # in-memory builder's per-cell tuple exactly.  Serial mode scans
    # once per item level (paths for one level in memory at a time);
    # parallel mode batches all levels into one task per partition —
    # trading parent-side memory for 1/n_levels of the file reads and
    # task dispatches — and merges to the same per-level dicts.
    iceberg_by_level = [
        {
            key: ids
            for key, ids in groups[item_level].items()
            if len(ids) >= threshold
        }
        for item_level in levels
    ]

    def assemble_level(
        item_level: ItemLevel,
        iceberg: dict[CellKey, list[int]],
        paths_by_cell: dict[tuple[CellKey, int], list],
    ) -> None:
        for level_id, path_level in enumerate(path_lattice):
            cuboid = Cuboid(item_level, path_level)
            batch = []
            for key, record_ids in iceberg.items():
                weighted = weight_paths(
                    paths_by_cell.get((key, level_id), ())
                )
                graph = FlowGraph()
                for path, weight in weighted:
                    graph.add_path(path, weight)
                cell = Cell(
                    key=key,
                    item_level=item_level,
                    path_level=path_level,
                    record_ids=tuple(record_ids),
                    flowgraph=graph,
                    paths=weighted,
                )
                if compute_exceptions:
                    segments = None
                    if segments_by_cell is not None:
                        segments = segments_by_cell.get(
                            (item_level, path_level, key)
                        )
                    batch.append((graph, weighted, segments))
                cuboid.cells[key] = cell
            if batch:
                exception_pass(batch)
            build_stats.cuboids += 1
            build_stats.cells += len(cuboid)
            if into is not None:
                into.put_cuboid(cuboid)
                # The cuboid (paths, graphs and all) is garbage from
                # here: the output side of the build is out-of-core too.
            else:
                cube._cuboids[(item_level, path_level)] = cuboid

    phase = time.perf_counter()
    if pool is None:
        for item_level, iceberg in zip(levels, iceberg_by_level):
            paths_by_cell: dict[tuple[CellKey, int], list] = {}
            for part_paths in _scan_partitions(
                store, pool, tracker, build_stats,
                "aggregate", (item_level, frozenset(iceberg)),
                path_lattice,
            ):
                for cell_key, paths in part_paths.items():
                    paths_by_cell.setdefault(cell_key, []).extend(paths)
            assemble_level(item_level, iceberg, paths_by_cell)
    else:
        spec = tuple(
            (item_level, frozenset(iceberg))
            for item_level, iceberg in zip(levels, iceberg_by_level)
        )
        merged: list[dict[tuple[CellKey, int], list]] = [
            {} for _ in levels
        ]
        for part_batch in _scan_partitions(
            store, pool, tracker, build_stats,
            "aggregate_batch", (spec,), path_lattice,
        ):
            for index, part_paths in enumerate(part_batch):
                target = merged[index]
                for cell_key, paths in part_paths.items():
                    target.setdefault(cell_key, []).extend(paths)
        for item_level, iceberg, paths_by_cell in zip(
            levels, iceberg_by_level, merged
        ):
            assemble_level(item_level, iceberg, paths_by_cell)
    exception_seconds = (
        exception_pass.seconds if exception_pass is not None else 0.0
    )
    if compute_exceptions:
        build_stats.add_phase("exceptions", exception_seconds)
    build_stats.add_phase(
        "materialize", time.perf_counter() - phase - exception_seconds
    )

    build_stats.max_live_transaction_dbs = max(
        build_stats.max_live_transaction_dbs, tracker.peak
    )
    build_stats.elapsed_seconds += time.perf_counter() - started
    _finalise_pool_stats(build_stats, pool)
    if into is not None:
        into.flush(build_stats=build_stats)
        return into
    return cube


def _build_cube_rollup(
    store: PartitionedPathStore,
    path_lattice: PathLattice,
    levels: list[ItemLevel],
    item_lattice: ItemLattice,
    threshold: int,
    min_support: float,
    min_deviation: float,
    compute_exceptions: bool,
    segments_by_cell,
    into,
    build_stats: BuildStats,
    pool: WorkerPool | None,
    started: float,
    kernel: str = "bitmap",
):
    """``build_cube``'s roll-up engine body: one scan, then pure merges.

    A single ``rollup_scan`` pass reads each partition once, computing
    membership and weighted base paths for the *root* item levels; partial
    results merge in partition order (:func:`merge_scan`), which makes
    them identical to an in-memory single scan.  Every remaining level
    derives by merging child cells — no further partition reads — so the
    whole build costs one pass regardless of how many item levels are
    materialised.  The pool outlives the scan: assembly re-uses its idle
    workers to fan the per-cell exception pass out across cells.
    """
    plan = derivation_plan(levels)
    root_levels = tuple(level for level, source in plan if source is None)
    tracker = _LiveTracker()
    exception_pass = None
    if compute_exceptions:
        exception_pass = (
            _pooled_exception_pass(pool, min_support, min_deviation, kernel)
            if pool is not None
            else serial_exception_pass(min_support, min_deviation, kernel)
        )
    phase = time.perf_counter()
    groups_by_root: list[dict[CellKey, list[int]]] = [
        {} for _ in root_levels
    ]
    weighted_by_root: list[list[dict]] = [
        [{} for _ in path_lattice] for _ in root_levels
    ]
    for part_groups, part_weighted in _scan_partitions(
        store, pool, tracker, build_stats,
        "rollup_scan", (root_levels,), path_lattice,
    ):
        merge_scan(
            groups_by_root, weighted_by_root, part_groups, part_weighted
        )
    build_stats.add_phase("aggregate", time.perf_counter() - phase)

    if into is not None:
        into.create(
            path_lattice, min_support, min_deviation, item_levels=levels
        )
        cube = None
    else:
        cube = FlowCube(
            store.load_all(), item_lattice, path_lattice, min_support,
            min_deviation,
        )

    phase = time.perf_counter()
    data = derive_levels(
        plan, groups_by_root, weighted_by_root, root_levels,
        store.schema.dimensions, len(path_lattice), threshold,
    )
    prune_to_iceberg(data, threshold)
    del groups_by_root, weighted_by_root
    for cuboid in assemble_cuboids(
        levels, path_lattice, data, threshold, min_support, min_deviation,
        compute_exceptions, segments_by_cell, kernel=kernel,
        exception_pass=exception_pass,
    ):
        build_stats.cuboids += 1
        build_stats.cells += len(cuboid)
        if into is not None:
            into.put_cuboid(cuboid)
        else:
            cube._cuboids[(cuboid.item_level, cuboid.path_level)] = cuboid  # noqa: SLF001
    exception_seconds = (
        exception_pass.seconds if exception_pass is not None else 0.0
    )
    if compute_exceptions:
        build_stats.add_phase("exceptions", exception_seconds)
    build_stats.add_phase(
        "materialize", time.perf_counter() - phase - exception_seconds
    )

    build_stats.max_live_transaction_dbs = max(
        build_stats.max_live_transaction_dbs, tracker.peak
    )
    build_stats.elapsed_seconds += time.perf_counter() - started
    _finalise_pool_stats(build_stats, pool)
    if into is not None:
        into.flush(build_stats=build_stats)
        return into
    return cube
