"""The partitioned on-disk path store.

A :class:`PartitionedPathStore` is a directory::

    store/
      catalog.json            schema + fingerprint + format + partitions
      partitions/
        part-00000.bin        <= partition_size rows each; columnar
        part-00001.bin           binary (default) or ``.csv`` for
        ...                      ``"json"``-format stores
      cube/                   (optional) the persisted flowcube, see
        ...                   :mod:`repro.store.cube_store`

Ingest appends size-bounded partitions; nothing ever rewrites an existing
partition file, so the store is safe to back up and rsync mid-ingest.
Record ids must be strictly increasing across ingests (the warehouse
append invariant) — this is what lets the catalog detect id collisions
from ranges alone, without keeping an id set in memory.

Reads are partition-at-a-time: :meth:`iter_partitions` never holds more
than one partition's :class:`~repro.core.path_database.PathDatabase` in
memory, which is the contract the out-of-core builder
(:mod:`repro.store.builder`) is written against.
"""

from __future__ import annotations

import os
from collections.abc import Iterable, Iterator
from pathlib import Path as FsPath

from repro.core.incremental import append_batch
from repro.core.path import PathRecord
from repro.core.path_database import PathDatabase, PathSchema
from repro.errors import StoreError
from repro.store.binfmt import (
    DEFAULT_STORE_FORMAT,
    STORE_FORMATS,
    STRINGS_FILENAME,
    StringTable,
    pack_partition,
    unpack_partition,
)
from repro.store.catalog import Catalog, schema_fingerprint
from repro.store.partition import (
    LOCATION_SUMMARY,
    PartitionMeta,
    partition_filename,
    partition_generation,
    read_partition,
    summarise_partition,
    write_partition,
)

__all__ = ["PartitionedPathStore"]

PARTITIONS_DIR = "partitions"


class PartitionedPathStore:
    """A path database persisted as size-bounded partition files.

    Binary stores share one vocabulary across partitions: the store's
    :class:`~repro.store.binfmt.StringTable` (``partitions/strings.bin``)
    is mmap'd on first use, generation-2 partitions resolve their refs
    through it, and :meth:`close` (or the context-manager exit) releases
    the map — the store never relies on GC to drop file handles.
    """

    def __init__(self, directory: FsPath, catalog: Catalog) -> None:
        self.directory = FsPath(directory)
        self.catalog = catalog
        self._strings: StringTable | None = None
        self._strings_loaded = False

    # ------------------------------------------------------------------
    # shared string table
    # ------------------------------------------------------------------
    @property
    def _strings_path(self) -> FsPath:
        return self.directory / PARTITIONS_DIR / STRINGS_FILENAME

    @property
    def strings(self) -> StringTable | None:
        """The shared string table, or ``None`` when the store has none.

        Loaded (mmap'd) lazily: a store whose partitions are all
        generation 1 — or a ``"json"`` store — never opens the file.
        """
        if not self._strings_loaded:
            self._strings_loaded = True
            if self._strings_path.exists():
                self._strings = StringTable.load(self._strings_path)
        return self._strings

    def _writable_strings(self) -> StringTable:
        """The shared table for a write path, creating it when absent."""
        table = self.strings
        if table is None:
            table = StringTable()
            self._strings = table
        return table

    def _save_strings(self, table: StringTable) -> None:
        """Persist the table before any file that references it.

        Append-only ids make the ordering crash-safe: a saved superset
        that no partition references yet is harmless, the reverse is
        not.
        """
        if table.dirty or not self._strings_path.exists():
            self._strings_path.parent.mkdir(parents=True, exist_ok=True)
            table.save(self._strings_path)

    def close(self) -> None:
        """Release the string-table map (idempotent)."""
        table, self._strings = self._strings, None
        self._strings_loaded = False
        if table is not None:
            table.close()

    def __enter__(self) -> "PartitionedPathStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def init(
        cls,
        directory: FsPath | str,
        schema: PathSchema,
        partition_size: int = 512,
        extra: dict | None = None,
        store_format: str = DEFAULT_STORE_FORMAT,
    ) -> "PartitionedPathStore":
        """Create an empty store at *directory* (which must not have one)."""
        directory = FsPath(directory)
        if (directory / "catalog.json").exists():
            raise StoreError(f"a store already exists at {directory}")
        catalog = Catalog(
            directory,
            schema,
            partition_size,
            extra=extra,
            store_format=store_format,
        )
        catalog.save()
        return cls(directory, catalog)

    @classmethod
    def open(cls, directory: FsPath | str) -> "PartitionedPathStore":
        """Open an existing store (raises when the catalog is absent)."""
        directory = FsPath(directory)
        return cls(directory, Catalog.load(directory))

    # ------------------------------------------------------------------
    # basic facts
    # ------------------------------------------------------------------
    @property
    def schema(self) -> PathSchema:
        return self.catalog.schema

    @property
    def partition_size(self) -> int:
        return self.catalog.partition_size

    @property
    def store_format(self) -> str:
        """The catalog's storage format, ``"binary"`` or ``"json"``."""
        return self.catalog.store_format

    def __len__(self) -> int:
        return self.catalog.total_records

    def partition_ids(self) -> list[int]:
        return [meta.partition_id for meta in self.catalog.partitions]

    def _partition_path(self, meta: PartitionMeta) -> FsPath:
        return self.directory / PARTITIONS_DIR / meta.filename

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def ingest(
        self,
        records: Iterable[PathRecord] | PathDatabase,
        validate: bool = True,
    ) -> list[PartitionMeta]:
        """Append *records* as one or more new partitions.

        When a :class:`PathDatabase` is given, its schema must fingerprint
        identically to the store's.  Record ids must be strictly greater
        than every id already in the store, and strictly increasing within
        the batch.

        Returns:
            The catalog entries of the partitions written.
        """
        if isinstance(records, PathDatabase):
            if schema_fingerprint(records.schema) != self.catalog.fingerprint:
                raise StoreError(
                    "database schema does not match the store's schema "
                    "fingerprint"
                )
            rows: list[PathRecord] = list(records)
            validate = False  # the database validated on construction
        else:
            rows = list(records)
        if not rows:
            return []
        floor = self.catalog.max_record_id
        for record in rows:
            if record.record_id <= floor:
                raise StoreError(
                    f"record id {record.record_id} is not greater than the "
                    f"store's high-water mark {floor} (ids must be strictly "
                    "increasing across ingests)"
                )
            floor = record.record_id

        written: list[PartitionMeta] = []
        size = self.partition_size
        for start in range(0, len(rows), size):
            chunk = rows[start : start + size]
            # Validates hierarchy membership unless the rows came from an
            # already-validated database.
            database = PathDatabase(self.schema, chunk, validate=validate)
            partition_id = self.catalog.next_partition_id()
            meta = PartitionMeta(
                partition_id=partition_id,
                filename=partition_filename(
                    partition_id, self.catalog.store_format
                ),
                n_records=len(chunk),
                min_record_id=chunk[0].record_id,
                max_record_id=chunk[-1].record_id,
                summaries=summarise_partition(database),
            )
            self._write_partition_file(self._partition_path(meta), database)
            self.catalog.add(meta)
            written.append(meta)
        self.catalog.save()
        return written

    def _write_partition_file(
        self, path: FsPath, database: PathDatabase
    ) -> None:
        """Write one partition, routing binary files through the shared
        table (which is saved *before* the partition that references it
        hits disk)."""
        if path.suffix == ".bin":
            table = self._writable_strings()
            payload = pack_partition(database, table)
            self._save_strings(table)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_bytes(payload)
        else:
            write_partition(path, database)

    def append(
        self,
        records: Iterable[PathRecord],
        cube=None,
        recompute_exceptions: bool = True,
    ) -> dict[str, int]:
        """Ingest a batch and, when a live cube is given, maintain it.

        The cube update reuses :func:`repro.core.incremental.append_batch`
        (Lemma 4.2): only the cells the batch touches are re-counted and
        re-mined, instead of rebuilding the cube from the whole store.

        Args:
            records: New path records (ids above the store's high-water
                mark).
            cube: An in-memory :class:`~repro.core.flowcube.FlowCube`
                built over this store's data, or ``None`` to only persist.
            recompute_exceptions: Forwarded to ``append_batch``.

        Returns:
            ``{"partitions": ..., "ingested": ...}`` plus, when a cube was
            maintained, ``append_batch``'s touched-cell statistics.
        """
        rows = list(records)
        written = self.ingest(rows)
        stats: dict[str, int] = {
            "partitions": len(written),
            "ingested": len(rows),
        }
        if cube is not None and rows:
            stats.update(
                append_batch(cube, rows, recompute_exceptions=recompute_exceptions)
            )
        return stats

    def append_into_cube(
        self,
        records: Iterable[PathRecord],
        cube=None,
        recompute_exceptions: bool = True,
        kernel: str = "bitmap",
        jobs: int = 1,
        pool=None,
        compact_after: int | None = 16,
    ) -> dict:
        """Ingest a batch and delta-merge it into the *persisted* cube.

        The store-backed counterpart of :meth:`append`: instead of
        maintaining an in-memory :class:`~repro.core.flowcube.FlowCube`,
        the batch is folded into the cube under ``<store>/cube`` as an
        append-only delta segment (see :mod:`repro.store.append`), so a
        small batch costs a fraction of a rebuild.

        Args:
            records: New path records (ids above the high-water mark).
            cube: An open :class:`~repro.store.cube_store.CubeStore`
                handle to update, or ``None`` to open one for the call.
            recompute_exceptions: Re-mine exceptions in dirty cells.
            kernel: Exception kernel (``"bitmap"`` / ``"scan"``).
            jobs: Worker-pool width for the dirty-cell exception pass.
            pool: An already-running pool to reuse (overrides *jobs*).
            compact_after: Fold delta segments into a clean heap once
                this many pile up (``0``/``None`` disables).

        Returns:
            :func:`repro.store.append.append_records` statistics.
        """
        from repro.store.append import append_records

        return append_records(
            self,
            records,
            cube=cube,
            recompute_exceptions=recompute_exceptions,
            kernel=kernel,
            jobs=jobs,
            pool=pool,
            compact_after=compact_after,
        )

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def load_partition(self, partition_id: int) -> PathDatabase:
        """Load one partition's rows."""
        for meta in self.catalog.partitions:
            if meta.partition_id == partition_id:
                return read_partition(
                    self._partition_path(meta), self.schema, self.strings
                )
        raise StoreError(f"no partition {partition_id} in the catalog")

    def iter_partitions(
        self,
    ) -> Iterator[tuple[PartitionMeta, PathDatabase]]:
        """Yield ``(meta, database)`` one partition at a time.

        The previous partition's database becomes garbage as soon as the
        consumer advances — this is the out-of-core read path.
        """
        for meta in self.catalog.partitions:
            yield meta, read_partition(
                self._partition_path(meta), self.schema, self.strings
            )

    def load_all(self) -> PathDatabase:
        """Concatenate every partition into one in-memory database.

        Convenience for tests, examples, and small stores; the builder
        deliberately avoids it.
        """
        rows: list[PathRecord] = []
        for _, database in self.iter_partitions():
            rows.extend(database.records)
        return PathDatabase(self.schema, rows, validate=False)

    def select_partitions(
        self, location: str | None = None, **dims: str
    ) -> list[int]:
        """Partitions that *might* hold rows matching the given values.

        Uses the catalog's Bloom summaries only — no partition file is
        read.  Values may sit at any hierarchy level (summaries index the
        full ancestor closure).  A partition is returned unless some
        constraint definitely rules it out.
        """
        for name in dims:
            self.schema.dimension(name)  # raises on unknown dimensions
        selected: list[int] = []
        for meta in self.catalog.partitions:
            keep = True
            for name, value in dims.items():
                summary = meta.summaries.get(f"dim:{name}")
                if summary is not None and not summary.might_contain(value):
                    keep = False
                    break
            if keep and location is not None:
                summary = meta.summaries.get(LOCATION_SUMMARY)
                if summary is not None and not summary.might_contain(location):
                    keep = False
            if keep:
                selected.append(meta.partition_id)
        return selected

    # ------------------------------------------------------------------
    # format migration
    # ------------------------------------------------------------------
    def migrate_partitions(
        self,
        store_format: str,
        progress=None,
        check: bool = True,
    ) -> dict[str, int]:
        """Convert every partition file to *store_format* in place.

        Each partition is decoded with its current codec, re-encoded with
        the target one, and — with *check* on — read back and compared
        via the CSV interchange rendering before the old file is removed
        (a failed parity check aborts with both files intact).  The
        catalog is saved after every converted partition — before the
        old file is unlinked — so a crash mid-migration leaves a
        readable mixed-suffix store that a rerun finishes; the format
        flag itself flips in one final save.

        A ``"binary"`` target also upgrades generation-1 (``FCPART01``,
        private string table) files to the shared-vocabulary generation-2
        layout: same filename, rewritten through an atomic temp+rename
        after the shared table is saved.

        Args:
            store_format: ``"binary"`` or ``"json"``.
            progress: Optional ``callback(done, total, filename)`` fired
                after each converted partition.
            check: Verify the round-trip before deleting the original.

        Returns:
            ``{"partitions": <converted count>, "skipped": <already in
            the target format>}``.
        """
        if store_format not in STORE_FORMATS:
            raise StoreError(
                f"unknown store format {store_format!r}; "
                f"expected one of {STORE_FORMATS}"
            )
        total = len(self.catalog.partitions)
        converted = skipped = 0
        for meta in self.catalog.partitions:
            target = partition_filename(meta.partition_id, store_format)
            old_path = self._partition_path(meta)
            if meta.filename == target:
                if (
                    store_format != "binary"
                    or partition_generation(old_path) != 1
                ):
                    skipped += 1
                    continue
                # In-place generation upgrade: decode the self-contained
                # v1 file, re-encode against the shared table, and swap
                # atomically (the table is saved first, so the new file
                # never references ids the store cannot resolve).
                database = read_partition(old_path, self.schema)
                table = self._writable_strings()
                payload = pack_partition(database, table)
                self._save_strings(table)
                if check:
                    # Parity straight off the payload bytes (the temp
                    # file's .tmp suffix would misdispatch a file read).
                    replica = unpack_partition(payload, self.schema, table)
                    if replica.to_csv() != database.to_csv():
                        raise StoreError(
                            f"migration parity check failed for {meta.filename}"
                        )
                temp = old_path.parent / (old_path.name + ".tmp")
                temp.write_bytes(payload)
                os.replace(temp, old_path)
                converted += 1
                if progress is not None:
                    progress(converted + skipped, total, target)
                continue
            database = read_partition(old_path, self.schema, self.strings)
            new_path = self.directory / PARTITIONS_DIR / target
            self._write_partition_file(new_path, database)
            if check:
                replica = read_partition(new_path, self.schema, self.strings)
                if replica.to_csv() != database.to_csv():
                    new_path.unlink(missing_ok=True)
                    raise StoreError(
                        f"migration parity check failed for {meta.filename}"
                    )
            meta.filename = target
            # Persist before dropping the original: a crash here leaves
            # at worst an orphan old-suffix file, never a catalog entry
            # pointing at a deleted partition.
            self.catalog.save()
            old_path.unlink()
            converted += 1
            if progress is not None:
                progress(converted + skipped, total, target)
        self.catalog.store_format = store_format
        self.catalog.save()
        if store_format == "json":
            # No binary partition references the shared table any more.
            table, self._strings = self._strings, None
            self._strings_loaded = False
            if table is not None:
                table.close()
            self._strings_path.unlink(missing_ok=True)
        return {"partitions": converted, "skipped": skipped}

    def partitions_need_upgrade(self) -> bool:
        """True when a ``"binary"`` store still has generation-1 files."""
        if self.store_format != "binary":
            return False
        return any(
            meta.filename.endswith(".bin")
            and partition_generation(self._partition_path(meta)) == 1
            for meta in self.catalog.partitions
        )

    # ------------------------------------------------------------------
    # the cube side of the store
    # ------------------------------------------------------------------
    def cube_store(self, cache_size: int = 128):
        """The store's :class:`~repro.store.cube_store.CubeStore` view.

        The cube lives under ``<store>/cube``; it is empty until a build
        writes into it (``flowcube-store build`` or
        :func:`repro.store.builder.build_cube` with ``into=``).  New
        cubes are written in the catalog's storage format.
        """
        from repro.store.cube_store import CubeStore

        return CubeStore(
            self.directory / "cube",
            self.schema,
            cache_size=cache_size,
            cell_format=self.catalog.store_format,
        )

    def describe(self) -> dict[str, object]:
        """Catalog-level summary statistics.

        Binary stores also report the partition-file generation split
        (``FCPART01`` self-contained vs ``FCPART02`` shared-vocabulary)
        and the shared string table's size, so ``flowcube-store stats``
        shows at a glance whether a ``migrate --to binary`` upgrade
        pass is still pending.
        """
        out = self.catalog.describe()
        if self.store_format == "binary":
            generations = {1: 0, 2: 0}
            for meta in self.catalog.partitions:
                if meta.filename.endswith(".bin"):
                    generation = partition_generation(
                        self._partition_path(meta)
                    )
                    generations[generation] += 1
            out["partition_generations"] = {
                str(generation): count
                for generation, count in generations.items()
            }
            table = self.strings
            out["shared_strings"] = len(table) if table is not None else 0
        return out
