"""Command-line entry point: ``flowcube-store``.

A thin operational shell around the partitioned store::

    flowcube-store init ./wh --synthetic --partition-size 250
    flowcube-store ingest ./wh --synthetic --n-paths 1000 --seed 7
    flowcube-store build ./wh --min-support 0.05 --jobs 4
    flowcube-store append ./wh --synthetic --n-paths 100 --seed 8
    flowcube-store compact ./wh
    flowcube-store query ./wh -d d0=d0_0
    flowcube-store stats ./wh
    flowcube-store migrate ./wh --to json
    flowcube-store serve --cubes wh=./wh --host 127.0.0.1 --port 8642

``init`` fixes the schema (the example retail schema or a synthetic one);
``ingest`` appends partitions — from a CSV in the
:meth:`~repro.core.path_database.PathDatabase.to_csv` format, the built-in
example, or the Section 6.1 generator (whose configuration ``init``
recorded in the catalog, so later ingests reuse the same hierarchies);
``build`` materialises the iceberg cube out-of-core into the store's
``cube/`` directory, scanning partitions on ``--jobs`` worker processes
when asked; ``append`` ingests a batch *and* delta-merges it into the
built cube (:mod:`repro.store.append`) — touched cells land in
append-only ``cells.delta.NNN.bin`` segments instead of a heap rewrite,
auto-compacting once ``--compact-after`` segments pile up; ``compact``
folds pending delta segments back into a clean base heap on demand;
``query`` renders a cell's flowgraph measure — with
``--derive``, coordinates whose cuboid was not materialised are merged
from the cheapest materialised descendant (the roll-up planner), and the
query-cache counters are folded into ``cube/query_stats.json`` so
``stats`` can report serving behaviour across invocations; ``serve``
mounts one or more built stores as named tenants of the asyncio HTTP
slicer (:mod:`repro.serve`) and answers slice/rollup/drilldown/query,
flowgraph and exception reports, and cache statistics as a JSON API;
``migrate`` converts a store (partitions and any built cube) between
the compact binary layout and the portable JSON/CSV interchange layout
in place, parity-checking every converted file.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
from dataclasses import asdict
from pathlib import Path as FsPath

from repro.core.path import PathRecord
from repro.core.path_database import PathDatabase, example_path_database
from repro.errors import FlowCubeError, StoreError
from repro.perf.pool import oversubscription_warning, resolve_jobs
from repro.perf.query_kernel import load_query_stats, merge_query_stats
from repro.query.api import FlowCubeQuery
from repro.query.render import render_text
from repro.store.binfmt import DEFAULT_STORE_FORMAT, STORE_FORMATS
from repro.store.builder import BuildStats, build_cube
from repro.store.pathstore import PartitionedPathStore
from repro.synth.generator import GeneratorConfig, generate_path_database

__all__ = ["main"]

#: GeneratorConfig fields that shape the *schema* (persisted in the
#: catalog so every later ``ingest --synthetic`` regenerates hierarchies
#: that fingerprint identically).
_GENERATOR_KEYS = (
    "n_dims",
    "dim_fanouts",
    "n_location_groups",
    "locations_per_group",
    "max_duration",
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="flowcube-store",
        description=(
            "Manage a partitioned on-disk FlowCube store: ingest path "
            "records, build the iceberg cube out-of-core, query cells."
        ),
    )
    sub = parser.add_subparsers(dest="verb", required=True)

    init = sub.add_parser("init", help="create an empty store")
    init.add_argument("store", help="store directory")
    source = init.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--example",
        action="store_true",
        help="use the built-in retail example schema",
    )
    source.add_argument(
        "--synthetic",
        action="store_true",
        help="use a Section 6.1 synthetic schema",
    )
    init.add_argument("--partition-size", type=int, default=512)
    init.add_argument(
        "--format",
        choices=STORE_FORMATS,
        default=DEFAULT_STORE_FORMAT,
        dest="store_format",
        help=(
            "on-disk layout: 'binary' (columnar partitions + packed "
            "cell heap, the default) or 'json' (CSV partitions + "
            "JSON cells, the portable interchange format)"
        ),
    )
    init.add_argument("--n-dims", type=int, default=5)
    init.add_argument(
        "--fanouts",
        default="5,5,10",
        help="per-level dimension fanouts, comma separated",
    )
    init.add_argument("--n-location-groups", type=int, default=4)
    init.add_argument("--locations-per-group", type=int, default=4)
    init.add_argument("--max-duration", type=int, default=10)

    ingest = sub.add_parser("ingest", help="append records as new partitions")
    ingest.add_argument("store")
    source = ingest.add_mutually_exclusive_group(required=True)
    source.add_argument("--csv", metavar="FILE", help="PathDatabase CSV file")
    source.add_argument(
        "--example",
        action="store_true",
        help="ingest the built-in example records",
    )
    source.add_argument(
        "--synthetic",
        action="store_true",
        help="generate records with the schema the store was initialised with",
    )
    ingest.add_argument("--n-paths", type=int, default=1000)
    ingest.add_argument("--seed", type=int, default=7)

    append = sub.add_parser(
        "append",
        help="ingest a batch and delta-merge it into the built cube",
    )
    append.add_argument("store")
    batch_source = append.add_mutually_exclusive_group(required=True)
    batch_source.add_argument(
        "--csv", metavar="FILE", help="PathDatabase CSV file"
    )
    batch_source.add_argument(
        "--example",
        action="store_true",
        help="append the built-in example records (ids shifted)",
    )
    batch_source.add_argument(
        "--synthetic",
        action="store_true",
        help="generate records with the schema the store was initialised with",
    )
    append.add_argument("--n-paths", type=int, default=100)
    append.add_argument("--seed", type=int, default=7)
    append.add_argument(
        "--no-exceptions",
        action="store_true",
        help="skip re-mining exceptions in the touched cells",
    )
    append.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help=(
            "fan the dirty-cell exception pass over N worker processes "
            "(default 1: serial; 0: cpu_count - 1)"
        ),
    )
    append.add_argument(
        "--kernel",
        choices=("bitmap", "scan"),
        default="bitmap",
        help="per-cell exception kernel (identical output)",
    )
    append.add_argument(
        "--compact-after",
        type=int,
        default=16,
        metavar="N",
        help=(
            "fold delta segments into a clean base heap once N are "
            "pending (0 disables auto-compaction)"
        ),
    )

    compact = sub.add_parser(
        "compact",
        help="fold pending cube delta segments into a clean base heap",
    )
    compact.add_argument("store")

    build = sub.add_parser(
        "build", help="materialise the iceberg cube (out-of-core)"
    )
    build.add_argument("store")
    build.add_argument("--min-support", type=float, default=0.01)
    build.add_argument("--min-deviation", type=float, default=0.1)
    build.add_argument(
        "--no-exceptions",
        action="store_true",
        help="skip flowgraph exception mining",
    )
    build.add_argument(
        "--shared",
        action="store_true",
        help="pre-mine segments with out-of-core Shared (Algorithm 1)",
    )
    build.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help=(
            "run partition scans on N persistent worker processes "
            "(default 1: serial; 0: cpu_count - 1)"
        ),
    )
    build.add_argument(
        "--pool",
        choices=("shared", "plain"),
        default="shared",
        help=(
            "mining-row residency under --jobs: 'shared' interns "
            "transactions once into shared memory (workers read "
            "zero-copy); 'plain' re-encodes partitions in each worker "
            "(identical output)"
        ),
    )
    build.add_argument(
        "--engine",
        choices=("rollup", "direct"),
        default="rollup",
        help=(
            "measure engine: 'rollup' scans records once and derives "
            "ancestor cuboids by merging child cells; 'direct' re-scans "
            "per item level (identical output)"
        ),
    )
    build.add_argument(
        "--kernel",
        choices=("bitmap", "scan"),
        default="bitmap",
        help=(
            "counting kernel for Shared pre-mining and the per-cell "
            "exception pass: 'bitmap' answers every count with an AND + "
            "popcount over tid bitmaps; 'scan' re-walks the paths "
            "(identical output)"
        ),
    )

    query = sub.add_parser("query", help="render one cell's flowgraph")
    query.add_argument("store")
    query.add_argument(
        "-d",
        "--dim",
        action="append",
        default=[],
        metavar="NAME=VALUE",
        help="dimension constraint (repeatable)",
    )
    query.add_argument(
        "--path-level",
        type=int,
        default=None,
        help="path-lattice index (default: most detailed level)",
    )
    query.add_argument("--cache-size", type=int, default=128)
    query.add_argument(
        "--derive",
        action="store_true",
        help=(
            "answer non-materialised coordinates by merging the cheapest "
            "materialised descendant cuboid (roll-up planner) instead of "
            "failing"
        ),
    )

    stats = sub.add_parser("stats", help="catalog, cube, and cache statistics")
    stats.add_argument("store")

    migrate = sub.add_parser(
        "migrate",
        help="convert a store between the binary and json layouts in place",
    )
    migrate.add_argument("store")
    migrate.add_argument(
        "--to",
        choices=STORE_FORMATS,
        required=True,
        dest="target",
        help="target layout for partitions and any built cube",
    )
    migrate.add_argument(
        "--no-check",
        action="store_true",
        help="skip the per-file round-trip parity verification",
    )

    serve = sub.add_parser(
        "serve", help="serve built cubes over HTTP (JSON slicer API)"
    )
    serve.add_argument(
        "--cubes",
        action="append",
        required=True,
        metavar="NAME=PATH",
        help=(
            "mount the store at PATH as tenant NAME (repeatable; a bare "
            "PATH uses the directory name)"
        ),
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=8642,
        help="TCP port (0 picks a free one and prints it)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=8,
        help="request-handler thread pool size",
    )
    serve.add_argument("--cache-size", type=int, default=256)
    serve.add_argument(
        "--token",
        default=None,
        help="require 'Authorization: Bearer TOKEN' on every request",
    )
    serve.add_argument(
        "--admin-token",
        default=None,
        help=(
            "enable POST /cubes/{name}/mount and /unmount; requests must "
            "carry the token in an X-Admin-Token header (off by default)"
        ),
    )
    serve.add_argument(
        "--max-age",
        type=int,
        default=60,
        metavar="SECONDS",
        help=(
            "Cache-Control: max-age emitted next to ETags on cacheable "
            "responses (0 forces revalidation; default 60)"
        ),
    )
    return parser


def _synthetic_config(args: argparse.Namespace) -> GeneratorConfig:
    fanouts = tuple(int(part) for part in args.fanouts.split(","))
    return GeneratorConfig(
        n_paths=1,
        n_dims=args.n_dims,
        dim_fanouts=fanouts,
        n_location_groups=args.n_location_groups,
        locations_per_group=args.locations_per_group,
        max_duration=args.max_duration,
    )


def _shift_ids(records, floor: int) -> list[PathRecord]:
    """Re-id a batch to sit just above the store's high-water mark."""
    return [
        PathRecord(floor + offset + 1, record.dims, record.path)
        for offset, record in enumerate(records)
    ]


def _cmd_init(args: argparse.Namespace) -> int:
    extra: dict = {}
    if args.example:
        schema = example_path_database().schema
        extra["source"] = "example"
    else:
        config = _synthetic_config(args)
        schema = generate_path_database(config).schema
        extra["source"] = "synthetic"
        extra["generator"] = {
            key: value
            for key, value in asdict(config).items()
            if key in _GENERATOR_KEYS
        }
    store = PartitionedPathStore.init(
        args.store,
        schema,
        partition_size=args.partition_size,
        extra=extra,
        store_format=args.store_format,
    )
    print(
        f"initialised {extra['source']} store at {store.directory} "
        f"({args.store_format} format, partition size "
        f"{store.partition_size}, "
        f"fingerprint {store.catalog.fingerprint[:12]})"
    )
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    store = PartitionedPathStore.open(args.store)
    floor = store.catalog.max_record_id
    if args.csv:
        text = FsPath(args.csv).read_text(encoding="utf-8")
        database = PathDatabase.from_csv(store.schema, text)
        written = store.ingest(database)
        ingested = len(database)
    elif args.example:
        rows = _shift_ids(example_path_database(), floor)
        written = store.ingest(rows, validate=True)
        ingested = len(rows)
    else:
        generator = store.catalog.extra.get("generator")
        if generator is None:
            raise StoreError(
                "this store was not initialised with --synthetic "
                "(no generator configuration in the catalog)"
            )
        config = GeneratorConfig(
            n_paths=args.n_paths,
            seed=args.seed,
            dim_fanouts=tuple(generator["dim_fanouts"]),
            **{k: generator[k] for k in _GENERATOR_KEYS if k != "dim_fanouts"},
        )
        rows = _shift_ids(generate_path_database(config), floor)
        written = store.ingest(rows, validate=False)
        ingested = len(rows)
    print(
        f"ingested {ingested} records into {len(written)} new partition(s); "
        f"store now holds {len(store)} records in "
        f"{len(store.catalog.partitions)} partition(s)"
    )
    return 0


def _batch_records(
    store: PartitionedPathStore, args: argparse.Namespace
) -> list[PathRecord]:
    """Resolve an append batch from ``--csv`` / ``--example`` / ``--synthetic``."""
    floor = store.catalog.max_record_id
    if args.csv:
        text = FsPath(args.csv).read_text(encoding="utf-8")
        return list(PathDatabase.from_csv(store.schema, text))
    if args.example:
        return _shift_ids(example_path_database(), floor)
    generator = store.catalog.extra.get("generator")
    if generator is None:
        raise StoreError(
            "this store was not initialised with --synthetic "
            "(no generator configuration in the catalog)"
        )
    config = GeneratorConfig(
        n_paths=args.n_paths,
        seed=args.seed,
        dim_fanouts=tuple(generator["dim_fanouts"]),
        **{k: generator[k] for k in _GENERATOR_KEYS if k != "dim_fanouts"},
    )
    return _shift_ids(generate_path_database(config), floor)


def _cmd_append(args: argparse.Namespace) -> int:
    store = PartitionedPathStore.open(args.store)
    jobs = resolve_jobs(args.jobs)
    if jobs != args.jobs:
        print(f"--jobs 0 resolved to {jobs} (cpu_count - 1)", file=sys.stderr)
    rows = _batch_records(store, args)
    cube_store = store.cube_store()
    result = store.append_into_cube(
        rows,
        cube=cube_store,
        recompute_exceptions=not args.no_exceptions,
        kernel=args.kernel,
        jobs=jobs,
        compact_after=args.compact_after,
    )
    print(
        f"appended {result['ingested']} records into the cube at "
        f"{cube_store.directory}: {result['updated']} cell(s) updated, "
        f"{result['created']} created ({result['promoted']} key(s) crossed "
        f"the iceberg frontier), {result['demoted']} demoted, "
        f"{result['still_below_delta']} candidate(s) still below delta"
    )
    if result["compacted"]:
        print(
            f"compacted {result['compacted']} cell(s) into a clean heap "
            f"(threshold {args.compact_after} delta segments)"
        )
    else:
        print(f"{result['delta_segments']} delta segment(s) pending")
    return 0


def _cmd_compact(args: argparse.Namespace) -> int:
    store = PartitionedPathStore.open(args.store)
    cube_store = store.cube_store()
    if not cube_store.is_built:
        raise StoreError(
            f"no cube has been built at {store.directory} "
            "(run `flowcube-store build` first)"
        )
    pending = len(cube_store.delta_segments)
    folded = cube_store.compact()
    if folded:
        print(
            f"folded {pending} delta segment(s) ({folded} cells) into a "
            f"clean base heap at {cube_store.directory}"
        )
    else:
        print("no delta segments pending; nothing to compact")
    return 0


def _cmd_build(args: argparse.Namespace) -> int:
    store = PartitionedPathStore.open(args.store)
    if len(store) == 0:
        raise StoreError("the store is empty — ingest records first")
    jobs = resolve_jobs(args.jobs)
    if jobs != args.jobs:
        print(f"--jobs 0 resolved to {jobs} (cpu_count - 1)", file=sys.stderr)
    warning = oversubscription_warning(jobs)
    if warning is not None:
        print(f"warning: {warning}", file=sys.stderr)
    cube_store = store.cube_store()
    stats = BuildStats()
    build_cube(
        store,
        min_support=args.min_support,
        min_deviation=args.min_deviation,
        compute_exceptions=not args.no_exceptions,
        use_shared=args.shared,
        into=cube_store,
        stats=stats,
        jobs=jobs,
        engine=args.engine,
        kernel=args.kernel,
        pool_mode=args.pool,
    )
    print(
        f"built {stats.cells} cells in {stats.cuboids} cuboids from "
        f"{stats.records} records across {stats.partitions} partition(s) "
        f"in {stats.elapsed_seconds:.2f}s "
        f"({stats.scans} partition scans, peak "
        f"{stats.max_live_transaction_dbs} encoded partition(s) in memory)"
    )
    if stats.phase_seconds:
        breakdown = ", ".join(
            f"{name} {seconds:.2f}s"
            for name, seconds in sorted(stats.phase_seconds.items())
        )
        print(f"phases: {breakdown}")
    return 0


def _parse_dims(pairs: list[str]) -> dict[str, str]:
    dims: dict[str, str] = {}
    for pair in pairs:
        name, separator, value = pair.partition("=")
        if not separator or not name or not value:
            raise StoreError(f"bad -d constraint {pair!r}; expected NAME=VALUE")
        dims[name] = value
    return dims


def _cmd_query(args: argparse.Namespace) -> int:
    store = PartitionedPathStore.open(args.store)
    cube_store = store.cube_store(cache_size=args.cache_size)
    if not cube_store.is_built:
        raise StoreError(
            f"no cube has been built at {store.directory} "
            "(run `flowcube-store build` first)"
        )
    query = FlowCubeQuery(cube_store, derive=args.derive)
    path_level = None
    if args.path_level is not None:
        lattice = cube_store.path_lattice
        if lattice is None or not 0 <= args.path_level < len(lattice):
            raise StoreError(f"no path level {args.path_level} in the cube")
        path_level = lattice[args.path_level]
    dims = _parse_dims(args.dim)
    graph = query.flowgraph(path_level, **dims)
    label = ", ".join(f"{k}={v}" for k, v in dims.items()) or "the apex cell"
    stats = query.cache_stats()
    if stats["derivations"]:
        item_level, _ = query.coordinates(**dims)
        plan = query.plan_for(item_level, path_level)
        note = "" if plan is None or plan.exact else (
            " (iceberg-pruned source: derived counts are lower bounds)"
        )
        print(
            f"derived from cuboid {plan.source.levels!r} "
            f"({plan.source_cells} cells, lattice distance {plan.distance})"
            f"{note}"
        )
    print(f"flowgraph measure of {label}:")
    print(render_text(graph))
    merge_query_stats(cube_store.directory, stats)
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    store = PartitionedPathStore.open(args.store)
    report: dict[str, object] = {"store": store.describe()}
    cube_store = store.cube_store()
    if cube_store.is_built:
        cube_report = cube_store.describe()
        query_stats = load_query_stats(cube_store.directory)
        if query_stats is not None:
            cube_report["query_cache"] = query_stats
        report["cube"] = cube_report
    print(json.dumps(report, indent=2))
    return 0


def _cmd_migrate(args: argparse.Namespace) -> int:
    store = PartitionedPathStore.open(args.store)
    check = not args.no_check
    if store.store_format == args.target:
        # Same format ≠ nothing to do: a binary store written by an
        # older release may still hold generation-1 partition files
        # (FCPART01 private string tables) or a generation-1 cell heap
        # (FCHEAP01 JSON payloads); migrate upgrades those in place.
        needs_upgrade = args.target == "binary" and (
            store.partitions_need_upgrade()
            or store.cube_store().needs_upgrade()
        )
        if not needs_upgrade:
            print(
                f"store at {store.directory} is already in "
                f"{args.target} format"
            )
            return 0
    parity = "parity-checked" if check else "unchecked"
    print(f"migrating {store.directory} to {args.target} ({parity})")

    def partition_progress(done: int, total: int, filename: str) -> None:
        print(f"  partition {done}/{total}: {filename}", flush=True)

    result = store.migrate_partitions(
        args.target, progress=partition_progress, check=check
    )
    print(
        f"partitions: {result['partitions']} converted, "
        f"{result['skipped']} already {args.target}"
    )
    cube_store = store.cube_store()
    if cube_store.is_built:
        total = cube_store.n_cells()
        step = max(1, total // 10)

        def cell_progress(done: int, n: int) -> None:
            if done % step == 0 or done == n:
                print(f"  cube cells {done}/{n}", flush=True)

        converted = cube_store.convert(
            args.target, progress=cell_progress, check=check
        )
        print(f"cube: {converted} cell(s) converted")
    else:
        print("cube: none built, nothing to convert")
    print(f"done: store format is now {args.target}")
    return 0


def _parse_cube_mounts(entries: list[str]) -> dict[str, str]:
    """``NAME=PATH`` (or bare ``PATH``) entries into a tenant mapping."""
    cubes: dict[str, str] = {}
    for entry in entries:
        name, separator, path = entry.partition("=")
        if not separator:
            path = entry
            name = FsPath(entry).name or entry
        if not name or not path:
            raise StoreError(
                f"bad --cubes entry {entry!r}; expected NAME=PATH"
            )
        if name in cubes:
            raise StoreError(f"tenant name {name!r} given twice")
        cubes[name] = path
    return cubes


def _cmd_serve(args: argparse.Namespace) -> int:
    # Imported here: the serve subsystem pulls in asyncio machinery no
    # other verb needs.
    from repro.serve import create_app, run

    app = create_app(
        _parse_cube_mounts(args.cubes),
        cache_size=args.cache_size,
        token=args.token,
        max_age=args.max_age,
        admin_token=args.admin_token,
    )

    def ready(address: tuple[str, int]) -> None:
        host, port = address
        names = ", ".join(sorted(app.tenants))
        print(
            f"serving {len(app.tenants)} cube(s) [{names}] "
            f"at http://{host}:{port}",
            flush=True,
        )

    try:
        asyncio.run(
            run(
                app,
                host=args.host,
                port=args.port,
                workers=args.workers,
                ready=ready,
            )
        )
    except KeyboardInterrupt:
        pass
    return 0


_COMMANDS = {
    "init": _cmd_init,
    "ingest": _cmd_ingest,
    "append": _cmd_append,
    "compact": _cmd_compact,
    "build": _cmd_build,
    "query": _cmd_query,
    "stats": _cmd_stats,
    "migrate": _cmd_migrate,
    "serve": _cmd_serve,
}


def main(argv: list[str] | None = None) -> int:
    """CLI body; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.verb](args)
    except FlowCubeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream closed early (e.g. ``query … | head``).  Point stdout
        # at devnull so the interpreter's exit flush doesn't raise again.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 141


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
