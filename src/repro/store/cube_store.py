"""The lazy on-disk flowcube store.

A :class:`CubeStore` persists a materialised flowcube *cell by cell*,
in one of two on-disk backends selected per store:

``"binary"`` (the default for new cubes)::

    cube/
      cube.json               δ/ε, the path lattice, build provenance
      cells.bin               packed heap: length-prefixed cell payloads
      cells.idx               columnar key/offset index (binfmt codec)

``"json"`` (the portable interchange layout)::

    cube/
      cube.json               ... plus the full cell index inline
      cells/
        cell-000000.json      one cell: coordinates + flowgraph payload
        ...

Both backends store the *same logical* cell payload (the dict produced
with :func:`~repro.core.serialization.flowgraph_to_dict`) — the binary
heap packs it with the compact ``FCHEAP02`` codec
(:func:`~repro.store.binfmt.encode_cell_payload`; legacy ``FCHEAP01``
heaps with raw JSON payloads stay readable) and moves the index into
the packed ``cells.idx`` arena, so opening a million-cell cube costs
one mmap per store instead of a million stats — zero heap bytes are
read on open, and the per-cuboid catalog masks stay lazy byte spans
over the index map until a query ANDs them.  ``cube_to_json`` output
is byte-identical across backends and generations.  A cell's
flowgraph is only *materialised* (parsed and rebuilt) when a query
first touches it; the store fronts every read with a bounded
:class:`~repro.store.cache.LRUCache` whose hit/miss/eviction counters
make serving behaviour observable.  :meth:`CubeStore.convert` switches
a built cube between backends in place (``flowcube-store migrate``).

The store exposes the same lookup surface as
:class:`~repro.core.flowcube.FlowCube` (``cuboid`` / ``cell`` /
``flowgraph_for`` / ``cuboids``), so
:class:`~repro.query.api.FlowCubeQuery` works over either without caring
which one it was given.
"""

from __future__ import annotations

import json
import mmap
import os
import shutil
import threading
from collections.abc import Callable, Iterator
from datetime import datetime, timezone
from pathlib import Path as FsPath

from repro.core.flowcube import Cell, CellKey
from repro.core.lattice import ItemLevel, PathLattice, PathLevel
from repro.core.path_database import PathSchema
from repro.core.serialization import (
    flowgraph_from_dict,
    flowgraph_to_dict,
    path_level_from_dict,
    path_level_to_dict,
)
from repro.errors import CubeError, StoreError
from repro.store import binfmt
from repro.store.binfmt import HEAP_LENGTH_STRUCT, HEAP_MAGIC
from repro.store.cache import LRUCache

__all__ = ["CELL_FORMATS", "CubeStore", "StoredCuboid"]

META_FILENAME = "cube.json"
CELLS_DIR = "cells"
HEAP_FILENAME = "cells.bin"
INDEX_FILENAME = "cells.idx"
#: Full cell index over base heap + delta segments; authoritative (and
#: present) exactly when the meta file lists ``delta_segments``.
DELTA_INDEX_FILENAME = "cells.delta.idx"


def delta_segment_filename(segment_id: int) -> str:
    """File name of append-only delta segment *segment_id* (≥ 1)."""
    return f"cells.delta.{segment_id:03d}.bin"


def _new_append_stats() -> dict:
    """Fresh append/compaction counters for ``build_stats["append"]``."""
    return {
        "batches": 0,
        "records_appended": 0,
        "cells_updated": 0,
        "cells_created": 0,
        "cells_promoted": 0,
        "cells_demoted": 0,
        "still_below_delta": 0,
        "delta_segments": 0,
        "compactions": 0,
        "last_compaction": None,
    }

#: Cube cell backends; same names as the store-level formats.
CELL_FORMATS = binfmt.STORE_FORMATS

#: Index coordinates: (item level, path-level id, cell key).
Coords = tuple[ItemLevel, int, CellKey]

#: An index entry.  The representation is backend-specific —
#: ``(filename, n_paths, redundant)`` for JSON cells, ``(heap offset,
#: payload length, n_paths, redundant)`` for the packed heap — but the
#: last two slots are common, so shared code reads ``entry[-2]``
#: (n_paths) and ``entry[-1]`` (redundant) without dispatching.
Entry = tuple


class _JsonCells:
    """One-JSON-file-per-cell backend (the portable interchange layout)."""

    format = "json"

    def __init__(self, directory: FsPath) -> None:
        self.directory = directory
        self.n_files = 0
        #: Precomputed per-cuboid catalog masks; the JSON layout stores
        #: none, so catalogs are derived from the keys on demand.
        self.cell_masks: dict = {}

    def begin(self) -> None:
        """Reset for a fresh build (file numbering restarts at 0)."""
        self.n_files = 0
        (self.directory / CELLS_DIR).mkdir(parents=True, exist_ok=True)

    def put(self, payload: dict, n_paths: int, redundant: bool) -> Entry:
        filename = f"cell-{self.n_files:06d}.json"
        self.n_files += 1
        path = self.directory / CELLS_DIR / filename
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload), encoding="utf-8")
        return (filename, int(n_paths), bool(redundant))

    def read(self, entry: Entry) -> dict:
        path = self.directory / CELLS_DIR / entry[0]
        if not path.exists():
            raise StoreError(f"cell file {path} is missing")
        return json.loads(path.read_text(encoding="utf-8"))

    def finalise(self, index) -> dict:
        """Meta-payload contribution; JSON keeps the cell index inline."""
        cells = []
        for (item_level, level_id), entries in index.items():
            for key, entry in entries.items():
                cells.append(
                    {
                        "item_level": list(item_level.levels),
                        "path_level": level_id,
                        "key": list(key),
                        "file": entry[0],
                        "n_paths": entry[1],
                        "redundant": entry[2],
                    }
                )
        return {"n_files": self.n_files, "cells": cells}

    def load(self, payload: dict, schema: PathSchema):
        """Rebuild the index from the inline ``cells`` list."""
        self.n_files = int(payload.get("n_files", len(payload["cells"])))
        index: dict[tuple[ItemLevel, int], dict[CellKey, Entry]] = {}
        for entry in payload["cells"]:
            item_level = ItemLevel(entry["item_level"])
            level_id = int(entry["path_level"])
            index.setdefault((item_level, level_id), {})[
                tuple(entry["key"])
            ] = (
                entry["file"],
                int(entry["n_paths"]),
                bool(entry["redundant"]),
            )
        return index

    def close(self, materialise: bool = True) -> None:
        pass

    def discard_files(self) -> None:
        cells_dir = self.directory / CELLS_DIR
        if cells_dir.exists():
            for stale in cells_dir.glob("cell-*.json"):
                stale.unlink()
            try:
                cells_dir.rmdir()
            except OSError:
                pass  # non-cell files present; leave the directory


class _HeapCells:
    """Packed cell heap: one ``cells.bin`` blob + mmap'd ``cells.idx``.

    Writes append length-prefixed payloads to a per-pid staging file
    (seeded with a copy of the live heap when mutating an already-built
    cube); :meth:`finalise` renames heap → index → meta-last, so a
    reader never sees an index pointing past the heap.  Reads go
    through ``os.pread`` on the staging handle while a build is open,
    and through one shared read-only mmap afterwards.

    Two heap generations coexist behind the one ``"binary"`` format:
    generation 1 (``FCHEAP01``) holds JSON payloads, generation 2
    (``FCHEAP02``, the default for new heaps) holds
    :func:`~repro.store.binfmt.encode_cell_payload` records.  The
    generation is sniffed lazily from the heap magic on the first
    payload read — a cold open touches ``cells.idx`` only, which is
    itself mmap'd with the catalog masks left as
    :class:`~repro.store.binfmt.LazyMaskMap` spans.  ``io_counters``
    tallies heap bytes read and mask bitmaps decoded; the benchmark
    tripwire asserts both stay zero across an open.
    """

    format = "binary"

    #: Heap generation written by new builds.
    LATEST_GENERATION = 2

    def __init__(self, directory: FsPath, n_dims: int) -> None:
        self.directory = directory
        self.n_dims = n_dims
        self._staging = None
        self._offset = 0
        self._mmap: mmap.mmap | None = None
        self._mmap_file = None
        self._index_mmap: mmap.mmap | None = None
        self._index_file = None
        self._mask_arena: binfmt.MaskArena | None = None
        self._generation: int | None = None
        #: Published delta segment ids, in append order (meta-sourced).
        self.delta_segments: list[int] = []
        self._delta_staging = None
        self._delta_segment: int | None = None
        self._delta_offset = 0
        #: segment id -> (file handle, read-only mmap), opened lazily.
        self._segment_views: dict[int, tuple] = {}
        #: (item level, path-level id) -> per-dimension catalog masks:
        #: lazy mmap-backed views handed out by :meth:`load`.
        self.cell_masks: dict = {}
        #: Read-path telemetry (shared with the mask arena).
        self.io_counters: dict[str, int] = {
            "heap_bytes_read": 0,
            "mask_bits_decoded": 0,
        }

    @property
    def heap_path(self) -> FsPath:
        return self.directory / HEAP_FILENAME

    @property
    def index_path(self) -> FsPath:
        return self.directory / INDEX_FILENAME

    @property
    def _staging_path(self) -> FsPath:
        return self.directory / f"{HEAP_FILENAME}.{os.getpid()}.tmp"

    @property
    def overlay_path(self) -> FsPath:
        return self.directory / DELTA_INDEX_FILENAME

    @property
    def _delta_staging_path(self) -> FsPath:
        return self.directory / f"cells.delta.bin.{os.getpid()}.tmp"

    def delta_path(self, segment_id: int) -> FsPath:
        return self.directory / delta_segment_filename(segment_id)

    @staticmethod
    def _magic_for(generation: int) -> bytes:
        return HEAP_MAGIC if generation == 1 else binfmt.HEAP_MAGIC_V2

    @property
    def generation(self) -> int:
        """The live heap's generation, sniffed from its magic on demand."""
        if self._generation is None:
            if self._staging is not None:
                self._staging.flush()
                magic = os.pread(self._staging.fileno(), 8, 0)
            elif self.heap_path.exists():
                with open(self.heap_path, "rb") as handle:
                    magic = handle.read(8)
            else:
                return self.LATEST_GENERATION
            self._generation = binfmt.heap_generation(magic)
        return self._generation

    def needs_upgrade(self) -> bool:
        """True when the published heap predates :data:`LATEST_GENERATION`."""
        return (
            self.heap_path.exists()
            and self.generation < self.LATEST_GENERATION
        )

    def begin(self, generation: int | None = None) -> None:
        """Start a fresh heap in the staging file.

        *generation* pins the heap codec (1 = JSON payloads, 2 = binary
        records); new heaps default to :data:`LATEST_GENERATION`.
        """
        self._drop_mmap()
        self._abort_staging()
        self._abort_delta_staging()
        self.cell_masks = {}
        self._generation = generation or self.LATEST_GENERATION
        self.directory.mkdir(parents=True, exist_ok=True)
        self._staging = open(self._staging_path, "w+b")
        self._staging.write(self._magic_for(self._generation))
        self._offset = 8

    def begin_delta(self) -> int:
        """Start an append-only delta segment over the published heap.

        Subsequent :meth:`put` calls land in a staged
        ``cells.delta.NNN.bin`` file instead of rewriting ``cells.bin``;
        their index entries carry the segment id in the offset's high
        bits (:func:`~repro.store.binfmt.pack_segment_offset`).
        Returns the new segment's id.
        """
        if self._staging is not None:
            raise StoreError(
                "cannot stage a delta segment while a full heap rebuild "
                "is in progress"
            )
        if not self.heap_path.exists():
            raise StoreError(
                f"cell heap {self.heap_path} is missing; "
                "build the cube before appending"
            )
        self._abort_delta_staging()
        # Delta payloads must match the base heap's codec.
        self._generation = self.generation
        self._delta_segment = self._next_segment_id()
        self._delta_staging = open(self._delta_staging_path, "w+b")
        self._delta_staging.write(self._magic_for(self._generation))
        self._delta_offset = 8
        return self._delta_segment

    def _next_segment_id(self) -> int:
        """One past the highest referenced *or on-disk* segment id.

        Scanning the directory (not just the meta-referenced list) skips
        over orphan segments left by a crash between the segment rename
        and the meta publish.
        """
        highest = max(self.delta_segments, default=0)
        for path in self.directory.glob("cells.delta.*.bin"):
            stem = path.name.split(".")[2]
            if stem.isdigit():
                highest = max(highest, int(stem))
        return highest + 1

    def _ensure_staging(self) -> None:
        """Open the staging file, seeding it from the live heap.

        Appends must match the seeded heap's codec, so the generation is
        pinned from the copied magic before the first :meth:`put`.
        """
        if self._staging is not None:
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        if self.heap_path.exists():
            self._generation = self.generation  # sniff before staging opens
            shutil.copyfile(self.heap_path, self._staging_path)
        else:
            self._generation = self._generation or self.LATEST_GENERATION
            self._staging_path.write_bytes(self._magic_for(self._generation))
        self._staging = open(self._staging_path, "a+b")
        self._offset = os.path.getsize(self._staging_path)

    def _encode(self, payload: dict) -> bytes:
        if self._generation == 1:
            return json.dumps(payload).encode("utf-8")
        return binfmt.encode_cell_payload(payload)

    def put(self, payload: dict, n_paths: int, redundant: bool) -> Entry:
        data = self._encode(payload)
        if self._delta_staging is not None:
            self._delta_staging.write(HEAP_LENGTH_STRUCT.pack(len(data)))
            self._delta_staging.write(data)
            entry = (
                binfmt.pack_segment_offset(
                    self._delta_segment,
                    self._delta_offset + HEAP_LENGTH_STRUCT.size,
                ),
                len(data),
                int(n_paths),
                bool(redundant),
            )
            self._delta_offset += HEAP_LENGTH_STRUCT.size + len(data)
            return entry
        self._ensure_staging()
        return self.put_raw(data, n_paths, redundant)

    def put_raw(self, data: bytes, n_paths: int, redundant: bool) -> Entry:
        """Byte-exact append of an already-encoded payload (compaction)."""
        if self._staging is None:
            raise StoreError("put_raw requires a staged heap (begin first)")
        self._staging.write(HEAP_LENGTH_STRUCT.pack(len(data)))
        self._staging.write(data)
        entry = (
            self._offset + HEAP_LENGTH_STRUCT.size,
            len(data),
            int(n_paths),
            bool(redundant),
        )
        self._offset += HEAP_LENGTH_STRUCT.size + len(data)
        return entry

    def raw_payload(self, entry: Entry) -> bytes:
        """The entry's encoded payload bytes, verbatim."""
        return self._raw(entry)

    def _segment_view(self, segment_id: int) -> mmap.mmap:
        pair = self._segment_views.get(segment_id)
        if pair is None:
            path = self.delta_path(segment_id)
            if not path.exists():
                raise StoreError(f"delta segment {path} is missing")
            handle = open(path, "rb")
            pair = (handle, mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ))
            self._segment_views[segment_id] = pair
        return pair[1]

    def _raw(self, entry: Entry) -> bytes:
        packed, length = entry[0], entry[1]
        segment_id, offset = binfmt.split_segment_offset(packed)
        if segment_id == 0:
            if self._staging is not None:
                # Mid-build reads (e.g. a migration parity check) hit the
                # staging file; pread leaves the append position alone.
                self._staging.flush()
                data = os.pread(self._staging.fileno(), length, offset)
            else:
                data = self._view()[offset : offset + length]
        elif (
            self._delta_staging is not None
            and segment_id == self._delta_segment
        ):
            self._delta_staging.flush()
            data = os.pread(self._delta_staging.fileno(), length, offset)
        else:
            data = self._segment_view(segment_id)[offset : offset + length]
        if len(data) != length:
            raise StoreError(
                f"cell heap {self.heap_path} is truncated at byte {offset}"
            )
        self.io_counters["heap_bytes_read"] += length
        return data

    def read(self, entry: Entry) -> dict:
        generation = self.generation
        data = self._raw(entry)
        if generation == 1:
            return json.loads(data)
        return binfmt.decode_cell_payload(data)

    def read_parts(self, entry: Entry):
        """``(record_ids, redundant, flowgraph)`` for generation-2 heaps.

        ``None`` for generation 1, where the caller materialises from
        the payload dict instead.
        """
        if self.generation != 2:
            return None
        return binfmt.decode_cell_parts(self._raw(entry))

    def _view(self) -> mmap.mmap:
        if self._mmap is None:
            if not self.heap_path.exists():
                raise StoreError(f"cell heap {self.heap_path} is missing")
            self._mmap_file = open(self.heap_path, "rb")
            self._mmap = mmap.mmap(
                self._mmap_file.fileno(), 0, access=mmap.ACCESS_READ
            )
        return self._mmap

    def _index_blob(self, index) -> bytes:
        def cuboid_rows():
            for (item_level, level_id), entries in index.items():
                yield (
                    item_level.levels,
                    level_id,
                    (
                        (key, e[0], e[1], e[2], e[3])
                        for key, e in entries.items()
                    ),
                )

        return binfmt.pack_cell_index(cuboid_rows(), self.n_dims)

    @staticmethod
    def _referenced_segments(index) -> list[int]:
        """Delta segment ids the index entries still address, sorted."""
        seen: set[int] = set()
        for entries in index.values():
            for entry in entries.values():
                segment_id = entry[0] >> binfmt.SEGMENT_SHIFT
                if segment_id:
                    seen.add(segment_id)
        return sorted(seen)

    def finalise(self, index) -> dict:
        """Publish the staged writes, return meta fields.

        With a staged *delta segment*: rename the segment, then rewrite
        the full index into the ``cells.delta.idx`` overlay, and report
        ``delta_segments`` for the meta file — the meta publish (by the
        caller, last) is the commit point, so a crash anywhere before it
        leaves readers on the previous build exactly.

        Otherwise (a full heap build): rename order — heap, then index,
        then (by the caller) the meta file — keeps every published index
        consistent with a heap that already contains its payloads.  When
        the fresh heap supersedes every delta segment, the segments and
        overlay are unlinked; when entries still address deltas (e.g. a
        metadata-only flush of a delta-bearing cube), the index goes to
        the overlay and the segments stay.
        """
        if self._delta_staging is not None:
            return self._finalise_delta(index)
        blob = self._index_blob(index)
        self.directory.mkdir(parents=True, exist_ok=True)
        if self._staging is not None:
            self._staging.close()
            self._staging = None
            self._drop_mmap()
            os.replace(self._staging_path, self.heap_path)
        elif not self.heap_path.exists():
            # An empty cube flushed without a single put still publishes
            # a (magic-only) heap so the pair of files stays consistent.
            self._staging_path.write_bytes(
                self._magic_for(self._generation or self.LATEST_GENERATION)
            )
            os.replace(self._staging_path, self.heap_path)
        out = {"n_cells": sum(len(entries) for entries in index.values())}
        referenced = self._referenced_segments(index)
        if referenced:
            self.delta_segments = referenced
            self._replace_file(self.overlay_path, blob)
            out["delta_segments"] = list(referenced)
        else:
            self._replace_file(self.index_path, blob)
            # Superseded segments are swept by the caller *after* the
            # meta commit — the previous meta still references them.
            self.delta_segments = []
        return out

    def sweep_stale_deltas(self) -> None:
        """Unlink delta files no published meta references any more."""
        self._discard_delta_files()

    def _finalise_delta(self, index) -> dict:
        segment_id = self._delta_segment
        staging, self._delta_staging = self._delta_staging, None
        self._delta_segment = None
        staging.close()
        blob = self._index_blob(index)
        os.replace(self._delta_staging_path, self.delta_path(segment_id))
        self._replace_file(self.overlay_path, blob)
        if segment_id not in self.delta_segments:
            self.delta_segments = [*self.delta_segments, segment_id]
        return {
            "n_cells": sum(len(entries) for entries in index.values()),
            "delta_segments": list(self.delta_segments),
        }

    def _replace_file(self, destination: FsPath, blob: bytes) -> None:
        temp = self.directory / f"{destination.name}.{os.getpid()}.tmp"
        temp.write_bytes(blob)
        os.replace(temp, destination)

    def load(self, payload: dict, schema: PathSchema):
        """Rebuild the whole index from ``cells.idx`` — zero heap IO.

        The index file is mmap'd and stays mapped: keys and entries are
        decoded eagerly (cheap columnar ``zip`` passes), while the
        catalog masks remain byte spans over the map
        (:class:`~repro.store.binfmt.LazyMaskMap`), each bitmap decoded
        the first time a query ANDs it.

        When the meta payload lists ``delta_segments``, the
        ``cells.delta.idx`` overlay *is* the index — same codec, same
        laziness — and segment-tagged entries resolve through per-delta
        mmaps on first touch, so a cold open of a delta-bearing store
        still reads zero heap bytes.
        """
        self._drop_mmap()
        self._abort_staging()
        self._abort_delta_staging()
        self._drop_segments()
        self._drop_index()
        self._generation = None
        self.delta_segments = [
            int(segment_id)
            for segment_id in payload.get("delta_segments", [])
        ]
        index_path = (
            self.overlay_path if self.delta_segments else self.index_path
        )
        if not index_path.exists():
            raise StoreError(
                f"cube meta names the binary backend but {index_path} "
                "is missing"
            )
        try:
            self._index_file = open(index_path, "rb")
            self._index_mmap = mmap.mmap(
                self._index_file.fileno(), 0, access=mmap.ACCESS_READ
            )
        except (OSError, ValueError) as exc:
            self._drop_index()
            raise StoreError(
                f"cannot map cell index {index_path}: {exc}"
            ) from None
        self._mask_arena = binfmt.MaskArena(
            self._index_mmap, self.io_counters
        )
        index: dict[tuple[ItemLevel, int], dict[CellKey, Entry]] = {}
        self.cell_masks = {}
        for levels, level_id, keys, entries, masks in binfmt.unpack_cell_index(
            self._index_mmap, self._mask_arena
        ):
            coords = (ItemLevel(levels), level_id)
            index[coords] = dict(zip(keys, entries))
            self.cell_masks[coords] = masks
        return index

    def close(self, materialise: bool = True) -> None:
        """Release every map and handle.

        With *materialise* (the reload path), masks still referenced by
        live catalogs are decoded out of the index map before it is
        closed, so an in-flight query keeps answering; a final
        (user-initiated) close passes False and later mask reads raise.
        """
        self._drop_mmap()
        self._abort_staging()
        self._abort_delta_staging()
        self._drop_segments()
        self._drop_index(materialise)

    def _drop_segments(self) -> None:
        views, self._segment_views = self._segment_views, {}
        for handle, view in views.values():
            view.close()
            handle.close()

    def _abort_delta_staging(self) -> None:
        if self._delta_staging is not None:
            self._delta_staging.close()
            self._delta_staging = None
        self._delta_segment = None
        self._delta_staging_path.unlink(missing_ok=True)

    def _discard_delta_files(self) -> None:
        """Unlink every delta segment, overlay, and staging temp."""
        self._drop_segments()
        self._abort_delta_staging()
        if self.directory.exists():
            for stale in self.directory.glob("cells.delta.*"):
                stale.unlink(missing_ok=True)
        self.delta_segments = []

    def _drop_mmap(self) -> None:
        if self._mmap is not None:
            self._mmap.close()
            self._mmap = None
        if self._mmap_file is not None:
            self._mmap_file.close()
            self._mmap_file = None

    def _drop_index(self, materialise: bool = True) -> None:
        arena, self._mask_arena = self._mask_arena, None
        if arena is not None:
            arena.close(materialise)
        if self._index_mmap is not None:
            self._index_mmap.close()
            self._index_mmap = None
        if self._index_file is not None:
            self._index_file.close()
            self._index_file = None

    def _abort_staging(self) -> None:
        if self._staging is not None:
            self._staging.close()
            self._staging = None
        self._staging_path.unlink(missing_ok=True)

    def discard_files(self) -> None:
        self.close(materialise=False)
        self.heap_path.unlink(missing_ok=True)
        self.index_path.unlink(missing_ok=True)
        self._discard_delta_files()


class StoredCuboid:
    """A lazy view of one persisted cuboid.

    Iteration and lookups materialise cells through the store's cache;
    nothing is loaded up front.  Mirrors the read surface of
    :class:`~repro.core.flowcube.Cuboid`.
    """

    def __init__(
        self,
        store: "CubeStore",
        item_level: ItemLevel,
        path_level: PathLevel,
        keys: tuple[CellKey, ...],
        value_masks: list[dict[str, int]] | None = None,
    ) -> None:
        self._store = store
        self.item_level = item_level
        self.path_level = path_level
        self._keys = keys
        self._key_set = frozenset(keys)
        #: Per-dimension ``{value: cell-ordinal bitmap}`` decoded from
        #: the binary cell index (``None`` when the backend stores
        #: none); lets key catalogs skip their per-cell index pass.
        self.value_masks = value_masks

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key: CellKey) -> bool:
        return key in self._key_set

    def __iter__(self) -> Iterator[Cell]:
        for key in self._keys:
            yield self._store.cell(self.item_level, key, self.path_level)

    @property
    def keys(self) -> tuple[CellKey, ...]:
        return self._keys

    def cell(self, key: CellKey) -> Cell:
        if key not in self._key_set:
            raise CubeError(
                f"cell {key!r} is not materialised in cuboid "
                f"{self.item_level.levels!r}"
            )
        return self._store.cell(self.item_level, key, self.path_level)


class CubeStore:
    """Cell-granular persistent flowcube with a bounded read cache.

    Args:
        directory: The ``cube/`` directory (created lazily on first write).
        schema: The owning store's path schema; path levels in the meta
            file are rebound against ``schema.location`` on load.
        cache_size: LRU capacity, in cells.
        cell_format: Backend for cubes *created* through this handle
            (``"binary"`` or ``"json"``); defaults to binary.  Opening
            an existing cube always adopts its on-disk format.
    """

    def __init__(
        self,
        directory: FsPath | str,
        schema: PathSchema,
        cache_size: int = 128,
        cell_format: str = binfmt.DEFAULT_STORE_FORMAT,
    ) -> None:
        if cell_format not in CELL_FORMATS:
            raise StoreError(
                f"unknown cell format {cell_format!r}; "
                f"expected one of {CELL_FORMATS}"
            )
        self.directory = FsPath(directory)
        self.schema = schema
        self.min_support: float | None = None
        self.min_deviation: float | None = None
        self.path_lattice: PathLattice | None = None
        #: The item levels the build materialised (``None`` for cubes
        #: persisted before this was recorded = the full item lattice).
        #: Appends need it to know which cuboids a promotion may enter.
        self.item_levels: list[ItemLevel] | None = None
        #: :meth:`BuildStats.as_dict` snapshot of the build that produced
        #: the persisted cube, when the builder passed one to :meth:`flush`.
        self.build_stats: dict | None = None
        self._default_format = cell_format
        self._cells: _JsonCells | _HeapCells = self._make_backend(cell_format)
        self._cache: LRUCache = LRUCache(cache_size)
        #: (item level, path-level id) -> {cell key -> index entry}.
        self._index: dict[tuple[ItemLevel, int], dict[CellKey, Entry]] = {}
        #: Bumped on every index mutation; memoised views (the ``cuboids``
        #: tuple here, key catalogs and cached answers in the query layer)
        #: key off it to invalidate.
        self._version = 0
        self._cuboids_cache: tuple[int, tuple[StoredCuboid, ...]] | None = None
        #: Serialises reads/mutations so concurrent server workers can
        #: share one handle — the LRU's OrderedDict is not thread-safe.
        self._lock = threading.RLock()
        #: Invalidation listeners, called with the new version on every
        #: index mutation (the serving layer's per-tenant caches hook in).
        self._subscribers: list[Callable[[int], None]] = []
        #: (st_mtime_ns, st_size) of the meta file last read or written;
        #: :meth:`maybe_reload` compares against disk to notice rebuilds
        #: flushed by *other* processes (e.g. the CLI under a server).
        self._meta_signature: tuple[int, int] | None = None
        signature, text = self._read_meta()
        if text is not None:
            self._load_meta(signature, text)

    def _make_backend(self, cell_format: str) -> _JsonCells | _HeapCells:
        if cell_format == "binary":
            return _HeapCells(self.directory, self.schema.n_dimensions)
        return _JsonCells(self.directory)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def is_built(self) -> bool:
        """Whether a build has ever written (and flushed) into this store."""
        return self.path_lattice is not None

    @property
    def cell_format(self) -> str:
        """The active cell backend, ``"binary"`` or ``"json"``."""
        return self._cells.format

    def _bump_version(self) -> None:
        """Advance the mutation counter and push it to every subscriber."""
        self._version += 1
        for callback in tuple(self._subscribers):
            callback(self._version)

    def subscribe(self, callback: Callable[[int], None]) -> None:
        """Register *callback* to run (with the new version) on mutation.

        The serving layer's per-tenant caches key their entries off
        :attr:`version` already; the push lets them also *drop* stale
        entries eagerly instead of leaking them until LRU pressure.
        """
        self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[int], None]) -> None:
        """Remove a previously registered invalidation listener."""
        self._subscribers.remove(callback)

    def create(
        self,
        path_lattice: PathLattice,
        min_support: float,
        min_deviation: float,
        cell_format: str | None = None,
        item_levels=None,
    ) -> "CubeStore":
        """Start a fresh cube, discarding any previously indexed cells.

        Args:
            cell_format: Backend for the new cube; defaults to the
                handle's configured format.
            item_levels: The item levels this build materialises;
                persisted so later appends know the cube's extent.
        """
        with self._lock:
            self.path_lattice = path_lattice
            self.min_support = min_support
            self.min_deviation = min_deviation
            self.item_levels = (
                None if item_levels is None else list(item_levels)
            )
            self.build_stats = None
            self._index.clear()
            self._cache.clear()
            self.directory.mkdir(parents=True, exist_ok=True)
            # A rebuild drops the previous build's files — of *both*
            # backends, so switching formats leaves no orphans behind.
            self._cells.close()
            for backend in (
                _JsonCells(self.directory),
                _HeapCells(self.directory, self.schema.n_dimensions),
            ):
                backend.discard_files()
            self._cells = self._make_backend(
                cell_format or self._default_format
            )
            self._cells.begin()
            self._bump_version()
        return self

    def _require_built(self) -> PathLattice:
        if self.path_lattice is None:
            raise StoreError(
                f"no cube has been built at {self.directory} "
                "(run `flowcube-store build` first)"
            )
        return self.path_lattice

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def put_cell(self, cell: Cell) -> None:
        """Persist one cell (its paths are not stored, only the measure)."""
        with self._lock:
            lattice = self._require_built()
            level_id = lattice.index_of(cell.path_level)
            payload = {
                "key": list(cell.key),
                "item_level": list(cell.item_level.levels),
                "path_level": level_id,
                "record_ids": list(cell.record_ids),
                "redundant": cell.redundant,
                "flowgraph": flowgraph_to_dict(cell.flowgraph),
            }
            entry = self._cells.put(payload, cell.n_paths, cell.redundant)
            self._index.setdefault(
                (cell.item_level, level_id), {}
            )[cell.key] = entry
            self._bump_version()

    def put_cuboid(self, cuboid) -> None:
        """Persist every cell of an in-memory cuboid."""
        for cell in cuboid:
            self.put_cell(cell)

    # ------------------------------------------------------------------
    # incremental maintenance (delta segments)
    # ------------------------------------------------------------------
    @property
    def delta_segments(self) -> list[int]:
        """Published delta segment ids pending compaction (binary only)."""
        return list(getattr(self._cells, "delta_segments", ()))

    def begin_delta(self) -> bool:
        """Stage subsequent cell writes as an append-only delta segment.

        Returns whether delta staging is engaged: True for the binary
        backend (writes land in ``cells.delta.NNN.bin`` instead of a
        rewritten ``cells.bin``), False for the JSON backend, whose
        per-cell files are naturally append-only (updated cells get
        fresh file names; the old files are orphaned until the next
        rebuild sweeps them).
        """
        with self._lock:
            self._require_built()
            starter = getattr(self._cells, "begin_delta", None)
            if starter is None:
                return False
            starter()
            return True

    def merge_cells(self, cells, layout) -> None:
        """Write *cells* and swap the index to the merged *layout*.

        Args:
            cells: ``{(item_level, path-level id, key): Cell}`` — the
                dirty (updated / promoted / created) cells to persist.
            layout: Iterable of ``(item_level, path-level id, keys)``
                giving every surviving cuboid's final key order, in
                canonical cuboid order.  Keys absent from *cells* keep
                their existing index entries verbatim (zero heap IO);
                existing keys missing from *layout* are demoted.

        The swap is in-memory until :meth:`flush` publishes it.
        """
        with self._lock:
            lattice = self._require_built()
            written: dict[Coords, Entry] = {}
            for (item_level, level_id, key), cell in cells.items():
                payload = {
                    "key": list(key),
                    "item_level": list(item_level.levels),
                    "path_level": level_id,
                    "record_ids": list(cell.record_ids),
                    "redundant": cell.redundant,
                    "flowgraph": flowgraph_to_dict(cell.flowgraph),
                }
                written[(item_level, level_id, key)] = self._cells.put(
                    payload, cell.n_paths, cell.redundant
                )
            new_index: dict[tuple[ItemLevel, int], dict[CellKey, Entry]] = {}
            for item_level, level_id, keys in layout:
                if not keys:
                    continue
                old_entries = self._index.get((item_level, level_id), {})
                entries: dict[CellKey, Entry] = {}
                for key in keys:
                    entry = written.get((item_level, level_id, key))
                    entries[key] = (
                        old_entries[key] if entry is None else entry
                    )
                new_index[(item_level, level_id)] = entries
            self._index = new_index
            # The catalog masks decoded from the superseded index no
            # longer describe the merged layout; drop them so catalogs
            # derive from keys until the next load maps the overlay.
            self._cells.cell_masks = {}
            self._cache.clear()
            self._bump_version()

    def compact(self, progress=None) -> int:
        """Fold pending delta segments back into a clean base heap.

        Every index entry's payload is copied byte-exact (no codec
        round-trip) into a freshly staged heap in index order, then
        published heap → ``cells.idx`` → meta — the same ordering as a
        build, so a crash mid-compaction leaves the delta-bearing cube
        fully readable.  The superseded segments and overlay are
        unlinked only after the meta commit.

        Returns the number of cells copied (0 when nothing is pending).
        """
        with self._lock:
            self._require_built()
            old = self._cells
            pending = list(getattr(old, "delta_segments", ()))
            if not isinstance(old, _HeapCells) or not pending:
                return 0
            new = self._make_backend("binary")
            new.begin(old.generation)
            total = self.n_cells()
            done = 0
            new_index: dict[tuple[ItemLevel, int], dict[CellKey, Entry]] = {}
            for coords, entries in self._index.items():
                fresh: dict[CellKey, Entry] = {}
                for key, entry in entries.items():
                    fresh[key] = new.put_raw(
                        old.raw_payload(entry), entry[-2], entry[-1]
                    )
                    done += 1
                    if progress is not None:
                        progress(done, total)
                new_index[coords] = fresh
            self._index = new_index
            self._cells = new
            self._cache.clear()
            if self.build_stats is not None:
                counters = self.build_stats.setdefault(
                    "append", _new_append_stats()
                )
                counters["compactions"] = (
                    int(counters.get("compactions", 0)) + 1
                )
                counters["delta_segments"] = 0
                counters["last_compaction"] = {
                    "at": datetime.now(timezone.utc).isoformat(
                        timespec="seconds"
                    ),
                    "folded_segments": len(pending),
                    "cells": done,
                }
            self.flush()
            # Same story as a same-format convert: the heap and index
            # paths were republished in place; only release the
            # superseded maps (finalise already unlinked the segments).
            old.close(materialise=False)
            return done

    def flush(self, build_stats=None) -> None:
        """Publish the build: cell data first, then the meta file, atomically.

        Args:
            build_stats: Optional :class:`~repro.store.builder.BuildStats`
                of the build being flushed; its :meth:`~BuildStats.as_dict`
                snapshot (records, cells, per-phase seconds — including the
                ``exceptions`` bucket) is persisted alongside the index so
                ``flowcube-store stats`` can report it later.
        """
        with self._lock:
            lattice = self._require_built()
            if build_stats is not None:
                self.build_stats = build_stats.as_dict()
            payload = {
                "format": self._cells.format,
                "min_support": self.min_support,
                "min_deviation": self.min_deviation,
                "path_lattice": [
                    path_level_to_dict(level) for level in lattice
                ],
            }
            if self.item_levels is not None:
                payload["item_levels"] = [
                    list(level.levels) for level in self.item_levels
                ]
            payload.update(self._cells.finalise(self._index))
            if self.build_stats is not None:
                payload["build_stats"] = self.build_stats
            self.directory.mkdir(parents=True, exist_ok=True)
            meta = self.directory / META_FILENAME
            temp = self.directory / (
                f"{META_FILENAME}.{os.getpid()}.tmp"
            )
            with open(temp, "w", encoding="utf-8") as handle:
                handle.write(json.dumps(payload, indent=1))
                handle.flush()
                # The signature must describe *this* write: fstat the
                # temp file before the rename (both survive it) rather
                # than stat the destination after, where a concurrent
                # flush could already have replaced it again.
                stat = os.fstat(handle.fileno())
            temp.replace(meta)
            self._meta_signature = (stat.st_mtime_ns, stat.st_size)
            if "delta_segments" not in payload:
                # The committed meta references no delta segments: any
                # on disk are now unreachable and safe to sweep.
                sweeper = getattr(self._cells, "sweep_stale_deltas", None)
                if sweeper is not None:
                    sweeper()
            self._bump_version()

    def _read_meta(self) -> tuple[tuple[int, int] | None, str | None]:
        """One atomic read of the meta file: ``(signature, text)``.

        Opening once and taking ``fstat`` + the content from the same
        file descriptor pins both to a single inode — a concurrent
        ``os.replace`` by another process can swap the directory entry
        between the two syscalls without desynchronising them (the old
        per-field ``stat``-then-``read_text`` pair could pair one
        build's signature with another's content).
        """
        try:
            fd = os.open(self.directory / META_FILENAME, os.O_RDONLY)
        except OSError:
            return None, None
        try:
            stat = os.fstat(fd)
            chunks = []
            while True:
                chunk = os.read(fd, 1 << 20)
                if not chunk:
                    break
                chunks.append(chunk)
        finally:
            os.close(fd)
        signature = (stat.st_mtime_ns, stat.st_size)
        return signature, b"".join(chunks).decode("utf-8")

    def _load_meta(
        self,
        signature: tuple[int, int] | None = None,
        text: str | None = None,
    ) -> None:
        with self._lock:
            if text is None:
                signature, text = self._read_meta()
                if text is None:
                    raise StoreError(
                        f"no cube meta at {self.directory / META_FILENAME}"
                    )
            self._meta_signature = signature
            payload = json.loads(text)
            self.min_support = payload["min_support"]
            self.min_deviation = payload["min_deviation"]
            self.path_lattice = PathLattice(
                path_level_from_dict(level, self.schema.location)
                for level in payload["path_lattice"]
            )
            self.build_stats = payload.get("build_stats")
            raw_levels = payload.get("item_levels")
            self.item_levels = (
                None
                if raw_levels is None
                else [ItemLevel(levels) for levels in raw_levels]
            )
            self._cells.close()
            self._cells = self._make_backend(payload.get("format", "json"))
            self._cache.clear()
            self._index = self._cells.load(payload, self.schema)
            self._bump_version()

    def maybe_reload(self) -> bool:
        """Re-read the meta file when another process rewrote it.

        A long-lived server holds its handle open while CLI invocations
        may rebuild the cube underneath it; comparing the meta file's
        ``(mtime_ns, size)`` signature against the one last seen detects
        that cheaply.  The signature and the content are taken from one
        file descriptor (:meth:`_read_meta`), so the comparison and the
        subsequent parse always describe the same on-disk build.
        Reloading bumps :attr:`version`, so every subscribed cache
        invalidates.  Returns whether a reload happened.
        """
        with self._lock:
            signature, text = self._read_meta()
            if text is None or signature == self._meta_signature:
                return False
            self._load_meta(signature, text)
            return True

    def close(self) -> None:
        """Release every backend file handle and map (idempotent).

        Unlike a reload (which decodes still-referenced lazy masks out
        of the index map before dropping it), a final close drops the
        maps outright — subsequent mask or heap reads raise
        :class:`~repro.errors.StoreError`.  The handle itself stays
        usable: the next :meth:`maybe_reload` / :meth:`_load_meta`
        reopens the files.
        """
        with self._lock:
            self._cells.close(materialise=False)
            self._cache.clear()

    def __enter__(self) -> "CubeStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def io_counters(self) -> dict[str, int]:
        """Snapshot of the backend's read-path telemetry.

        ``heap_bytes_read`` counts payload bytes pulled out of
        ``cells.bin``; ``mask_bits_decoded`` counts catalog bitmaps
        decoded from the ``cells.idx`` map.  Both stay zero across a
        cold open — the benchmark tripwire asserts exactly that.  JSON
        stores have no such files and report zeros.
        """
        counters = getattr(self._cells, "io_counters", None)
        if counters is None:
            return {"heap_bytes_read": 0, "mask_bits_decoded": 0}
        return dict(counters)

    def needs_upgrade(self) -> bool:
        """Whether the cell heap predates the latest binary generation."""
        checker = getattr(self._cells, "needs_upgrade", None)
        return bool(checker()) if checker is not None else False

    # ------------------------------------------------------------------
    # format conversion
    # ------------------------------------------------------------------
    def convert(
        self,
        cell_format: str,
        progress=None,
        check: bool = True,
        generation: int | None = None,
    ) -> int:
        """Rewrite the built cube's cells in *cell_format*, in place.

        Every payload is read through the current backend and appended
        through the target one; with *check* on, each payload is read
        back from the new backend and compared before the old files are
        dropped.  The meta file is republished last, so a crash leaves
        the previous build intact and readable.

        Args:
            cell_format: ``"binary"`` or ``"json"``.
            progress: Optional ``callback(done, total)`` fired per cell.
            check: Verify every payload round-trips identically.
            generation: Target heap generation for ``"binary"``
                (1 = ``FCHEAP01`` JSON payloads, 2 = ``FCHEAP02``
                binary records); defaults to the latest.  Lets
                ``migrate`` upgrade a generation-1 heap in place, and
                tests/benchmarks write legacy heaps deliberately.

        Returns:
            The number of cells converted (0 when already in the target
            format and generation).
        """
        with self._lock:
            self._require_built()
            if cell_format not in CELL_FORMATS:
                raise StoreError(
                    f"unknown cell format {cell_format!r}; "
                    f"expected one of {CELL_FORMATS}"
                )
            old = self._cells
            same_format = old.format == cell_format
            if same_format and cell_format != "binary":
                return 0
            if same_format:
                target = generation or _HeapCells.LATEST_GENERATION
                if old.generation == target:
                    return 0
            new = self._make_backend(cell_format)
            if isinstance(new, _HeapCells):
                new.begin(generation)
            else:
                new.begin()
            total = self.n_cells()
            done = 0
            new_index: dict[tuple[ItemLevel, int], dict[CellKey, Entry]] = {}
            for coords, entries in self._index.items():
                fresh: dict[CellKey, Entry] = {}
                for key, entry in entries.items():
                    payload = old.read(entry)
                    fresh[key] = new.put(payload, entry[-2], entry[-1])
                    if check and new.read(fresh[key]) != payload:
                        raise StoreError(
                            f"conversion parity check failed for cell {key!r}"
                        )
                    done += 1
                    if progress is not None:
                        progress(done, total)
                new_index[coords] = fresh
            self._index = new_index
            self._cells = new
            self._cache.clear()
            self.flush()
            if same_format:
                # A generation rewrite republished the *same* heap and
                # index paths; dropping "old's" files would delete the
                # fresh ones.  Just release the superseded maps.
                old.close(materialise=False)
            else:
                old.discard_files()
            return done

    # ------------------------------------------------------------------
    # reads (cache-fronted, lazily materialising)
    # ------------------------------------------------------------------
    def cell(
        self, item_level: ItemLevel, key: CellKey, path_level: PathLevel
    ) -> Cell:
        """The cell at the coordinates, materialised through the cache."""
        with self._lock:
            lattice = self._require_built()
            level_id = lattice.index_of(path_level)
            coords: Coords = (item_level, level_id, key)
            cached = self._cache.get(coords)
            if cached is not None:
                return cached
            entries = self._index.get((item_level, level_id))
            if entries is None:
                raise CubeError(
                    f"cuboid ⟨{item_level.levels!r}, ...⟩ is not materialised"
                )
            entry = entries.get(key)
            if entry is None:
                raise CubeError(
                    f"cell {key!r} is not materialised in cuboid "
                    f"{item_level.levels!r}"
                )
            cell = self._materialise(item_level, path_level, key, entry)
            self._cache.put(coords, cell)
            return cell

    def _materialise(
        self,
        item_level: ItemLevel,
        path_level: PathLevel,
        key: CellKey,
        entry: Entry,
    ) -> Cell:
        reader = getattr(self._cells, "read_parts", None)
        if reader is not None:
            parts = reader(entry)
            if parts is not None:
                # Generation-2 heaps decode straight to graph objects,
                # skipping the payload-dict intermediate entirely.
                record_ids, redundant, flowgraph = parts
                return Cell(
                    key=key,
                    item_level=item_level,
                    path_level=path_level,
                    record_ids=tuple(record_ids),
                    flowgraph=flowgraph,
                    paths=(),
                    redundant=redundant,
                )
        payload = self._cells.read(entry)
        return Cell(
            key=key,
            item_level=item_level,
            path_level=path_level,
            record_ids=tuple(int(i) for i in payload["record_ids"]),
            flowgraph=flowgraph_from_dict(payload["flowgraph"]),
            paths=(),
            redundant=bool(payload["redundant"]),
        )

    def has_cuboid(self, item_level: ItemLevel, path_level: PathLevel) -> bool:
        lattice = self._require_built()
        return (item_level, lattice.index_of(path_level)) in self._index

    def cuboid(
        self, item_level: ItemLevel, path_level: PathLevel
    ) -> StoredCuboid:
        lattice = self._require_built()
        coords = (item_level, lattice.index_of(path_level))
        entries = self._index.get(coords)
        if entries is None:
            raise CubeError(
                f"cuboid ⟨{item_level.levels!r}, ...⟩ is not materialised"
            )
        return StoredCuboid(
            self,
            item_level,
            path_level,
            tuple(entries),
            value_masks=self._cells.cell_masks.get(coords),
        )

    @property
    def version(self) -> int:
        """Index mutation counter (invalidation token for memoised views)."""
        return self._version

    @property
    def build_version(self) -> str | None:
        """The persisted build's short content digest, when recorded.

        Sourced from the :class:`~repro.store.builder.BuildStats` snapshot
        flushed with the cube; ``None`` for cubes built before build
        metadata existed.
        """
        if self.build_stats is None:
            return None
        return self.build_stats.get("version")

    def cell_sizes(
        self, item_level: ItemLevel, path_level: PathLevel
    ) -> dict[CellKey, int]:
        """Per-cell ``n_paths`` of one cuboid, from the index (no file IO)."""
        lattice = self._require_built()
        entries = self._index.get((item_level, lattice.index_of(path_level)))
        if entries is None:
            raise CubeError(
                f"cuboid ⟨{item_level.levels!r}, ...⟩ is not materialised"
            )
        return {key: entry[-2] for key, entry in entries.items()}

    @property
    def cuboids(self) -> tuple[StoredCuboid, ...]:
        with self._lock:
            lattice = self._require_built()
            cached = self._cuboids_cache
            if cached is not None and cached[0] == self._version:
                return cached[1]
            cuboids = tuple(
                StoredCuboid(
                    self,
                    item_level,
                    lattice[level_id],
                    tuple(entries),
                    value_masks=self._cells.cell_masks.get(
                        (item_level, level_id)
                    ),
                )
                for (item_level, level_id), entries in self._index.items()
            )
            self._cuboids_cache = (self._version, cuboids)
            return cuboids

    def cells(self) -> Iterator[Cell]:
        """Every persisted cell, materialised through the cache."""
        for cuboid in self.cuboids:
            yield from cuboid

    def n_cells(self) -> int:
        """Number of persisted cells (from the index, no file IO)."""
        return sum(len(entries) for entries in self._index.values())

    # ------------------------------------------------------------------
    # redundancy-aware access (mirrors FlowCube)
    # ------------------------------------------------------------------
    def parent_cells(self, cell: Cell) -> list[Cell]:
        """The cell's materialised item-lattice parents (Definition 4.4)."""
        hierarchies = self.schema.dimensions
        lattice = self._require_built()
        level_id = lattice.index_of(cell.path_level)
        parents: list[Cell] = []
        for dim, level in enumerate(cell.item_level):
            if level == 0:
                continue
            raised = list(cell.item_level.levels)
            raised[dim] = level - 1
            parent_level = ItemLevel(raised)
            parent_key = tuple(
                hierarchies[i].ancestor_at_level(value, parent_level[i])
                for i, value in enumerate(cell.key)
            )
            entries = self._index.get((parent_level, level_id))
            if entries is not None and parent_key in entries:
                parents.append(
                    self.cell(parent_level, parent_key, cell.path_level)
                )
        return parents

    def flowgraph_for(
        self, item_level: ItemLevel, key: CellKey, path_level: PathLevel
    ):
        """The cell's flowgraph, inferring from ancestors when redundant."""
        cell = self.cell(item_level, key, path_level)
        while cell.redundant:
            parents = [p for p in self.parent_cells(cell) if not p.redundant]
            if not parents:
                parents = self.parent_cells(cell)
            if not parents:
                break
            cell = max(parents, key=lambda c: c.n_paths)
        return cell.flowgraph

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def cache_stats(self) -> dict[str, float | int]:
        """The read cache's hit/miss/eviction counters."""
        return self._cache.stats()

    def describe(self) -> dict[str, object]:
        """Summary statistics for reporting."""
        out: dict[str, object] = {
            "built": self.is_built,
            "format": self.cell_format,
            "cuboids": len(self._index),
            "cells": self.n_cells(),
            "min_support": self.min_support,
            "min_deviation": self.min_deviation,
            "cache": self.cache_stats(),
        }
        if self.cell_format == "binary" and self.is_built:
            out["heap_generation"] = self._cells.generation
            out["delta_segments"] = len(self.delta_segments)
            out["io"] = self.io_counters()
        if self.build_stats is not None:
            out["version"] = self.build_version
            out["build_stats"] = self.build_stats
        return out
