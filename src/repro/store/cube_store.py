"""The lazy on-disk flowcube store.

A :class:`CubeStore` persists a materialised flowcube *cell by cell*::

    cube/
      cube.json               δ/ε, the path lattice, and the cell index
      cells/
        cell-000000.json      one cell: coordinates + flowgraph payload
        cell-000001.json
        ...

Cells are serialised with
:func:`~repro.core.serialization.flowgraph_to_dict`, so everything the
in-memory cube knows — raw counts, (ε, δ) exceptions, redundancy marks —
survives on disk.  A cell's flowgraph is only *materialised* (parsed and
rebuilt) when a query first touches it; the store fronts every read with a
bounded :class:`~repro.store.cache.LRUCache` whose hit/miss/eviction
counters make serving behaviour observable.

The store exposes the same lookup surface as
:class:`~repro.core.flowcube.FlowCube` (``cuboid`` / ``cell`` /
``flowgraph_for`` / ``cuboids``), so
:class:`~repro.query.api.FlowCubeQuery` works over either without caring
which one it was given.
"""

from __future__ import annotations

import json
import os
import threading
from collections.abc import Callable, Iterator
from pathlib import Path as FsPath

from repro.core.flowcube import Cell, CellKey
from repro.core.lattice import ItemLevel, PathLattice, PathLevel
from repro.core.path_database import PathSchema
from repro.core.serialization import (
    flowgraph_from_dict,
    flowgraph_to_dict,
    path_level_from_dict,
    path_level_to_dict,
)
from repro.errors import CubeError, StoreError
from repro.store.cache import LRUCache

__all__ = ["CubeStore", "StoredCuboid"]

META_FILENAME = "cube.json"
CELLS_DIR = "cells"

#: Index coordinates: (item level, path-level id, cell key).
Coords = tuple[ItemLevel, int, CellKey]


class StoredCuboid:
    """A lazy view of one persisted cuboid.

    Iteration and lookups materialise cells through the store's cache;
    nothing is loaded up front.  Mirrors the read surface of
    :class:`~repro.core.flowcube.Cuboid`.
    """

    def __init__(
        self,
        store: "CubeStore",
        item_level: ItemLevel,
        path_level: PathLevel,
        keys: tuple[CellKey, ...],
    ) -> None:
        self._store = store
        self.item_level = item_level
        self.path_level = path_level
        self._keys = keys
        self._key_set = frozenset(keys)

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key: CellKey) -> bool:
        return key in self._key_set

    def __iter__(self) -> Iterator[Cell]:
        for key in self._keys:
            yield self._store.cell(self.item_level, key, self.path_level)

    @property
    def keys(self) -> tuple[CellKey, ...]:
        return self._keys

    def cell(self, key: CellKey) -> Cell:
        if key not in self._key_set:
            raise CubeError(
                f"cell {key!r} is not materialised in cuboid "
                f"{self.item_level.levels!r}"
            )
        return self._store.cell(self.item_level, key, self.path_level)


class CubeStore:
    """Cell-granular persistent flowcube with a bounded read cache.

    Args:
        directory: The ``cube/`` directory (created lazily on first write).
        schema: The owning store's path schema; path levels in the meta
            file are rebound against ``schema.location`` on load.
        cache_size: LRU capacity, in cells.
    """

    def __init__(
        self,
        directory: FsPath | str,
        schema: PathSchema,
        cache_size: int = 128,
    ) -> None:
        self.directory = FsPath(directory)
        self.schema = schema
        self.min_support: float | None = None
        self.min_deviation: float | None = None
        self.path_lattice: PathLattice | None = None
        #: :meth:`BuildStats.as_dict` snapshot of the build that produced
        #: the persisted cube, when the builder passed one to :meth:`flush`.
        self.build_stats: dict | None = None
        self._cache: LRUCache = LRUCache(cache_size)
        #: (item level, path-level id) -> {cell key -> index entry}.
        self._index: dict[tuple[ItemLevel, int], dict[CellKey, dict]] = {}
        self._n_files = 0
        #: Bumped on every index mutation; memoised views (the ``cuboids``
        #: tuple here, key catalogs and cached answers in the query layer)
        #: key off it to invalidate.
        self._version = 0
        self._cuboids_cache: tuple[int, tuple[StoredCuboid, ...]] | None = None
        #: Serialises reads/mutations so concurrent server workers can
        #: share one handle — the LRU's OrderedDict is not thread-safe.
        self._lock = threading.RLock()
        #: Invalidation listeners, called with the new version on every
        #: index mutation (the serving layer's per-tenant caches hook in).
        self._subscribers: list[Callable[[int], None]] = []
        #: (st_mtime_ns, st_size) of the meta file last read or written;
        #: :meth:`maybe_reload` compares against disk to notice rebuilds
        #: flushed by *other* processes (e.g. the CLI under a server).
        self._meta_signature: tuple[int, int] | None = None
        if (self.directory / META_FILENAME).exists():
            self._load_meta()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def is_built(self) -> bool:
        """Whether a build has ever written (and flushed) into this store."""
        return self.path_lattice is not None

    def _bump_version(self) -> None:
        """Advance the mutation counter and push it to every subscriber."""
        self._version += 1
        for callback in tuple(self._subscribers):
            callback(self._version)

    def subscribe(self, callback: Callable[[int], None]) -> None:
        """Register *callback* to run (with the new version) on mutation.

        The serving layer's per-tenant caches key their entries off
        :attr:`version` already; the push lets them also *drop* stale
        entries eagerly instead of leaking them until LRU pressure.
        """
        self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[int], None]) -> None:
        """Remove a previously registered invalidation listener."""
        self._subscribers.remove(callback)

    def create(
        self,
        path_lattice: PathLattice,
        min_support: float,
        min_deviation: float,
    ) -> "CubeStore":
        """Start a fresh cube, discarding any previously indexed cells."""
        with self._lock:
            self.path_lattice = path_lattice
            self.min_support = min_support
            self.min_deviation = min_deviation
            self.build_stats = None
            self._index.clear()
            self._cache.clear()
            self._n_files = 0
            cells_dir = self.directory / CELLS_DIR
            cells_dir.mkdir(parents=True, exist_ok=True)
            # A rebuild restarts file numbering at 0; drop the previous
            # build's files so a smaller cube leaves no orphans behind.
            for stale in cells_dir.glob("cell-*.json"):
                stale.unlink()
            self._bump_version()
        return self

    def _require_built(self) -> PathLattice:
        if self.path_lattice is None:
            raise StoreError(
                f"no cube has been built at {self.directory} "
                "(run `flowcube-store build` first)"
            )
        return self.path_lattice

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def put_cell(self, cell: Cell) -> None:
        """Persist one cell (its paths are not stored, only the measure)."""
        with self._lock:
            lattice = self._require_built()
            level_id = lattice.index_of(cell.path_level)
            filename = f"cell-{self._n_files:06d}.json"
            self._n_files += 1
            payload = {
                "key": list(cell.key),
                "item_level": list(cell.item_level.levels),
                "path_level": level_id,
                "record_ids": list(cell.record_ids),
                "redundant": cell.redundant,
                "flowgraph": flowgraph_to_dict(cell.flowgraph),
            }
            path = self.directory / CELLS_DIR / filename
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(json.dumps(payload), encoding="utf-8")
            entry = {
                "file": filename,
                "n_paths": cell.n_paths,
                "redundant": cell.redundant,
            }
            self._index.setdefault(
                (cell.item_level, level_id), {}
            )[cell.key] = entry
            self._bump_version()

    def put_cuboid(self, cuboid) -> None:
        """Persist every cell of an in-memory cuboid."""
        for cell in cuboid:
            self.put_cell(cell)

    def flush(self, build_stats=None) -> None:
        """Write the meta file (index + lattice + thresholds) atomically.

        Args:
            build_stats: Optional :class:`~repro.store.builder.BuildStats`
                of the build being flushed; its :meth:`~BuildStats.as_dict`
                snapshot (records, cells, per-phase seconds — including the
                ``exceptions`` bucket) is persisted alongside the index so
                ``flowcube-store stats`` can report it later.
        """
        with self._lock:
            lattice = self._require_built()
            cells = []
            for (item_level, level_id), entries in self._index.items():
                for key, entry in entries.items():
                    cells.append(
                        {
                            "item_level": list(item_level.levels),
                            "path_level": level_id,
                            "key": list(key),
                            **entry,
                        }
                    )
            if build_stats is not None:
                self.build_stats = build_stats.as_dict()
            payload = {
                "min_support": self.min_support,
                "min_deviation": self.min_deviation,
                "path_lattice": [
                    path_level_to_dict(level) for level in lattice
                ],
                "n_files": self._n_files,
                "cells": cells,
            }
            if self.build_stats is not None:
                payload["build_stats"] = self.build_stats
            self.directory.mkdir(parents=True, exist_ok=True)
            meta = self.directory / META_FILENAME
            temp = self.directory / (
                f"{META_FILENAME}.{os.getpid()}.tmp"
            )
            temp.write_text(json.dumps(payload, indent=1), encoding="utf-8")
            temp.replace(meta)
            self._meta_signature = self._stat_meta()
            self._bump_version()

    def _stat_meta(self) -> tuple[int, int] | None:
        """(mtime_ns, size) of the on-disk meta file, or ``None``."""
        try:
            stat = os.stat(self.directory / META_FILENAME)
        except OSError:
            return None
        return (stat.st_mtime_ns, stat.st_size)

    def _load_meta(self) -> None:
        with self._lock:
            path = self.directory / META_FILENAME
            self._meta_signature = self._stat_meta()
            payload = json.loads(path.read_text(encoding="utf-8"))
            self.min_support = payload["min_support"]
            self.min_deviation = payload["min_deviation"]
            self.path_lattice = PathLattice(
                path_level_from_dict(level, self.schema.location)
                for level in payload["path_lattice"]
            )
            self._n_files = int(payload.get("n_files", len(payload["cells"])))
            self.build_stats = payload.get("build_stats")
            self._index.clear()
            self._cache.clear()
            for entry in payload["cells"]:
                item_level = ItemLevel(entry["item_level"])
                level_id = int(entry["path_level"])
                key = tuple(entry["key"])
                self._index.setdefault((item_level, level_id), {})[key] = {
                    "file": entry["file"],
                    "n_paths": int(entry["n_paths"]),
                    "redundant": bool(entry["redundant"]),
                }
            self._bump_version()

    def maybe_reload(self) -> bool:
        """Re-read the meta file when another process rewrote it.

        A long-lived server holds its handle open while CLI invocations
        may rebuild the cube underneath it; comparing the meta file's
        ``(mtime_ns, size)`` signature against the one last seen detects
        that cheaply (one ``stat``).  Reloading bumps :attr:`version`, so
        every subscribed cache invalidates.  Returns whether a reload
        happened.
        """
        with self._lock:
            on_disk = self._stat_meta()
            if on_disk is None or on_disk == self._meta_signature:
                return False
            self._load_meta()
            return True

    # ------------------------------------------------------------------
    # reads (cache-fronted, lazily materialising)
    # ------------------------------------------------------------------
    def cell(
        self, item_level: ItemLevel, key: CellKey, path_level: PathLevel
    ) -> Cell:
        """The cell at the coordinates, materialised through the cache."""
        with self._lock:
            lattice = self._require_built()
            level_id = lattice.index_of(path_level)
            coords: Coords = (item_level, level_id, key)
            cached = self._cache.get(coords)
            if cached is not None:
                return cached
            entries = self._index.get((item_level, level_id))
            if entries is None:
                raise CubeError(
                    f"cuboid ⟨{item_level.levels!r}, ...⟩ is not materialised"
                )
            entry = entries.get(key)
            if entry is None:
                raise CubeError(
                    f"cell {key!r} is not materialised in cuboid "
                    f"{item_level.levels!r}"
                )
            cell = self._materialise(item_level, path_level, key, entry)
            self._cache.put(coords, cell)
            return cell

    def _materialise(
        self,
        item_level: ItemLevel,
        path_level: PathLevel,
        key: CellKey,
        entry: dict,
    ) -> Cell:
        path = self.directory / CELLS_DIR / entry["file"]
        if not path.exists():
            raise StoreError(f"cell file {path} is missing")
        payload = json.loads(path.read_text(encoding="utf-8"))
        return Cell(
            key=key,
            item_level=item_level,
            path_level=path_level,
            record_ids=tuple(int(i) for i in payload["record_ids"]),
            flowgraph=flowgraph_from_dict(payload["flowgraph"]),
            paths=(),
            redundant=bool(payload["redundant"]),
        )

    def has_cuboid(self, item_level: ItemLevel, path_level: PathLevel) -> bool:
        lattice = self._require_built()
        return (item_level, lattice.index_of(path_level)) in self._index

    def cuboid(
        self, item_level: ItemLevel, path_level: PathLevel
    ) -> StoredCuboid:
        lattice = self._require_built()
        entries = self._index.get((item_level, lattice.index_of(path_level)))
        if entries is None:
            raise CubeError(
                f"cuboid ⟨{item_level.levels!r}, ...⟩ is not materialised"
            )
        return StoredCuboid(self, item_level, path_level, tuple(entries))

    @property
    def version(self) -> int:
        """Index mutation counter (invalidation token for memoised views)."""
        return self._version

    @property
    def build_version(self) -> str | None:
        """The persisted build's short content digest, when recorded.

        Sourced from the :class:`~repro.store.builder.BuildStats` snapshot
        flushed with the cube; ``None`` for cubes built before build
        metadata existed.
        """
        if self.build_stats is None:
            return None
        return self.build_stats.get("version")

    def cell_sizes(
        self, item_level: ItemLevel, path_level: PathLevel
    ) -> dict[CellKey, int]:
        """Per-cell ``n_paths`` of one cuboid, from the index (no file IO)."""
        lattice = self._require_built()
        entries = self._index.get((item_level, lattice.index_of(path_level)))
        if entries is None:
            raise CubeError(
                f"cuboid ⟨{item_level.levels!r}, ...⟩ is not materialised"
            )
        return {key: entry["n_paths"] for key, entry in entries.items()}

    @property
    def cuboids(self) -> tuple[StoredCuboid, ...]:
        with self._lock:
            lattice = self._require_built()
            cached = self._cuboids_cache
            if cached is not None and cached[0] == self._version:
                return cached[1]
            cuboids = tuple(
                StoredCuboid(
                    self, item_level, lattice[level_id], tuple(entries)
                )
                for (item_level, level_id), entries in self._index.items()
            )
            self._cuboids_cache = (self._version, cuboids)
            return cuboids

    def cells(self) -> Iterator[Cell]:
        """Every persisted cell, materialised through the cache."""
        for cuboid in self.cuboids:
            yield from cuboid

    def n_cells(self) -> int:
        """Number of persisted cells (from the index, no file IO)."""
        return sum(len(entries) for entries in self._index.values())

    # ------------------------------------------------------------------
    # redundancy-aware access (mirrors FlowCube)
    # ------------------------------------------------------------------
    def parent_cells(self, cell: Cell) -> list[Cell]:
        """The cell's materialised item-lattice parents (Definition 4.4)."""
        hierarchies = self.schema.dimensions
        lattice = self._require_built()
        level_id = lattice.index_of(cell.path_level)
        parents: list[Cell] = []
        for dim, level in enumerate(cell.item_level):
            if level == 0:
                continue
            raised = list(cell.item_level.levels)
            raised[dim] = level - 1
            parent_level = ItemLevel(raised)
            parent_key = tuple(
                hierarchies[i].ancestor_at_level(value, parent_level[i])
                for i, value in enumerate(cell.key)
            )
            entries = self._index.get((parent_level, level_id))
            if entries is not None and parent_key in entries:
                parents.append(
                    self.cell(parent_level, parent_key, cell.path_level)
                )
        return parents

    def flowgraph_for(
        self, item_level: ItemLevel, key: CellKey, path_level: PathLevel
    ):
        """The cell's flowgraph, inferring from ancestors when redundant."""
        cell = self.cell(item_level, key, path_level)
        while cell.redundant:
            parents = [p for p in self.parent_cells(cell) if not p.redundant]
            if not parents:
                parents = self.parent_cells(cell)
            if not parents:
                break
            cell = max(parents, key=lambda c: c.n_paths)
        return cell.flowgraph

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def cache_stats(self) -> dict[str, float | int]:
        """The read cache's hit/miss/eviction counters."""
        return self._cache.stats()

    def describe(self) -> dict[str, object]:
        """Summary statistics for reporting."""
        out: dict[str, object] = {
            "built": self.is_built,
            "cuboids": len(self._index),
            "cells": self.n_cells(),
            "min_support": self.min_support,
            "min_deviation": self.min_deviation,
            "cache": self.cache_stats(),
        }
        if self.build_stats is not None:
            out["version"] = self.build_version
            out["build_stats"] = self.build_stats
        return out
