"""Section 5 encodings: dimension items, stage items, transaction transform."""

from repro.encoding.item_encoding import (
    DimItem,
    decode_dim_item,
    encode_dimension_value,
    render_dim_item,
)
from repro.encoding.stage_encoding import (
    StageItem,
    aggregate_prefix,
    is_stage_ancestor,
    render_stage_item,
    stages_linkable,
)
from repro.encoding.transactions import Item, Transaction, TransactionDatabase

__all__ = [
    "DimItem",
    "Item",
    "StageItem",
    "Transaction",
    "TransactionDatabase",
    "aggregate_prefix",
    "decode_dim_item",
    "encode_dimension_value",
    "is_stage_ancestor",
    "render_dim_item",
    "render_stage_item",
    "stages_linkable",
]
