"""Path database → transaction database (Section 5, Table 3).

Each path record becomes one transaction whose items are

* the record's dimension values encoded as :class:`DimItem` at **every**
  hierarchy level (the ancestor closure — this is what lets a single scan
  count "jacket" and "outerwear" simultaneously), except the pruned
  top-of-hierarchy ``*`` items (rule 3; kept when ``include_top_level`` is
  set, as the Basic baseline does), and

* the record's path aggregated to **every** interesting path abstraction
  level, each stage encoded as a prefix :class:`StageItem` (shared counting
  across the path lattice).

The resulting transactions are exactly the multi-level search space: an
itemset over them corresponds to a (cell, path segment) pair at specific
item/path abstraction levels.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

from repro.core.aggregation import aggregate_path
from repro.core.lattice import PathLattice
from repro.core.path import PathRecord
from repro.core.path_database import PathDatabase, PathSchema
from repro.encoding.item_encoding import DimItem, render_dim_item
from repro.encoding.stage_encoding import StageItem, render_stage_item

__all__ = ["EncodingMemo", "Item", "Transaction", "TransactionDatabase"]

#: The mining alphabet: dimension items and stage items, mixed.
Item = DimItem | StageItem


class EncodingMemo:
    """Shared ancestor-closure caches, reusable across partitions.

    A :class:`TransactionDatabase` memoises the per-dimension-value and
    per-path item closures it builds — but only within itself.  A build
    that encodes one partition after another (the serial scan passes,
    the shared pack pass, a worker process crunching its affine
    partitions) re-derives identical closures for every partition, since
    partitions of one store draw from the same small vocabulary.
    Passing the same memo to each database hoists the caches to the
    scan: each distinct dimension value and discretised path is encoded
    once per build, and the *identical* item objects flow into every
    partition's transactions (identity also speeds up the hash-heavy
    set work downstream).

    The closures depend on the encoding configuration, so a memo pins
    the ``(include_top_level, path lattice)`` of the first database that
    uses it and rejects a mismatching reuse.
    """

    __slots__ = ("dim_closures", "stage_closures", "_config")

    def __init__(self) -> None:
        self.dim_closures: dict[tuple[int, object], tuple[DimItem, ...]] = {}
        self.stage_closures: dict[tuple, frozenset[StageItem]] = {}
        self._config: tuple | None = None

    def bind(
        self, path_lattice: PathLattice, include_top_level: bool
    ) -> None:
        """Pin (or validate) the memo's encoding configuration."""
        config = (bool(include_top_level), tuple(path_lattice))
        if self._config is None:
            self._config = config
        elif self._config != config:
            raise ValueError(
                "encoding memo is bound to a different configuration "
                "(path lattice / include_top_level); use a fresh memo"
            )


@dataclass(frozen=True)
class Transaction:
    """One encoded path record: its id plus the item closure."""

    tid: int
    items: frozenset[Item]

    def __contains__(self, item: Item) -> bool:
        return item in self.items

    def __len__(self) -> int:
        return len(self.items)


class TransactionDatabase:
    """The transformed database D' that Shared/Basic scan.

    Args:
        database: Source path database.
        path_lattice: The interesting path abstraction levels; every level
            contributes stage items to every transaction.
        include_top_level: Keep the ``1**``-style apex dimension items
            (always true in every transaction).  Off for Shared (pruning
            rule 3), on for the Basic baseline.
        memo: Optional :class:`EncodingMemo` shared with other databases
            of the same store (one scan encoding many partitions); the
            closure caches live in the memo instead of this instance.
    """

    def __init__(
        self,
        database: PathDatabase,
        path_lattice: PathLattice,
        include_top_level: bool = False,
        memo: EncodingMemo | None = None,
    ) -> None:
        self.schema: PathSchema = database.schema
        self.path_lattice = path_lattice
        self.include_top_level = include_top_level
        # Encoding memos: records massively share dimension values and —
        # for discretised durations — whole paths, so the ancestor-closure
        # item objects are built once per distinct value/path and reused
        # (identical item objects also hash-dedupe faster downstream).
        # A shared memo widens the reuse from one partition to the scan.
        if memo is not None:
            memo.bind(path_lattice, include_top_level)
            self._dim_closures = memo.dim_closures
            self._stage_closures = memo.stage_closures
        else:
            self._dim_closures = {}
            self._stage_closures = {}
        self._interned = None
        self.transactions: list[Transaction] = [
            self._encode(record) for record in database
        ]

    def _encode(self, record: PathRecord) -> Transaction:
        items: set[Item] = set()
        for dim, (hierarchy, value) in enumerate(
            zip(self.schema.dimensions, record.dims)
        ):
            closure = self._dim_closures.get((dim, value))
            if closure is None:
                code = hierarchy.code_of(value)
                start = 0 if self.include_top_level else 1
                closure = tuple(
                    # Represent the apex with a level-0 pseudo-code: the
                    # Basic baseline counts it like any other item.
                    DimItem(dim, "*") if length == 0 else DimItem(dim, code[:length])
                    for length in range(start, len(code) + 1)
                )
                self._dim_closures[(dim, value)] = closure
            items.update(closure)
        stage_items = self._stage_closures.get(record.path.stages)
        if stage_items is None:
            stages: set[StageItem] = set()
            for level_id, level in enumerate(self.path_lattice):
                prefix: tuple[str, ...] = ()
                for location, duration in aggregate_path(record.path, level):
                    prefix = prefix + (location,)
                    stages.add(StageItem(level_id, prefix, duration))
            stage_items = frozenset(stages)
            self._stage_closures[record.path.stages] = stage_items
        return Transaction(record.record_id, frozenset(items) | stage_items)

    def __len__(self) -> int:
        return len(self.transactions)

    def __iter__(self) -> Iterator[Transaction]:
        return iter(self.transactions)

    def interned(self):
        """This database as dense-id ``array('i')`` rows.

        Builds a :class:`~repro.perf.interning.InternedTransactions` whose
        alphabet is interned in :attr:`Item.sort_key` order, so id order
        coincides with the miners' canonical item order.  Row index is the
        transaction's position (the tid the bitmap kernel packs into
        masks), not :attr:`Transaction.tid`.

        The result is cached: the interned form is a pure function of the
        (immutable) transactions, and callers that reuse one encoded
        database across runs — a δ sweep, the benchmark harness — should
        pay the interning pass once.  Note the bitmap miner *extends* the
        cached interner with projection-only items past the base
        alphabet; those extra ids never enter rows or masks, so reuse
        stays sound.
        """
        if self._interned is None:
            from repro.perf.interning import InternedTransactions

            self._interned = InternedTransactions.from_transactions(
                [t.items for t in self.transactions],
                sort_key=lambda item: item.sort_key,
            )
        return self._interned

    # ------------------------------------------------------------------
    # rendering (Table 3 reproduction, debugging)
    # ------------------------------------------------------------------
    def render_transaction(
        self,
        transaction: Transaction,
        short_names: dict[str, str] | None = None,
        base_level_only: bool = True,
    ) -> list[str]:
        """Paper-style item strings for one transaction, sorted.

        With *base_level_only* (the Table 3 view) only the most specific
        dimension items and the stage items of path level 0 are shown;
        otherwise the full closure is rendered.
        """
        rendered: list[tuple[int, str]] = []
        max_code = {
            item.dim: max(
                len(i.code)
                for i in transaction.items
                if isinstance(i, DimItem) and i.dim == item.dim and i.code != "*"
            )
            for item in transaction.items
            if isinstance(item, DimItem) and item.code != "*"
        }
        for item in transaction.items:
            if isinstance(item, DimItem):
                if item.code == "*":
                    if base_level_only:
                        continue
                    rendered.append((item.dim, f"{item.dim + 1}*"))
                    continue
                if base_level_only and len(item.code) != max_code[item.dim]:
                    continue
                hierarchy = self.schema.dimensions[item.dim]
                rendered.append((item.dim, render_dim_item(item, hierarchy)))
            else:
                if base_level_only and item.level_id != 0:
                    continue
                key = 1_000 + item.level_id * 100 + item.position
                rendered.append((key, render_stage_item(item, short_names)))
        rendered.sort()
        return [text for _, text in rendered]

    def describe(self) -> dict[str, object]:
        """Alphabet and size statistics (used by the benchmark harness)."""
        alphabet: set[Item] = set()
        total_items = 0
        for transaction in self.transactions:
            alphabet |= transaction.items
            total_items += len(transaction.items)
        return {
            "transactions": len(self.transactions),
            "distinct_items": len(alphabet),
            "avg_items_per_transaction": (
                total_items / len(self.transactions) if self.transactions else 0.0
            ),
            "path_levels": len(self.path_lattice),
        }
