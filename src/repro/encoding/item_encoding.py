"""Dimension-value encoding (Section 5).

A path-independent dimension value is encoded as an item that carries its
whole concept-hierarchy coordinate: the paper writes "jacket" as ``112`` —
first digit the dimension, then one digit per hierarchy level.  Here the
item is a small frozen dataclass ``DimItem(dim, code)`` whose ``code`` is
the digit-path of :meth:`repro.core.hierarchy.ConceptHierarchy.code_of`;
ancestors are simply code prefixes, so multi-level shared counting needs no
lookups.

The top-of-hierarchy item (``1**`` — "any value of dimension 1") is pruned
from Shared's transactions per Section 5's third optimisation; the Basic
baseline keeps it, which is one reason its candidate space blows up
(Figure 11).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.hierarchy import ConceptHierarchy
from repro.errors import EncodingError

__all__ = ["DimItem", "encode_dimension_value", "decode_dim_item", "render_dim_item"]


@dataclass(frozen=True, order=True)
class DimItem:
    """An encoded dimension value at some abstraction level.

    Attributes:
        dim: Zero-based index of the path-independent dimension.
        code: Digit-path in that dimension's hierarchy; its length is the
            abstraction level.  Never empty — the apex is not an item.
    """

    dim: int
    code: str

    def __post_init__(self) -> None:
        if not self.code:
            raise EncodingError("the apex '*' is not encodable as a DimItem")

    @property
    def level(self) -> int:
        """Abstraction level of the encoded concept (1 = most general).

        The pseudo-code ``"*"`` (apex items kept only by the Basic
        baseline) is level 0.
        """
        return 0 if self.code == "*" else len(self.code)

    @property
    def sort_key(self) -> tuple:
        """Canonical position in the mixed-alphabet total order.

        Dimension items sort before stage items (leading 0); the mining
        layer's :func:`~repro.mining.result.item_sort_key` and the
        interning layer (:mod:`repro.perf.interning`) both rely on this
        key, so id order and item order always agree.
        """
        return (0, self.dim, len(self.code), self.code)

    def ancestors(self, include_top: bool = True) -> tuple["DimItem", ...]:
        """Ancestor items, nearest first, optionally down to level 1."""
        lowest = 1 if include_top else 2
        return tuple(
            DimItem(self.dim, self.code[:length])
            for length in range(len(self.code) - 1, lowest - 1, -1)
        )

    def is_ancestor_of(self, other: "DimItem") -> bool:
        """True when this item subsumes *other* (strict code prefix)."""
        return (
            self.dim == other.dim
            and len(self.code) < len(other.code)
            and other.code.startswith(self.code)
        )


def encode_dimension_value(
    dim: int, value: str, hierarchy: ConceptHierarchy
) -> DimItem:
    """Encode *value* of dimension *dim* at its native hierarchy level."""
    code = hierarchy.code_of(value)
    if not code:
        raise EncodingError(
            f"value {value!r} is the apex of {hierarchy.name!r}; "
            "apex values carry no information and are not encoded"
        )
    return DimItem(dim, code)


def decode_dim_item(item: DimItem, hierarchy: ConceptHierarchy) -> str:
    """The concept name an item encodes."""
    return hierarchy.concept_for_code(item.code)


def render_dim_item(item: DimItem, hierarchy: ConceptHierarchy) -> str:
    """Paper-style rendering: dimension digit + padded code, e.g. ``12*``.

    The dimension digit is 1-based to match Table 3.
    """
    return f"{item.dim + 1}{hierarchy.padded_code(decode_dim_item(item, hierarchy))}"
