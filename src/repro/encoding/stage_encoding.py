"""Stage encoding (Section 5).

A path stage is encoded with the *path prefix leading to it*: the third
stage of path factory → dist center → truck with duration 1 becomes
``(fdt, 1)`` in the paper's notation.  Here the item is
``StageItem(level_id, prefix, duration)``:

* ``level_id`` indexes the interesting path abstraction level
  (:class:`~repro.core.lattice.PathLattice`) the stage was aggregated to —
  stages aggregated to different levels are distinct items, which is how a
  single transaction carries every level at once (shared counting);
* ``prefix`` is the aggregated location sequence up to and including the
  stage;
* ``duration`` is the stage's duration label (``*`` at the any level).

The encoding makes the two stage-pruning rules of Section 5 cheap:
*unlinkable* stages are those whose prefixes are not nested
(:func:`stages_linkable`), and stage *ancestors* are recognised by
re-aggregating a prefix to the coarser view (:func:`is_stage_ancestor`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.aggregation import DURATION_ANY_LABEL
from repro.core.lattice import DURATION_ANY, PathLattice, PathLevel
from repro.errors import EncodingError

__all__ = [
    "StageItem",
    "stages_linkable",
    "aggregate_prefix",
    "is_stage_ancestor",
    "render_stage_item",
]


@dataclass(frozen=True, order=True)
class StageItem:
    """An encoded path stage at one path abstraction level."""

    level_id: int
    prefix: tuple[str, ...]
    duration: str

    def __post_init__(self) -> None:
        if not self.prefix:
            raise EncodingError("a stage item needs a non-empty location prefix")

    @property
    def location(self) -> str:
        """The stage's own (aggregated) location."""
        return self.prefix[-1]

    @property
    def position(self) -> int:
        """One-based position of the stage within the aggregated path."""
        return len(self.prefix)

    @property
    def sort_key(self) -> tuple:
        """Canonical position in the mixed-alphabet total order.

        Stage items sort after dimension items (leading 1); see
        :attr:`repro.encoding.item_encoding.DimItem.sort_key`.
        """
        return (1, self.level_id, len(self.prefix), self.prefix, self.duration)


def stages_linkable(a: StageItem, b: StageItem) -> bool:
    """Can the two stages appear in one path? (Section 5, pruning rule 2.)

    Within one path the stages form a chain of prefixes, so two stage
    items at the same level co-occur only when one prefix extends the
    other; equal prefixes with different durations never co-occur (a stage
    has a single duration).  Items at different levels are judged by
    :func:`is_stage_ancestor` instead and are conservatively unlinkable
    here.
    """
    if a.level_id != b.level_id:
        return False
    if a.prefix == b.prefix:
        return False  # same stage: either identical item or contradictory
    shorter, longer = (a, b) if len(a.prefix) <= len(b.prefix) else (b, a)
    return longer.prefix[: len(shorter.prefix)] == shorter.prefix


def aggregate_prefix(
    prefix: tuple[str, ...], level: PathLevel
) -> tuple[str, ...]:
    """Roll a location prefix up to *level*'s view, merging repeats."""
    out: list[str] = []
    for location in prefix:
        aggregated = level.view.aggregate(location)
        if not out or out[-1] != aggregated:
            out.append(aggregated)
    return tuple(out)


def is_stage_ancestor(
    ancestor: StageItem,
    item: StageItem,
    lattice: PathLattice,
) -> bool:
    """Does *ancestor* always co-occur with *item*? (Pruning rule 4.)

    True when the ancestor's level is at-or-above the item's level on the
    path lattice, the item's prefix aggregates to the ancestor's prefix,
    and the duration is implied — the ancestor's duration is ``*``, or the
    views coincide and the durations are equal (then the only difference
    is the duration level).  Conservative: only returns True when the
    implication is certain.
    """
    if ancestor == item:
        return False
    ancestor_level = lattice[ancestor.level_id]
    item_level = lattice[item.level_id]
    if not ancestor_level.is_higher_or_equal(item_level):
        return False
    if aggregate_prefix(item.prefix, ancestor_level) != ancestor.prefix:
        return False
    if ancestor.duration == DURATION_ANY_LABEL:
        return True
    # Concrete ancestor duration: implied only if nothing changed it —
    # same location view (no merging) and the same duration label.
    return (
        ancestor_level.view == item_level.view
        and ancestor.duration == item.duration
    )


def render_stage_item(
    item: StageItem, short_names: dict[str, str] | None = None
) -> str:
    """Paper-style rendering, e.g. ``(fdt,1)`` (Table 3).

    Args:
        item: The stage item.
        short_names: Optional location → single-letter map; defaults to
            each location's first character.
    """
    letters = "".join(
        (short_names or {}).get(loc, loc[:1]) for loc in item.prefix
    )
    duration = item.duration if item.duration else DURATION_ANY_LABEL
    return f"({letters},{duration})"


def _duration_is_any(level: PathLevel) -> bool:
    return level.duration_level == DURATION_ANY
