"""Per-cube serving state: one tenant mounts one persisted flowcube.

A :class:`CubeTenant` owns everything one cube needs to be served
concurrently and repeatedly:

* a :class:`~repro.store.cube_store.CubeStore` read handle (cell-file
  materialisation behind its locked LRU cache);
* two long-lived :class:`~repro.query.api.FlowCubeQuery` façades — plain
  and ``derive=True`` — reused across requests, both drawing bitmap key
  catalogs from one shared :class:`~repro.perf.query_kernel.CatalogPool`
  so no request ever rebuilds an index another request already paid for;
* a response cache holding final rendered JSON *bytes* keyed by the
  canonical request, so a warm hit skips querying and serialisation
  entirely;
* invalidation wiring: the tenant subscribes to the store's version
  counter, so any mutation (``put_cell``/``flush``/``reload``) clears the
  response cache eagerly, and every cache key folds the version in as a
  second line of defence.  :meth:`refresh` additionally ``stat``\\ s the
  on-disk meta file so rebuilds by *other* processes (the CLI under a
  running server) are noticed per request.
"""

from __future__ import annotations

import hashlib
from pathlib import Path as FsPath

from repro.errors import StoreError
from repro.perf.query_kernel import CatalogPool, QueryCache, merge_query_stats
from repro.query.api import FlowCubeQuery
from repro.store.pathstore import PartitionedPathStore

__all__ = ["CubeTenant"]


class CubeTenant:
    """One named cube mounted in the slicer.

    Args:
        name: Tenant name — the ``{name}`` segment of every cube route.
        store: The partitioned path store whose ``cube/`` directory holds
            the built flowcube.
        cache_size: Capacity of the cell cache and each query cache.
        response_cache_size: Capacity of the rendered-response cache.
    """

    def __init__(
        self,
        name: str,
        store: PartitionedPathStore,
        cache_size: int = 256,
        response_cache_size: int = 512,
    ) -> None:
        self.name = name
        self.store = store
        self.cube_store = store.cube_store(cache_size=cache_size)
        if not self.cube_store.is_built:
            raise StoreError(
                f"no cube has been built at {store.directory} "
                "(run `flowcube-store build` first)"
            )
        self.catalogs = CatalogPool()
        self.query = FlowCubeQuery(
            self.cube_store,
            cache_size=cache_size,
            catalogs=self.catalogs,
        )
        self.derive_query = FlowCubeQuery(
            self.cube_store,
            derive=True,
            cache_size=cache_size,
            catalogs=self.catalogs,
        )
        self._responses = QueryCache(response_cache_size)
        self.invalidations = 0
        self.cube_store.subscribe(self._invalidated)

    @classmethod
    def mount(
        cls, name: str, directory: FsPath | str, cache_size: int = 256
    ) -> "CubeTenant":
        """Open the store at *directory* and mount it as *name*."""
        return cls(
            name, PartitionedPathStore.open(directory), cache_size=cache_size
        )

    # ------------------------------------------------------------------
    # invalidation
    # ------------------------------------------------------------------
    def _invalidated(self, version: int) -> None:
        self._responses.clear()
        self.invalidations += 1

    def refresh(self) -> bool:
        """Notice an external rebuild (one ``stat``); True when reloaded."""
        return self.cube_store.maybe_reload()

    def close(self) -> None:
        """Unmount: flush counters, then release every file handle/map.

        After closing, the cube store's mmaps (cell heap, cell index,
        shared string table) are dropped, so the store directory can be
        deleted or rebuilt without this process pinning stale inodes.
        The tenant must not serve requests afterwards.
        """
        try:
            self.cube_store.unsubscribe(self._invalidated)
        except ValueError:
            pass  # already unsubscribed (double close)
        self.flush_stats()
        self._responses.clear()
        self.cube_store.close()
        self.store.close()

    @property
    def version(self) -> int:
        """The store's mutation counter (folds into response-cache keys)."""
        return self.cube_store.version

    # ------------------------------------------------------------------
    # response cache
    # ------------------------------------------------------------------
    def cached_response(self, key: tuple) -> bytes | None:
        """Rendered response bytes for a canonical request key, if warm."""
        return self._responses.get((self.version,) + key)

    def store_response(
        self, key: tuple, body: bytes, version: int | None = None
    ) -> None:
        """Cache rendered bytes under the store version they were built at.

        *version* must be the mutation counter the caller observed
        **before** rendering *body*.  Keying with the counter read at
        store time instead would race concurrent writers: a body rendered
        from pre-mutation cells could land under the post-mutation key
        (the writer bumps and clears between the render and the put) and
        be served as current from then on.
        """
        if version is None:
            version = self.version
        self._responses.put((version,) + key, body)

    def etag(self, key: tuple) -> str:
        """A strong validator for the response a canonical key denotes.

        Pure function of (sha1 build version, store mutation counter,
        request key) — the same triple that makes cached bytes valid — so
        an ``If-None-Match`` revalidation can be answered 304 without
        querying or rendering anything, even on a cold response cache.
        """
        seed = f"{self.cube_store.build_version}:{self.version}:{key!r}"
        digest = hashlib.sha1(seed.encode("utf-8")).hexdigest()[:20]
        return f'"{digest}"'

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def describe(self) -> dict[str, object]:
        """The ``/cubes/{name}`` payload: shape, thresholds, provenance."""
        cube = self.cube_store
        out: dict[str, object] = {
            "name": self.name,
            "store": str(self.store.directory),
            "records": len(self.store),
            "cuboids": len(cube.cuboids),
            "cells": cube.n_cells(),
            "min_support": cube.min_support,
            "min_deviation": cube.min_deviation,
            "path_levels": (
                len(cube.path_lattice) if cube.path_lattice is not None else 0
            ),
            "version": cube.build_version,
        }
        if cube.build_stats is not None:
            out["build_stats"] = cube.build_stats
        return out

    def stats(self) -> dict[str, object]:
        """Every cache layer's counters, for ``/stats``."""
        return {
            "version": self.cube_store.build_version,
            "store_version": self.version,
            "invalidations": self.invalidations,
            "query_cache": self.query.cache_stats(),
            "derive_cache": self.derive_query.cache_stats(),
            "cell_cache": self.cube_store.cache_stats(),
            "catalog_pool": self.catalogs.stats(),
            "response_cache": self._responses.stats(),
        }

    def flush_stats(self) -> None:
        """Persist this tenant's query-cache counters for the CLI.

        Folds both façades' counters into the cube's ``query_stats.json``
        (the same file ``flowcube-store query`` accumulates into), so
        ``flowcube-store stats`` reports serving behaviour after the
        server exits.  The merge is atomic and lock-guarded, so CLI
        invocations running concurrently cannot interleave.
        """
        for facade in (self.query, self.derive_query):
            stats = facade.cache_stats()
            if stats["hits"] or stats["misses"] or stats["derivations"]:
                merge_query_stats(self.cube_store.directory, stats)
