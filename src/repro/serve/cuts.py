"""The slicer's cut syntax: declarative cell constraints in one string.

Modeled on DataBrewery cubes' slicer: a *cut* string names dimension
constraints separated by ``|``, each ``dimension:value``::

    product:outerwear|location:l3

parses to ``{"product": "outerwear", "location": "l3"}`` — the keyword
form every :class:`~repro.query.api.FlowCubeQuery` operation takes.
Values are hierarchy concepts at any abstraction level (the query layer
resolves the item level from where the concept sits), so one syntax
covers slice, dice, point lookups, and the cut halves of roll-up /
drill-down requests.  The HTTP layer accepts a cut either as the
``cut=`` query parameter (GET) or the ``"cut"`` body field (POST);
explicit ``"dims"`` objects merge over it.
"""

from __future__ import annotations

from repro.errors import ServeError

__all__ = ["parse_cut", "format_cut"]

#: Separates dimension constraints inside one cut string.
CUT_SEPARATOR = "|"

#: Separates a dimension name from its wanted concept.
VALUE_SEPARATOR = ":"


def parse_cut(cut: str) -> dict[str, str]:
    """Parse ``"dim:value|dim2:value2"`` into a constraints mapping.

    Raises :class:`~repro.errors.ServeError` on empty parts, a missing
    ``:``, or the same dimension named twice (the algebra has no useful
    meaning for conflicting point constraints on one dimension).
    """
    dims: dict[str, str] = {}
    if not cut:
        return dims
    for part in cut.split(CUT_SEPARATOR):
        name, separator, value = part.partition(VALUE_SEPARATOR)
        name = name.strip()
        value = value.strip()
        if not separator or not name or not value:
            raise ServeError(
                f"bad cut element {part!r}; expected dimension:value"
            )
        if name in dims:
            raise ServeError(f"dimension {name!r} appears twice in the cut")
        dims[name] = value
    return dims


def format_cut(dims: dict[str, str]) -> str:
    """The canonical cut string for a constraints mapping (sorted)."""
    return CUT_SEPARATOR.join(
        f"{name}{VALUE_SEPARATOR}{value}" for name, value in sorted(dims.items())
    )
