"""A small asyncio HTTP/1.1 layer — just enough protocol for the slicer.

No web framework and no new dependencies: :class:`HttpServer` speaks the
subset of HTTP/1.1 a JSON API needs (request line, headers,
``Content-Length`` bodies, keep-alive) over ``asyncio`` streams.  The
event loop only ever parses requests and writes responses; the
application's synchronous ``handle(request) -> Response`` runs on a
bounded thread pool, so one slow cold query (cell-file IO, a planner
merge) cannot stall every other connection.  The query/store layers this
fronts are thread-safe for exactly this reason.

The server binds before it accepts (``port=0`` picks a free port and
:attr:`HttpServer.address` reports it), which is what the benchmark
harness and the CI smoke script build on.
"""

from __future__ import annotations

import asyncio
import json
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, unquote, urlsplit

from repro.errors import ServeError

__all__ = ["Request", "Response", "HttpServer", "if_none_match"]

#: Largest accepted request body, in bytes.
MAX_BODY_BYTES = 1 << 20

_REASONS = {
    200: "OK",
    304: "Not Modified",
    400: "Bad Request",
    401: "Unauthorized",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: dict[str, str]
    headers: dict[str, str]
    body: bytes = b""
    version: str = "HTTP/1.1"

    def json(self) -> dict:
        """The body as a JSON object (``{}`` when empty)."""
        if not self.body:
            return {}
        try:
            payload = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServeError(f"request body is not valid JSON: {exc}")
        if not isinstance(payload, dict):
            raise ServeError("request body must be a JSON object")
        return payload

    @property
    def keep_alive(self) -> bool:
        connection = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return connection == "keep-alive"
        return connection != "close"


@dataclass
class Response:
    """One HTTP response; :meth:`json` is the canonical constructor.

    ``body`` bytes are what goes on the wire verbatim — the serving
    layer's response cache stores them, and the parity tests compare them
    byte-for-byte against directly computed answers.
    """

    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: dict[str, str] = field(default_factory=dict)

    @classmethod
    def json(cls, payload: object, status: int = 200) -> "Response":
        return cls(status=status, body=encode_json(payload))


def encode_json(payload: object) -> bytes:
    """The server's one JSON encoding (compact, key order preserved)."""
    return json.dumps(payload, separators=(",", ":")).encode("utf-8")


def if_none_match(header: str | None, etag: str) -> bool:
    """Does an ``If-None-Match`` header match *etag* (a quoted validator)?

    Implements the subset the slicer needs: ``*`` matches anything, and a
    comma-separated list of entity tags matches by weak comparison (a
    ``W/`` prefix on either side is ignored — byte-identical cached JSON
    is semantic equivalence here).
    """
    if not header:
        return False
    bare = etag[2:] if etag.startswith("W/") else etag
    for candidate in header.split(","):
        candidate = candidate.strip()
        if candidate == "*":
            return True
        if candidate.startswith("W/"):
            candidate = candidate[2:]
        if candidate == bare:
            return True
    return False


class HttpServer:
    """Serve an application over asyncio streams.

    Args:
        app: Any object with a synchronous ``handle(Request) -> Response``
            method; it runs on the worker pool, never on the event loop.
        host: Interface to bind.
        port: Port to bind; ``0`` picks a free one (see :attr:`address`).
        workers: Thread-pool size for request handling.
    """

    def __init__(
        self,
        app,
        host: str = "127.0.0.1",
        port: int = 8642,
        workers: int = 8,
    ) -> None:
        self._app = app
        self._host = host
        self._port = port
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="flowcube-serve"
        )
        self._server: asyncio.AbstractServer | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._server = await asyncio.start_server(
            self._client, self._host, self._port
        )

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — resolves ``port=0`` to the real port."""
        if self._server is None:
            return (self._host, self._port)
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return (host, port)

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._executor.shutdown(wait=False, cancel_futures=True)

    # ------------------------------------------------------------------
    # per-connection protocol loop
    # ------------------------------------------------------------------
    async def _client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                if isinstance(request, Response):  # protocol-level error
                    await self._write(writer, request, keep_alive=False)
                    break
                response = await self._dispatch(request)
                keep_alive = request.keep_alive
                await self._write(writer, response, keep_alive)
                if not keep_alive:
                    break
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.LimitOverrunError,
        ):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(self, request: Request) -> Response:
        loop = asyncio.get_running_loop()
        try:
            return await loop.run_in_executor(
                self._executor, self._app.handle, request
            )
        except Exception:  # the app maps its own errors; this is a bug
            return Response.json({"error": "internal server error"}, 500)

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Request | Response | None:
        try:
            blob = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as exc:
            if exc.partial:  # mid-request EOF: nothing we can answer
                return None
            return None  # clean close between requests
        try:
            head = blob.decode("latin-1")
            request_line, *header_lines = head.split("\r\n")
            method, target, version = request_line.split(" ", 2)
        except ValueError:
            return Response.json({"error": "malformed request line"}, 400)
        headers: dict[str, str] = {}
        for line in header_lines:
            if not line:
                continue
            name, separator, value = line.partition(":")
            if not separator:
                return Response.json({"error": "malformed header"}, 400)
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            return Response.json({"error": "request body too large"}, 413)
        body = b""
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                return None
        parts = urlsplit(target)
        query = {
            name: value
            for name, value in parse_qsl(parts.query, keep_blank_values=True)
        }
        return Request(
            method=method.upper(),
            path=unquote(parts.path),
            query=query,
            headers=headers,
            body=body,
            version=version.strip(),
        )

    async def _write(
        self, writer: asyncio.StreamWriter, response: Response, keep_alive: bool
    ) -> None:
        reason = _REASONS.get(response.status, "Unknown")
        head = [
            f"HTTP/1.1 {response.status} {reason}",
            f"Content-Type: {response.content_type}",
            f"Content-Length: {len(response.body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        for name, value in response.headers.items():
            head.append(f"{name}: {value}")
        writer.write(
            ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + response.body
        )
        await writer.drain()
