"""Run the slicer on a background thread — embedding, tests, benchmarks.

The CLI serves on the main thread (``asyncio.run``); everything else —
the pytest suite, ``benchmarks/bench_serve.py``, a notebook — wants a
server it can start, talk to over a real socket, and tear down.
:class:`ServerThread` wraps one event loop on one daemon thread, exposes
the bound address once the listener is up, and shuts the loop down
cleanly from the outside.
"""

from __future__ import annotations

import asyncio
import threading

from repro.serve.app import SlicerApp
from repro.serve.http import HttpServer

__all__ = ["ServerThread"]


class ServerThread:
    """One slicer server on its own event loop and daemon thread.

    Use as a context manager::

        with ServerThread(app) as server:
            host, port = server.address
            ...

    Args:
        app: The :class:`~repro.serve.app.SlicerApp` to serve.
        host: Interface to bind.
        port: Port to bind; the default ``0`` picks a free port.
        workers: Request-handler thread-pool size.
    """

    def __init__(
        self,
        app: SlicerApp,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 8,
    ) -> None:
        self.app = app
        self._server = HttpServer(app, host=host, port=port, workers=workers)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(self._serve())
        finally:
            loop.close()

    async def _serve(self) -> None:
        await self._server.start()
        self._ready.set()
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await self._server.stop()

    def start(self) -> "ServerThread":
        """Start the thread and block until the listener is bound."""
        self._thread = threading.Thread(
            target=self._run, name="flowcube-server", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=10):
            raise RuntimeError("server did not come up within 10s")
        return self

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port)."""
        return self._server.address

    def stop(self) -> None:
        """Cancel the serve task, join the thread, flush tenant stats."""
        loop = self._loop
        if loop is not None and loop.is_running():
            for task in asyncio.all_tasks(loop):
                loop.call_soon_threadsafe(task.cancel)
        if self._thread is not None:
            self._thread.join(timeout=10)
        for tenant in self.app.tenants.values():
            tenant.flush_stats()

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
