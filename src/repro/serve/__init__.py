"""``repro.serve`` — the async multi-tenant HTTP slicer.

The serving layer the ROADMAP's "millions of users" north star needs:
one long-lived process mounts any number of persisted flowcube stores as
named *tenants* and answers slice / roll-up / drill-down / point queries,
flowgraph and exception reports, and cache statistics as a JSON API.

The pieces, bottom-up:

* :mod:`repro.serve.http` — a dependency-free asyncio HTTP/1.1 protocol
  layer; request handling runs on a thread pool so cold queries never
  stall the accept loop;
* :mod:`repro.serve.cuts` — the declarative cut syntax
  (``product:outerwear|brand:nike``) every query-carrying endpoint
  accepts, modeled on DataBrewery cubes' slicer;
* :mod:`repro.serve.tenant` — per-cube serving state: long-lived query
  façades, a shared bitmap-catalog pool, a rendered-response byte cache,
  and store-version invalidation wiring;
* :mod:`repro.serve.app` — the routes.

:func:`create_app` / :func:`run` are the programmatic entry points; the
CLI front is ``flowcube-store serve``.
"""

from __future__ import annotations

import asyncio
from pathlib import Path as FsPath

from repro.serve.app import SlicerApp, cell_payload, slice_payload
from repro.serve.cuts import format_cut, parse_cut
from repro.serve.http import HttpServer, Request, Response, if_none_match
from repro.serve.runner import ServerThread
from repro.serve.tenant import CubeTenant

__all__ = [
    "CubeTenant",
    "HttpServer",
    "Request",
    "Response",
    "ServerThread",
    "SlicerApp",
    "cell_payload",
    "create_app",
    "format_cut",
    "if_none_match",
    "parse_cut",
    "run",
    "slice_payload",
]


def create_app(
    cubes: dict[str, FsPath | str],
    cache_size: int = 256,
    token: str | None = None,
    max_age: int | None = 60,
    admin_token: str | None = None,
) -> SlicerApp:
    """Mount the named stores and build the slicer application.

    ``max_age`` sets the ``Cache-Control: max-age`` seconds emitted next
    to the ETags on cacheable responses (``None`` omits the header).
    ``admin_token`` switches on the runtime ``mount``/``unmount`` admin
    routes (requests authenticate with an ``X-Admin-Token`` header).
    """
    tenants = [
        CubeTenant.mount(name, directory, cache_size=cache_size)
        for name, directory in cubes.items()
    ]
    return SlicerApp(
        tenants,
        token=token,
        max_age=max_age,
        admin_token=admin_token,
        cache_size=cache_size,
    )


async def run(
    app: SlicerApp,
    host: str = "127.0.0.1",
    port: int = 8642,
    workers: int = 8,
    ready=None,
) -> None:
    """Serve *app* forever; calls ``ready((host, port))`` once bound."""
    server = HttpServer(app, host=host, port=port, workers=workers)
    await server.start()
    if ready is not None:
        ready(server.address)
    try:
        await server.serve_forever()
    finally:
        await server.stop()
        for tenant in app.tenants.values():
            # close() flushes the query-cache counters and releases the
            # cube's mmaps and file handles (heap, index, string table).
            tenant.close()
