"""The slicer application: JSON routes over mounted flowcube tenants.

Route map (all responses JSON)::

    GET  /                              server identity + mounted cubes
    GET  /cubes                         tenant summaries
    GET  /cubes/{name}                  one cube: shape, δ/ε, build version
    GET  /cubes/{name}/cuboids          materialised cuboids (index only)
    GET|POST /cubes/{name}/slice        cells matching a cut
    POST /cubes/{name}/rollup           a cell's parent along one dimension
    POST /cubes/{name}/drilldown        a cell's children along one dimension
    POST /cubes/{name}/query            one cell (''derive'': planner support)
    GET  /cubes/{name}/flowgraph        flowgraph report for a cut
    GET  /cubes/{name}/exceptions       (ε, δ) exceptions across a cut
    POST /cubes/{name}/mount            admin: mount the store in "path"
    POST /cubes/{name}/unmount          admin: release the tenant's files
    GET  /stats                         per-tenant cache/derivation counters

The two admin routes exist only when the app was built with an
``admin_token`` (CLI: ``--admin-token``) and require it in an
``X-Admin-Token`` header — deliberately separate from the read-path
bearer token, so handing a client query access never hands it the
ability to detach a cube's files.

Constraints arrive as a *cut* string (``product:outerwear|brand:nike``,
see :mod:`repro.serve.cuts`) in the ``cut=`` query parameter or the
``"cut"`` body field; an explicit ``"dims"`` object merges over it.
``path_level`` selects a path-lattice index (default: most detailed).
``"measure": true`` includes each cell's full flowgraph payload.

Read handling is deliberately layered: a warm request is answered from
the tenant's rendered-response cache (bytes out, zero query work); a
cooler one from the query cache; a cold one runs the bitmap index
kernel — and, for ``"derive": true`` queries, the roll-up planner — and
pays cell-file IO only for matching cells.  Every cache key folds in the
store version, and each tenant request first ``stat``\\ s the cube's meta
file, so a rebuild by another process invalidates all three layers at
once.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Iterable

from repro import __version__
from repro.core.serialization import flowgraph_to_dict
from repro.errors import (
    CubeError,
    FlowCubeError,
    QueryError,
    ServeError,
    StoreError,
)
from repro.query.render import render_text
from repro.serve.cuts import format_cut, parse_cut
from repro.serve.http import Request, Response, encode_json, if_none_match
from repro.serve.tenant import CubeTenant

__all__ = ["SlicerApp", "cell_payload", "slice_payload"]


def cell_payload(tenant: CubeTenant, cell, measure: bool = False) -> dict:
    """One cell as the API renders it (index fields, optional measure)."""
    lattice = tenant.cube_store.path_lattice
    out: dict = {
        "key": list(cell.key),
        "item_level": list(cell.item_level.levels),
        "path_level": lattice.index_of(cell.path_level),
        "n_paths": cell.n_paths,
        "redundant": cell.redundant,
    }
    if measure:
        out["flowgraph"] = flowgraph_to_dict(cell.flowgraph)
    return out


def slice_payload(
    tenant: CubeTenant,
    dims: dict[str, str],
    path_level_id: int | None,
    cells: Iterable,
    measure: bool = False,
) -> dict:
    """The canonical slice response body.

    Kept as a free function so tests can rebuild the exact payload from
    independently computed cells and assert byte-equality against the
    server's response.
    """
    cells = [cell_payload(tenant, cell, measure) for cell in cells]
    return {
        "cube": tenant.name,
        "cut": format_cut(dims),
        "path_level": path_level_id,
        "n_cells": len(cells),
        "cells": cells,
    }


class SlicerApp:
    """Multi-tenant slicer over one or more mounted cubes.

    Args:
        tenants: The cubes to serve.
        token: Optional bearer token; when set, every request must carry
            ``Authorization: Bearer <token>`` (the auth hook — swap in a
            real authenticator by overriding :meth:`authorize`).
        max_age: ``Cache-Control: max-age`` seconds stamped (next to the
            ``ETag``) on every cacheable 200 and 304 — clients may reuse
            a response that long before revalidating.  ``None`` omits
            the header entirely.
        admin_token: Enables the runtime mount/unmount admin routes
            (``POST /cubes/{name}/mount`` / ``.../unmount``); requests
            must carry it in an ``X-Admin-Token`` header.  ``None``
            (the default) leaves the admin surface switched off.
        cache_size: Cell/query cache capacity for tenants mounted *at
            runtime* through the admin routes (tenants passed in were
            built with their own sizes already).
    """

    def __init__(
        self,
        tenants: Iterable[CubeTenant],
        token: str | None = None,
        max_age: int | None = 60,
        admin_token: str | None = None,
        cache_size: int = 256,
    ) -> None:
        self._tenants: dict[str, CubeTenant] = {}
        for tenant in tenants:
            if tenant.name in self._tenants:
                raise ServeError(f"duplicate tenant name {tenant.name!r}")
            self._tenants[tenant.name] = tenant
        if not self._tenants:
            raise ServeError("the slicer needs at least one cube to serve")
        self._token = token
        self._admin_token = admin_token
        self._cache_size = cache_size
        if max_age is not None and max_age < 0:
            raise ServeError(f"max_age must be >= 0, got {max_age}")
        self._max_age = max_age
        self._lock = threading.Lock()
        self.requests = 0
        self.started = time.time()

    @property
    def tenants(self) -> dict[str, CubeTenant]:
        return self._tenants

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------
    def handle(self, request: Request) -> Response:
        """Synchronous request handling (runs on the server's pool)."""
        with self._lock:
            self.requests += 1
        if not self.authorize(request):
            return Response.json({"error": "unauthorized"}, 401)
        try:
            return self._route(request)
        except ServeError as exc:
            return Response.json({"error": str(exc)}, 400)
        except (QueryError, CubeError) as exc:
            return Response.json({"error": str(exc)}, 404)
        except FlowCubeError as exc:
            return Response.json({"error": str(exc)}, 400)

    def authorize(self, request: Request) -> bool:
        """The auth hook: bearer-token check when a token is configured."""
        if self._token is None:
            return True
        return request.headers.get("authorization") == f"Bearer {self._token}"

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def _route(self, request: Request) -> Response:
        segments = [part for part in request.path.split("/") if part]
        if not segments:
            return self._info()
        if segments == ["stats"]:
            return self._stats()
        if segments[0] != "cubes":
            raise QueryError(f"no route for {request.path!r}")
        if len(segments) == 1:
            return Response.json(
                [tenant.describe() for tenant in self._tenants.values()]
            )
        # Admin routes dispatch before the tenant lookup: mount targets
        # a name that is *not* mounted yet.
        if len(segments) == 3 and segments[2] in ("mount", "unmount"):
            return self._admin(segments[1], segments[2], request)
        tenant = self._tenants.get(segments[1])
        if tenant is None:
            raise QueryError(f"no cube named {segments[1]!r} is mounted")
        tenant.refresh()
        if len(segments) == 2:
            return Response.json(tenant.describe())
        if len(segments) > 3:
            raise QueryError(f"no route for {request.path!r}")
        verb = segments[2]
        handlers = {
            "cuboids": self._cuboids,
            "slice": self._slice,
            "rollup": self._rollup,
            "drilldown": self._drilldown,
            "query": self._query,
            "flowgraph": self._flowgraph,
            "exceptions": self._exceptions,
        }
        handler = handlers.get(verb)
        if handler is None:
            raise QueryError(f"no route for {request.path!r}")
        if verb in ("rollup", "drilldown", "query") and request.method != (
            "POST"
        ):
            return Response.json({"error": "use POST"}, 405)
        return handler(tenant, request)

    # ------------------------------------------------------------------
    # admin: runtime mount / unmount
    # ------------------------------------------------------------------
    def _admin(self, name: str, verb: str, request: Request) -> Response:
        """``POST /cubes/{name}/mount`` and ``.../unmount``.

        Mounting opens the store named in the JSON body's ``"path"`` and
        starts serving it as *name*; unmounting closes every file handle
        and mmap the tenant holds (heap, index, string table), so the
        directory can be rebuilt or removed without restarting the
        server.  In-flight requests against an unmounting tenant may
        fail with a store error — the admin asked for its files back.
        """
        if self._admin_token is None:
            return Response.json(
                {"error": "admin routes are disabled (set an admin token)"},
                403,
            )
        if request.headers.get("x-admin-token") != self._admin_token:
            return Response.json({"error": "unauthorized"}, 401)
        if request.method != "POST":
            return Response.json({"error": "use POST"}, 405)
        if verb == "mount":
            params = request.json()
            path = params.get("path")
            if not path or not isinstance(path, str):
                raise ServeError('mount needs a "path" to the store')
            with self._lock:
                if name in self._tenants:
                    return Response.json(
                        {"error": f"cube {name!r} is already mounted"}, 409
                    )
            try:
                tenant = CubeTenant.mount(
                    name, path, cache_size=self._cache_size
                )
            except StoreError as exc:
                return Response.json({"error": str(exc)}, 400)
            with self._lock:
                if name in self._tenants:  # lost a mount race
                    tenant.close()
                    return Response.json(
                        {"error": f"cube {name!r} is already mounted"}, 409
                    )
                self._tenants[name] = tenant
            return Response.json(
                {"mounted": name, "cube": tenant.describe()}, 201
            )
        with self._lock:
            tenant = self._tenants.get(name)
            if tenant is None:
                return Response.json(
                    {"error": f"no cube named {name!r} is mounted"}, 404
                )
            if len(self._tenants) == 1:
                return Response.json(
                    {"error": "cannot unmount the last cube"}, 409
                )
            del self._tenants[name]
        tenant.close()
        return Response.json({"unmounted": name})

    # ------------------------------------------------------------------
    # request parsing helpers
    # ------------------------------------------------------------------
    def _params(self, request: Request) -> dict:
        """Merged request parameters: query string under a JSON body."""
        params: dict = dict(request.query)
        if request.method == "POST":
            params.update(request.json())
        return params

    def _dims(self, params: dict) -> dict[str, str]:
        dims = parse_cut(str(params.get("cut", "") or ""))
        extra = params.get("dims", {})
        if not isinstance(extra, dict):
            raise ServeError('"dims" must be an object of dimension:value')
        for name, value in extra.items():
            dims[str(name)] = str(value)
        return dims

    def _path_level(self, tenant: CubeTenant, params: dict):
        """(path-level id or None, PathLevel or None) from parameters."""
        raw = params.get("path_level")
        if raw is None or raw == "":
            return None, None
        try:
            level_id = int(raw)
        except (TypeError, ValueError):
            raise ServeError(f"bad path_level {raw!r}; expected an integer")
        lattice = tenant.cube_store.path_lattice
        if lattice is None or not 0 <= level_id < len(lattice):
            raise QueryError(f"no path level {level_id} in the cube")
        return level_id, lattice[level_id]

    def _flag(self, params: dict, name: str) -> bool:
        value = params.get(name, False)
        if isinstance(value, str):
            return value.lower() in ("1", "true", "yes")
        return bool(value)

    # ------------------------------------------------------------------
    # server-level endpoints
    # ------------------------------------------------------------------
    def _info(self) -> Response:
        return Response.json(
            {
                "server": "flowcube-slicer",
                "version": __version__,
                "cubes": sorted(self._tenants),
            }
        )

    def _stats(self) -> Response:
        with self._lock:
            requests = self.requests
        return Response.json(
            {
                "server": {
                    "requests": requests,
                    "uptime_seconds": round(time.time() - self.started, 3),
                },
                "cubes": {
                    name: tenant.stats()
                    for name, tenant in sorted(self._tenants.items())
                },
            }
        )

    # ------------------------------------------------------------------
    # cube endpoints
    # ------------------------------------------------------------------
    def _cuboids(self, tenant: CubeTenant, request: Request) -> Response:
        lattice = tenant.cube_store.path_lattice
        payload = []
        for cuboid in tenant.cube_store.cuboids:
            payload.append(
                {
                    "item_level": list(cuboid.item_level.levels),
                    "path_level": lattice.index_of(cuboid.path_level),
                    "n_cells": len(cuboid),
                }
            )
        payload.sort(key=lambda c: (c["path_level"], c["item_level"]))
        return Response.json({"cube": tenant.name, "cuboids": payload})

    def _cached(
        self, tenant: CubeTenant, key: tuple, build, request: Request | None = None
    ) -> Response:
        """Serve rendered bytes from the tenant's response cache.

        Every cacheable answer carries an ``ETag`` derived from the
        cube's build version, the store's mutation counter, and the
        canonical request key, plus ``Cache-Control: max-age`` (when
        configured) so clients can reuse a response for a bounded time
        without a round trip.  A matching ``If-None-Match`` is answered
        ``304 Not Modified`` before the cache is even consulted — the
        validator alone proves the client's copy is current.
        """
        version = tenant.version  # pinned before any rendering (see below)
        etag = tenant.etag(key)
        headers = {"ETag": etag}
        if self._max_age is not None:
            headers["Cache-Control"] = f"max-age={self._max_age}"
        if request is not None and if_none_match(
            request.headers.get("if-none-match"), etag
        ):
            return Response(status=304, headers=headers)
        body = tenant.cached_response(key)
        if body is None:
            body = encode_json(build())
            # Store under the version observed *before* build() ran: if a
            # writer mutated concurrently, the entry lands under the old
            # (now unreachable) key instead of poisoning the current one.
            tenant.store_response(key, body, version=version)
        return Response(body=body, headers=headers)

    def _slice(self, tenant: CubeTenant, request: Request) -> Response:
        params = self._params(request)
        dims = self._dims(params)
        level_id, path_level = self._path_level(tenant, params)
        measure = self._flag(params, "measure")
        key = ("slice", tuple(sorted(dims.items())), level_id, measure)

        def build():
            cells = tenant.query.slice_cells(path_level, **dims)
            return slice_payload(tenant, dims, level_id, cells, measure)

        return self._cached(tenant, key, build, request)

    def _point_cell(
        self, tenant: CubeTenant, params: dict
    ):
        """The cell a rollup/drilldown request anchors on."""
        dims = self._dims(params)
        _, path_level = self._path_level(tenant, params)
        derive = self._flag(params, "derive")
        facade = tenant.derive_query if derive else tenant.query
        return facade, facade.cell(path_level, **dims), dims

    def _rollup(self, tenant: CubeTenant, request: Request) -> Response:
        params = self._params(request)
        dimension = params.get("dimension")
        if not dimension:
            raise ServeError('rollup needs a "dimension" to roll up along')
        measure = self._flag(params, "measure")
        dims = self._dims(params)
        level_id, _ = self._path_level(tenant, params)
        key = (
            "rollup",
            tuple(sorted(dims.items())),
            level_id,
            str(dimension),
            self._flag(params, "derive"),
            measure,
        )

        def build():
            facade, cell, _ = self._point_cell(tenant, params)
            parent = facade.roll_up(cell, str(dimension))
            return {
                "cube": tenant.name,
                "dimension": dimension,
                "cell": cell_payload(tenant, parent, measure),
            }

        return self._cached(tenant, key, build, request)

    def _drilldown(self, tenant: CubeTenant, request: Request) -> Response:
        params = self._params(request)
        dimension = params.get("dimension")
        if not dimension:
            raise ServeError('drilldown needs a "dimension" to drill along')
        measure = self._flag(params, "measure")
        dims = self._dims(params)
        level_id, _ = self._path_level(tenant, params)
        key = (
            "drilldown",
            tuple(sorted(dims.items())),
            level_id,
            str(dimension),
            self._flag(params, "derive"),
            measure,
        )

        def build():
            facade, cell, _ = self._point_cell(tenant, params)
            children = facade.drill_down(cell, str(dimension))
            return {
                "cube": tenant.name,
                "dimension": dimension,
                "n_cells": len(children),
                "cells": [
                    cell_payload(tenant, child, measure) for child in children
                ],
            }

        return self._cached(tenant, key, build, request)

    def _query(self, tenant: CubeTenant, request: Request) -> Response:
        params = self._params(request)
        dims = self._dims(params)
        level_id, path_level = self._path_level(tenant, params)
        derive = self._flag(params, "derive")
        facade = tenant.derive_query if derive else tenant.query
        key = ("query", tuple(sorted(dims.items())), level_id, derive)

        def build():
            item_level, _ = facade.coordinates(**dims)
            level = path_level or facade.default_path_level()
            materialised = tenant.cube_store.has_cuboid(item_level, level)
            cell = facade.cell(path_level, **dims)
            payload = {
                "cube": tenant.name,
                "cut": format_cut(dims),
                "derived": not materialised,
                "cell": cell_payload(tenant, cell, measure=True),
            }
            if not materialised:
                plan = facade.plan_for(item_level, level)
                if plan is not None:
                    payload["derivation"] = {
                        "source": list(plan.source.levels),
                        "distance": plan.distance,
                        "source_cells": plan.source_cells,
                        "exact": plan.exact,
                    }
            return payload

        return self._cached(tenant, key, build, request)

    def _flowgraph(self, tenant: CubeTenant, request: Request) -> Response:
        params = self._params(request)
        dims = self._dims(params)
        level_id, path_level = self._path_level(tenant, params)
        derive = self._flag(params, "derive")
        facade = tenant.derive_query if derive else tenant.query
        key = ("flowgraph", tuple(sorted(dims.items())), level_id, derive)

        def build():
            graph = facade.flowgraph(path_level, **dims)
            return {
                "cube": tenant.name,
                "cut": format_cut(dims),
                "n_paths": graph.n_paths,
                "flowgraph": flowgraph_to_dict(graph),
                "text": render_text(graph),
            }

        return self._cached(tenant, key, build, request)

    def _exceptions(self, tenant: CubeTenant, request: Request) -> Response:
        params = self._params(request)
        dims = self._dims(params)
        level_id, path_level = self._path_level(tenant, params)
        key = ("exceptions", tuple(sorted(dims.items())), level_id)

        def build():
            cells = tenant.query.slice_cells(path_level, **dims)
            reports = []
            for cell in cells:
                exceptions = flowgraph_to_dict(cell.flowgraph)["exceptions"]
                if exceptions:
                    reports.append(
                        {
                            "key": list(cell.key),
                            "item_level": list(cell.item_level.levels),
                            "exceptions": exceptions,
                        }
                    )
            return {
                "cube": tenant.name,
                "cut": format_cut(dims),
                "n_cells": len(reports),
                "cells": reports,
            }

        return self._cached(tenant, key, build, request)
