"""FlowCube: RFID flowcubes for multi-dimensional commodity-flow analysis.

A faithful, laptop-scale reproduction of Gonzalez, Han & Li,
"FlowCube: Constructing RFID FlowCubes for Multi-Dimensional Analysis of
Commodity Flows" (VLDB 2006).

Quickstart::

    from repro import FlowCube, example_path_database

    db = example_path_database()
    cube = FlowCube.build(db, min_support=2)
    cell = cube.cell(...)

Subpackages:

* :mod:`repro.core` — path model, hierarchies, lattices, flowgraphs,
  the flowcube itself.
* :mod:`repro.encoding` — Section 5's item/stage encodings and the
  transaction-database transform.
* :mod:`repro.mining` — Apriori, FP-growth, BUC, and the paper's Shared /
  Basic / Cubing algorithms.
* :mod:`repro.synth` — the Section 6.1 synthetic path generator.
* :mod:`repro.warehouse` — raw RFID reading simulation and cleaning (§2).
* :mod:`repro.query` — OLAP queries, flow analysis, rendering.
* :mod:`repro.bench` — the Section 6 experiment harness (figures 6–11).
"""

from repro.core import (
    ConceptHierarchy,
    FlowCube,
    FlowGraph,
    ItemLevel,
    LocationView,
    Path,
    PathDatabase,
    PathLattice,
    PathLevel,
    PathRecord,
    PathSchema,
    Stage,
    example_path_database,
)
from repro.errors import FlowCubeError

__version__ = "1.0.0"

__all__ = [
    "ConceptHierarchy",
    "FlowCube",
    "FlowCubeError",
    "FlowGraph",
    "ItemLevel",
    "LocationView",
    "Path",
    "PathDatabase",
    "PathLattice",
    "PathLevel",
    "PathRecord",
    "PathSchema",
    "Stage",
    "__version__",
    "example_path_database",
]
